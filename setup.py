"""Setup shim: enables legacy editable installs on environments whose
setuptools lacks the `wheel` package required by PEP 660 editable wheels
(pip install -e . falls back to `setup.py develop` here)."""

from setuptools import setup

setup()
