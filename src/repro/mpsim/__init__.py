"""Simulated message-passing runtime and distributed sparse Cholesky."""

from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    CommStats,
    CommWorld,
    MPSimError,
    Request,
)
from .distchol import (
    distributed_backward_solve,
    distributed_cholesky,
    distributed_forward_solve,
    distributed_solve_spd,
)
from .distblock import distributed_block_cholesky
from .distblock_solve import (
    distributed_block_backward_solve,
    distributed_block_forward_solve,
)
from .fanin import distributed_cholesky_fanin
from .launcher import run_parallel

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "CommStats",
    "CommWorld",
    "MPSimError",
    "Request",
    "distributed_backward_solve",
    "distributed_cholesky",
    "distributed_block_cholesky",
    "distributed_block_backward_solve",
    "distributed_block_forward_solve",
    "distributed_cholesky_fanin",
    "distributed_forward_solve",
    "distributed_solve_spd",
    "run_parallel",
]
