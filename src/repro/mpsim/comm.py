"""A simulated message-passing communicator (mpi4py-flavoured API).

Ranks run as threads inside one process; messages are Python objects
passed through per-rank mailboxes with (source, tag) matching, like an
MPI implementation's unexpected-message queue.  The communicator counts
messages and payload bytes so integration tests can correlate real
message traffic with the machine-model accounting.
"""

from __future__ import annotations

import pickle
import threading
from collections import deque
from dataclasses import dataclass, field

from ..obs import trace as obs

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "CommStats",
    "CommWorld",
    "MPSimError",
    "Request",
]

ANY_SOURCE = -1
ANY_TAG = -1


class MPSimError(RuntimeError):
    """Raised for communicator misuse or timeouts (likely deadlock)."""


@dataclass
class CommStats:
    """Per-rank communication counters."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_send(self, nbytes: int) -> None:
        with self.lock:
            self.messages_sent += 1
            self.bytes_sent += nbytes
        if obs.is_enabled():
            obs.counter("mpsim.messages_sent")
            obs.counter("mpsim.bytes_sent", nbytes)

    def record_recv(self) -> None:
        with self.lock:
            self.messages_received += 1
        obs.counter("mpsim.messages_received")


class Request:
    """Handle for a nonblocking operation (mpi4py-style test/wait)."""

    def __init__(self, poll, result=None, complete: bool = False):
        self._poll = poll
        self._result = result
        self._complete = complete

    def test(self):
        """(done, result) — non-blocking completion check."""
        if not self._complete:
            ok, value = self._poll(block=False)
            if ok:
                self._result = value
                self._complete = True
        return self._complete, self._result

    def wait(self):
        """Block until complete; returns the result (None for sends)."""
        if not self._complete:
            _, value = self._poll(block=True)
            self._result = value
            self._complete = True
        return self._result


class _Mailbox:
    """Unbounded mailbox with (source, tag) matched receives."""

    def __init__(self) -> None:
        self._pending: deque = deque()
        self._cond = threading.Condition()

    def put(self, source: int, tag: int, payload, msg_id: int | None = None) -> None:
        # msg_id threads the ledger entry (simtime.MessageLedger) through
        # the mailbox so the receive side can stamp the delivery.
        with self._cond:
            self._pending.append((source, tag, payload, msg_id))
            self._cond.notify_all()

    def peek(self, source: int, tag: int):
        """Non-destructive match check; returns (source, tag) or None."""
        with self._cond:
            for s, t, _payload, _mid in self._pending:
                if (source in (ANY_SOURCE, s)) and (tag in (ANY_TAG, t)):
                    return s, t
        return None

    def try_get(self, source: int, tag: int):
        """Non-blocking matched receive; returns None when no match."""
        with self._cond:
            for idx, (s, t, payload, mid) in enumerate(self._pending):
                if (source in (ANY_SOURCE, s)) and (tag in (ANY_TAG, t)):
                    del self._pending[idx]
                    return s, t, payload, mid
        return None

    def get(self, source: int, tag: int, timeout: float | None):
        deadline = None
        with self._cond:
            while True:
                for idx, (s, t, payload, mid) in enumerate(self._pending):
                    if (source in (ANY_SOURCE, s)) and (tag in (ANY_TAG, t)):
                        del self._pending[idx]
                        return s, t, payload, mid
                if timeout is not None:
                    import time

                    if deadline is None:
                        deadline = time.monotonic() + timeout
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise MPSimError(
                            f"recv(source={source}, tag={tag}) timed out "
                            "(likely deadlock)"
                        )
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()


class CommWorld:
    """Shared state for one group of ranks.

    ``drop_filter`` enables fault injection: a callable
    ``(source, dest, tag) -> bool`` returning True when a message should
    be silently lost in transit.  Dropped messages still count as sent
    (the sender cannot tell) and increment ``messages_dropped``; the
    receiving side eventually hits its timeout, which is exactly the
    failure mode the deadlock detection exists for.
    """

    def __init__(
        self,
        size: int,
        default_timeout: float | None = 60.0,
        drop_filter=None,
    ):
        if size < 1:
            raise ValueError("size must be positive")
        self.size = size
        self.default_timeout = default_timeout
        self.drop_filter = drop_filter
        self.messages_dropped = 0
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.stats = [CommStats() for _ in range(size)]
        self._barrier = threading.Barrier(size)
        self._drop_lock = threading.Lock()
        #: Optional :class:`repro.obs.simtime.MessageLedger`.  When the
        #: launcher attaches one, every send/recv is stamped with Lamport
        #: times; dropped messages stay in the ledger undelivered.
        self.ledger = None

    def comm(self, rank: int) -> "Comm":
        return Comm(self, rank)


class Comm:
    """One rank's handle on the communicator."""

    def __init__(self, world: CommWorld, rank: int):
        if not (0 <= rank < world.size):
            raise ValueError(f"rank {rank} out of range for size {world.size}")
        self._world = world
        self.rank = rank
        self.size = world.size

    # -- point to point -------------------------------------------------
    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Buffered send (never blocks)."""
        if not (0 <= dest < self.size):
            raise MPSimError(f"send to invalid rank {dest}")
        if tag < 0:
            raise MPSimError("tags must be non-negative (wildcards are recv-only)")
        # Serialize to decouple sender/receiver state, exactly as a real
        # message-passing system would (and to measure payload size).
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._world.stats[self.rank].record_send(len(payload))
        ledger = self._world.ledger
        mid = (
            None
            if ledger is None
            else ledger.on_send(self.rank, dest, len(payload), cause=tag)
        )
        drop = self._world.drop_filter
        if drop is not None and drop(self.rank, dest, tag):
            # The ledger entry stays undelivered — exactly how a lost
            # message looks to a postmortem.
            with self._world._drop_lock:
                self._world.messages_dropped += 1
            obs.counter("mpsim.messages_dropped")
            return
        self._world.mailboxes[dest].put(self.rank, tag, payload, mid)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, status: dict | None = None):
        """Blocking matched receive; returns the received object."""
        s, t, payload, mid = self._world.mailboxes[self.rank].get(
            source, tag, self._world.default_timeout
        )
        self._world.stats[self.rank].record_recv()
        ledger = self._world.ledger
        if ledger is not None and mid is not None:
            ledger.on_recv(mid)
        if status is not None:
            status["source"] = s
            status["tag"] = t
        return pickle.loads(payload)

    def sendrecv(self, obj, dest: int, source: int = ANY_SOURCE, tag: int = 0):
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        """Nonblocking send.  Sends here are buffered, so the request is
        complete immediately — kept for API parity with MPI."""
        self.send(obj, dest, tag)
        return Request(poll=lambda block: (True, None), complete=True)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; complete it with ``.test()`` / ``.wait()``."""
        mailbox = self._world.mailboxes[self.rank]
        stats = self._world.stats[self.rank]
        timeout = self._world.default_timeout
        world = self._world

        def poll(block: bool):
            if block:
                _s, _t, payload, mid = mailbox.get(source, tag, timeout)
            else:
                hit = mailbox.try_get(source, tag)
                if hit is None:
                    return False, None
                _s, _t, payload, mid = hit
            stats.record_recv()
            if world.ledger is not None and mid is not None:
                world.ledger.on_recv(mid)
            return True, pickle.loads(payload)

        return Request(poll=poll)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> dict:
        """Block until a matching message is available; returns its
        (source, tag) without consuming it."""
        import time

        deadline = (
            None
            if self._world.default_timeout is None
            else time.monotonic() + self._world.default_timeout
        )
        while True:
            hit = self._world.mailboxes[self.rank].peek(source, tag)
            if hit is not None:
                return {"source": hit[0], "tag": hit[1]}
            if deadline is not None and time.monotonic() > deadline:
                raise MPSimError(
                    f"probe(source={source}, tag={tag}) timed out"
                )
            time.sleep(0.0005)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> dict | None:
        """Non-blocking probe; None when no matching message is queued."""
        hit = self._world.mailboxes[self.rank].peek(source, tag)
        return None if hit is None else {"source": hit[0], "tag": hit[1]}

    # -- collectives ----------------------------------------------------
    _COLL_TAG_BASE = 1 << 20  # reserved tag space for collectives

    def barrier(self) -> None:
        self._world._barrier.wait(timeout=self._world.default_timeout)

    def bcast(self, obj, root: int = 0):
        tag = self._COLL_TAG_BASE + 1
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(obj, dst, tag)
            return obj
        return self.recv(root, tag)

    def gather(self, obj, root: int = 0):
        tag = self._COLL_TAG_BASE + 2
        if self.rank == root:
            out = [None] * self.size
            out[root] = obj
            for _ in range(self.size - 1):
                status: dict = {}
                val = self.recv(ANY_SOURCE, tag, status)
                out[status["source"]] = val
            return out
        self.send(obj, root, tag)
        return None

    def allgather(self, obj):
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, objs, root: int = 0):
        tag = self._COLL_TAG_BASE + 3
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise MPSimError("scatter requires one object per rank at the root")
            for dst in range(self.size):
                if dst != root:
                    self.send(objs[dst], dst, tag)
            return objs[root]
        return self.recv(root, tag)

    def reduce(self, obj, op=None, root: int = 0):
        """Reduce with a binary ``op`` (default addition), root gets result."""
        if op is None:
            op = lambda a, b: a + b  # noqa: E731 - tiny default
        vals = self.gather(obj, root)
        if self.rank != root:
            return None
        acc = vals[0]
        for v in vals[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, obj, op=None):
        return self.bcast(self.reduce(obj, op, root=0), root=0)

    # -- introspection ----------------------------------------------------
    @property
    def stats(self) -> CommStats:
        return self._world.stats[self.rank]
