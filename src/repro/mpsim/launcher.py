"""Run an SPMD function across simulated ranks (threads)."""

from __future__ import annotations

import threading

from ..obs import simtime
from ..obs import trace as obs
from .comm import CommWorld, MPSimError

__all__ = ["run_parallel"]


def run_parallel(
    fn,
    nprocs: int,
    *args,
    timeout: float | None = 60.0,
    drop_filter=None,
    **kwargs,
) -> list:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks.

    Returns the per-rank return values in rank order.  Any rank raising
    an exception fails the whole run (the first exception, by rank, is
    re-raised with rank context).  ``timeout`` bounds both individual
    receives and the total join, converting deadlocks into errors.
    ``drop_filter`` injects message loss (see :class:`CommWorld`).

    When tracing is enabled, every message is stamped into a Lamport-clock
    :class:`~repro.obs.simtime.MessageLedger` and the whole run lands in
    the recorder as a ``SimRun`` (clock domain ``lamport``).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    world = CommWorld(nprocs, default_timeout=timeout, drop_filter=drop_filter)
    if obs.is_enabled():
        world.ledger = simtime.MessageLedger(nprocs)
    results: list = [None] * nprocs
    errors: list = [None] * nprocs

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(world.comm(rank), *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - propagated below
            errors[rank] = exc

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"mpsim-rank-{rank}", daemon=True)
        for rank in range(nprocs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            raise MPSimError(f"{t.name} did not finish within {timeout}s (deadlock?)")
    for rank, exc in enumerate(errors):
        if exc is not None:
            raise MPSimError(f"rank {rank} failed: {exc!r}") from exc
    if world.ledger is not None and world.ledger.messages:
        name = getattr(fn, "__name__", "mpsim")
        simtime.record_sim_run(world.ledger.to_sim_run(name=name))
    return results
