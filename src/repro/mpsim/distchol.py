"""Distributed fan-out Cholesky factorization and triangular solves on
the simulated message-passing runtime.

The structure of L is replicated (as after a symbolic-factorization
broadcast); values are distributed by column according to an arbitrary
column -> processor map, so both the wrap mapping and a block-derived
column mapping can be executed for real.  The algorithm is the classic
fan-out scheme (Geist & Ng 1989; paper reference [6]): a processor
completes a column (cdiv), then sends it to every processor owning a
column that the completed column modifies (cmod).
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import LowerCSC, SymmetricCSC
from ..sparse.pattern import LowerPattern
from .comm import ANY_SOURCE, Comm
from .launcher import run_parallel

__all__ = [
    "distributed_cholesky",
    "distributed_forward_solve",
    "distributed_backward_solve",
    "distributed_solve_spd",
]

_TAG_COLUMN = 1
_TAG_FSOLVE = 2
_TAG_BSOLVE = 3


def _consumers(pattern: LowerPattern, proc_of_col: np.ndarray) -> list[set[int]]:
    """consumers[k] = processors owning a column j > k with L[j, k] != 0."""
    out: list[set[int]] = [set() for _ in range(pattern.n)]
    for k in range(pattern.n):
        rows = pattern.col(k)[1:]
        out[k] = {int(proc_of_col[j]) for j in rows}
    return out


def _nmod(pattern: LowerPattern) -> np.ndarray:
    """nmod[j] = number of columns k < j with L[j, k] != 0."""
    counts = np.zeros(pattern.n, dtype=np.int64)
    cols = pattern.element_cols()
    off = pattern.rowidx != cols
    np.add.at(counts, pattern.rowidx[off], 1)
    return counts


def _factor_rank(
    comm: Comm,
    a: SymmetricCSC,
    pattern: LowerPattern,
    proc_of_col: np.ndarray,
) -> dict[int, np.ndarray]:
    """One rank of the fan-out factorization; returns its column values."""
    me = comm.rank
    n = pattern.n
    consumers = _consumers(pattern, proc_of_col)
    nmod = _nmod(pattern)
    mine = [j for j in range(n) if proc_of_col[j] == me]
    mine_set = set(mine)

    # Local accumulators: column j's values over struct(j), seeded from A.
    colvals: dict[int, np.ndarray] = {}
    apat = a.pattern
    for j in mine:
        struct = pattern.col(j)
        vals = np.zeros(len(struct), dtype=np.float64)
        alo, ahi = apat.indptr[j], apat.indptr[j + 1]
        arows = apat.rowidx[alo:ahi]
        vals[np.searchsorted(struct, arows)] = a.values[alo:ahi]
        colvals[j] = vals

    pending = {j: int(nmod[j]) for j in mine}
    done: dict[int, np.ndarray] = {}
    # Messages expected: one per foreign column whose consumers include me.
    expected = sum(
        1 for k in range(n) if proc_of_col[k] != me and me in consumers[k]
    )

    def cmod(j: int, k: int, k_struct: np.ndarray, k_vals: np.ndarray) -> None:
        """Apply column k's outer-product update to local column j."""
        pos = int(np.searchsorted(k_struct, j))
        ljk = k_vals[pos]
        rows = k_struct[pos:]
        tgt = colvals[j]
        struct_j = pattern.col(j)
        idx = np.searchsorted(struct_j, rows)
        tgt[idx] -= ljk * k_vals[pos:]
        pending[j] -= 1

    def apply_everywhere(k: int, k_struct: np.ndarray, k_vals: np.ndarray) -> list[int]:
        """cmod every local column that k updates; return newly-ready columns."""
        newly_ready = []
        for j in k_struct[1:].tolist():
            if j in mine_set and j not in done:
                cmod(j, k, k_struct, k_vals)
                if pending[j] == 0:
                    newly_ready.append(j)
        return newly_ready

    def cdiv(j: int) -> None:
        vals = colvals[j]
        pivot = vals[0]
        if pivot <= 0.0:
            raise ValueError(f"non-positive pivot {pivot:g} in column {j}")
        d = np.sqrt(pivot)
        vals[0] = d
        vals[1:] /= d
        done[j] = vals

    ready = sorted(j for j in mine if pending[j] == 0)
    received = 0
    while len(done) < len(mine) or received < expected:
        while ready:
            j = ready.pop(0)
            cdiv(j)
            struct_j = pattern.col(j)
            for dest in sorted(consumers[j] - {me}):
                comm.send((j, done[j]), dest, _TAG_COLUMN)
            ready.extend(apply_everywhere(j, struct_j, done[j]))
            ready.sort()
        if received < expected:
            k, k_vals = comm.recv(ANY_SOURCE, _TAG_COLUMN)
            received += 1
            ready.extend(apply_everywhere(k, pattern.col(k), k_vals))
            ready.sort()
    return done


def distributed_cholesky(
    a: SymmetricCSC,
    pattern: LowerPattern,
    proc_of_col: np.ndarray,
    nprocs: int,
    timeout: float | None = 60.0,
) -> tuple[LowerCSC, list]:
    """Factor ``a`` (already permuted; ``pattern`` is its symbolic factor)
    with ``nprocs`` simulated ranks.  Returns (L, per-rank CommStats)."""
    proc_of_col = np.asarray(proc_of_col, dtype=np.int64)
    if len(proc_of_col) != a.n:
        raise ValueError("proc_of_col must map every column")
    if len(proc_of_col) and (proc_of_col.min() < 0 or proc_of_col.max() >= nprocs):
        raise ValueError("column owner out of range")

    world_stats: list = []

    def rank_fn(comm: Comm):
        cols = _factor_rank(comm, a, pattern, proc_of_col)
        gathered = comm.gather(cols, root=0)
        stats = comm.stats
        if comm.rank == 0:
            merged: dict[int, np.ndarray] = {}
            for part in gathered:
                merged.update(part)
            return merged, stats
        return None, stats

    results = run_parallel(rank_fn, nprocs, timeout=timeout)
    world_stats = [r[1] for r in results]
    merged = results[0][0]
    values = np.zeros(pattern.nnz, dtype=np.float64)
    for j, vals in merged.items():
        values[pattern.indptr[j] : pattern.indptr[j + 1]] = vals
    return LowerCSC(pattern, values), world_stats


def distributed_forward_solve(
    L: LowerCSC, b: np.ndarray, proc_of_col: np.ndarray, nprocs: int,
    timeout: float | None = 60.0,
) -> np.ndarray:
    """Solve L x = b with column fan-out: the owner of column j finalizes
    x_j, then ships its update contributions grouped by destination."""
    proc_of_col = np.asarray(proc_of_col, dtype=np.int64)
    pattern = L.pattern
    n = pattern.n
    nmod = _nmod(pattern)

    def rank_fn(comm: Comm):
        me = comm.rank
        mine = [j for j in range(n) if proc_of_col[j] == me]
        mine_set = set(mine)
        acc = {j: float(b[j]) for j in mine}
        pending = {j: int(nmod[j]) for j in mine}
        x: dict[int, float] = {}
        expected = 0
        for k in range(n):
            if proc_of_col[k] == me:
                continue
            dests = {int(proc_of_col[i]) for i in pattern.col(k)[1:]}
            if me in dests:
                expected += 1

        def finalize(j: int) -> list[int]:
            lo, hi = pattern.indptr[j], pattern.indptr[j + 1]
            xj = acc[j] / L.values[lo]
            x[j] = xj
            rows = pattern.rowidx[lo + 1 : hi]
            deltas = L.values[lo + 1 : hi] * xj
            by_dest: dict[int, list[tuple[int, float]]] = {}
            newly = []
            for i, d in zip(rows.tolist(), deltas.tolist()):
                p = int(proc_of_col[i])
                if p == me:
                    acc[i] -= d
                    pending[i] -= 1
                    if pending[i] == 0:
                        newly.append(i)
                else:
                    by_dest.setdefault(p, []).append((i, d))
            for p, items in by_dest.items():
                comm.send((j, items), p, _TAG_FSOLVE)
            return newly

        ready = sorted(j for j in mine if pending[j] == 0)
        received = 0
        while len(x) < len(mine) or received < expected:
            while ready:
                ready.extend(finalize(ready.pop(0)))
                ready.sort()
            if received < expected:
                _k, items = comm.recv(ANY_SOURCE, _TAG_FSOLVE)
                received += 1
                for i, d in items:
                    acc[i] -= d
                    pending[i] -= 1
                    if pending[i] == 0:
                        ready.append(i)
                ready.sort()
        gathered = comm.gather(x, root=0)
        if comm.rank == 0:
            merged: dict[int, float] = {}
            for part in gathered:
                merged.update(part)
            return merged
        return None

    results = run_parallel(rank_fn, nprocs, timeout=timeout)
    out = np.zeros(n, dtype=np.float64)
    for j, v in results[0].items():
        out[j] = v
    return out


def distributed_backward_solve(
    L: LowerCSC, b: np.ndarray, proc_of_col: np.ndarray, nprocs: int,
    timeout: float | None = 60.0,
) -> np.ndarray:
    """Solve Lᵀ x = b: the owner of column j computes the dot product of
    L[:, j] with already-finalized x entries, which other owners push to
    it as they finalize."""
    proc_of_col = np.asarray(proc_of_col, dtype=np.int64)
    pattern = L.pattern
    n = pattern.n

    # needers[i] = processors owning a column j < i with L[i, j] != 0
    # (they need x_i to finish their dot products).
    needers: list[set[int]] = [set() for _ in range(n)]
    for j in range(n):
        for i in pattern.col(j)[1:]:
            needers[int(i)].add(int(proc_of_col[j]))

    def rank_fn(comm: Comm):
        me = comm.rank
        mine = [j for j in range(n) if proc_of_col[j] == me]
        acc = {j: float(b[j]) for j in mine}
        pending = {j: int(pattern.col_count(j)) - 1 for j in mine}
        x: dict[int, float] = {}
        expected = 0
        for i in range(n):
            if proc_of_col[i] != me and me in needers[i]:
                expected += 1

        def finalize(j: int) -> list[int]:
            lo = pattern.indptr[j]
            xj = acc[j] / L.values[lo]
            x[j] = xj
            newly = []
            # x_j participates in the dot products of columns j' < j with
            # L[j, j'] != 0; push it to their owners (and apply locally).
            for p in sorted(needers[j] - {me}):
                comm.send((j, xj), p, _TAG_BSOLVE)
            if me in needers[j]:
                newly.extend(_apply(j, xj))
            return newly

        def _apply(i: int, xi: float) -> list[int]:
            newly = []
            for j in mine:
                if j in x or j >= i:
                    continue
                lo, hi = pattern.indptr[j], pattern.indptr[j + 1]
                rows = pattern.rowidx[lo:hi]
                pos = int(np.searchsorted(rows, i))
                if pos < len(rows) and rows[pos] == i:
                    acc[j] -= L.values[lo + pos] * xi
                    pending[j] -= 1
                    if pending[j] == 0:
                        newly.append(j)
            return newly

        ready = sorted((j for j in mine if pending[j] == 0), reverse=True)
        received = 0
        while len(x) < len(mine) or received < expected:
            while ready:
                ready.extend(finalize(ready.pop(0)))
                ready.sort(reverse=True)
            if received < expected:
                i, xi = comm.recv(ANY_SOURCE, _TAG_BSOLVE)
                received += 1
                ready.extend(_apply(i, xi))
                ready.sort(reverse=True)
        gathered = comm.gather(x, root=0)
        if comm.rank == 0:
            merged: dict[int, float] = {}
            for part in gathered:
                merged.update(part)
            return merged
        return None

    results = run_parallel(rank_fn, nprocs, timeout=timeout)
    out = np.zeros(n, dtype=np.float64)
    for j, v in results[0].items():
        out[j] = v
    return out


def distributed_solve_spd(
    a: SymmetricCSC,
    b: np.ndarray,
    pattern: LowerPattern,
    proc_of_col: np.ndarray,
    nprocs: int,
    timeout: float | None = 60.0,
) -> np.ndarray:
    """Full distributed pipeline on an already-permuted system:
    factorization, forward solve, backward solve."""
    L, _ = distributed_cholesky(a, pattern, proc_of_col, nprocs, timeout=timeout)
    u = distributed_forward_solve(L, b, proc_of_col, nprocs, timeout=timeout)
    return distributed_backward_solve(L, u, proc_of_col, nprocs, timeout=timeout)
