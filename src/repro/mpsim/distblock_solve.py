"""Distributed triangular solves under element (block) ownership.

Completes the distributed execution of a block schedule: after
:func:`repro.mpsim.distributed_block_cholesky`, the factor's values are
spread element-wise across processors.  The solves run owner-computes at
the same granularity:

* **forward** (L x = b): when x_j is finalized by the owner of the
  diagonal (j, j), it is sent to every processor owning an off-diagonal
  element of column j; each such processor computes its contributions
  L[i,j]·x_j and ships one aggregated batch per accumulator owner.
* **backward** (Lᵀ x = b): symmetric, with solution values flowing from
  high to low columns and per-column partial dot products aggregated at
  the diagonal owners.

Both match the sequential solves to machine precision for any ownership
map (asserted in the tests).
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import LowerCSC
from .comm import ANY_SOURCE, Comm
from .launcher import run_parallel

__all__ = ["distributed_block_forward_solve", "distributed_block_backward_solve"]

_TAG_FWD = 6
_TAG_BWD = 7


def _column_owner_sets(pattern, owner):
    """For each column j: processors owning its off-diagonal elements."""
    n = pattern.n
    out: list[set[int]] = [set() for _ in range(n)]
    cols = pattern.element_cols()
    for e in range(pattern.nnz):
        j = int(cols[e])
        if int(pattern.rowidx[e]) != j:
            out[j].add(int(owner[e]))
    return out


def distributed_block_forward_solve(
    L: LowerCSC,
    b: np.ndarray,
    owner_of_element: np.ndarray,
    nprocs: int,
    timeout: float | None = 120.0,
) -> np.ndarray:
    """Solve L x = b with element-granular owner-computes."""
    pattern = L.pattern
    n = pattern.n
    owner = np.asarray(owner_of_element, dtype=np.int64)
    if len(owner) != pattern.nnz:
        raise ValueError("owner_of_element must cover every factor element")
    diag_eids = pattern.indptr[:-1]
    diag_owner = owner[diag_eids]
    cols = pattern.element_cols()
    col_owners = _column_owner_sets(pattern, owner)

    # pending[i]: number of off-diagonal row-i elements (each delivers one
    # contribution into acc[i]).
    pending_global = np.zeros(n, dtype=np.int64)
    offdiag = pattern.rowidx != cols
    np.add.at(pending_global, pattern.rowidx[offdiag], 1)

    def rank_fn(comm: Comm):
        me = comm.rank
        my_diag_cols = [j for j in range(n) if diag_owner[j] == me]
        acc = {j: float(b[j]) for j in my_diag_cols}
        pending = {j: int(pending_global[j]) for j in my_diag_cols}
        x: dict[int, float] = {}

        # Off-diagonal elements I own, grouped by column.
        my_col_elems: dict[int, list[int]] = {}
        for e in np.nonzero(owner == me)[0].tolist():
            j = int(cols[e])
            if int(pattern.rowidx[e]) != j:
                my_col_elems.setdefault(j, []).append(e)

        # Message expectations.
        expected_x = sum(
            1 for j in my_col_elems if diag_owner[j] != me
        )
        expected_contrib = 0
        contrib_sources: dict[tuple[int, int], int] = {}
        for e in np.nonzero(offdiag)[0].tolist():
            i = int(pattern.rowidx[e])
            if int(diag_owner[i]) == me and int(owner[e]) != me:
                key = (int(cols[e]), int(owner[e]))
                contrib_sources[key] = contrib_sources.get(key, 0) + 1
        expected_contrib = len(contrib_sources)

        def emit_contributions(j: int, xj: float):
            """Apply/ship my contributions L[i,j]*xj for column j."""
            newly = []
            by_dest: dict[int, list[tuple[int, float]]] = {}
            for e in my_col_elems.get(j, ()):
                i = int(pattern.rowidx[e])
                delta = float(L.values[e]) * xj
                dest = int(diag_owner[i])
                if dest == me:
                    acc[i] -= delta
                    pending[i] -= 1
                    if pending[i] == 0:
                        newly.append(i)
                else:
                    by_dest.setdefault(dest, []).append((i, delta))
            for dest, items in by_dest.items():
                comm.send(("contrib", j, items), dest, _TAG_FWD)
            return newly

        def finalize(j: int):
            d = float(L.values[diag_eids[j]])
            xj = acc[j] / d
            x[j] = xj
            newly = []
            for p in sorted(col_owners[j] - {me}):
                comm.send(("x", j, xj), p, _TAG_FWD)
            if me in col_owners[j]:
                newly.extend(emit_contributions(j, xj))
            return newly

        ready = sorted(j for j in my_diag_cols if pending[j] == 0)
        got_x = 0
        got_contrib = 0
        while (
            len(x) < len(my_diag_cols)
            or got_x < expected_x
            or got_contrib < expected_contrib
        ):
            while ready:
                ready.extend(finalize(ready.pop(0)))
                ready.sort()
            if (
                len(x) == len(my_diag_cols)
                and got_x == expected_x
                and got_contrib == expected_contrib
            ):
                break  # the ready-drain completed the remaining work
            payload = comm.recv(ANY_SOURCE, _TAG_FWD)
            if payload[0] == "x":
                got_x += 1
                _, j, xj = payload
                ready.extend(emit_contributions(j, xj))
            else:
                got_contrib += 1
                _, _j, items = payload
                for i, delta in items:
                    acc[i] -= delta
                    pending[i] -= 1
                    if pending[i] == 0:
                        ready.append(i)
            ready.sort()
        gathered = comm.gather(x, root=0)
        if comm.rank == 0:
            merged: dict[int, float] = {}
            for part in gathered:
                merged.update(part)
            return merged
        return None

    results = run_parallel(rank_fn, nprocs, timeout=timeout)
    out = np.zeros(n, dtype=np.float64)
    for j, v in results[0].items():
        out[j] = v
    return out


def distributed_block_backward_solve(
    L: LowerCSC,
    b: np.ndarray,
    owner_of_element: np.ndarray,
    nprocs: int,
    timeout: float | None = 120.0,
) -> np.ndarray:
    """Solve Lᵀ x = b with element-granular owner-computes."""
    pattern = L.pattern
    n = pattern.n
    owner = np.asarray(owner_of_element, dtype=np.int64)
    if len(owner) != pattern.nnz:
        raise ValueError("owner_of_element must cover every factor element")
    diag_eids = pattern.indptr[:-1]
    diag_owner = owner[diag_eids]
    cols = pattern.element_cols()
    offdiag_ids = np.nonzero(pattern.rowidx != cols)[0]

    # Row-wise owner sets: who owns elements with row i (j < i)?
    row_owners: list[set[int]] = [set() for _ in range(n)]
    for e in offdiag_ids.tolist():
        row_owners[int(pattern.rowidx[e])].add(int(owner[e]))

    # Per column: number of contributing processors into its dot product.
    dot_sources: list[set[int]] = [set() for _ in range(n)]
    for e in offdiag_ids.tolist():
        dot_sources[int(cols[e])].add(int(owner[e]))

    def rank_fn(comm: Comm):
        me = comm.rank
        my_diag_cols = [j for j in range(n) if diag_owner[j] == me]
        x: dict[int, float] = {}
        acc = {j: float(b[j]) for j in my_diag_cols}
        pending_procs = {
            j: len(dot_sources[j]) for j in my_diag_cols
        }

        # My off-diagonal elements grouped by row (the x value they need)
        # and by column (the dot they contribute to).
        my_by_row: dict[int, list[int]] = {}
        my_cols_count: dict[int, int] = {}
        for e in np.nonzero(owner == me)[0].tolist():
            i, j = int(pattern.rowidx[e]), int(cols[e])
            if i == j:
                continue
            my_by_row.setdefault(i, []).append(e)
            my_cols_count[j] = my_cols_count.get(j, 0) + 1

        partial: dict[int, float] = {}  # column -> my partial dot
        remaining = dict(my_cols_count)  # elements not yet folded per column

        expected_x = sum(1 for i in my_by_row if diag_owner[i] != me)
        expected_dots = sum(
            1 for j in my_diag_cols for p in dot_sources[j] if p != me
        )

        def fold_x(i: int, xi: float):
            """Fold x_i into my partial dots; ship completed columns."""
            newly = []
            for e in my_by_row.get(i, ()):
                j = int(cols[e])
                partial[j] = partial.get(j, 0.0) + float(L.values[e]) * xi
                remaining[j] -= 1
                if remaining[j] == 0:
                    dest = int(diag_owner[j])
                    if dest == me:
                        acc[j] -= partial[j]
                        pending_procs[j] -= 1
                        if pending_procs[j] == 0:
                            newly.append(j)
                    else:
                        comm.send(("dot", j, partial[j]), dest, _TAG_BWD)
            return newly

        def finalize(j: int):
            xj = acc[j] / float(L.values[diag_eids[j]])
            x[j] = xj
            newly = []
            for p in sorted(row_owners[j] - {me}):
                comm.send(("x", j, xj), p, _TAG_BWD)
            if me in row_owners[j]:
                newly.extend(fold_x(j, xj))
            return newly

        ready = sorted(
            (j for j in my_diag_cols if pending_procs[j] == 0), reverse=True
        )
        got_x = 0
        got_dots = 0
        while (
            len(x) < len(my_diag_cols)
            or got_x < expected_x
            or got_dots < expected_dots
        ):
            while ready:
                ready.extend(finalize(ready.pop(0)))
                ready.sort(reverse=True)
            if (
                len(x) == len(my_diag_cols)
                and got_x == expected_x
                and got_dots == expected_dots
            ):
                break  # the ready-drain completed the remaining work
            payload = comm.recv(ANY_SOURCE, _TAG_BWD)
            if payload[0] == "x":
                got_x += 1
                _, i, xi = payload
                ready.extend(fold_x(i, xi))
            else:
                got_dots += 1
                _, j, dot = payload
                acc[j] -= dot
                pending_procs[j] -= 1
                if pending_procs[j] == 0:
                    ready.append(j)
            ready.sort(reverse=True)
        gathered = comm.gather(x, root=0)
        if comm.rank == 0:
            merged: dict[int, float] = {}
            for part in gathered:
                merged.update(part)
            return merged
        return None

    results = run_parallel(rank_fn, nprocs, timeout=timeout)
    out = np.zeros(n, dtype=np.float64)
    for j, v in results[0].items():
        out[j] = v
    return out
