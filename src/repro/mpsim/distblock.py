"""Distributed execution of the block schedule itself.

This is the strongest validation of the paper's contribution: the unit
blocks produced by the partitioner, placed by the scheduler, are
executed as a real owner-computes dataflow program on the simulated
message-passing runtime.  Each processor owns the elements of its units;
when a unit's elements all reach their final values, the unit is shipped
(one message per consumer processor, exactly the unit-level dependency
edges of §3.3), and receivers apply every pair/scale update that the
arriving values complete.

The resulting factor must equal the sequential one to machine precision
for *any* valid partition/assignment — this is asserted in the tests.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.assignment import Assignment
from ..core.dependencies import DependencyInfo
from ..core.partitioner import Partition
from ..sparse.csc import LowerCSC, SymmetricCSC
from ..symbolic.updates import UpdateSet
from .comm import ANY_SOURCE, Comm
from .launcher import run_parallel

__all__ = ["distributed_block_cholesky"]

_TAG_UNIT = 5


def _seed_accumulators(a: SymmetricCSC, pattern, owned_elements: np.ndarray) -> np.ndarray:
    """acc over the full element space, seeded with A's values for the
    owned elements (zero elsewhere; only owned entries are ever used)."""
    acc = np.zeros(pattern.nnz, dtype=np.float64)
    apat = a.pattern
    owned = set(owned_elements.tolist())
    for j in range(a.n):
        alo, ahi = apat.indptr[j], apat.indptr[j + 1]
        struct = pattern.col(j)
        base = pattern.indptr[j]
        idx = base + np.searchsorted(struct, apat.rowidx[alo:ahi])
        for e, v in zip(idx.tolist(), a.values[alo:ahi].tolist()):
            if e in owned:
                acc[e] = v
    return acc


def _block_rank(
    comm: Comm,
    a: SymmetricCSC,
    partition: Partition,
    assignment: Assignment,
    updates: UpdateSet,
    deps: DependencyInfo,
) -> dict[int, float]:
    me = comm.rank
    pattern = partition.pattern
    uoe = partition.unit_of_element
    proc_of_unit = assignment.proc_of_unit
    proc_of_element = assignment.owner_of_element

    my_units = np.nonzero(proc_of_unit == me)[0]
    my_elements = np.nonzero(proc_of_element == me)[0]
    acc = _seed_accumulators(a, pattern, my_elements)

    # --- my updates: those targeting my elements ----------------------
    tgt_mine = proc_of_element[updates.target] == me
    u_tgt = updates.target[tgt_mine]
    u_si = updates.source_i[tgt_mine]
    u_sj = updates.source_j[tgt_mine]
    n_up = len(u_tgt)
    missing = np.full(n_up, 2, dtype=np.int64)
    rem = np.zeros(pattern.nnz, dtype=np.int64)
    np.add.at(rem, u_tgt, 1)

    by_source: dict[int, list[int]] = {}
    for idx in range(n_up):
        by_source.setdefault(int(u_si[idx]), []).append(idx)
        by_source.setdefault(int(u_sj[idx]), []).append(idx)
    # Identical sources (i == j) appear twice in by_source[eid]; the
    # duplicate decrements are exactly the two required arrivals.

    # Scale sources: each owned element waits for its column's diagonal.
    scale_src = updates.scale_source
    waiting_on_diag: dict[int, list[int]] = {}
    for e in my_elements.tolist():
        d = int(scale_src[e])
        if d != e:
            waiting_on_diag.setdefault(d, []).append(e)

    vals = np.full(pattern.nnz, np.nan, dtype=np.float64)
    available = np.zeros(pattern.nnz, dtype=bool)
    finalized = np.zeros(pattern.nnz, dtype=bool)

    unit_remaining = {int(u): len(partition.units[int(u)].elements) for u in my_units}
    # Consumers of my units: processors owning a successor unit.
    consumers: dict[int, set[int]] = {
        int(u): {
            int(proc_of_unit[t]) for t in deps.successors[int(u)].tolist()
        } - {me}
        for u in my_units
    }
    expected = sum(
        1
        for s in range(partition.num_units)
        if proc_of_unit[s] != me
        and me in {int(proc_of_unit[t]) for t in deps.successors[s].tolist()}
    )

    worklist: list[int] = []

    def try_finalize(e: int) -> None:
        """Finalize element e if its updates are done and (for
        off-diagonals) its column diagonal value is available."""
        if finalized[e] or rem[e] != 0:
            return
        d = int(scale_src[e])
        if d == e:
            pivot = acc[e]
            if pivot <= 0.0:
                raise ValueError(f"non-positive pivot {pivot:g}")
            value = math.sqrt(pivot)
        else:
            if not available[d]:
                return
            value = acc[e] / vals[d]
        finalized[e] = True
        vals[e] = value
        worklist.append(e)

    def on_available(e: int) -> None:
        """Element value became available (local finalization or message):
        apply the updates and scales it unblocks."""
        available[e] = True
        for idx in by_source.get(e, ()):  # pair updates
            missing[idx] -= 1
            if missing[idx] == 0:
                t = int(u_tgt[idx])
                acc[t] -= vals[int(u_si[idx])] * vals[int(u_sj[idx])]
                rem[t] -= 1
                if rem[t] == 0:
                    try_finalize(t)
        for t in waiting_on_diag.get(e, ()):  # scale updates
            try_finalize(t)

    def drain_worklist() -> None:
        while worklist:
            e = worklist.pop()
            u = int(uoe[e])
            unit_remaining[u] -= 1
            if unit_remaining[u] == 0:
                elems = partition.units[u].elements
                for dest in sorted(consumers[u]):
                    comm.send((u, elems, vals[elems]), dest, _TAG_UNIT)
            on_available(e)

    # Kick off: elements with no pair updates whose diagonal is local (or
    # are diagonals themselves).
    for e in my_elements.tolist():
        try_finalize(e)
    drain_worklist()

    received = 0
    n_mine = len(my_elements)
    while int(finalized[my_elements].sum()) < n_mine or received < expected:
        _u, elems, values = comm.recv(ANY_SOURCE, _TAG_UNIT)
        received += 1
        vals[elems] = values
        for e in elems.tolist():
            on_available(int(e))
        drain_worklist()

    return {int(e): float(vals[e]) for e in my_elements.tolist()}


def distributed_block_cholesky(
    a: SymmetricCSC,
    partition: Partition,
    assignment: Assignment,
    updates: UpdateSet,
    deps: DependencyInfo,
    timeout: float | None = 120.0,
) -> tuple[LowerCSC, list]:
    """Execute a block schedule numerically on the message-passing
    runtime.  ``a`` must already be permuted to match the partitioned
    pattern.  Returns (factor gathered on rank 0, per-rank CommStats).
    """
    if assignment.partition is not partition:
        raise ValueError("assignment does not belong to this partition")
    if not deps.include_scale:
        raise ValueError(
            "dependencies must include scale edges (include_scale=True): "
            "diagonal values travel along them"
        )
    pattern = partition.pattern
    if a.n != pattern.n:
        raise ValueError("matrix order does not match the factor pattern")
    nprocs = assignment.nprocs

    def rank_fn(comm: Comm):
        mine = _block_rank(comm, a, partition, assignment, updates, deps)
        # Snapshot the counters before the result gather so the reported
        # stats cover exactly the factorization's dataflow messages.
        from .comm import CommStats

        snap = CommStats(
            messages_sent=comm.stats.messages_sent,
            messages_received=comm.stats.messages_received,
            bytes_sent=comm.stats.bytes_sent,
        )
        gathered = comm.gather(mine, root=0)
        if comm.rank == 0:
            merged: dict[int, float] = {}
            for part in gathered:
                merged.update(part)
            return merged, snap
        return None, snap

    results = run_parallel(rank_fn, nprocs, timeout=timeout)
    merged = results[0][0]
    values = np.zeros(pattern.nnz, dtype=np.float64)
    for e, v in merged.items():
        values[e] = v
    return LowerCSC(pattern, values), [r[1] for r in results]
