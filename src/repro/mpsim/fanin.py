"""Distributed fan-in Cholesky factorization.

The classic counterpart of the fan-out scheme in
:mod:`repro.mpsim.distchol`: instead of broadcasting every completed
column to all of its consumers, each processor *aggregates* all of the
updates it can compute locally for a target column j into one vector,
and sends a single aggregate per (processor, column) pair to the
column's owner.  With data reuse on the sending side this typically
sends fewer, larger messages than fan-out — the same
locality-versus-volume trade the paper studies at the mapping level.

The update for target column j from source column k (both restricted to
rows >= j) is  u_j += L[j,k] * L[j:,k];  the owner of k computes it as
soon as k is complete, accumulating into a local bucket for j.  A bucket
is shipped once every local contribution to it has been folded in.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import LowerCSC, SymmetricCSC
from ..sparse.pattern import LowerPattern
from .comm import ANY_SOURCE, Comm
from .launcher import run_parallel

__all__ = ["distributed_cholesky_fanin"]

_TAG_AGG = 4


def _row_structure(pattern: LowerPattern) -> list[list[int]]:
    """rows[j] = columns k < j with L[j, k] != 0."""
    out: list[list[int]] = [[] for _ in range(pattern.n)]
    cols = pattern.element_cols()
    for e in range(pattern.nnz):
        i = int(pattern.rowidx[e])
        j = int(cols[e])
        if i != j:
            out[i].append(j)
    return out


def _fanin_rank(
    comm: Comm,
    a: SymmetricCSC,
    pattern: LowerPattern,
    proc_of_col: np.ndarray,
) -> dict[int, np.ndarray]:
    me = comm.rank
    n = pattern.n
    row_cols = _row_structure(pattern)  # k-columns updating each row/column j
    mine = [j for j in range(n) if proc_of_col[j] == me]
    mine_set = set(mine)

    # For each target column j, the local source columns k (mine) and the
    # contributing processors (for the owner's bookkeeping).
    local_sources: dict[int, list[int]] = {}
    contributors: dict[int, set[int]] = {}
    for j in range(n):
        procs = {int(proc_of_col[k]) for k in row_cols[j]}
        contributors[j] = procs
        local_sources[j] = [k for k in row_cols[j] if proc_of_col[k] == me]

    apat = a.pattern

    def seed_column(j: int) -> np.ndarray:
        struct = pattern.col(j)
        vals = np.zeros(len(struct), dtype=np.float64)
        alo, ahi = apat.indptr[j], apat.indptr[j + 1]
        vals[np.searchsorted(struct, apat.rowidx[alo:ahi])] = a.values[alo:ahi]
        return vals

    colvals = {j: seed_column(j) for j in mine}
    done: dict[int, np.ndarray] = {}
    # Aggregation buckets this rank owes to remote target columns.
    bucket: dict[int, np.ndarray] = {}
    bucket_remaining: dict[int, int] = {}

    # Owner-side bookkeeping: how many aggregate messages each of my
    # columns expects (one per remote contributing processor), plus my
    # own local contributions folded in directly.
    expected_aggs = {j: len(contributors[j] - {me}) for j in mine}
    local_remaining = {j: len(local_sources[j]) for j in mine}

    def apply_aggregate(j: int, rows: np.ndarray, vals: np.ndarray) -> None:
        struct = pattern.col(j)
        idx = np.searchsorted(struct, rows)
        colvals[j][idx] -= vals

    def fold_source_into_targets(k: int, k_vals: np.ndarray) -> list[int]:
        """Column k is complete: compute its update for every target j it
        modifies, folding into local columns or outgoing buckets."""
        newly_ready = []
        struct_k = pattern.col(k)
        for pos in range(1, len(struct_k)):
            j = int(struct_k[pos])
            ljk = k_vals[pos]
            rows = struct_k[pos:]
            contribution = ljk * k_vals[pos:]
            if j in mine_set:
                struct_j = pattern.col(j)
                colvals[j][np.searchsorted(struct_j, rows)] -= contribution
                local_remaining[j] -= 1
                if _ready(j):
                    newly_ready.append(j)
            else:
                if j not in bucket:
                    bucket[j] = np.zeros(len(pattern.col(j)), dtype=np.float64)
                    bucket_remaining[j] = len(local_sources[j])
                struct_j = pattern.col(j)
                bucket[j][np.searchsorted(struct_j, rows)] += contribution
                bucket_remaining[j] -= 1
                if bucket_remaining[j] == 0:
                    owner = int(proc_of_col[j])
                    nz = np.nonzero(bucket[j])[0]
                    comm.send(
                        (j, pattern.col(j)[nz], bucket[j][nz]), owner, _TAG_AGG
                    )
                    del bucket[j], bucket_remaining[j]
        return newly_ready

    def _ready(j: int) -> bool:
        return (
            j not in done
            and local_remaining[j] == 0
            and expected_aggs[j] == 0
        )

    def cdiv(j: int) -> np.ndarray:
        vals = colvals[j]
        pivot = vals[0]
        if pivot <= 0.0:
            raise ValueError(f"non-positive pivot {pivot:g} in column {j}")
        d = np.sqrt(pivot)
        vals[0] = d
        vals[1:] /= d
        done[j] = vals
        return vals

    total_expected = sum(expected_aggs.values())
    received = 0
    ready = sorted(j for j in mine if _ready(j))
    while len(done) < len(mine) or received < total_expected:
        while ready:
            j = ready.pop(0)
            vals = cdiv(j)
            ready.extend(fold_source_into_targets(j, vals))
            ready.sort()
        if received < total_expected:
            j, rows, vals = comm.recv(ANY_SOURCE, _TAG_AGG)
            received += 1
            apply_aggregate(j, rows, vals)
            expected_aggs[j] -= 1
            if _ready(j):
                ready.append(j)
                ready.sort()
    return done


def distributed_cholesky_fanin(
    a: SymmetricCSC,
    pattern: LowerPattern,
    proc_of_col: np.ndarray,
    nprocs: int,
    timeout: float | None = 60.0,
) -> tuple[LowerCSC, list]:
    """Fan-in factorization of an already-permuted SPD matrix.

    Same contract as :func:`repro.mpsim.distributed_cholesky`: returns
    the assembled factor (gathered on rank 0) and per-rank CommStats.
    """
    proc_of_col = np.asarray(proc_of_col, dtype=np.int64)
    if len(proc_of_col) != a.n:
        raise ValueError("proc_of_col must map every column")
    if len(proc_of_col) and (proc_of_col.min() < 0 or proc_of_col.max() >= nprocs):
        raise ValueError("column owner out of range")

    def rank_fn(comm: Comm):
        cols = _fanin_rank(comm, a, pattern, proc_of_col)
        gathered = comm.gather(cols, root=0)
        if comm.rank == 0:
            merged: dict[int, np.ndarray] = {}
            for part in gathered:
                merged.update(part)
            return merged, comm.stats
        return None, comm.stats

    results = run_parallel(rank_fn, nprocs, timeout=timeout)
    merged = results[0][0]
    values = np.zeros(pattern.nnz, dtype=np.float64)
    for j, vals in merged.items():
        values[pattern.indptr[j] : pattern.indptr[j + 1]] = vals
    return LowerCSC(pattern, values), [r[1] for r in results]
