"""Programmatic checks of the paper's headline claims (DESIGN.md C1-C4,
plus the simulated-time corollary C5).

Each claim is evaluated on freshly measured data and returns a
:class:`ClaimResult`; the CLI target ``claims`` prints the scoreboard
and the integration tests assert that every claim holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import block_mapping, wrap_mapping
from .experiments import prepared_matrix
from .tables import render_table

__all__ = ["ClaimResult", "check_claims", "render_claims"]


@dataclass(frozen=True)
class ClaimResult:
    claim: str
    description: str
    holds: bool
    evidence: str


def check_claims(matrix: str = "LAP30") -> list[ClaimResult]:
    """Evaluate C1-C5 on one matrix (default: the exactly-regenerated LAP30)."""
    prep = prepared_matrix(matrix)
    results: list[ClaimResult] = []

    # C1: traffic grows with P; coarse grain cuts it sharply.
    t = {
        (g, p): block_mapping(prep, p, grain=g).traffic.total
        for g in (4, 25)
        for p in (4, 16, 32)
    }
    grows = t[(4, 4)] < t[(4, 16)] < t[(4, 32)]
    cut = t[(25, 16)] < 0.7 * t[(4, 16)] and t[(25, 32)] < 0.7 * t[(4, 32)]
    results.append(
        ClaimResult(
            "C1",
            "block traffic grows with P; g=25 cuts traffic substantially",
            grows and cut,
            f"g=4: {t[(4, 4)]}→{t[(4, 16)]}→{t[(4, 32)]}; "
            f"g=25 vs g=4 at P=32: {t[(25, 32)]} vs {t[(4, 32)]}",
        )
    )

    # C2: λ grows with grain and with P for the block scheme.
    lam = {
        (g, p): block_mapping(prep, p, grain=g).balance.imbalance
        for g in (4, 25)
        for p in (4, 32)
    }
    c2 = lam[(25, 32)] > lam[(4, 32)] and lam[(25, 32)] > lam[(25, 4)]
    results.append(
        ClaimResult(
            "C2",
            "block imbalance grows with grain size and processor count",
            c2,
            f"λ(g=4,P=32)={lam[(4, 32)]:.2f}, λ(g=25,P=4)={lam[(25, 4)]:.2f}, "
            f"λ(g=25,P=32)={lam[(25, 32)]:.2f}",
        )
    )

    # C3: wrap balances better but communicates more; block saves >= 35%
    # of traffic at g=25, P=32.
    blk = block_mapping(prep, 32, grain=25)
    wrp = wrap_mapping(prep, 32)
    saving = 1 - blk.traffic.total / wrp.traffic.total
    c3 = (
        wrp.balance.imbalance < blk.balance.imbalance
        and blk.traffic.total < wrp.traffic.total
        and saving >= 0.35
    )
    results.append(
        ClaimResult(
            "C3",
            "the communication / load-balance trade-off (block vs wrap)",
            c3,
            f"traffic {blk.traffic.total} vs {wrp.traffic.total} "
            f"({100 * saving:.0f}% saving); λ {blk.balance.imbalance:.2f} "
            f"vs {wrp.balance.imbalance:.2f}",
        )
    )

    # C4: the cluster-width parameter genuinely moves the partitioning.
    widths = {
        w: block_mapping(prep, 16, grain=4, min_width=w) for w in (2, 4, 8)
    }
    totals = {w: r.traffic.total for w, r in widths.items()}
    n_multi = {
        w: sum(1 for c in r.partition.clusters if not c.is_column)
        for w, r in widths.items()
    }
    c4 = len(set(totals.values())) > 1 and n_multi[8] <= n_multi[2]
    results.append(
        ClaimResult(
            "C4",
            "minimum cluster width shifts the traffic/balance point",
            c4,
            f"traffic by width: {totals}; multi-col clusters: {n_multi}",
        )
    )

    # C5 (simulated-time corollary of C3): on the simulated machine the
    # wrap schedule spreads its traffic over more processor links and
    # spends a larger share of its critical path waiting on messages
    # than the coarse-grain block schedule.
    from ..machine.simulate import simulate_assignment

    _, blk_run = simulate_assignment(blk.assignment, prep.updates,
                                     deps=blk.dependencies, name=matrix)
    _, wrp_run = simulate_assignment(wrp.assignment, prep.updates, name=matrix)
    blk_links = len(blk_run.link_volumes())
    wrp_links = len(wrp_run.link_volumes())
    blk_cp = blk_run.critical_path()
    wrp_cp = wrp_run.critical_path()
    blk_msg = sum(1 for e in blk_cp.edges if e == "message")
    wrp_msg = sum(1 for e in wrp_cp.edges if e == "message")
    blk_frac = blk_msg / max(len(blk_cp.edges), 1)
    wrp_frac = wrp_msg / max(len(wrp_cp.edges), 1)
    c5 = wrp_links > blk_links and wrp_frac > blk_frac
    results.append(
        ClaimResult(
            "C5",
            "simulated wrap execution is communication-bound vs block",
            c5,
            f"used links {wrp_links} vs {blk_links}; message edges on the "
            f"critical path {100 * wrp_frac:.0f}% vs {100 * blk_frac:.0f}%",
        )
    )
    return results


def render_claims(matrix: str = "LAP30") -> str:
    rows = [
        [r.claim, r.description, "HOLDS" if r.holds else "FAILS", r.evidence]
        for r in check_claims(matrix)
    ]
    return render_table(
        ["claim", "description", "verdict", "evidence"],
        rows,
        f"Headline claims of the paper, re-measured on {matrix}",
    )
