"""Experiment harness: regenerate the paper's tables and figures."""

from . import paper_data
from .experiments import (
    prepared_matrix,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from .claims import ClaimResult, check_claims, render_claims
from .compare import comparison_rows, render_comparison
from .explain import ExplainResult, explain_manifest, explain_run, render_explain
from .figures import figure1_ascii, figure2_ascii, figure3_ascii, figure4_report
from .gantt import render_gantt, render_gantt_reference
from .report import generate_report
from .stats import partition_statistics, render_partition_stats
from .sweep import SweepRecord, records_to_csv, sweep
from .tables import format_number, render_table

__all__ = [
    "ClaimResult",
    "check_claims",
    "render_claims",
    "paper_data",
    "prepared_matrix",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "comparison_rows",
    "render_comparison",
    "ExplainResult",
    "explain_manifest",
    "explain_run",
    "render_explain",
    "figure1_ascii",
    "figure2_ascii",
    "figure3_ascii",
    "figure4_report",
    "generate_report",
    "render_gantt",
    "render_gantt_reference",
    "partition_statistics",
    "render_partition_stats",
    "SweepRecord",
    "records_to_csv",
    "sweep",
    "format_number",
    "render_table",
]
