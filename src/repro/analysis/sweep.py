"""Generic parameter sweeps with CSV export.

A thin harness over the pipeline for users exploring the design space
beyond the paper's sampled points: every combination of scheme, grain,
minimum cluster width and processor count becomes one record.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass

from ..core.pipeline import (
    PreparedMatrix,
    adaptive_block_mapping,
    block_mapping,
    wrap_mapping,
)

__all__ = ["SweepRecord", "sweep", "records_to_csv"]

_SCHEMES = ("block", "block-adaptive", "wrap")


@dataclass(frozen=True)
class SweepRecord:
    """One measured cell of a sweep."""

    matrix: str
    scheme: str
    nprocs: int
    grain: int | None
    min_width: int | None
    traffic_total: int
    traffic_mean: float
    work_max: int
    imbalance: float
    units: int | None

    @classmethod
    def fields(cls) -> list[str]:
        return [
            "matrix", "scheme", "nprocs", "grain", "min_width",
            "traffic_total", "traffic_mean", "work_max", "imbalance", "units",
        ]


def sweep(
    prepared: PreparedMatrix,
    schemes=("block", "wrap"),
    procs=(4, 16, 32),
    grains=(4, 25),
    min_widths=(4,),
) -> list[SweepRecord]:
    """Measure every combination; wrap ignores grain/min_width."""
    for s in schemes:
        if s not in _SCHEMES:
            raise ValueError(f"unknown scheme {s!r}; expected one of {_SCHEMES}")
    records: list[SweepRecord] = []
    for nprocs in procs:
        for scheme in schemes:
            if scheme == "wrap":
                r = wrap_mapping(prepared, nprocs)
                records.append(_record(prepared, r, nprocs, None, None))
                continue
            runner = block_mapping if scheme == "block" else adaptive_block_mapping
            for grain in grains:
                for width in min_widths:
                    r = runner(prepared, nprocs, grain=grain, min_width=width)
                    records.append(_record(prepared, r, nprocs, grain, width))
    return records


def _record(prepared, result, nprocs, grain, width) -> SweepRecord:
    return SweepRecord(
        matrix=prepared.name,
        scheme=result.scheme,
        nprocs=nprocs,
        grain=grain,
        min_width=width,
        traffic_total=result.traffic.total,
        traffic_mean=result.traffic.mean,
        work_max=result.balance.max,
        imbalance=result.balance.imbalance,
        units=result.partition.num_units if result.partition else None,
    )


def records_to_csv(records: list[SweepRecord], target=None) -> str:
    """Write records as CSV; returns the text (and writes to ``target``
    path/handle when given)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(SweepRecord.fields())
    for r in records:
        writer.writerow([getattr(r, f) for f in SweepRecord.fields()])
    text = buf.getvalue()
    if target is not None:
        if hasattr(target, "write"):
            target.write(text)
        else:
            with open(target, "w") as fh:
                fh.write(text)
    return text
