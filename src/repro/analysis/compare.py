"""Quantified paper-vs-measured comparison.

For every cell the paper publishes, compute the measured/published ratio
— the number EXPERIMENTS.md summarizes qualitatively.  Ratios near 1.0
mean the absolute numbers reproduce; the reproduction *target* (per the
calibration band) is the consistency of the ratios' direction, not 1.0
itself, since the inputs and the MMD tie-breaking differ.
"""

from __future__ import annotations

import statistics

from .experiments import table2_rows, table3_rows, table5_rows
from .tables import render_table

__all__ = ["comparison_rows", "render_comparison"]


def comparison_rows() -> list[dict]:
    """One row per published cell with the measured/published ratio."""
    out: list[dict] = []
    for r in table2_rows():
        paper = r["paper"]
        if paper is None:
            continue
        for idx, key in ((0, "total_g4"), (1, "total_g25")):
            out.append(
                {
                    "table": 2,
                    "matrix": r["matrix"],
                    "nprocs": r["nprocs"],
                    "quantity": f"traffic {key}",
                    "measured": r[key],
                    "paper": paper[idx],
                    "ratio": r[key] / paper[idx] if paper[idx] else None,
                }
            )
    for r in table3_rows():
        paper = r["paper"]
        if paper is None:
            continue
        for idx, key in ((1, "imbalance_g4"), (2, "imbalance_g25")):
            out.append(
                {
                    "table": 3,
                    "matrix": r["matrix"],
                    "nprocs": r["nprocs"],
                    "quantity": f"lambda {key}",
                    "measured": r[key],
                    "paper": paper[idx],
                    "ratio": r[key] / paper[idx] if paper[idx] else None,
                }
            )
    for r in table5_rows():
        paper = r["paper"]
        if paper is None or r["nprocs"] == 1:
            continue
        out.append(
            {
                "table": 5,
                "matrix": r["matrix"],
                "nprocs": r["nprocs"],
                "quantity": "wrap traffic",
                "measured": r["total"],
                "paper": paper[0],
                "ratio": r["total"] / paper[0] if paper[0] else None,
            }
        )
    return out


def render_comparison() -> str:
    rows = comparison_rows()
    table_rows = [
        [r["table"], r["matrix"], r["nprocs"], r["quantity"],
         r["measured"], r["paper"],
         round(r["ratio"], 2) if r["ratio"] is not None else None]
        for r in rows
    ]
    ratios = [r["ratio"] for r in rows if r["ratio"] is not None]
    summary = (
        f"\n{len(ratios)} published cells compared; median measured/paper "
        f"ratio {statistics.median(ratios):.2f} "
        f"(traffic-only median "
        f"{statistics.median([x['ratio'] for x in rows if 'traffic' in x['quantity'] and x['ratio']]):.2f})"
    )
    return (
        render_table(
            ["table", "matrix", "P", "quantity", "measured", "paper", "ratio"],
            table_rows,
            "Measured vs published, cell by cell",
        )
        + summary
    )
