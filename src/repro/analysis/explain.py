"""``explain``: attribute a mapping's communication and imbalance.

The paper reports aggregate figures — total traffic, λ, makespan.  This
module answers the *why* behind them for one (matrix, scheme, P) cell by
simulating the schedule (:func:`repro.machine.simulate.simulate_assignment`)
and reading the resulting :class:`repro.obs.simtime.SimRun`:

* which processor pairs carry the traffic (P×P communication matrix,
  top links),
* which chain of unit blocks bounds the makespan (critical path, with
  each link labelled message / local-dep / proc-busy),
* which stages and blocks cause the imbalance (λ waterfall, top-k
  culprit blocks on the peak processor),
* where each processor's time goes (busy / wait / idle).

``python -m repro explain <matrix> --scheme S -p N`` renders the ASCII
summary, records a ``kind:"explain"`` registry run, and writes the
self-contained HTML report with the comm-heatmap / critical-path /
imbalance panels (:mod:`repro.obs.report`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.simulate import MachineModel, ScheduleTimeline, simulate_assignment
from ..obs import simtime
from ..obs import trace as obs
from .tables import render_table

__all__ = [
    "ExplainResult",
    "explain_run",
    "explain_manifest",
    "render_explain",
    "EXPLAIN_SCHEMES",
]

#: Schemes the explain target accepts (mapping constructors below).
EXPLAIN_SCHEMES = ("block", "block-adaptive", "wrap")


@dataclass(frozen=True)
class ExplainResult:
    """One explained (matrix, scheme, P) cell."""

    matrix: str
    scheme: str
    nprocs: int
    timeline: ScheduleTimeline
    run: simtime.SimRun
    traffic_total: int
    traffic_max: int
    work_imbalance: float  # the paper's λ over assigned work


def _mapping(matrix: str, scheme: str, nprocs: int, grain: int):
    from ..core.pipeline import adaptive_block_mapping, block_mapping, wrap_mapping
    from .experiments import prepared_matrix

    prep = prepared_matrix(matrix)
    if scheme == "block":
        return prep, block_mapping(prep, nprocs, grain=grain)
    if scheme == "block-adaptive":
        return prep, adaptive_block_mapping(prep, nprocs, grain=grain)
    if scheme == "wrap":
        return prep, wrap_mapping(prep, nprocs)
    raise ValueError(
        f"unknown scheme {scheme!r}; expected one of {', '.join(EXPLAIN_SCHEMES)}"
    )


def explain_run(
    matrix: str,
    scheme: str = "block",
    nprocs: int = 16,
    grain: int = 4,
    model: MachineModel | None = None,
) -> ExplainResult:
    """Map ``matrix`` under ``scheme``, simulate it, and attribute the
    resulting communication and imbalance."""
    with obs.span("explain.run", matrix=matrix, scheme=scheme, nprocs=nprocs):
        prep, res = _mapping(matrix, scheme, nprocs, grain)
        timeline, run = simulate_assignment(
            res.assignment, prep.updates, model=model,
            deps=res.dependencies, name=matrix,
        )
        return ExplainResult(
            matrix=matrix,
            scheme=scheme,
            nprocs=nprocs,
            timeline=timeline,
            run=run,
            traffic_total=res.traffic.total,
            traffic_max=res.traffic.max,
            work_imbalance=float(res.balance.imbalance),
        )


def explain_manifest(result: ExplainResult) -> dict:
    """The JSON document stored in the registry run and rendered by the
    HTML report's explain panels."""
    doc = result.run.to_manifest()
    doc["matrix"] = result.matrix
    doc["traffic_total"] = int(result.traffic_total)
    doc["traffic_max"] = int(result.traffic_max)
    doc["work_imbalance"] = float(result.work_imbalance)
    doc["idle_fraction"] = float(result.timeline.idle_fraction)
    # The acceptance invariant, checked at build time so a report can
    # never silently ship with a broken ledger.
    assert doc["message_bytes"] == doc["traffic_total"], (
        "ledger bytes diverged from data_traffic"
    )
    return doc


def render_explain(result: ExplainResult, top: int = 8) -> str:
    """ASCII summary: headline figures, top links, critical path head,
    imbalance waterfall."""
    run = result.run
    parts: list[str] = []
    pt = run.proc_times()
    att = run.imbalance(top_k=top)
    cp = run.critical_path()
    parts.append(render_table(
        ["metric", "value"],
        [
            ["makespan (sim units)", f"{run.makespan:.0f}"],
            ["idle fraction", f"{result.timeline.idle_fraction:.3f}"],
            ["traffic total (= ledger bytes)", result.traffic_total],
            ["messages", len(run.messages)],
            ["work imbalance λ", f"{result.work_imbalance:.3f}"],
            ["peak processor", att.proc],
            ["critical path units", len(cp.units)],
            ["critical path wait share", f"{cp.wait / cp.length:.3f}"
             if cp.length else "-"],
        ],
        f"Explain: {result.matrix} {result.scheme} P={result.nprocs}",
    ))
    links = run.link_volumes(top=top)
    if links:
        parts.append(render_table(
            ["src", "dst", "elements"],
            [[s, d, v] for s, d, v in links],
            f"Heaviest links (of {len(run.link_volumes())})",
        ))
    edge_counts: dict[str, int] = {}
    for e in cp.edges:
        edge_counts[e] = edge_counts.get(e, 0) + 1
    head = cp.units[-min(top, len(cp.units)):].tolist()
    parts.append(render_table(
        ["uid", "proc", "stage", "kind", "start", "finish"],
        [[u, int(run.proc[u]), int(run.stage[u]), run.kind[u],
          f"{run.start[u]:.0f}", f"{run.finish[u]:.0f}"] for u in head],
        "Critical path (last {} of {}; links: {})".format(
            len(head), len(cp.units),
            ", ".join(f"{k}×{v}" for k, v in sorted(edge_counts.items())) or "-",
        ),
    ))
    rows = sorted(att.stage_rows, key=lambda r: -r["excess"])[:top]
    parts.append(render_table(
        ["stage", "excess on peak", "stage λ"],
        [[r["stage"], f"{r['excess']:.0f}", f"{r['lambda_s']:.3f}"]
         for r in rows],
        f"Imbalance waterfall (peak p{att.proc}, Σexcess = λ·W_ave)",
    ))
    if att.culprits:
        parts.append(render_table(
            ["uid", "stage", "kind", "work"],
            [[c["uid"], c["stage"], c["kind"], f"{c['work']:.0f}"]
             for c in att.culprits],
            "Heaviest blocks on the peak processor",
        ))
    busiest = int(np.argmax(pt.wait))
    parts.append(render_table(
        ["proc", "busy", "wait", "idle"],
        [[p, f"{pt.busy[p]:.0f}", f"{pt.wait[p]:.0f}", f"{pt.idle[p]:.0f}"]
         for p in sorted({att.proc, busiest, 0})],
        "Processor time (peak-work, peak-wait, p0; busy+wait+idle = makespan)",
    ))
    return "\n\n".join(parts)
