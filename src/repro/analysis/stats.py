"""Descriptive statistics of partitions and schedules."""

from __future__ import annotations

import numpy as np

from ..core.blocks import BlockKind
from ..core.partitioner import Partition
from .tables import render_table

__all__ = ["partition_statistics", "render_partition_stats"]


def partition_statistics(partition: Partition) -> dict:
    """Summary numbers describing a partition: cluster census, unit-kind
    census, unit-size distribution and padding."""
    clusters = partition.clusters
    multi = [c for c in clusters if not c.is_column]
    widths = [c.width for c in multi]
    sizes = np.asarray([u.nnz for u in partition.units], dtype=np.int64)
    kind_counts = {k.value: 0 for k in BlockKind}
    for u in partition.units:
        kind_counts[u.kind.value] += 1
    return {
        "n": partition.pattern.n,
        "nnz": partition.pattern.nnz,
        "clusters": len(clusters),
        "multi_column_clusters": len(multi),
        "max_cluster_width": max(widths) if widths else 1,
        "mean_cluster_width": float(np.mean(widths)) if widths else 1.0,
        "units": partition.num_units,
        "units_by_kind": kind_counts,
        "unit_nnz_min": int(sizes.min()) if len(sizes) else 0,
        "unit_nnz_median": float(np.median(sizes)) if len(sizes) else 0.0,
        "unit_nnz_max": int(sizes.max()) if len(sizes) else 0,
        "empty_units": int((sizes == 0).sum()),
        "triangle_padding": clusters.total_triangle_padding(),
        "total_padding": clusters.total_padding(),
        "grain_triangle": partition.grain_triangle,
        "grain_rectangle": partition.grain_rectangle,
        "min_width": clusters.min_width,
    }


def render_partition_stats(partition: Partition, title: str = "") -> str:
    s = partition_statistics(partition)
    rows = [
        ["order n / nnz(L)", f"{s['n']} / {s['nnz']}"],
        ["clusters (multi-column)", f"{s['clusters']} ({s['multi_column_clusters']})"],
        ["max / mean cluster width",
         f"{s['max_cluster_width']} / {s['mean_cluster_width']:.1f}"],
        ["unit blocks", s["units"]],
        ["  columns / triangles / rectangles",
         f"{s['units_by_kind']['column']} / {s['units_by_kind']['triangle']} / "
         f"{s['units_by_kind']['rectangle']}"],
        ["unit nnz min / median / max",
         f"{s['unit_nnz_min']} / {s['unit_nnz_median']:.0f} / {s['unit_nnz_max']}"],
        ["empty units", s["empty_units"]],
        ["padding zeros (triangle / total)",
         f"{s['triangle_padding']} / {s['total_padding']}"],
        ["grain (tri / rect), min width",
         f"{s['grain_triangle']} / {s['grain_rectangle']}, {s['min_width']}"],
    ]
    return render_table(
        ["statistic", "value"],
        rows,
        title or "Partition statistics",
    )
