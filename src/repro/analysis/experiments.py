"""Experiment harness regenerating every table of the paper's evaluation.

Each ``tableN_rows`` function returns a list of dicts carrying both the
measured values and the paper's published values for the same cell, so
the CLI, the benchmarks and EXPERIMENTS.md all render from one source.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.pipeline import PreparedMatrix, block_mapping, prepare, wrap_mapping
from ..sparse import harwell_boeing as hb
from ..sparse import registry
from . import paper_data
from .tables import render_table

__all__ = [
    "prepared_matrix",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
]

DEFAULT_PROCS = (4, 16, 32)
DEFAULT_GRAINS = (4, 25)


@lru_cache(maxsize=None)
def prepared_matrix(name: str, ordering: str = "mmd") -> PreparedMatrix:
    """Order + symbolically factor a named matrix, cached per process.

    Accepts any registry name — the five paper analogues and the
    big-tier generated instances alike.
    """
    return prepare(registry.load(name), ordering=ordering, name=name)


@lru_cache(maxsize=None)
def _block_result(name: str, nprocs: int, grain: int, min_width: int):
    return block_mapping(
        prepared_matrix(name), nprocs, grain=grain, min_width=min_width
    )


@lru_cache(maxsize=None)
def _wrap_result(name: str, nprocs: int):
    return wrap_mapping(prepared_matrix(name), nprocs)


# ----------------------------------------------------------------------
# Table 1: the test matrices
# ----------------------------------------------------------------------
def table1_rows(ordering: str = "mmd") -> list[dict]:
    rows = []
    for name, tm in hb.PAPER_MATRICES.items():
        prep = prepared_matrix(name, ordering)
        p_n, p_nnz, p_fnnz = paper_data.TABLE1[name]
        rows.append(
            {
                "matrix": name,
                "n": prep.graph.n,
                "nnz": prep.graph.nnz_lower,
                "factor_nnz": prep.factor_nnz,
                "paper_n": p_n,
                "paper_nnz": p_nnz,
                "paper_factor_nnz": p_fnnz,
                "exact": tm.exact,
            }
        )
    return rows


def render_table1() -> str:
    headers = ["matrix", "n", "nnz(A)", "nnz(L)", "paper n", "paper nnz(A)", "paper nnz(L)", "exact?"]
    rows = [
        [r["matrix"], r["n"], r["nnz"], r["factor_nnz"],
         r["paper_n"], r["paper_nnz"], r["paper_factor_nnz"], "yes" if r["exact"] else "analogue"]
        for r in table1_rows()
    ]
    return render_table(headers, rows, "Table 1: selected Harwell-Boeing test matrices")


# ----------------------------------------------------------------------
# Table 2: block mapping communication
# ----------------------------------------------------------------------
def table2_rows(
    procs=DEFAULT_PROCS, grains=DEFAULT_GRAINS, min_width: int = 4
) -> list[dict]:
    g_lo, g_hi = grains
    rows = []
    for name in hb.names():
        for p in procs:
            lo = _block_result(name, p, g_lo, min_width)
            hi = _block_result(name, p, g_hi, min_width)
            paper = paper_data.TABLE2.get(name, {}).get(p)
            rows.append(
                {
                    "matrix": name,
                    "nprocs": p,
                    f"total_g{g_lo}": lo.traffic.total,
                    f"total_g{g_hi}": hi.traffic.total,
                    f"mean_g{g_lo}": round(lo.traffic.mean),
                    f"mean_g{g_hi}": round(hi.traffic.mean),
                    "paper": paper,
                }
            )
    return rows


def render_table2() -> str:
    g_lo, g_hi = DEFAULT_GRAINS
    headers = ["matrix", "P",
               f"total g={g_lo}", f"total g={g_hi}", f"mean g={g_lo}", f"mean g={g_hi}",
               "paper total g=4", "paper total g=25"]
    rows = []
    for r in table2_rows():
        paper = r["paper"] or (None, None, None, None)
        rows.append([
            r["matrix"], r["nprocs"],
            r[f"total_g{g_lo}"], r[f"total_g{g_hi}"],
            r[f"mean_g{g_lo}"], r[f"mean_g{g_hi}"],
            paper[0], paper[1],
        ])
    return render_table(headers, rows, "Table 2: block mapping communication")


# ----------------------------------------------------------------------
# Table 3: block mapping work distribution
# ----------------------------------------------------------------------
def table3_rows(
    procs=DEFAULT_PROCS, grains=DEFAULT_GRAINS, min_width: int = 4
) -> list[dict]:
    g_lo, g_hi = grains
    rows = []
    for name in hb.names():
        for p in procs:
            lo = _block_result(name, p, g_lo, min_width)
            hi = _block_result(name, p, g_hi, min_width)
            paper = paper_data.TABLE3.get(name, {}).get(p)
            rows.append(
                {
                    "matrix": name,
                    "nprocs": p,
                    "work_mean": round(lo.balance.mean),
                    f"imbalance_g{g_lo}": lo.balance.imbalance,
                    f"imbalance_g{g_hi}": hi.balance.imbalance,
                    "paper": paper,
                }
            )
    return rows


def render_table3() -> str:
    g_lo, g_hi = DEFAULT_GRAINS
    headers = ["matrix", "P", "mean work",
               f"lambda g={g_lo}", f"lambda g={g_hi}",
               "paper lambda g=4", "paper lambda g=25"]
    rows = []
    for r in table3_rows():
        paper = r["paper"] or (None, None, None)
        rows.append([
            r["matrix"], r["nprocs"], r["work_mean"],
            r[f"imbalance_g{g_lo}"], r[f"imbalance_g{g_hi}"],
            paper[1], paper[2],
        ])
    return render_table(headers, rows, "Table 3: block mapping work distribution")


# ----------------------------------------------------------------------
# Table 4: LAP30 cluster-width sweep
# ----------------------------------------------------------------------
def table4_rows(
    widths=(2, 4, 8), procs=DEFAULT_PROCS, grain: int = 4, matrix: str = "LAP30"
) -> list[dict]:
    rows = []
    for w in widths:
        for p in procs:
            r = _block_result(matrix, p, grain, w)
            paper = paper_data.TABLE4.get(w, {}).get(p) if matrix == "LAP30" else None
            rows.append(
                {
                    "width": w,
                    "nprocs": p,
                    "total": r.traffic.total,
                    "mean": round(r.traffic.mean),
                    "work_mean": round(r.balance.mean),
                    "imbalance": r.balance.imbalance,
                    "paper": paper,
                }
            )
    return rows


def render_table4() -> str:
    headers = ["width", "P", "traffic total", "traffic mean", "work mean", "lambda",
               "paper total", "paper lambda"]
    rows = []
    for r in table4_rows():
        paper = r["paper"] or (None, None, None, None)
        rows.append([
            r["width"], r["nprocs"], r["total"], r["mean"],
            r["work_mean"], r["imbalance"], paper[0], paper[3],
        ])
    return render_table(headers, rows, "Table 4: variation with width for LAP30, g = 4")


# ----------------------------------------------------------------------
# Table 5: wrap mapping
# ----------------------------------------------------------------------
def table5_rows(procs=(1, 4, 16, 32)) -> list[dict]:
    rows = []
    for name in hb.names():
        for p in procs:
            r = _wrap_result(name, p)
            paper = paper_data.TABLE5.get(name, {}).get(p)
            rows.append(
                {
                    "matrix": name,
                    "nprocs": p,
                    "total": r.traffic.total,
                    "mean": round(r.traffic.mean),
                    "work_mean": round(r.balance.mean),
                    "imbalance": r.balance.imbalance,
                    "paper": paper,
                }
            )
    return rows


def render_table5() -> str:
    headers = ["matrix", "P", "traffic total", "traffic mean", "work mean", "lambda",
               "paper total", "paper lambda"]
    rows = []
    for r in table5_rows():
        paper = r["paper"] or (None, None, None, None)
        rows.append([
            r["matrix"], r["nprocs"], r["total"], r["mean"],
            r["work_mean"], r["imbalance"], paper[0], paper[3],
        ])
    return render_table(headers, rows, "Table 5: wrap mapping")
