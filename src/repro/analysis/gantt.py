"""ASCII Gantt chart of a simulated schedule.

Renders the :class:`~repro.machine.simulate.ScheduleTimeline` of a block
schedule as one row per processor, with '#' for busy time and '.' for
idle time — a quick visual of where the dependency delays bite.

The raster comes from :func:`repro.obs.simtime.busy_grid`, the single
quantization shared with the HTML report panels, so the two can never
disagree; :func:`render_gantt_reference` keeps the original inline loop
as the reference implementation, pinned identical by tests on the
bundled matrices.
"""

from __future__ import annotations

import numpy as np

from ..core.assignment import Assignment
from ..machine.simulate import ScheduleTimeline
from ..obs.simtime import busy_grid

__all__ = ["render_gantt", "render_gantt_reference"]


def _render(
    assignment: Assignment,
    timeline: ScheduleTimeline,
    width: int,
    busy: np.ndarray,
) -> str:
    nprocs = assignment.nprocs
    makespan = timeline.makespan
    lines = [
        f"Schedule Gantt ({assignment.scheme}, P={nprocs}); makespan "
        f"{makespan:.0f}, idle {100 * timeline.idle_fraction:.0f}%",
        " " * 5 + "0" + " " * (width - len(str(int(makespan))) - 1)
        + str(int(makespan)),
    ]
    for p in range(nprocs):
        row = "".join("#" if busy[p, c] else "." for c in range(width))
        util = timeline.proc_busy[p] / makespan
        lines.append(f"p{p:<3d} {row} {100 * util:3.0f}%")
    return "\n".join(lines)


def render_gantt(
    assignment: Assignment,
    timeline: ScheduleTimeline,
    width: int = 72,
) -> str:
    """Render the timeline as an ASCII Gantt chart of ``width`` columns."""
    if assignment.proc_of_unit is None:
        raise ValueError("gantt chart requires a block assignment")
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    if timeline.makespan <= 0:
        return "(empty schedule)"
    busy = busy_grid(
        timeline.start, timeline.finish, assignment.proc_of_unit,
        assignment.nprocs, width, timeline.makespan,
    )
    return _render(assignment, timeline, width, busy)


def render_gantt_reference(
    assignment: Assignment,
    timeline: ScheduleTimeline,
    width: int = 72,
) -> str:
    """The original ad-hoc raster loop, kept as the reference path for
    the identity test against :func:`render_gantt`."""
    if assignment.proc_of_unit is None:
        raise ValueError("gantt chart requires a block assignment")
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    nprocs = assignment.nprocs
    makespan = timeline.makespan
    if makespan <= 0:
        return "(empty schedule)"
    scale = width / makespan

    busy = np.zeros((nprocs, width), dtype=bool)
    for u in range(len(timeline.start)):
        p = int(assignment.proc_of_unit[u])
        a = int(timeline.start[u] * scale)
        b = int(np.ceil(timeline.finish[u] * scale))
        busy[p, a : max(b, a + (timeline.finish[u] > timeline.start[u]))] = True
    return _render(assignment, timeline, width, busy)
