"""Regeneration of the paper's figures as text plots.

* Figure 1 is the element-level dependency diagram — its content is the
  update rule materialized by :func:`repro.symbolic.enumerate_updates`.
* Figure 2 shows the filled matrix of an MMD-ordered 5-point grid; we
  render the same thing as ASCII (the paper's caption says 41x41 for a
  5x5 grid, which is internally inconsistent — the grid size here is a
  parameter).
* Figure 3 shows a cluster partitioned into unit blocks.
* Figure 4 enumerates the ten dependency categories; we report how often
  each occurs in a real partitioned factor.
"""

from __future__ import annotations

import numpy as np

from ..core.clusters import find_clusters
from ..core.dependencies import CATEGORY_NAMES, classify_pair_updates
from ..core.partitioner import partition_factor
from ..core.pipeline import prepare
from ..sparse.generators import grid5
from .tables import render_table

__all__ = ["figure1_ascii", "figure2_ascii", "figure3_ascii", "figure4_report"]


def figure1_ascii(n: int = 8, i: int = 6, j: int = 4, k: int = 2) -> str:
    """ASCII rendering of the paper's Figure 1: the element-level data
    dependencies of one Cholesky update, drawn on a dense lower triangle.

    Marks the target L[i,j] ('T'), its sources L[i,k] and L[j,k] ('S'),
    the diagonal used for the final scaling ('d'), and annotates the
    update rule.
    """
    if not (0 <= k < j <= i < n):
        raise ValueError("need 0 <= k < j <= i < n")
    from ..sparse.pattern import LowerPattern
    from ..symbolic.updates import enumerate_updates

    pat = LowerPattern.dense(n)
    ups = enumerate_updates(pat)
    # Confirm this update really exists in the enumeration.
    t = pat.element_id(i, j)
    found = False
    for idx in range(ups.num_pair_updates):
        if (
            int(ups.target[idx]) == t
            and int(ups.source_col[idx]) == k
            and int(pat.rowidx[ups.source_i[idx]]) == i
            and int(pat.rowidx[ups.source_j[idx]]) == j
        ):
            found = True
            break
    assert found, "update enumeration must contain the illustrated update"

    lines = [
        f"Figure 1: inter-element dependencies in Cholesky factorization "
        f"(n={n} dense)",
        f"update: L[{i},{j}] -= L[{i},{k}] * L[{j},{k}]; "
        f"scale: L[{i},{j}] /= L[{j},{j}]",
        "",
        "    " + "".join(f"{c:>2}" for c in range(n)),
    ]
    for r in range(n):
        row = []
        for c in range(r + 1):
            if (r, c) == (i, j):
                ch = "T"
            elif (r, c) in ((i, k), (j, k)):
                ch = "S"
            elif (r, c) == (j, j):
                ch = "d"
            else:
                ch = "."
            row.append(f"{ch:>2}")
        lines.append(f"{r:>3} " + "".join(row))
    lines += [
        "",
        "T = target element, S = source pair (column k), "
        "d = scaling diagonal",
    ]
    return "\n".join(lines)


def figure2_ascii(nx: int = 5, ny: int = 5, ordering: str = "mmd") -> str:
    """ASCII rendering of the filled matrix of an MMD-ordered 5-point grid.

    '#' marks an original nonzero of (permuted) A, '+' marks fill, '.'
    marks a structural zero.  Only the lower triangle is shown, as in
    the paper's Figure 2.
    """
    graph = grid5(nx, ny)
    prep = prepare(graph, ordering=ordering, name=f"grid5({nx},{ny})")
    pat = prep.pattern
    permuted = graph.permute(prep.perm)
    a_lower = permuted.lower()
    n = pat.n
    fill = pat.nnz - a_lower.nnz
    lines = [
        f"Figure 2: filled matrix of the {nx}x{ny} 5-point grid "
        f"(n={n}, nnz(A)={a_lower.nnz}, nnz(L)={pat.nnz}, fill={fill})",
        "'#' original nonzero, '+' fill, '.' zero; lower triangle only",
        "",
    ]
    dense_L = pat.to_dense_bool()
    dense_A = a_lower.to_dense_bool()
    for i in range(n):
        row = []
        for j in range(i + 1):
            if dense_A[i, j]:
                row.append("#")
            elif dense_L[i, j]:
                row.append("+")
            else:
                row.append(".")
        lines.append("".join(row))
    clusters = find_clusters(pat, min_width=2)
    strips = [(c.col_lo, c.col_hi) for c in clusters if not c.is_column]
    lines.append("")
    lines.append(f"clusters (min width 2): {len(clusters)} total, "
                 f"multi-column strips: {strips}")
    return "\n".join(lines)


def figure3_ascii(width: int = 9, depth: int = 16, grain: int = 4) -> str:
    """ASCII rendering of a partitioned cluster, as in Figure 3.

    Builds a synthetic dense cluster (a ``width``-wide dense triangle
    with two dense rectangles below, total ``depth`` rows), partitions
    it, and draws each position labelled by its unit block.
    """
    if depth < width + 2:
        raise ValueError("depth must exceed width + 2 to leave room for rectangles")
    n = depth + 1
    rows_list, cols_list = [], []
    gap = width + (depth - width) // 2  # a one-row gap splits the rectangles
    for c in range(width):
        for r in range(c, depth):
            if r == gap:
                continue
            rows_list.append(r)
            cols_list.append(c)
    # A final dense column ties the gap row and the tail into the pattern.
    for r in range(width, n):
        rows_list.append(r)
        cols_list.append(width)
    u = np.asarray(rows_list + list(range(n)), dtype=np.int64)
    v = np.asarray(cols_list + list(range(n)), dtype=np.int64)
    from ..sparse.pattern import LowerPattern

    pat = LowerPattern.from_entries(n, u, v)
    partition = partition_factor(pat, grain=grain, min_width=2)
    cluster = partition.clusters[0]
    label = {}
    letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for u_blk in partition.units_of_cluster(cluster.index):
        for e in u_blk.elements.tolist():
            label[e] = letters[u_blk.uid % len(letters)]
    lines = [
        f"Figure 3: cluster 0 (cols {cluster.col_lo}-{cluster.col_hi}) "
        f"partitioned with grain {grain}; letters mark unit blocks",
        "",
    ]
    cols_of = pat.element_cols()
    dense = {}
    for e in range(pat.nnz):
        dense[(int(pat.rowidx[e]), int(cols_of[e]))] = label.get(e, "?")
    for r in range(depth):
        line = []
        for c in range(min(r + 1, width + 1)):
            line.append(dense.get((r, c), "."))
        lines.append("".join(line))
    kinds = {}
    for u_blk in partition.units_of_cluster(cluster.index):
        kinds[letters[u_blk.uid % len(letters)]] = (
            f"{u_blk.kind.value} rows[{u_blk.row_lo},{u_blk.row_hi}] "
            f"cols[{u_blk.col_lo},{u_blk.col_hi}]"
        )
    lines.append("")
    for k in sorted(kinds):
        lines.append(f"  {k}: {kinds[k]}")
    return "\n".join(lines)


def figure4_report(matrix: str = "LAP30", grain: int = 25, min_width: int = 4) -> str:
    """Occurrence counts of the ten dependency categories in a real
    partitioned factor (plus category 0, the internal updates)."""
    from ..sparse import harwell_boeing as hb

    prep = prepare(hb.load(matrix), name=matrix)
    partition = partition_factor(prep.pattern, grain=grain, min_width=min_width)
    cats = classify_pair_updates(partition, prep.updates)
    vals, counts = np.unique(cats, return_counts=True)
    count_of = dict(zip(vals.tolist(), counts.tolist()))
    total = int(counts.sum())
    rows = []
    for cat in range(11):
        c = count_of.get(cat, 0)
        rows.append([cat, CATEGORY_NAMES[cat], c, 100.0 * c / total if total else 0.0])
    return render_table(
        ["cat", "description", "pair updates", "%"],
        rows,
        f"Figure 4: dependency categories in {matrix} (g={grain}, width={min_width})",
    )
