"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

__all__ = ["render_table", "format_number"]


def format_number(value, decimals: int = 2) -> str:
    """Render ints exactly, floats with fixed decimals, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if float(value).is_integer() and abs(value) >= 100:
            return str(int(value))
        return f"{value:.{decimals}f}"
    return str(value)


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render an aligned ASCII table (right-aligned numeric columns)."""
    cells = [[format_number(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
