"""Column and row nonzero counts of the Cholesky factor.

Counts are derivable without forming the full symbolic factor; this
module provides two implementations plus helpers to compute the paper's
arithmetic-work figure directly from the counts:

* :func:`column_counts` — Gilbert–Ng–Peyton skeleton counting: only the
  *leaves* of each row subtree contribute, with over-counts cancelled at
  least common ancestors found by a path-compressed union-find.  Runs in
  O(nnz(A) α) instead of O(nnz(L)), so counts are available cheaply
  before the factor exists — e.g. to pre-size buffers ahead of cluster
  detection.
* :func:`column_counts_reference` — the original full row-subtree
  traversal, kept as the reference the tests assert against.
"""

from __future__ import annotations

import numpy as np

from ..sparse.pattern import SymmetricGraph
from .etree import etree, postorder
from .fill import symbolic_cholesky

__all__ = [
    "column_counts",
    "column_counts_reference",
    "gnp_column_counts",
    "row_counts",
    "factor_nnz",
    "sequential_work",
]


def column_counts(graph: SymmetricGraph, perm=None) -> np.ndarray:
    """nnz per column of L (diagonal included), by Gilbert–Ng–Peyton
    skeleton counting.

    For each row subtree only its leaves add to a column's count; the
    double-counted shared path above two consecutive leaves is removed
    at their least common ancestor, located with a path-compressed
    union-find keyed by first descendants in a postorder.
    """
    if perm is not None:
        work = graph.permute(np.asarray(perm, dtype=np.int64))
    else:
        work = graph
    return gnp_column_counts(work, etree(work))


def gnp_column_counts(work: SymmetricGraph, parent: np.ndarray) -> np.ndarray:
    """Gilbert–Ng–Peyton counts for an already-permuted graph whose
    elimination tree ``parent`` is known (see :func:`column_counts`)."""
    n = work.n
    post = postorder(parent)
    parent_l = parent.tolist()
    # first[j] = postorder rank of j's first (deepest-leftmost) descendant;
    # delta starts at 1 for etree leaves (their diagonal) and 0 otherwise.
    first = [-1] * n
    delta = [0] * n
    for k, j in enumerate(post.tolist()):
        if first[j] == -1:
            delta[j] = 1  # j is a leaf of the elimination tree
        while j != -1 and first[j] == -1:
            first[j] = k
            j = parent_l[j]
    maxfirst = [-1] * n
    prevleaf = [-1] * n
    ancestor = list(range(n))
    indptr = work.indptr.tolist()
    indices = work.indices.tolist()
    for j in post.tolist():
        p = parent_l[j]
        if p != -1:
            delta[p] -= 1  # j's path is counted within p's subtree
        for t in range(indptr[j], indptr[j + 1]):
            i = indices[t]
            if i <= j:
                continue
            # j is a leaf of row i's subtree iff no previously processed
            # neighbour of i lies in j's subtree (first-descendant test).
            if maxfirst[i] >= first[j]:
                continue
            maxfirst[i] = first[j]
            delta[j] += 1  # (i, j) starts a new path of row i's subtree
            pl = prevleaf[i]
            if pl != -1:
                # Cancel the shared path above lca(pl, j).
                q = pl
                while ancestor[q] != q:
                    q = ancestor[q]
                delta[q] -= 1
                while ancestor[pl] != pl:
                    ancestor[pl], pl = q, ancestor[pl]
            prevleaf[i] = j
        if p != -1:
            ancestor[j] = p
    # Accumulate subtree deltas up the tree (parent[j] > j in an etree).
    counts = np.asarray(delta, dtype=np.int64)
    for j in range(n):
        p = parent_l[j]
        if p != -1:
            counts[p] += counts[j]
    return counts


def column_counts_reference(graph: SymmetricGraph, perm=None) -> np.ndarray:
    """nnz per column of L (diagonal included).

    Uses row-subtree traversal: entry (i, j) of L exists iff j is on the
    elimination-tree path from some k ∈ adj_lower(A'_i) up to i.
    """
    if perm is not None:
        work = graph.permute(np.asarray(perm, dtype=np.int64))
    else:
        work = graph
    n = work.n
    parent = etree(work)
    counts = np.ones(n, dtype=np.int64)  # diagonals
    mark = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        mark[i] = i
        for k in work.neighbors(i):
            k = int(k)
            if k >= i:
                continue
            # Walk up the tree from k until reaching a column already
            # marked for row i; every new column gains entry (i, col).
            while mark[k] != i:
                mark[k] = i
                counts[k] += 1
                k = int(parent[k])
                if k < 0:  # pragma: no cover - parent path always reaches i
                    raise AssertionError("row subtree escaped the tree")
    return counts


def row_counts(graph: SymmetricGraph, perm=None) -> np.ndarray:
    """nnz per row of L (diagonal included)."""
    factor = symbolic_cholesky(graph, perm)
    out = np.zeros(factor.n, dtype=np.int64)
    np.add.at(out, factor.pattern.rowidx, 1)
    return out


def factor_nnz(graph: SymmetricGraph, perm=None) -> int:
    """Total nonzeros of L, diagonal included (Table 1, last column)."""
    return int(column_counts(graph, perm).sum())


def sequential_work(graph: SymmetricGraph, perm=None) -> int:
    """Total factorization work in the paper's cost model.

    With m_k off-diagonal nonzeros in column k of L, column k generates
    m_k(m_k+1)/2 pair updates at 2 units each, and every element of L
    receives one diagonal/scale update at 1 unit:
    ``W_tot = Σ_k m_k(m_k+1) + nnz(L)``.
    """
    counts = column_counts(graph, perm)
    m = counts - 1
    return int((m * (m + 1)).sum() + counts.sum())
