"""Column and row nonzero counts of the Cholesky factor.

Counts are derivable without forming the full symbolic factor; this
module provides the skeleton-row-count algorithm plus helpers to compute
the paper's arithmetic-work figure directly from the counts.
"""

from __future__ import annotations

import numpy as np

from ..sparse.pattern import SymmetricGraph
from .etree import etree
from .fill import symbolic_cholesky

__all__ = ["column_counts", "row_counts", "factor_nnz", "sequential_work"]


def column_counts(graph: SymmetricGraph, perm=None) -> np.ndarray:
    """nnz per column of L (diagonal included).

    Uses row-subtree traversal: entry (i, j) of L exists iff j is on the
    elimination-tree path from some k ∈ adj_lower(A'_i) up to i.
    """
    if perm is not None:
        work = graph.permute(np.asarray(perm, dtype=np.int64))
    else:
        work = graph
    n = work.n
    parent = etree(work)
    counts = np.ones(n, dtype=np.int64)  # diagonals
    mark = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        mark[i] = i
        for k in work.neighbors(i):
            k = int(k)
            if k >= i:
                continue
            # Walk up the tree from k until reaching a column already
            # marked for row i; every new column gains entry (i, col).
            while mark[k] != i:
                mark[k] = i
                counts[k] += 1
                k = int(parent[k])
                if k < 0:  # pragma: no cover - parent path always reaches i
                    raise AssertionError("row subtree escaped the tree")
    return counts


def row_counts(graph: SymmetricGraph, perm=None) -> np.ndarray:
    """nnz per row of L (diagonal included)."""
    factor = symbolic_cholesky(graph, perm)
    out = np.zeros(factor.n, dtype=np.int64)
    np.add.at(out, factor.pattern.rowidx, 1)
    return out


def factor_nnz(graph: SymmetricGraph, perm=None) -> int:
    """Total nonzeros of L, diagonal included (Table 1, last column)."""
    return int(column_counts(graph, perm).sum())


def sequential_work(graph: SymmetricGraph, perm=None) -> int:
    """Total factorization work in the paper's cost model.

    With m_k off-diagonal nonzeros in column k of L, column k generates
    m_k(m_k+1)/2 pair updates at 2 units each, and every element of L
    receives one diagonal/scale update at 1 unit:
    ``W_tot = Σ_k m_k(m_k+1) + nnz(L)``.
    """
    counts = column_counts(graph, perm)
    m = counts - 1
    return int((m * (m + 1)).sum() + counts.sum())
