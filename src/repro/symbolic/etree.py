"""Elimination tree of a symmetric matrix (Liu 1986).

``parent[j]`` is the parent of column j in the elimination tree of the
Cholesky factor, or -1 for a root.  The tree drives the symbolic
factorization and the cluster analysis.
"""

from __future__ import annotations

import numpy as np

from ..sparse.pattern import SymmetricGraph

__all__ = ["etree", "postorder", "tree_levels", "children_lists"]


def etree(graph: SymmetricGraph) -> np.ndarray:
    """Elimination tree via Liu's path-compression algorithm.

    Runs in nearly O(nnz) using a virtual-ancestor (path halving) array.
    """
    n = graph.n
    # Plain lists: the walk is pointer-chasing, where per-element numpy
    # indexing costs several times a list access.
    parent = [-1] * n
    ancestor = [-1] * n
    gp = graph.indptr.tolist()
    gi = graph.indices.tolist()
    for i in range(n):
        for t in range(gp[i], gp[i + 1]):
            k = gi[t]
            if k >= i:  # neighbours are sorted: the lower part is a prefix
                break
            # Walk from k up to the current root, compressing to i.
            while True:
                a = ancestor[k]
                if a == i:
                    break
                ancestor[k] = i
                if a == -1:
                    parent[k] = i
                    break
                k = a
    return np.asarray(parent, dtype=np.int64)


def children_lists(parent: np.ndarray) -> list[list[int]]:
    """children[j] = sorted list of j's children in the elimination tree."""
    n = len(parent)
    children: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            children[p].append(j)
    return children


def postorder(parent: np.ndarray) -> np.ndarray:
    """A postordering of the elimination tree (children before parents).

    Returns ``post`` with ``post[k]`` = the node visited k-th.
    """
    n = len(parent)
    children = children_lists(parent)
    roots = [j for j in range(n) if parent[j] < 0]
    out = np.empty(n, dtype=np.int64)
    k = 0
    for root in roots:
        stack = [(root, 0)]
        while stack:
            node, ci = stack.pop()
            if ci < len(children[node]):
                stack.append((node, ci + 1))
                stack.append((children[node][ci], 0))
            else:
                out[k] = node
                k += 1
    if k != n:  # pragma: no cover - would indicate a cycle
        raise AssertionError("parent array is not a forest")
    return out


def tree_levels(parent: np.ndarray) -> np.ndarray:
    """Depth of each node (roots at level 0)."""
    n = len(parent)
    level = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        path = []
        v = j
        while v >= 0 and level[v] < 0:
            path.append(v)
            v = int(parent[v])
        base = 0 if v < 0 else int(level[v]) + 1
        for i, node in enumerate(reversed(path)):
            level[node] = base + i
    return level
