"""Symbolic Cholesky factorization: the zero/nonzero structure of L.

This is the input the paper's partitioner starts from ("the partitioning
starts with the zero-nonzero structure of the filled sparse matrix
obtained after the symbolic factorization phase").

Two implementations, identical output:

* :func:`symbolic_cholesky` — the default fast path.  Entry (i, j) of L
  exists iff j lies on the elimination-tree path from some
  k ∈ adj_lower(A'_i) up to i.  Gilbert–Ng–Peyton column counts
  (computed in O(nnz(A) α) *before* the factor exists) pre-size the
  exact CSC buffers, so one O(nnz(L)) row-subtree walk then scatters
  each entry straight into its final position — no per-column set
  merges, no sorting, no deduplication.
* :func:`symbolic_cholesky_reference` — the original per-column merge
  (``np.unique`` over the children's column structures), kept as the
  bit-identical reference the tests assert against.
"""

from __future__ import annotations

import numpy as np

from ..obs import trace as obs
from ..sparse.dtypes import index_dtype
from ..sparse.pattern import LowerPattern, SymmetricGraph
from .etree import children_lists, etree, tree_levels

__all__ = [
    "symbolic_cholesky",
    "symbolic_cholesky_reference",
    "fill_in",
    "SymbolicFactor",
]

#: Bumped whenever the symbolic implementation changes in a way that
#: should invalidate warm ``prepare()`` disk caches.
SYMBOLIC_IMPL_VERSION = 2


class SymbolicFactor:
    """Structure of L for P A Pᵀ, plus the elimination tree.

    Attributes
    ----------
    pattern : LowerPattern
        Structure of L (diagonal included), in the permuted index space.
    parent : ndarray
        Elimination tree of the permuted matrix.
    perm : ndarray
        The ordering used (``perm[k]`` = original index of variable k).
    """

    def __init__(self, pattern: LowerPattern, parent: np.ndarray, perm: np.ndarray):
        self.pattern = pattern
        self.parent = parent
        self.perm = perm

    @property
    def n(self) -> int:
        return self.pattern.n

    @property
    def nnz(self) -> int:
        return self.pattern.nnz

    def column_counts(self) -> np.ndarray:
        return np.diff(self.pattern.indptr)


def _permuted(graph: SymmetricGraph, perm):
    if perm is not None:
        perm = np.asarray(perm, dtype=np.int64)
        work = graph.permute(perm)
    else:
        perm = np.arange(graph.n, dtype=np.int64)
        work = graph
    return work, perm


def symbolic_cholesky(graph: SymmetricGraph, perm=None) -> SymbolicFactor:
    """Compute the structure of the Cholesky factor of P A Pᵀ.

    Gilbert–Ng–Peyton column counts fix every column's extent up front,
    so the CSC arrays are allocated at their exact final size and a
    single row-subtree walk (entry (i, j) of L exists iff j is on the
    tree path from some k ∈ adj_lower(A'_i) up to i) writes each entry
    directly into its final slot.  Rows are visited in increasing order,
    so every column's row indices come out sorted with the diagonal
    first — no sort, no merge, no dedup.
    """
    from .colcount import gnp_column_counts  # deferred: colcount imports us

    work, perm = _permuted(graph, perm)
    n = work.n
    parent = etree(work)
    counts = gnp_column_counts(work, parent)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[n])
    # The row buffer is written straight at its final index dtype (int32
    # below 2^31 rows): a Python-list buffer of boxed ints would cost
    # ~10x the memory of the factor itself at nnz(L) in the millions.
    # Pre-place the diagonals; fill[j] is the next free slot of column j.
    rowbuf = np.empty(total, dtype=index_dtype(n))
    rowbuf[indptr[:-1]] = np.arange(n, dtype=rowbuf.dtype)
    fill = (indptr[:-1] + 1).tolist()
    par = parent.tolist()
    mark = [-1] * n
    gp = work.indptr.tolist()
    gi = work.indices.tolist()
    for i in range(n):
        mark[i] = i
        for t in range(gp[i], gp[i + 1]):
            k = gi[t]
            if k >= i:  # neighbours are sorted: the lower part is a prefix
                break
            while mark[k] != i:
                mark[k] = i
                rowbuf[fill[k]] = i
                fill[k] += 1
                k = par[k]
    rowidx = rowbuf
    if fill != indptr[1:].tolist():  # pragma: no cover - internal invariant
        raise AssertionError("row-subtree walk disagrees with GNP column counts")
    if obs.is_enabled():
        obs.counter("perf.symbolic.factor_nnz", total)
        obs.counter("perf.symbolic.fill_entries", total - work.nnz_lower)
        levels = tree_levels(parent)
        obs.counter(
            "perf.symbolic.postorder_depth",
            int(levels.max()) + 1 if n else 0,
        )
    return SymbolicFactor(LowerPattern(n, indptr, rowidx), parent, perm)


def symbolic_cholesky_reference(graph: SymmetricGraph, perm=None) -> SymbolicFactor:
    """Reference implementation via the column-merge recurrence
    ``struct(L_j) = {j} ∪ adj_lower(A'_j) ∪ ⋃_{parent(c)=j} (struct(L_c) − {c})``.
    """
    work, perm = _permuted(graph, perm)
    n = work.n
    parent = etree(work)
    children = children_lists(parent)
    cols: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for j in range(n):
        nbrs = work.neighbors(j)
        pieces = [np.array([j], dtype=np.int64), nbrs[nbrs > j]]
        for c in children[j]:
            pieces.append(cols[c][1:])  # drop the child's diagonal entry c
        col = np.unique(np.concatenate(pieces))
        cols[j] = col
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum([len(c) for c in cols])
    rowidx = np.concatenate(cols) if n else np.zeros(0, dtype=np.int64)
    return SymbolicFactor(LowerPattern(n, indptr, rowidx), parent, perm)


def fill_in(graph: SymmetricGraph, perm=None) -> int:
    """Number of fill entries: nnz(L) − nnz(lower(A'))."""
    factor = symbolic_cholesky(graph, perm)
    return factor.nnz - graph.nnz_lower
