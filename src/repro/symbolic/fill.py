"""Symbolic Cholesky factorization: the zero/nonzero structure of L.

This is the input the paper's partitioner starts from ("the partitioning
starts with the zero-nonzero structure of the filled sparse matrix
obtained after the symbolic factorization phase").
"""

from __future__ import annotations

import numpy as np

from ..sparse.pattern import LowerPattern, SymmetricGraph
from .etree import children_lists, etree

__all__ = ["symbolic_cholesky", "fill_in", "SymbolicFactor"]


class SymbolicFactor:
    """Structure of L for P A Pᵀ, plus the elimination tree.

    Attributes
    ----------
    pattern : LowerPattern
        Structure of L (diagonal included), in the permuted index space.
    parent : ndarray
        Elimination tree of the permuted matrix.
    perm : ndarray
        The ordering used (``perm[k]`` = original index of variable k).
    """

    def __init__(self, pattern: LowerPattern, parent: np.ndarray, perm: np.ndarray):
        self.pattern = pattern
        self.parent = parent
        self.perm = perm

    @property
    def n(self) -> int:
        return self.pattern.n

    @property
    def nnz(self) -> int:
        return self.pattern.nnz

    def column_counts(self) -> np.ndarray:
        return np.diff(self.pattern.indptr)


def symbolic_cholesky(graph: SymmetricGraph, perm=None) -> SymbolicFactor:
    """Compute the structure of the Cholesky factor of P A Pᵀ.

    Uses the column-merge recurrence
    ``struct(L_j) = {j} ∪ adj_lower(A'_j) ∪ ⋃_{parent(c)=j} (struct(L_c) − {c})``.
    """
    if perm is not None:
        perm = np.asarray(perm, dtype=np.int64)
        work = graph.permute(perm)
    else:
        perm = np.arange(graph.n, dtype=np.int64)
        work = graph
    n = work.n
    parent = etree(work)
    children = children_lists(parent)
    cols: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for j in range(n):
        nbrs = work.neighbors(j)
        pieces = [np.array([j], dtype=np.int64), nbrs[nbrs > j]]
        for c in children[j]:
            pieces.append(cols[c][1:])  # drop the child's diagonal entry c
        col = np.unique(np.concatenate(pieces))
        cols[j] = col
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum([len(c) for c in cols])
    rowidx = np.concatenate(cols) if n else np.zeros(0, dtype=np.int64)
    return SymbolicFactor(LowerPattern(n, indptr, rowidx), parent, perm)


def fill_in(graph: SymmetricGraph, perm=None) -> int:
    """Number of fill entries: nnz(L) − nnz(lower(A'))."""
    factor = symbolic_cholesky(graph, perm)
    return factor.nnz - graph.nnz_lower
