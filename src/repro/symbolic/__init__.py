"""Symbolic factorization: elimination tree, counts, fill, supernodes."""

from .colcount import column_counts, factor_nnz, row_counts, sequential_work
from .etree import children_lists, etree, postorder, tree_levels
from .fill import SymbolicFactor, fill_in, symbolic_cholesky
from .supernodes import fundamental_supernodes, supernode_of_column
from .treestats import TreeStats, tree_stats
from .updates import UpdateSet, enumerate_updates, enumerate_updates_reference

__all__ = [
    "TreeStats",
    "tree_stats",
    "UpdateSet",
    "enumerate_updates",
    "enumerate_updates_reference",
    "column_counts",
    "factor_nnz",
    "row_counts",
    "sequential_work",
    "children_lists",
    "etree",
    "postorder",
    "tree_levels",
    "SymbolicFactor",
    "fill_in",
    "symbolic_cholesky",
    "fundamental_supernodes",
    "supernode_of_column",
]
