"""Fundamental supernode detection.

A fundamental supernode is a maximal strip of consecutive columns
[s, e] where each column c has struct(L_c) = {c} ∪ struct(L_{c+1}) for
c < e.  The paper's *clusters* (dense-diagonal strips) are a relaxation;
supernodes provide the strictest case and are used for cross-checks.
"""

from __future__ import annotations

import numpy as np

from ..sparse.pattern import LowerPattern

__all__ = ["fundamental_supernodes", "supernode_of_column"]


def fundamental_supernodes(pattern: LowerPattern) -> list[tuple[int, int]]:
    """Maximal supernodes as (start, end) inclusive column ranges.

    Columns c and c+1 belong to the same supernode iff
    ``struct(col c) == {c} ∪ struct(col c+1)``.
    """
    n = pattern.n
    out: list[tuple[int, int]] = []
    if n == 0:
        return out
    start = 0
    for c in range(n - 1):
        cur = pattern.col(c)
        nxt = pattern.col(c + 1)
        same = len(cur) == len(nxt) + 1 and np.array_equal(cur[1:], nxt)
        if not same:
            out.append((start, c))
            start = c + 1
    out.append((start, n - 1))
    return out


def supernode_of_column(pattern: LowerPattern) -> np.ndarray:
    """Map column -> index of its fundamental supernode."""
    sns = fundamental_supernodes(pattern)
    out = np.empty(pattern.n, dtype=np.int64)
    for i, (s, e) in enumerate(sns):
        out[s : e + 1] = i
    return out
