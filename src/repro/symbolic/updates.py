"""Element-level update enumeration for Cholesky factorization.

This materializes the paper's Figure 1 dependency structure: the update
``L[i,j] -= L[i,k] * L[j,k]`` exists for every column k and every pair of
its off-diagonal nonzero rows i >= j (> k), and every element finally
receives one diagonal/scale update.  Elements are identified by their
position in the factor's :class:`~repro.sparse.pattern.LowerPattern`
(element ids), so the arrays here drive work accounting, traffic
accounting and block-dependency extraction with pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..sparse.dtypes import index_dtype, linear_index
from ..sparse.pattern import LowerPattern

__all__ = ["UpdateSet", "enumerate_updates", "enumerate_updates_reference"]


@dataclass(frozen=True)
class UpdateSet:
    """All pair updates (and implicit scale updates) of a factorization.

    For pair update t: ``target[t]`` is the element id of L[i, j],
    ``source_i[t]`` of L[i, k], ``source_j[t]`` of L[j, k], and
    ``source_col[t]`` = k.  Scale updates are one per element, sourced
    from the diagonal element of the element's column.
    """

    pattern: LowerPattern
    target: np.ndarray
    source_i: np.ndarray
    source_j: np.ndarray
    source_col: np.ndarray

    @property
    def num_pair_updates(self) -> int:
        return len(self.target)

    @cached_property
    def element_cols(self) -> np.ndarray:
        """Column of each element id (cached; used by several consumers)."""
        return self.pattern.element_cols()

    @cached_property
    def scale_source(self) -> np.ndarray:
        """For every element id, the element id of its column's diagonal."""
        return self.pattern.indptr[:-1][self.element_cols].astype(
            index_dtype(self.pattern.nnz)
        )

    @cached_property
    def update_counts(self) -> np.ndarray:
        """Number of pair updates targeting each element id."""
        return np.bincount(self.target, minlength=self.pattern.nnz)

    def element_work(self) -> np.ndarray:
        """Work per element in the paper's model: 2 per pair update + 1."""
        return 2 * self.update_counts + 1

    def total_work(self) -> int:
        """W_tot = 2 * (number of pair updates) + nnz(L)."""
        return 2 * self.num_pair_updates + self.pattern.nnz


#: Above this order the dense (n x n) element-id lookup (8 n² bytes)
#: is replaced by per-column binary searches.
_DENSE_LOOKUP_LIMIT = 4096


def _make_eid_lookup(pattern: LowerPattern):
    """(rows, cols) -> element ids, dense-matrix or searchsorted-backed."""
    n = pattern.n
    nnz = pattern.nnz
    if n <= _DENSE_LOOKUP_LIMIT:
        dense = np.full((n, n), -1, dtype=np.int64)
        dense[pattern.rowidx, pattern.element_cols()] = np.arange(
            nnz, dtype=np.int64
        )
        return lambda i, j: dense[i, j]

    def lookup(i: np.ndarray, j: np.ndarray) -> np.ndarray:
        # Group queries by column; binary-search each column's row list.
        out = np.full(len(i), -1, dtype=np.int64)
        order = np.argsort(j, kind="stable")
        js = j[order]
        starts = np.searchsorted(js, np.arange(n))
        ends = np.searchsorted(js, np.arange(n), side="right")
        for col in np.unique(js).tolist():
            sel = order[starts[col] : ends[col]]
            lo, hi = pattern.indptr[col], pattern.indptr[col + 1]
            rows = pattern.rowidx[lo:hi]
            pos = np.searchsorted(rows, i[sel])
            ok = (pos < len(rows)) & (rows[np.minimum(pos, len(rows) - 1)] == i[sel])
            out[sel[ok]] = lo + pos[ok]
        return out

    return lookup


def enumerate_updates(pattern: LowerPattern) -> UpdateSet:
    """Enumerate every pair update of the factorization of ``pattern``.

    ``pattern`` must be closed under factorization fill (i.e. be the
    structure of L); a missing target element raises ``ValueError``.

    Single-pass numpy enumeration: per-column pair counts are expanded
    with repeat/cumsum (no per-column Python loop) and every target is
    resolved in one vectorized lookup — a dense (row, col) -> element-id
    gather up to ``_DENSE_LOOKUP_LIMIT`` unknowns (the same memory
    envelope the reference path always used), and one global
    ``searchsorted`` against the pattern's (col, row) key order beyond
    that, so no n x n table is ever built at scale.  The update order is
    identical to :func:`enumerate_updates_reference` (column-major, then
    row-major over each column's lower-triangular index pairs), which the
    test suite asserts array-for-array.
    """
    indptr = pattern.indptr
    rowidx = pattern.rowidx
    n = pattern.n
    edt = index_dtype(pattern.nnz)  # element-id storage dtype
    empty = np.zeros(0, dtype=edt)
    m = np.diff(indptr) - 1  # off-diagonal count per column
    nnz_off = int(m.sum())
    if nnz_off == 0:
        return UpdateSet(pattern, empty, empty, empty, empty)

    # One incidence per (column k, off-diagonal index a); incidence
    # (k, a) expands into the a+1 pairs (a, b) for b = 0..a, which is
    # exactly np.tril_indices order when one column's incidences are
    # taken consecutively.  Everything below is sized nnz_off until the
    # np.repeat calls fan out to one entry per pair.  Indices stay at
    # the narrow element-id dtype; the pair total is accumulated in
    # int64 unconditionally — it is the one count here that genuinely
    # overflows 32 bits on large problems.
    col_of_off = np.repeat(np.arange(n, dtype=edt), m)
    off_eid = np.arange(nnz_off, dtype=edt) + col_of_off + 1
    first_off_eid = (indptr[col_of_off] + 1).astype(edt)
    a_within = off_eid - first_off_eid
    reps = a_within + 1
    pair_cum = np.cumsum(reps, dtype=np.int64)
    total = int(pair_cum[-1])
    pdt = index_dtype(total)  # pair-index dtype (within-incidence offsets)

    b = np.arange(total, dtype=pdt)
    b -= np.repeat((pair_cum - reps).astype(pdt), reps)  # pair index within its incidence
    source_j = (np.repeat(first_off_eid, reps) + b).astype(edt, copy=False)
    source_i = np.repeat(off_eid, reps)
    k = np.repeat(col_of_off, reps)
    i = np.repeat(rowidx[off_eid], reps)
    j = rowidx[source_j]

    if n <= _DENSE_LOOKUP_LIMIT:
        dense = np.full((n, n), -1, dtype=edt)
        dense[rowidx, pattern.element_cols()] = np.arange(pattern.nnz, dtype=edt)
        target = dense[i, j]
        bad = target < 0
    else:
        # Element ids are positions in rowidx, and rowidx is sorted by
        # (column, row); one searchsorted over the linearized key
        # resolves all targets at once in O(nnz) memory.
        elem_key = linear_index(pattern.element_cols(), rowidx, n)
        query = linear_index(j, i, n)
        target = np.searchsorted(elem_key, query)
        bad = (target >= pattern.nnz) | (
            elem_key[np.minimum(target, pattern.nnz - 1)] != query
        )
        target = target.astype(edt, copy=False)
    if bad.any():
        bad_col = int(k[np.flatnonzero(bad)[0]])
        raise ValueError(
            f"pattern is not closed under fill: column {bad_col} updates a "
            "structurally-zero target"
        )
    return UpdateSet(
        pattern=pattern,
        target=target,
        source_i=source_i,
        source_j=source_j,
        source_col=k,
    )


def enumerate_updates_reference(pattern: LowerPattern) -> UpdateSet:
    """Per-column reference enumeration, kept for cross-validation.

    Semantically identical to :func:`enumerate_updates` but loops over
    columns in Python.  For paper-scale problems a dense
    (row, col) -> element-id table makes the target lookup one
    fancy-indexing call; beyond ``_DENSE_LOOKUP_LIMIT`` unknowns a
    searchsorted path avoids the n² memory.
    """
    n = pattern.n
    eid = _make_eid_lookup(pattern)

    tgt_parts: list[np.ndarray] = []
    si_parts: list[np.ndarray] = []
    sj_parts: list[np.ndarray] = []
    k_parts: list[np.ndarray] = []
    for k in range(n):
        lo, hi = pattern.indptr[k], pattern.indptr[k + 1]
        off = pattern.rowidx[lo + 1 : hi]  # off-diagonal rows of column k
        m = len(off)
        if m == 0:
            continue
        a, b = np.tril_indices(m)  # i-index >= j-index
        i = off[a]
        j = off[b]
        t = eid(i, j)
        if (t < 0).any():  # pragma: no cover - violated only by bad input
            raise ValueError(
                f"pattern is not closed under fill: column {k} updates a "
                "structurally-zero target"
            )
        tgt_parts.append(t)
        si_parts.append(lo + 1 + a)
        sj_parts.append(lo + 1 + b)
        k_parts.append(np.full(m * (m + 1) // 2, k, dtype=np.int64))

    empty = np.zeros(0, dtype=np.int64)
    return UpdateSet(
        pattern=pattern,
        target=np.concatenate(tgt_parts) if tgt_parts else empty,
        source_i=np.concatenate(si_parts) if si_parts else empty,
        source_j=np.concatenate(sj_parts) if sj_parts else empty,
        source_col=np.concatenate(k_parts) if k_parts else empty,
    )
