"""Element-level update enumeration for Cholesky factorization.

This materializes the paper's Figure 1 dependency structure: the update
``L[i,j] -= L[i,k] * L[j,k]`` exists for every column k and every pair of
its off-diagonal nonzero rows i >= j (> k), and every element finally
receives one diagonal/scale update.  Elements are identified by their
position in the factor's :class:`~repro.sparse.pattern.LowerPattern`
(element ids), so the arrays here drive work accounting, traffic
accounting and block-dependency extraction with pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..sparse.pattern import LowerPattern

__all__ = ["UpdateSet", "enumerate_updates"]


@dataclass(frozen=True)
class UpdateSet:
    """All pair updates (and implicit scale updates) of a factorization.

    For pair update t: ``target[t]`` is the element id of L[i, j],
    ``source_i[t]`` of L[i, k], ``source_j[t]`` of L[j, k], and
    ``source_col[t]`` = k.  Scale updates are one per element, sourced
    from the diagonal element of the element's column.
    """

    pattern: LowerPattern
    target: np.ndarray
    source_i: np.ndarray
    source_j: np.ndarray
    source_col: np.ndarray

    @property
    def num_pair_updates(self) -> int:
        return len(self.target)

    @cached_property
    def element_cols(self) -> np.ndarray:
        """Column of each element id (cached; used by several consumers)."""
        return self.pattern.element_cols()

    @cached_property
    def scale_source(self) -> np.ndarray:
        """For every element id, the element id of its column's diagonal."""
        return self.pattern.indptr[:-1][self.element_cols]

    @cached_property
    def update_counts(self) -> np.ndarray:
        """Number of pair updates targeting each element id."""
        return np.bincount(self.target, minlength=self.pattern.nnz)

    def element_work(self) -> np.ndarray:
        """Work per element in the paper's model: 2 per pair update + 1."""
        return 2 * self.update_counts + 1

    def total_work(self) -> int:
        """W_tot = 2 * (number of pair updates) + nnz(L)."""
        return 2 * self.num_pair_updates + self.pattern.nnz


#: Above this order the dense (n x n) element-id lookup (8 n² bytes)
#: is replaced by per-column binary searches.
_DENSE_LOOKUP_LIMIT = 4096


def _make_eid_lookup(pattern: LowerPattern):
    """(rows, cols) -> element ids, dense-matrix or searchsorted-backed."""
    n = pattern.n
    nnz = pattern.nnz
    if n <= _DENSE_LOOKUP_LIMIT:
        dense = np.full((n, n), -1, dtype=np.int64)
        dense[pattern.rowidx, pattern.element_cols()] = np.arange(
            nnz, dtype=np.int64
        )
        return lambda i, j: dense[i, j]

    def lookup(i: np.ndarray, j: np.ndarray) -> np.ndarray:
        # Group queries by column; binary-search each column's row list.
        out = np.full(len(i), -1, dtype=np.int64)
        order = np.argsort(j, kind="stable")
        js = j[order]
        starts = np.searchsorted(js, np.arange(n))
        ends = np.searchsorted(js, np.arange(n), side="right")
        for col in np.unique(js).tolist():
            sel = order[starts[col] : ends[col]]
            lo, hi = pattern.indptr[col], pattern.indptr[col + 1]
            rows = pattern.rowidx[lo:hi]
            pos = np.searchsorted(rows, i[sel])
            ok = (pos < len(rows)) & (rows[np.minimum(pos, len(rows) - 1)] == i[sel])
            out[sel[ok]] = lo + pos[ok]
        return out

    return lookup


def enumerate_updates(pattern: LowerPattern) -> UpdateSet:
    """Enumerate every pair update of the factorization of ``pattern``.

    ``pattern`` must be closed under factorization fill (i.e. be the
    structure of L); a missing target element raises ``ValueError``.
    For paper-scale problems a dense (row, col) -> element-id table makes
    the target lookup one fancy-indexing call; beyond
    ``_DENSE_LOOKUP_LIMIT`` unknowns a searchsorted path avoids the n²
    memory.
    """
    n = pattern.n
    eid = _make_eid_lookup(pattern)

    tgt_parts: list[np.ndarray] = []
    si_parts: list[np.ndarray] = []
    sj_parts: list[np.ndarray] = []
    k_parts: list[np.ndarray] = []
    for k in range(n):
        lo, hi = pattern.indptr[k], pattern.indptr[k + 1]
        off = pattern.rowidx[lo + 1 : hi]  # off-diagonal rows of column k
        m = len(off)
        if m == 0:
            continue
        a, b = np.tril_indices(m)  # i-index >= j-index
        i = off[a]
        j = off[b]
        t = eid(i, j)
        if (t < 0).any():  # pragma: no cover - violated only by bad input
            raise ValueError(
                f"pattern is not closed under fill: column {k} updates a "
                "structurally-zero target"
            )
        tgt_parts.append(t)
        si_parts.append(lo + 1 + a)
        sj_parts.append(lo + 1 + b)
        k_parts.append(np.full(m * (m + 1) // 2, k, dtype=np.int64))

    empty = np.zeros(0, dtype=np.int64)
    return UpdateSet(
        pattern=pattern,
        target=np.concatenate(tgt_parts) if tgt_parts else empty,
        source_i=np.concatenate(si_parts) if si_parts else empty,
        source_j=np.concatenate(sj_parts) if sj_parts else empty,
        source_col=np.concatenate(k_parts) if k_parts else empty,
    )
