"""Elimination-tree parallelism statistics.

The paper argues its scheme "provides enough parallelism to keep the
idle time to a minimum" when processors are few relative to schedulable
units.  The elimination tree bounds that parallelism: tree height caps
the critical path of column-level elimination and the width profile
bounds how many columns are ever simultaneously ready.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.pattern import SymmetricGraph
from .etree import etree, tree_levels

__all__ = ["TreeStats", "tree_stats"]


@dataclass(frozen=True)
class TreeStats:
    """Shape statistics of an elimination tree."""

    n: int
    height: int
    num_leaves: int
    num_roots: int
    width_profile: np.ndarray  # nodes per level

    @property
    def max_width(self) -> int:
        return int(self.width_profile.max()) if len(self.width_profile) else 0

    @property
    def average_parallelism(self) -> float:
        """n / height: the level-parallel speedup bound for unit-cost
        columns."""
        return self.n / max(self.height, 1)


def tree_stats(graph: SymmetricGraph, perm=None) -> TreeStats:
    """Statistics of the elimination tree of P A Pᵀ."""
    work = graph.permute(np.asarray(perm, dtype=np.int64)) if perm is not None else graph
    parent = etree(work)
    n = len(parent)
    if n == 0:
        return TreeStats(0, 0, 0, 0, np.zeros(0, dtype=np.int64))
    levels = tree_levels(parent)
    height = int(levels.max()) + 1
    has_child = np.zeros(n, dtype=bool)
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            has_child[p] = True
    return TreeStats(
        n=n,
        height=height,
        num_leaves=int((~has_child).sum()),
        num_roots=int((parent < 0).sum()),
        width_profile=np.bincount(levels, minlength=height).astype(np.int64),
    )
