"""repro.perf — the sweep loop as the unit of optimization.

Three pieces make repeated pipeline evaluations cheap:

* :mod:`repro.perf.cache` — a content-addressed, versioned disk cache
  for :func:`repro.core.pipeline.prepare` results (ordering + symbolic
  factorization), with ``perf.cache.hit``/``perf.cache.miss`` counters;
* :mod:`repro.perf.sweep` — a parameter-grid runner fanning
  ``block_mapping``/``wrap_mapping`` cells over a process pool while
  sharing one prepared matrix per matrix through the cache;
* :mod:`repro.perf.bench` — the per-stage timing harness behind
  ``BENCH_pipeline.json`` and the CI smoke-bench step.

See ``docs/performance.md``.
"""

from .bench import (
    STAGES,
    bench_pipeline,
    compare_reports,
    find_regressions,
    render_bench,
    render_delta,
)
from .cache import (
    CACHE_VERSION,
    PrepareCache,
    cached_prepare,
    default_cache_dir,
    prepare_key,
)
from .sweep import SweepTask, build_grid, sweep

__all__ = [
    "CACHE_VERSION",
    "PrepareCache",
    "cached_prepare",
    "default_cache_dir",
    "prepare_key",
    "SweepTask",
    "build_grid",
    "sweep",
    "STAGES",
    "bench_pipeline",
    "compare_reports",
    "find_regressions",
    "render_bench",
    "render_delta",
]
