"""repro.perf — the sweep loop as the unit of optimization.

Three pieces make repeated pipeline evaluations cheap:

* :mod:`repro.perf.cache` — content-addressed, versioned disk caches
  for :func:`repro.core.pipeline.prepare` results (ordering + symbolic
  factorization; ``perf.cache.hit``/``perf.cache.miss`` counters) and
  for the partition/dependency stage
  (``perf.cache.partition.*`` counters);
* :mod:`repro.perf.sweep` — a parameter-grid runner with staged reuse:
  cells sharing a (matrix, scheme, grain, width) run as one group that
  partitions once and measures every processor count through the
  batched metrics kernel, fanned out over a process pool;
* :mod:`repro.perf.bench` — the per-stage timing harness behind
  ``BENCH_pipeline.json``/``BENCH_sweep.json`` and the CI smoke-bench
  steps.

See ``docs/performance.md``.
"""

from .bench import (
    STAGES,
    SWEEP_BENCH_GRID,
    bench_pipeline,
    bench_sweep,
    compare_reports,
    compare_sweep_reports,
    find_regressions,
    render_bench,
    render_delta,
    render_sweep_bench,
    render_sweep_delta,
)
from .cache import (
    CACHE_VERSION,
    PartitionCache,
    PrepareCache,
    cached_partition,
    cached_prepare,
    default_cache_dir,
    partition_key,
    prepare_key,
)
from .sweep import SweepGroup, SweepTask, build_grid, group_grid, sweep

__all__ = [
    "CACHE_VERSION",
    "PartitionCache",
    "PrepareCache",
    "cached_partition",
    "cached_prepare",
    "default_cache_dir",
    "partition_key",
    "prepare_key",
    "SweepGroup",
    "SweepTask",
    "build_grid",
    "group_grid",
    "sweep",
    "STAGES",
    "SWEEP_BENCH_GRID",
    "bench_pipeline",
    "bench_sweep",
    "compare_reports",
    "compare_sweep_reports",
    "find_regressions",
    "render_bench",
    "render_delta",
    "render_sweep_bench",
    "render_sweep_delta",
]
