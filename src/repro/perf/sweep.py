"""Parallel parameter sweeps over the mapping pipeline.

The paper's methodology is a grid of (scheme, grain, width, processor
count) cells measured over a fixed sparsity structure.  The expensive
stages — ordering, symbolic factorization — are invariant across the
grid, so this module splits the work accordingly:

1. every distinct matrix is prepared **once** and shared through the
   :mod:`repro.perf.cache` disk cache;
2. the grid cells fan out over a :class:`concurrent.futures`
   process pool (``jobs`` workers), each worker loading the shared
   prepared matrix from the cache on its first task;
3. results come back as the same :class:`~repro.analysis.sweep.SweepRecord`
   rows the serial harness produces, in deterministic grid order, so
   ``jobs=8`` and ``jobs=1`` are value-identical.

Observability: the fan-out runs under a ``perf.sweep.run`` span, each
task lands on the recorder as a ``perf.sweep`` timeline event (serial
tasks also get real ``perf.sweep.task`` spans), worker cache traffic is
aggregated into ``perf.cache.hit``/``perf.cache.miss``, and pool
efficiency is reported via the ``perf.sweep.pool_utilization`` gauge.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path

from ..analysis.sweep import SweepRecord, _record
from ..core.pipeline import (
    PreparedMatrix,
    adaptive_block_mapping,
    block_mapping,
    prepare,
    wrap_mapping,
)
from ..obs import trace as obs
from ..sparse import harwell_boeing as hb
from .cache import cached_prepare

__all__ = ["SweepTask", "build_grid", "sweep"]

_SCHEMES = ("block", "block-adaptive", "wrap")


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep grid (picklable, resolved inside workers)."""

    matrix: str
    scheme: str
    nprocs: int
    grain: int | None
    min_width: int | None
    ordering: str = "mmd"

    def label(self) -> str:
        bits = [self.matrix, self.scheme, f"P={self.nprocs}"]
        if self.grain is not None:
            bits.append(f"g={self.grain}")
        return " ".join(bits)


def build_grid(
    matrices,
    schemes=("block", "wrap"),
    procs=(4, 16, 32),
    grains=(4, 25),
    min_widths=(4,),
    ordering: str = "mmd",
) -> list[SweepTask]:
    """Expand a parameter grid in the serial harness's nesting order."""
    for s in schemes:
        if s not in _SCHEMES:
            raise ValueError(f"unknown scheme {s!r}; expected one of {_SCHEMES}")
    for m in matrices:
        if m not in hb.PAPER_MATRICES:
            raise ValueError(
                f"unknown matrix {m!r}; expected one of {tuple(hb.names())}"
            )
    tasks: list[SweepTask] = []
    for matrix in matrices:
        for nprocs in procs:
            for scheme in schemes:
                if scheme == "wrap":
                    tasks.append(SweepTask(matrix, scheme, nprocs, None, None, ordering))
                    continue
                for grain in grains:
                    for width in min_widths:
                        tasks.append(
                            SweepTask(matrix, scheme, nprocs, grain, width, ordering)
                        )
    return tasks


# ----------------------------------------------------------------------
# task execution (runs in workers; module-level for picklability)
# ----------------------------------------------------------------------

#: Per-process memo so one worker prepares/loads each matrix only once.
_WORKER_PREPARED: dict[tuple[str, str], PreparedMatrix] = {}


def _prepared(
    matrix: str,
    ordering: str,
    cache_dir: str | None,
    memo: dict[tuple[str, str], PreparedMatrix],
) -> PreparedMatrix:
    key = (matrix, ordering)
    if key not in memo:
        graph = hb.load(matrix)
        if cache_dir is None:
            memo[key] = prepare(graph, ordering=ordering, name=matrix)
        else:
            memo[key] = cached_prepare(graph, ordering, matrix, cache_dir)
    return memo[key]


def _measure(
    task: SweepTask,
    cache_dir: str | None,
    memo: dict[tuple[str, str], PreparedMatrix],
) -> SweepRecord:
    prep = _prepared(task.matrix, task.ordering, cache_dir, memo)
    if task.scheme == "wrap":
        result = wrap_mapping(prep, task.nprocs)
    else:
        runner = block_mapping if task.scheme == "block" else adaptive_block_mapping
        result = runner(
            prep, task.nprocs, grain=task.grain, min_width=task.min_width
        )
    return _record(prep, result, task.nprocs, task.grain, task.min_width)


def _run_task(payload) -> tuple[int, SweepRecord, dict]:
    """Worker entry: run one cell under a scoped recorder, report stats."""
    index, task, cache_dir = payload
    t0 = time.perf_counter()
    with obs.enabled(obs.Recorder()) as rec:
        record = _measure(task, cache_dir, _WORKER_PREPARED)
    stats = {
        "elapsed": time.perf_counter() - t0,
        "cache_hit": rec.counters.get("perf.cache.hit", 0),
        "cache_miss": rec.counters.get("perf.cache.miss", 0),
    }
    return index, record, stats


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def sweep(
    matrices,
    schemes=("block", "wrap"),
    procs=(4, 16, 32),
    grains=(4, 25),
    min_widths=(4,),
    ordering: str = "mmd",
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> list[SweepRecord]:
    """Measure every grid cell, fanning out over ``jobs`` processes.

    ``matrices`` is an iterable of registry names (see
    :data:`repro.sparse.harwell_boeing.PAPER_MATRICES`).  With
    ``jobs <= 1`` everything runs in-process; with ``jobs > 1`` cells are
    distributed over a process pool, sharing one prepared matrix per
    matrix through the disk cache (an ephemeral cache directory is used
    when ``cache_dir`` is ``None``).  Records always come back in grid
    order with values identical to the serial path.
    """
    matrices = list(matrices)
    tasks = build_grid(matrices, schemes, procs, grains, min_widths, ordering)
    cache_str = str(cache_dir) if cache_dir is not None else None
    if jobs <= 1:
        memo: dict[tuple[str, str], PreparedMatrix] = {}
        records = []
        with obs.span("perf.sweep.run", tasks=len(tasks), jobs=1):
            for task in tasks:
                with obs.span("perf.sweep.task", label=task.label()):
                    records.append(_measure(task, cache_str, memo))
        return records

    tmp = None
    if cache_str is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-sweep-cache-")
        cache_str = tmp.name
    try:
        with obs.span("perf.sweep.run", tasks=len(tasks), jobs=jobs):
            # Prepare (or re-load) each matrix once up front so workers
            # always find a warm cache entry.
            for matrix in dict.fromkeys(matrices):
                cached_prepare(hb.load(matrix), ordering, matrix, cache_str)
            t_epoch = time.perf_counter()
            results: list[SweepRecord | None] = [None] * len(tasks)
            busy = 0.0
            hits = 0.0
            misses = 0.0
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    pool.submit(_run_task, (i, task, cache_str))
                    for i, task in enumerate(tasks)
                ]
                for future in as_completed(futures):
                    index, record, stats = future.result()
                    results[index] = record
                    busy += stats["elapsed"]
                    hits += stats["cache_hit"]
                    misses += stats["cache_miss"]
                    done_at = time.perf_counter() - t_epoch
                    obs.timeline_event(
                        f"sweep {tasks[index].label()}",
                        ts=max(0.0, done_at - stats["elapsed"]),
                        dur=stats["elapsed"],
                        lane=index % jobs,
                        track="perf.sweep",
                        index=index,
                    )
            wall = time.perf_counter() - t_epoch
            if hits:
                obs.counter("perf.cache.hit", hits)
            if misses:
                obs.counter("perf.cache.miss", misses)
            obs.counter("perf.sweep.tasks", len(tasks))
            obs.gauge("perf.sweep.jobs", jobs)
            obs.gauge(
                "perf.sweep.pool_utilization",
                busy / (jobs * wall) if wall > 0 else 0.0,
            )
        return [r for r in results if r is not None]
    finally:
        if tmp is not None:
            tmp.cleanup()
