"""Parallel parameter sweeps over the mapping pipeline.

The paper's methodology is a grid of (scheme, grain, width, processor
count) cells measured over a fixed sparsity structure.  Most of the
pipeline is invariant across that grid, so this module splits the work
along the invariance boundaries:

1. every distinct matrix is prepared **once** (ordering + symbolic) and
   shared through the :mod:`repro.perf.cache` disk cache;
2. with staged reuse (the default), cells are grouped into one
   :class:`SweepGroup` per (matrix, scheme, grain, min_width): the
   partition/dependency/unit-work stage runs once per group (disk-cached
   via :func:`repro.perf.cache.cached_partition` when a cache directory
   is in play) and the per-``nprocs`` metrics are evaluated by the
   batched kernel (:mod:`repro.machine.batched`) in a single pass;
3. groups fan out over a :class:`concurrent.futures` process pool
   (``jobs`` workers), each worker loading the shared prepared matrix
   from the cache on its first task;
4. results come back as the same :class:`~repro.analysis.sweep.SweepRecord`
   rows the serial harness produces, in deterministic grid order, so
   ``jobs=8``/``jobs=1`` and ``reuse``/``no-reuse`` are value-identical.

A failed cell is retried once in the parent process; if the retry fails
too, :func:`sweep` raises with the failing cell's label — results are
never silently dropped.

Observability: the fan-out runs under a ``perf.sweep.run`` span and
every unit of work — serial or in a worker — runs under a real
``perf.sweep.task`` / ``perf.sweep.group`` span.  When the parent is
tracing, each worker snapshots its recorder into a
:class:`repro.obs.shard.RecorderShard` (spilled to a file above a size
threshold) that the parent merges back: worker spans land on per-pid
lanes with epoch-aligned timestamps, worker counters accumulate into
the parent's, and the parent synthesizes ``pool.queue_wait`` spans
(submit -> worker start) per unit plus one ``pool.utilization`` span
per worker lane.  Each finished unit also lands as a ``perf.sweep``
timeline event, and pool efficiency is reported via the
``perf.sweep.pool_utilization`` gauge.  Per-unit wall times and queue
waits also land in fixed-bucket histograms (``perf.sweep.unit_ms``,
``perf.sweep.queue_wait_ms``) so their p50/p90/p99 survive aggregation,
and each worker runs under a :class:`repro.obs.memory.MemoryMonitor`
when RSS is readable, so worker spans carry ``mem_peak_mb`` and worker
RSS samples merge onto the parent's timeline.  A worker that fails
mid-task
drains its open span stack into the shard (the in-flight span is
recorded with its error, never dropped) and ships the shard home on the
exception before the parent retries.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path

from ..analysis.sweep import SweepRecord, _record
from ..core.pipeline import (
    PartitionedMatrix,
    PreparedMatrix,
    adaptive_block_mapping,
    adaptive_block_mappings,
    block_mapping,
    block_mappings,
    partition_prepared,
    prepare,
    wrap_mapping,
    wrap_mappings,
)
from ..obs import shard as obs_shard
from ..obs import trace as obs
from ..obs.memory import MemoryMonitor, memory_enabled
from ..sparse import registry
from .cache import cached_partition, cached_prepare

__all__ = [
    "SweepGroup",
    "SweepTask",
    "SweepWorkerError",
    "build_grid",
    "group_grid",
    "sweep",
]


class SweepWorkerError(RuntimeError):
    """A sweep unit failed inside a worker process.

    Carries the unit's label, the formatted worker traceback, and the
    worker's stats dict — including its recorder shard, so the failed
    attempt's spans still reach the merged trace.  All state rides in
    ``args`` so the exception survives the pool's pickle round-trip.
    """

    def __init__(self, label: str, worker_traceback: str, stats: dict):
        super().__init__(label, worker_traceback, stats)
        self.label = label
        self.worker_traceback = worker_traceback
        self.stats = stats

    def __str__(self) -> str:
        return f"sweep unit {self.label!r} failed in worker:\n{self.worker_traceback}"

_SCHEMES = ("block", "block-adaptive", "wrap")


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep grid (picklable, resolved inside workers)."""

    matrix: str
    scheme: str
    nprocs: int
    grain: int | None
    min_width: int | None
    ordering: str = "mmd"

    def label(self) -> str:
        bits = [self.matrix, self.scheme, f"P={self.nprocs}"]
        if self.grain is not None:
            bits.append(f"g={self.grain}")
        return " ".join(bits)


@dataclass(frozen=True)
class SweepGroup:
    """All cells sharing one (matrix, scheme, grain, width) stage chain.

    ``procs`` are the group's processor counts in grid order and
    ``indices`` the matching positions in the flat task list, so grouped
    execution can scatter its records back into grid order.
    """

    matrix: str
    scheme: str
    grain: int | None
    min_width: int | None
    ordering: str
    procs: tuple[int, ...]
    indices: tuple[int, ...]

    def label(self) -> str:
        bits = [self.matrix, self.scheme]
        if self.grain is not None:
            bits.append(f"g={self.grain}")
        bits.append("P=" + ",".join(str(p) for p in self.procs))
        return " ".join(bits)


def build_grid(
    matrices,
    schemes=("block", "wrap"),
    procs=(4, 16, 32),
    grains=(4, 25),
    min_widths=(4,),
    ordering: str = "mmd",
) -> list[SweepTask]:
    """Expand a parameter grid in the serial harness's nesting order."""
    for s in schemes:
        if s not in _SCHEMES:
            raise ValueError(f"unknown scheme {s!r}; expected one of {_SCHEMES}")
    for m in matrices:
        if m not in registry.matrix_names():
            raise ValueError(
                f"unknown matrix {m!r}; expected one of "
                f"{registry.matrix_names()}"
            )
    tasks: list[SweepTask] = []
    for matrix in matrices:
        for nprocs in procs:
            for scheme in schemes:
                if scheme == "wrap":
                    tasks.append(SweepTask(matrix, scheme, nprocs, None, None, ordering))
                    continue
                for grain in grains:
                    for width in min_widths:
                        tasks.append(
                            SweepTask(matrix, scheme, nprocs, grain, width, ordering)
                        )
    return tasks


def group_grid(tasks: list[SweepTask]) -> list[SweepGroup]:
    """Group grid cells by their nprocs-invariant stage parameters.

    Cells differing only in processor count share ordering, symbolic
    factorization, partitioning and dependency analysis; one group is
    one unit of parallel work under staged reuse.
    """
    order: list[tuple] = []
    members: dict[tuple, list[tuple[int, SweepTask]]] = {}
    for index, task in enumerate(tasks):
        key = (task.matrix, task.scheme, task.grain, task.min_width, task.ordering)
        if key not in members:
            members[key] = []
            order.append(key)
        members[key].append((index, task))
    groups = []
    for key in order:
        matrix, scheme, grain, width, ordering = key
        cells = members[key]
        groups.append(
            SweepGroup(
                matrix=matrix,
                scheme=scheme,
                grain=grain,
                min_width=width,
                ordering=ordering,
                procs=tuple(t.nprocs for _, t in cells),
                indices=tuple(i for i, _ in cells),
            )
        )
    return groups


# ----------------------------------------------------------------------
# task execution (runs in workers; module-level for picklability)
# ----------------------------------------------------------------------

#: Per-process memo so one worker prepares/loads each matrix only once.
_WORKER_PREPARED: dict[tuple[str, str], PreparedMatrix] = {}

#: Per-process memo for the partition/dependency stage (block scheme).
_WORKER_PARTITIONED: dict[tuple[str, str, int, int], PartitionedMatrix] = {}


def _prepared(
    matrix: str,
    ordering: str,
    cache_dir: str | None,
    memo: dict[tuple[str, str], PreparedMatrix],
) -> PreparedMatrix:
    key = (matrix, ordering)
    if key not in memo:
        graph = registry.load(matrix)
        if cache_dir is None:
            memo[key] = prepare(graph, ordering=ordering, name=matrix)
        else:
            memo[key] = cached_prepare(graph, ordering, matrix, cache_dir)
    return memo[key]


def _partitioned(
    prep: PreparedMatrix,
    ordering: str,
    grain: int,
    min_width: int,
    cache_dir: str | None,
    memo: dict[tuple[str, str, int, int], PartitionedMatrix],
) -> PartitionedMatrix:
    key = (prep.name, ordering, grain, min_width)
    if key not in memo:
        if cache_dir is None:
            memo[key] = partition_prepared(prep, grain=grain, min_width=min_width)
        else:
            memo[key] = cached_partition(prep, grain, min_width, ordering, cache_dir)
    return memo[key]


def _measure(
    task: SweepTask,
    cache_dir: str | None,
    memo: dict[tuple[str, str], PreparedMatrix],
) -> SweepRecord:
    """The reuse-free reference path: one full cell, no stage sharing."""
    prep = _prepared(task.matrix, task.ordering, cache_dir, memo)
    if task.scheme == "wrap":
        result = wrap_mapping(prep, task.nprocs)
    else:
        runner = block_mapping if task.scheme == "block" else adaptive_block_mapping
        result = runner(
            prep, task.nprocs, grain=task.grain, min_width=task.min_width
        )
    return _record(prep, result, task.nprocs, task.grain, task.min_width)


def _measure_group(
    group: SweepGroup,
    cache_dir: str | None,
    memo: dict[tuple[str, str], PreparedMatrix],
    part_memo: dict[tuple[str, str, int, int], PartitionedMatrix],
) -> list[SweepRecord]:
    """One staged-reuse group: shared stages once, batched metrics."""
    prep = _prepared(group.matrix, group.ordering, cache_dir, memo)
    if group.scheme == "wrap":
        results = wrap_mappings(prep, group.procs)
    elif group.scheme == "block":
        partitioned = _partitioned(
            prep, group.ordering, group.grain, group.min_width, cache_dir, part_memo
        )
        results = block_mappings(partitioned, group.procs)
    else:
        results = adaptive_block_mappings(
            prep, group.procs, grain=group.grain, min_width=group.min_width
        )
    if len(group.procs) > 1:
        # Cells beyond the first ride on the group's shared stages.
        obs.counter("perf.sweep.reuse.hit", len(group.procs) - 1)
    return [
        _record(prep, result, nprocs, group.grain, group.min_width)
        for result, nprocs in zip(results, group.procs)
    ]


def _worker_stats(
    rec: obs.Recorder,
    t0: float,
    t0_unix: float,
    collect: bool,
    spill_dir: str | None,
) -> dict:
    """Snapshot one worker attempt: timings, cache counters, and — when
    the parent is tracing — the full recorder shard (inline or spilled).
    Every open span must be closed/drained before this runs."""
    stats = {
        "elapsed": time.perf_counter() - t0,
        "cache_hit": int(rec.counters.get("perf.cache.hit", 0)),
        "cache_miss": int(rec.counters.get("perf.cache.miss", 0)),
        "reuse_hit": int(rec.counters.get("perf.sweep.reuse.hit", 0)),
        "pid": os.getpid(),
        "t0_unix": t0_unix,
        "t1_unix": time.time(),
        "shard": None,
    }
    if collect:
        stats["shard"] = obs_shard.pack(obs_shard.snapshot(rec), spill_dir)
    return stats


def _run_unit(index: int, unit, cache_dir, collect, spill_dir, grouped: bool):
    """Worker entry: run one cell/group under a scoped recorder.

    Success returns ``(index, payload, stats)``.  Failure drains any
    still-open span onto the recorder (recorded with the exception's
    type, not dropped), snapshots stats/shard anyway, and raises
    :class:`SweepWorkerError` carrying both back to the parent.
    """
    t0 = time.perf_counter()
    t0_unix = time.time()
    with obs.enabled(obs.Recorder()) as rec:
        # Worker-side memory watermarks: spans pick up mem_peak_mb and
        # the RSS samples ride home in the shard (rebased on merge).
        monitor = MemoryMonitor(rec, interval=0.01) if memory_enabled() else None
        if monitor is not None:
            monitor.start()
        try:
            if grouped:
                with obs.span(
                    "perf.sweep.group", label=unit.label(), cells=len(unit.procs)
                ):
                    payload = _measure_group(
                        unit, cache_dir, _WORKER_PREPARED, _WORKER_PARTITIONED
                    )
            if not grouped:
                with obs.span("perf.sweep.task", label=unit.label()):
                    payload = _measure(unit, cache_dir, _WORKER_PREPARED)
            if monitor is not None:
                monitor.stop()
        except Exception as exc:
            if monitor is not None and rec.memory is monitor:
                monitor.stop()
            rec.drain_open_spans(error=type(exc).__name__)
            stats = _worker_stats(rec, t0, t0_unix, collect, spill_dir)
            raise SweepWorkerError(
                unit.label(), traceback.format_exc(), stats
            ) from None
    return index, payload, _worker_stats(rec, t0, t0_unix, collect, spill_dir)


def _run_task(payload) -> tuple[int, SweepRecord, dict]:
    """Worker entry: one per-cell task (module-level for picklability)."""
    index, task, cache_dir, collect, spill_dir = payload
    return _run_unit(index, task, cache_dir, collect, spill_dir, grouped=False)


def _run_group(payload) -> tuple[int, list[SweepRecord], dict]:
    """Worker entry: one staged-reuse group."""
    gindex, group, cache_dir, collect, spill_dir = payload
    return _run_unit(gindex, group, cache_dir, collect, spill_dir, grouped=True)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def sweep(
    matrices,
    schemes=("block", "wrap"),
    procs=(4, 16, 32),
    grains=(4, 25),
    min_widths=(4,),
    ordering: str = "mmd",
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    reuse: bool = True,
) -> list[SweepRecord]:
    """Measure every grid cell, fanning out over ``jobs`` processes.

    ``matrices`` is an iterable of registry names (see
    :func:`repro.sparse.registry.matrix_names`).  With
    ``reuse`` (the default) cells are grouped per (matrix, scheme,
    grain, width): the nprocs-invariant stages run once per group and
    all of the group's processor counts are measured by the batched
    metrics kernel; ``reuse=False`` keeps the one-cell-per-task
    reference decomposition.  With ``jobs <= 1`` everything runs
    in-process; with ``jobs > 1`` work is distributed over a process
    pool, sharing one prepared matrix per matrix through the disk cache
    (an ephemeral cache directory is used when ``cache_dir`` is
    ``None``).  A failed task is retried once in the parent; a second
    failure raises :class:`RuntimeError` naming the task.  Records
    always come back in grid order with values identical to the serial,
    reuse-free path.
    """
    matrices = list(matrices)
    tasks = build_grid(matrices, schemes, procs, grains, min_widths, ordering)
    cache_str = str(cache_dir) if cache_dir is not None else None
    if jobs <= 1:
        return _sweep_serial(tasks, cache_str, reuse)
    return _sweep_parallel(matrices, tasks, ordering, jobs, cache_str, reuse)


def _sweep_serial(
    tasks: list[SweepTask], cache_str: str | None, reuse: bool
) -> list[SweepRecord]:
    memo: dict[tuple[str, str], PreparedMatrix] = {}
    with obs.span("perf.sweep.run", tasks=len(tasks), jobs=1):
        if not reuse:
            records = []
            for task in tasks:
                t0 = time.perf_counter()
                with obs.span("perf.sweep.task", label=task.label()):
                    records.append(_measure(task, cache_str, memo))
                obs.observe("perf.sweep.unit_ms", 1e3 * (time.perf_counter() - t0))
            return records
        part_memo: dict[tuple[str, str, int, int], PartitionedMatrix] = {}
        results: list[SweepRecord | None] = [None] * len(tasks)
        for group in group_grid(tasks):
            t0 = time.perf_counter()
            with obs.span(
                "perf.sweep.group", label=group.label(), cells=len(group.procs)
            ):
                group_records = _measure_group(group, cache_str, memo, part_memo)
            obs.observe("perf.sweep.unit_ms", 1e3 * (time.perf_counter() - t0))
            for index, record in zip(group.indices, group_records):
                results[index] = record
    return _collect(results, tasks)


def _sweep_parallel(
    matrices,
    tasks: list[SweepTask],
    ordering: str,
    jobs: int,
    cache_str: str | None,
    reuse: bool,
) -> list[SweepRecord]:
    tmp = None
    if cache_str is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-sweep-cache-")
        cache_str = tmp.name
    if reuse:
        units = [(g.label(), g) for g in group_grid(tasks)]
        runner, retry = _run_group, _retry_group
    else:
        units = [(t.label(), t) for t in tasks]
        runner, retry = _run_task, _retry_task
    # Shard collection is decided once, up front: workers only pay the
    # snapshot/pickle cost when the parent is actually tracing.
    collect = obs.is_enabled()
    rec = obs.get_recorder() if collect else None
    spill_dir = os.path.join(cache_str, "shards") if collect else None
    try:
        with obs.span("perf.sweep.run", tasks=len(tasks), jobs=jobs):
            # Prepare (or re-load) each matrix once up front so workers
            # always find a warm cache entry.
            for matrix in dict.fromkeys(matrices):
                cached_prepare(registry.load(matrix), ordering, matrix, cache_str)
            t_epoch = time.perf_counter()
            pool_unix0 = time.time()
            results: list[SweepRecord | None] = [None] * len(tasks)
            busy = 0.0
            hits = 0
            misses = 0
            reuse_hits = 0
            busy_by_pid: dict[int, float] = {}
            submit_unix: dict[int, float] = {}
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {}
                for i, (_, unit) in enumerate(units):
                    submit_unix[i] = time.time()
                    futures[pool.submit(runner, (i, unit, cache_str, collect, spill_dir))] = i
                for future in as_completed(futures):
                    try:
                        index, payload, stats = future.result()
                    except Exception as exc:
                        # The failed attempt's shard (if it got as far
                        # as snapshotting) still joins the trace ...
                        index = futures[future]
                        failed_stats = getattr(exc, "stats", None)
                        if collect and isinstance(failed_stats, dict):
                            _merge_worker_trace(
                                rec, failed_stats, submit_unix[index],
                                units[index][0], index,
                            )
                        # ... then the unit is retried once, in-process;
                        # a second failure raises with the unit's label.
                        t0 = time.perf_counter()
                        payload = retry(units[index], cache_str)
                        stats = {
                            "elapsed": time.perf_counter() - t0,
                            "cache_hit": 0,
                            "cache_miss": 0,
                            "reuse_hit": 0,
                        }
                        obs.counter("perf.sweep.retries")
                    else:
                        if collect:
                            _merge_worker_trace(
                                rec, stats, submit_unix[index],
                                units[index][0], index,
                            )
                        pid = stats.get("pid")
                        if pid is not None:
                            busy_by_pid[pid] = (
                                busy_by_pid.get(pid, 0.0) + stats["elapsed"]
                            )
                    if reuse:
                        group = units[index][1]
                        for slot, record in zip(group.indices, payload):
                            results[slot] = record
                    else:
                        results[index] = payload
                    busy += stats["elapsed"]
                    obs.observe("perf.sweep.unit_ms", 1e3 * stats["elapsed"])
                    hits += stats["cache_hit"]
                    misses += stats["cache_miss"]
                    reuse_hits += stats["reuse_hit"]
                    done_at = time.perf_counter() - t_epoch
                    obs.timeline_event(
                        f"sweep {units[index][0]}",
                        ts=max(0.0, done_at - stats["elapsed"]),
                        dur=stats["elapsed"],
                        lane=index % jobs,
                        track="perf.sweep",
                        index=index,
                    )
            wall = time.perf_counter() - t_epoch
            if collect:
                # One lane-wide utilization span per worker process.
                pool_unix1 = time.time()
                for pid, busy_s in sorted(busy_by_pid.items()):
                    rec.add_span(
                        "pool.utilization",
                        pool_unix0 - rec.epoch_unix,
                        pool_unix1 - rec.epoch_unix,
                        thread=0,
                        pid=pid,
                        args={
                            "busy_s": round(busy_s, 6),
                            "utilization": busy_s / wall if wall > 0 else 0.0,
                        },
                    )
            else:
                # Without shards the summary counters aggregated from
                # worker stats are all that survives.  (With shards the
                # merge already accumulated the real counters; adding
                # these again would double-count.)
                if hits:
                    obs.counter("perf.cache.hit", hits)
                if misses:
                    obs.counter("perf.cache.miss", misses)
                if reuse_hits:
                    obs.counter("perf.sweep.reuse.hit", reuse_hits)
            obs.counter("perf.sweep.tasks", len(tasks))
            obs.gauge("perf.sweep.jobs", jobs)
            obs.gauge(
                "perf.sweep.pool_utilization",
                busy / (jobs * wall) if wall > 0 else 0.0,
            )
        return _collect(results, tasks)
    finally:
        if tmp is not None:
            tmp.cleanup()


def _merge_worker_trace(
    rec: obs.Recorder,
    stats: dict,
    submitted_unix: float,
    label: str,
    index: int,
) -> None:
    """Merge one worker attempt's shard into the parent recorder and
    synthesize its ``pool.queue_wait`` span (submit -> worker start).
    A shard that fails to unpack is counted and dropped — records are
    authoritative, traces are best-effort."""
    payload = stats.get("shard")
    if payload is None:
        return
    try:
        worker_shard = obs_shard.unpack(payload)
    except (OSError, ValueError, pickle.UnpicklingError, EOFError):
        obs.counter("perf.sweep.shard.dropped")
        return
    obs_shard.merge_into(rec, worker_shard)
    lane_thread = worker_shard.spans[0].thread if worker_shard.spans else 0
    q0 = submitted_unix - rec.epoch_unix
    q1 = stats["t0_unix"] - rec.epoch_unix
    if q1 >= q0:
        rec.add_span(
            "pool.queue_wait",
            q0,
            q1,
            thread=lane_thread,
            pid=worker_shard.pid,
            args={"unit": label, "index": index},
        )
        obs.observe("perf.sweep.queue_wait_ms", 1e3 * (q1 - q0))


def _retry_task(unit: tuple[str, SweepTask], cache_str: str | None) -> SweepRecord:
    label, task = unit
    try:
        return _measure(task, cache_str, {})
    except Exception as exc:
        raise RuntimeError(f"sweep task {label!r} failed after retry") from exc


def _retry_group(
    unit: tuple[str, SweepGroup], cache_str: str | None
) -> list[SweepRecord]:
    label, group = unit
    try:
        return _measure_group(group, cache_str, {}, {})
    except Exception as exc:
        raise RuntimeError(f"sweep group {label!r} failed after retry") from exc


def _collect(
    results: list[SweepRecord | None], tasks: list[SweepTask]
) -> list[SweepRecord]:
    """Assemble grid-order records; a hole means a bug, never drop it."""
    missing = [tasks[i].label() for i, r in enumerate(results) if r is None]
    if missing:
        raise RuntimeError(f"sweep produced no record for: {', '.join(missing)}")
    return results
