"""Pipeline benchmark harness: per-stage wall times to ``BENCH_pipeline.json``.

Runs the full pipeline (order -> symbolic -> enumerate_updates ->
partition -> dependencies -> schedule -> metrics) on the paper's test
matrices under a scoped :class:`repro.obs.Recorder`, sums the recorded
span durations per stage, and writes one JSON document so successive
PRs have a perf trajectory to regress against.  ``smoke`` mode swaps in
tiny generated grids: it exercises the exact same measurement and
serialization path in well under a second, which is what CI runs on
every push.

Each matrix entry also carries a result fingerprint (traffic total,
imbalance, pair-update count) so a timing regression can be told apart
from a semantics change, and — when RSS is readable — memory
watermarks: ``mem_peak_mb`` for the run, ``stage_mem_peak_mb`` per
stage, and a downsampled RSS timeline for the HTML report.  Memory
rows ride through :func:`compare_reports` with ``unit: "mb"``, so the
25% regression gate catches a memory blow-up exactly like a slowdown.
Stamped reports (the default) also record provenance: the git SHA and
the host that measured them.
"""

from __future__ import annotations

import gc
import json
import tempfile
import time
from pathlib import Path

from ..core.pipeline import block_mapping, prepare
from ..obs import runs as obs_runs
from ..obs import trace as obs
from ..obs.memory import MemoryMonitor, memory_enabled, monitored
from ..obs.trace import Recorder
from ..sparse import grid9
from ..sparse import harwell_boeing as hb
from ..sparse import registry
from .sweep import build_grid, sweep

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BIG_BENCH_MATRICES",
    "BIG_SWEEP_MATRICES",
    "STRETCH_BENCH_MATRICES",
    "STAGES",
    "SWEEP_BENCH_GRID",
    "SWEEP_BENCH_SMOKE_GRID",
    "bench_pipeline",
    "bench_sweep",
    "compare_reports",
    "compare_sweep_reports",
    "describe_regression",
    "find_regressions",
    "render_bench",
    "render_delta",
    "render_sweep_bench",
    "render_sweep_delta",
]

BENCH_SCHEMA_VERSION = 1

#: A stage regression beyond this fraction of the baseline fails a
#: full-mode ``repro bench`` run.
REGRESSION_THRESHOLD = 0.25

#: Best-of-N repeats in full mode; smoke mode uses a single run.
FULL_MODE_REPEATS = 3

#: Stage name in the report -> span name recorded by the pipeline.
STAGES = {
    "order": "pipeline.order",
    "symbolic": "pipeline.symbolic",
    "enumerate_updates": "pipeline.enumerate_updates",
    "partition": "pipeline.partition",
    "dependencies": "pipeline.dependencies",
    "schedule": "pipeline.schedule",
    "metrics": "pipeline.metrics",
}

#: Tiny deterministic problems for smoke mode (CI on every push).
SMOKE_MATRICES = {
    "GRID9x8": lambda: grid9(8, 8),
    "GRID9x12": lambda: grid9(12, 12),
}

#: Big-tier (10^5-unknown) pipeline bench set, and the single smallest
#: instance the opt-in CI smoke job runs.  Big-tier runs default to one
#: repeat: a repeat costs minutes, and the watermark/min-timing noise
#: the extra repeats suppress is small relative to big-tier durations.
BIG_BENCH_MATRICES = ("GRIDA100K", "HEX100K", "SOC100K")
BIG_BENCH_SMOKE_MATRICES = ("SOC100K",)
#: 10^6-unknown stretch instances, appended to the big-tier pipeline
#: bench only behind ``--tier big --stretch`` (minutes per matrix,
#: multi-GB RSS — never part of any default or smoke selection).
STRETCH_BENCH_MATRICES = ("GRIDA1M", "SOC1M")
#: Big-tier sweep bench set.  The smoke variant uses the *same grid* as
#: the full run (only fewer matrices), so the regression gate always
#: compares like-for-like cells.
BIG_SWEEP_MATRICES = ("SOC100K", "GRIDA100K")
BIG_SWEEP_SMOKE_MATRICES = ("SOC100K",)
BIG_MODE_REPEATS = 1


def _tier_checked(tier: str) -> str:
    if tier not in ("paper", "big"):
        raise ValueError(f"unknown tier {tier!r}; expected 'paper' or 'big'")
    return tier


def _bench_once(name: str, graph, nprocs: int, grain: int) -> dict:
    with obs.enabled(Recorder()) as rec, monitored(rec):
        t0 = time.perf_counter()
        prepared = prepare(graph, name=name)
        prepared.updates  # noqa: B018 - forces the enumerate_updates stage
        result = block_mapping(prepared, nprocs, grain=grain)
        wall = time.perf_counter() - t0
    stages = {
        stage: sum(s.duration for s in rec.spans_named(span_name))
        for stage, span_name in STAGES.items()
    }
    entry = {
        "n": int(graph.n),
        "factor_nnz": int(prepared.factor_nnz),
        "pair_updates": int(prepared.updates.num_pair_updates),
        "stages": stages,
        "wall_total": wall,
        "traffic_total": int(result.traffic.total),
        "imbalance": float(result.balance.imbalance),
    }
    entry.update(_memory_fields(rec))
    return entry


def _memory_fields(rec: Recorder) -> dict:
    """Watermark fields for a bench entry: run peak, per-stage peaks and
    a downsampled RSS timeline; empty when memory tracking was off."""
    out: dict = {}
    peak = rec.gauges.get("mem.rss_peak_mb")
    if isinstance(peak, (int, float)):
        out["mem_peak_mb"] = float(peak)
    stage_mem = {}
    for stage, span_name in STAGES.items():
        peaks = [
            s.args.get("mem_peak_mb")
            for s in rec.spans_named(span_name)
            if isinstance(s.args.get("mem_peak_mb"), (int, float))
        ]
        if peaks:
            stage_mem[stage] = max(peaks)
    if stage_mem:
        out["stage_mem_peak_mb"] = stage_mem
    if len(rec.memory_samples) >= 2:
        from ..obs.report import downsample

        out["memory"] = [
            [round(t, 4), round(rss / (1024.0 * 1024.0), 2)]
            for t, rss in downsample(rec.memory_samples, limit=160)
        ]
    return out


def _bench_one(name: str, graph, nprocs: int, grain: int, repeats: int) -> dict:
    """Best-of-``repeats`` per-stage timings (garbage collected between
    runs so one matrix's allocation debris is not billed to the next);
    result fingerprints come from the first run and are identical across
    repeats by construction (the pipeline is deterministic)."""
    runs = []
    for _ in range(max(1, repeats)):
        gc.collect()
        runs.append(_bench_once(name, graph, nprocs, grain))
    entry = runs[0]
    entry["stages"] = {
        stage: min(r["stages"][stage] for r in runs) for stage in STAGES
    }
    entry["wall_total"] = min(r["wall_total"] for r in runs)
    # Memory watermarks are near-deterministic; best-of-N strips the
    # occasional allocator/GC noise exactly like the timing min does.
    peaks = [r["mem_peak_mb"] for r in runs if "mem_peak_mb" in r]
    if peaks:
        entry["mem_peak_mb"] = min(peaks)
    stage_maps = [r["stage_mem_peak_mb"] for r in runs if "stage_mem_peak_mb" in r]
    if stage_maps:
        entry["stage_mem_peak_mb"] = {
            stage: min(m[stage] for m in stage_maps if stage in m)
            for stage in {k for m in stage_maps for k in m}
        }
    return entry


def bench_pipeline(
    matrices=None,
    nprocs: int = 16,
    grain: int = 25,
    smoke: bool = False,
    out: str | Path | None = "BENCH_pipeline.json",
    repeats: int | None = None,
    stamp: bool = True,
    tier: str = "paper",
    stretch: bool = False,
) -> dict:
    """Benchmark the pipeline stages and write the JSON report.

    ``matrices`` defaults to every paper matrix (Table 1/2), or the tiny
    smoke grids when ``smoke`` is set.  ``tier="big"`` switches the
    defaults to the 10^5-unknown generated instances
    (:data:`BIG_BENCH_MATRICES`; ``smoke`` then selects the single
    smallest instance instead of the tiny grids) and to one repeat;
    ``stretch`` additionally appends the 10^6-unknown instances
    (:data:`STRETCH_BENCH_MATRICES`) to the big-tier default set — it
    is an error outside the big tier and is ignored in smoke mode
    (smoke exists to be fast; a 10^6 instance is minutes).  ``repeats`` defaults to
    :data:`FULL_MODE_REPEATS` (best-of-N) in full paper mode and 1
    otherwise.  ``stamp=False`` omits the ``created_unix`` timestamp so
    two runs of the same tree produce byte-identical reports;
    comparisons (:func:`compare_reports`) never look at the timestamp
    either way.  Returns the report dict; writes it to ``out`` unless
    ``out`` is ``None``.
    """
    tier = _tier_checked(tier)
    if stretch and tier != "big":
        raise ValueError("--stretch needs --tier big (the 10^6 instances "
                         "are part of the big-tier bench)")
    if tier == "big":
        if matrices:
            names = list(matrices)
        else:
            names = list(
                BIG_BENCH_SMOKE_MATRICES if smoke else BIG_BENCH_MATRICES
            )
            if stretch and not smoke:
                names += list(STRETCH_BENCH_MATRICES)
        problems = {name: registry.load(name) for name in names}
    elif smoke:
        problems = {name: build() for name, build in SMOKE_MATRICES.items()}
    else:
        names = list(matrices) if matrices else list(hb.names())
        problems = {name: registry.load(name) for name in names}
    if repeats is None:
        repeats = (
            BIG_MODE_REPEATS if tier == "big"
            else 1 if smoke else FULL_MODE_REPEATS
        )
    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": tier,
        "smoke": bool(smoke),
        "nprocs": int(nprocs),
        "grain": int(grain),
        "repeats": int(max(1, repeats)),
        "matrices": {
            name: _bench_one(name, graph, nprocs, grain, repeats)
            for name, graph in problems.items()
        },
    }
    if stamp:
        _stamp_provenance(report)
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def _stamp_provenance(report: dict) -> None:
    """Creation time, git SHA and host info: enough to answer "what code
    on what machine produced these numbers" from the file alone."""
    report["created_unix"] = time.time()
    report["git_sha"] = obs_runs.git_sha()
    report["host"] = obs_runs.host_info()


#: The paper-scale sweep grid timed by :func:`bench_sweep`: every
#: partition is measured under at least four processor counts spanning
#: the paper's 16--1024 range, which is exactly the shape staged reuse
#: is built for.
SWEEP_BENCH_GRID = {
    "schemes": ("block", "wrap"),
    "procs": (16, 64, 256, 1024),
    "grains": (4, 25),
    "min_widths": (4,),
}

#: Miniature grid for the CI smoke run: same code path, small matrix,
#: small processor counts, well under a second.
SWEEP_BENCH_SMOKE_GRID = {
    "schemes": ("block", "wrap"),
    "procs": (2, 3, 4, 6),
    "grains": (4,),
    "min_widths": (4,),
}


def _bench_sweep_one(name: str, grid: dict, cache_dir: str, repeats: int) -> dict:
    """Best-of-``repeats`` reuse-off vs reuse-on sweep walls for one
    matrix, plus a value-identity verdict over the full record lists."""
    wall_off = float("inf")
    wall_on = float("inf")
    reference = records = None
    # A detached monitor (its recorder is never enabled) watches RSS
    # without adding span-recording overhead to the timed loops.
    monitor = MemoryMonitor(Recorder(), interval=0.02) if memory_enabled() else None
    if monitor is not None:
        monitor.start()
    try:
        for _ in range(max(1, repeats)):
            gc.collect()
            t0 = time.perf_counter()
            reference = sweep([name], cache_dir=cache_dir, reuse=False, **grid)
            wall_off = min(wall_off, time.perf_counter() - t0)
            gc.collect()
            t0 = time.perf_counter()
            records = sweep([name], cache_dir=cache_dir, reuse=True, **grid)
            wall_on = min(wall_on, time.perf_counter() - t0)
    finally:
        if monitor is not None:
            monitor.stop()
    entry = {
        "cells": len(records),
        "wall_noreuse": wall_off,
        "wall_reuse": wall_on,
        "speedup": wall_off / wall_on if wall_on else float("inf"),
        "records_identical": records == reference,
        "traffic_fingerprint": int(sum(r.traffic_total for r in records)),
    }
    if monitor is not None and monitor.peak_rss:
        entry["mem_peak_mb"] = round(monitor.peak_rss / (1024.0 * 1024.0), 2)
    return entry


def bench_sweep(
    matrices=None,
    smoke: bool = False,
    out: str | Path | None = "BENCH_sweep.json",
    repeats: int | None = None,
    stamp: bool = True,
    tier: str = "paper",
) -> dict:
    """Benchmark staged sweep reuse against the per-cell reference.

    For each matrix the full grid (:data:`SWEEP_BENCH_GRID`, or the
    smoke variant) is swept twice — ``reuse=False`` (one full pipeline
    per cell) and ``reuse=True`` (grouped stages + batched metrics) —
    and the best-of-``repeats`` walls are reported with their ratio.
    Both modes share a warm prepared-matrix disk cache so the comparison
    isolates the staged work; the partition disk cache is warm too,
    which is part of the staged-reuse design being measured, not a
    handicap for the reference (the per-cell path never reads it).
    ``records_identical`` asserts the two modes returned the same
    record lists, so a speedup can never hide a semantics change.

    ``tier="big"`` sweeps the 10^5-unknown generated instances
    (:data:`BIG_SWEEP_MATRICES`) over the *full* paper-scale grid; big
    smoke keeps that grid and only drops to the single smallest
    instance, so smoke and full reports stay cell-for-cell comparable.
    """
    tier = _tier_checked(tier)
    if tier == "big":
        names = list(matrices) if matrices else list(
            BIG_SWEEP_SMOKE_MATRICES if smoke else BIG_SWEEP_MATRICES
        )
        grid = dict(SWEEP_BENCH_GRID)
    elif smoke:
        names = list(matrices) if matrices else ["DWT512"]
        grid = dict(SWEEP_BENCH_SMOKE_GRID)
    else:
        names = list(matrices) if matrices else list(hb.names())
        grid = dict(SWEEP_BENCH_GRID)
    if repeats is None:
        repeats = (
            BIG_MODE_REPEATS if tier == "big"
            else 1 if smoke else FULL_MODE_REPEATS
        )
    entries = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as cache_dir:
        for name in names:
            sweep([name], cache_dir=cache_dir, **grid)  # warm both caches
            entries[name] = _bench_sweep_one(name, grid, cache_dir, repeats)
    total_off = sum(e["wall_noreuse"] for e in entries.values())
    total_on = sum(e["wall_reuse"] for e in entries.values())
    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": tier,
        "smoke": bool(smoke),
        "grid": {k: list(v) for k, v in grid.items()},
        "cells_per_matrix": len(build_grid(names[:1], **grid)),
        "repeats": int(max(1, repeats)),
        "matrices": entries,
        "wall_noreuse_total": total_off,
        "wall_reuse_total": total_on,
        "speedup_overall": total_off / total_on if total_on else float("inf"),
    }
    if stamp:
        _stamp_provenance(report)
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def compare_sweep_reports(current: dict, baseline: dict) -> list[dict]:
    """Per-matrix sweep-wall delta rows for matrices in both reports."""
    rows = []
    base_matrices = baseline.get("matrices", {})
    for name, cur in current.get("matrices", {}).items():
        base = base_matrices.get(name)
        if base is None:
            continue
        for field in ("wall_noreuse", "wall_reuse"):
            b, c = base.get(field), cur.get(field)
            if b is None or c is None:
                continue
            rows.append(
                {
                    "matrix": name,
                    "stage": field,
                    "baseline_s": float(b),
                    "current_s": float(c),
                    "speedup": float(b) / float(c) if c else float("inf"),
                }
            )
        rows.extend(_memory_rows(name, base, cur))
    return rows


def _memory_rows(name: str, base: dict, cur: dict) -> list[dict]:
    """Peak-RSS delta rows (``unit: "mb"``) when both sides carry one.

    The values travel in the ``baseline_s``/``current_s`` keys every
    consumer already reads — :func:`find_regressions` and the runs gate
    apply the same 25% threshold to megabytes as to seconds, and the
    ``unit`` field tells renderers which suffix to print.
    """
    b, c = base.get("mem_peak_mb"), cur.get("mem_peak_mb")
    if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
        return []
    if b <= 0 or c <= 0:
        return []
    return [
        {
            "matrix": name,
            "stage": "mem_peak",
            "baseline_s": float(b),
            "current_s": float(c),
            "speedup": float(b) / float(c),
            "unit": "mb",
        }
    ]


#: Matrix-name display columns never grow past this; longer generator
#: names are truncated with a ".." marker so the tables stay aligned.
_NAME_WIDTH_MAX = 18


def _name_width(names, minimum: int) -> int:
    """Width of the name column: fits the longest name, bounded."""
    return min(max([minimum] + [len(n) for n in names]), _NAME_WIDTH_MAX)


def _fit_name(name: str, width: int) -> str:
    return name if len(name) <= width else name[: width - 2] + ".."


def render_sweep_bench(report: dict) -> str:
    """ASCII summary of a sweep bench report."""
    with_mem = any("mem_peak_mb" in e for e in report["matrices"].values())
    nw = _name_width(report["matrices"], 12)
    headers = ["cells", "no-reuse ms", "reuse ms", "speedup", "identical"]
    if with_mem:
        headers.append("mem_peak_mb")
    lines = [
        "  ".join([f"{'matrix':>{nw}}"] + [f"{h:>12}" for h in headers])
    ]
    for name, e in report["matrices"].items():
        cells = [
            f"{_fit_name(name, nw):>{nw}}",
            f"{e['cells']:>12}",
            f"{e['wall_noreuse'] * 1e3:>12.1f}",
            f"{e['wall_reuse'] * 1e3:>12.1f}",
            f"{e['speedup']:>11.2f}x",
            f"{str(bool(e['records_identical'])):>12}",
        ]
        if with_mem:
            mem = e.get("mem_peak_mb")
            cells.append(f"{mem:>12.1f}" if mem is not None else f"{'-':>12}")
        lines.append("  ".join(cells))
    mode = "smoke" if report.get("smoke") else "full"
    lines.append(
        f"(best-of-{report['repeats']} sweep walls, {mode} mode; "
        f"overall {report['speedup_overall']:.2f}x)"
    )
    return "\n".join(lines)


def render_sweep_delta(current: dict, baseline: dict) -> str:
    """ASCII per-matrix delta table of ``current`` vs ``baseline``."""
    rows = compare_sweep_reports(current, baseline)
    if not rows:
        return "(no comparable matrices between current report and baseline)"
    nw = _name_width([r["matrix"] for r in rows], 12)
    headers = ["mode", "baseline ms", "current ms", "vs baseline"]
    lines = [
        "  ".join([f"{'matrix':>{nw}}"] + [f"{h:>12}" for h in headers])
    ]
    for row in rows:
        lines.append(
            "  ".join(
                [
                    f"{_fit_name(row['matrix'], nw):>{nw}}",
                    f"{row['stage'].removeprefix('wall_'):>12}",
                    f"{row['baseline_s'] * 1e3:>12.1f}",
                    f"{row['current_s'] * 1e3:>12.1f}",
                    f"{row['speedup']:>11.2f}x",
                ]
            )
        )
    lines.append("(>1x means the current run is faster than the baseline)")
    return "\n".join(lines)


def compare_reports(current: dict, baseline: dict) -> list[dict]:
    """Per-stage delta rows for matrices present in both reports.

    Volatile metadata (``created_unix``, repeat counts) is ignored; only
    stage times and wall totals are compared.  ``speedup`` > 1 means the
    current report is faster.
    """
    rows = []
    base_matrices = baseline.get("matrices", {})
    for name, cur in current.get("matrices", {}).items():
        base = base_matrices.get(name)
        if base is None:
            continue
        for stage in list(STAGES) + ["wall_total"]:
            if stage == "wall_total":
                b, c = base.get("wall_total"), cur.get("wall_total")
            else:
                b = base.get("stages", {}).get(stage)
                c = cur.get("stages", {}).get(stage)
            if b is None or c is None:
                continue
            rows.append(
                {
                    "matrix": name,
                    "stage": stage,
                    "baseline_s": float(b),
                    "current_s": float(c),
                    "speedup": float(b) / float(c) if c else float("inf"),
                }
            )
        rows.extend(_memory_rows(name, base, cur))
    return rows


def describe_regression(row: dict) -> str:
    """One human-readable line for a regressed delta row (unit-aware:
    timing rows print milliseconds, memory rows megabytes)."""
    if row.get("unit") == "mb":
        cur, base = row["current_s"], row["baseline_s"]
        return (
            f"{row['matrix']}/{row['stage']}: "
            f"{cur:.1f}MB vs baseline {base:.1f}MB "
            f"({cur / base:.2f}x more memory)"
        )
    return (
        f"{row['matrix']}/{row['stage']}: "
        f"{row['current_s'] * 1e3:.2f}ms vs baseline "
        f"{row['baseline_s'] * 1e3:.2f}ms "
        f"({row['current_s'] / row['baseline_s']:.2f}x slower)"
    )


def find_regressions(
    current: dict, baseline: dict, threshold: float = REGRESSION_THRESHOLD
) -> list[str]:
    """Human-readable descriptions of stages slower (or, for ``mb``
    rows, hungrier) than baseline by more than ``threshold``
    (fractional; 0.25 = 25%)."""
    out = []
    for row in compare_reports(current, baseline):
        if row["current_s"] > row["baseline_s"] * (1.0 + threshold):
            out.append(describe_regression(row))
    return out


def render_delta(current: dict, baseline: dict) -> str:
    """ASCII per-stage delta table of ``current`` vs ``baseline``."""
    rows = compare_reports(current, baseline)
    if not rows:
        return "(no comparable matrices between current report and baseline)"
    stage_names = list(STAGES) + ["wall_total"]
    by_matrix: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_matrix.setdefault(row["matrix"], {})[row["stage"]] = row
    nw = _name_width(by_matrix, 10)
    lines = [
        "  ".join([f"{'matrix':>{nw}}"] + [f"{h:>18}" for h in stage_names])
    ]
    for name, stages in by_matrix.items():
        cells = [f"{_fit_name(name, nw):>{nw}}"]
        for stage in stage_names:
            row = stages.get(stage)
            if row is None:
                cells.append(f"{'-':>18}")
            else:
                cells.append(
                    f"{row['current_s'] * 1e3:>10.2f} {row['speedup']:>5.2f}x"
                )
        lines.append("  ".join(cells))
    lines.append("(current ms and speedup vs baseline; >1x is faster)")
    return "\n".join(lines)


def render_bench(report: dict) -> str:
    """ASCII summary of a bench report (stage milliseconds per matrix)."""
    stage_names = list(STAGES)
    with_mem = any("mem_peak_mb" in e for e in report["matrices"].values())
    nw = _name_width(report["matrices"], 10)
    headers = stage_names + ["total"]
    if with_mem:
        headers.append("mem_peak_mb")
    lines = ["  ".join(
        [f"{'matrix':>{nw}}", f"{'n':>10}", f"{'nnz(L)':>10}"]
        + [f"{h:>18}" for h in headers]
    )]
    for name, entry in report["matrices"].items():
        cells = [
            f"{_fit_name(name, nw):>{nw}}",
            f"{entry['n']:>10}",
            f"{entry['factor_nnz']:>10}",
        ]
        for stage in stage_names:
            cells.append(f"{entry['stages'][stage] * 1e3:>18.2f}")
        cells.append(f"{entry['wall_total'] * 1e3:>18.2f}")
        if with_mem:
            mem = entry.get("mem_peak_mb")
            cells.append(f"{mem:>18.1f}" if mem is not None else f"{'-':>18}")
        lines.append("  ".join(cells))
    mode = "smoke" if report.get("smoke") else "full"
    lines.append(
        f"(stage times in ms; {mode} mode, P={report['nprocs']}, g={report['grain']})"
    )
    return "\n".join(lines)
