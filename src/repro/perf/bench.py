"""Pipeline benchmark harness: per-stage wall times to ``BENCH_pipeline.json``.

Runs the full pipeline (order -> symbolic -> enumerate_updates ->
partition -> dependencies -> schedule -> metrics) on the paper's test
matrices under a scoped :class:`repro.obs.Recorder`, sums the recorded
span durations per stage, and writes one JSON document so successive
PRs have a perf trajectory to regress against.  ``smoke`` mode swaps in
tiny generated grids: it exercises the exact same measurement and
serialization path in well under a second, which is what CI runs on
every push.

Each matrix entry also carries a result fingerprint (traffic total,
imbalance, pair-update count) so a timing regression can be told apart
from a semantics change.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..core.pipeline import block_mapping, prepare
from ..obs import trace as obs
from ..obs.trace import Recorder
from ..sparse import grid9
from ..sparse import harwell_boeing as hb

__all__ = ["BENCH_SCHEMA_VERSION", "STAGES", "bench_pipeline", "render_bench"]

BENCH_SCHEMA_VERSION = 1

#: Stage name in the report -> span name recorded by the pipeline.
STAGES = {
    "order": "pipeline.order",
    "symbolic": "pipeline.symbolic",
    "enumerate_updates": "pipeline.enumerate_updates",
    "partition": "pipeline.partition",
    "dependencies": "pipeline.dependencies",
    "schedule": "pipeline.schedule",
    "metrics": "pipeline.metrics",
}

#: Tiny deterministic problems for smoke mode (CI on every push).
SMOKE_MATRICES = {
    "GRID9x8": lambda: grid9(8, 8),
    "GRID9x12": lambda: grid9(12, 12),
}


def _bench_one(name: str, graph, nprocs: int, grain: int) -> dict:
    with obs.enabled(Recorder()) as rec:
        t0 = time.perf_counter()
        prepared = prepare(graph, name=name)
        prepared.updates  # noqa: B018 - forces the enumerate_updates stage
        result = block_mapping(prepared, nprocs, grain=grain)
        wall = time.perf_counter() - t0
    stages = {
        stage: sum(s.duration for s in rec.spans_named(span_name))
        for stage, span_name in STAGES.items()
    }
    return {
        "n": int(graph.n),
        "factor_nnz": int(prepared.factor_nnz),
        "pair_updates": int(prepared.updates.num_pair_updates),
        "stages": stages,
        "wall_total": wall,
        "traffic_total": int(result.traffic.total),
        "imbalance": float(result.balance.imbalance),
    }


def bench_pipeline(
    matrices=None,
    nprocs: int = 16,
    grain: int = 25,
    smoke: bool = False,
    out: str | Path | None = "BENCH_pipeline.json",
) -> dict:
    """Benchmark the pipeline stages and write the JSON report.

    ``matrices`` defaults to every paper matrix (Table 1/2), or the tiny
    smoke grids when ``smoke`` is set.  Returns the report dict; writes
    it to ``out`` unless ``out`` is ``None``.
    """
    if smoke:
        problems = {name: build() for name, build in SMOKE_MATRICES.items()}
    else:
        names = list(matrices) if matrices else list(hb.names())
        problems = {name: hb.load(name) for name in names}
    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "created_unix": time.time(),
        "smoke": bool(smoke),
        "nprocs": int(nprocs),
        "grain": int(grain),
        "matrices": {
            name: _bench_one(name, graph, nprocs, grain)
            for name, graph in problems.items()
        },
    }
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def render_bench(report: dict) -> str:
    """ASCII summary of a bench report (stage milliseconds per matrix)."""
    stage_names = list(STAGES)
    headers = ["matrix", "n", "nnz(L)"] + stage_names + ["total"]
    lines = ["  ".join(f"{h:>18}" if i > 2 else f"{h:>10}" for i, h in enumerate(headers))]
    for name, entry in report["matrices"].items():
        cells = [f"{name:>10}", f"{entry['n']:>10}", f"{entry['factor_nnz']:>10}"]
        for stage in stage_names:
            cells.append(f"{entry['stages'][stage] * 1e3:>18.2f}")
        cells.append(f"{entry['wall_total'] * 1e3:>18.2f}")
        lines.append("  ".join(cells))
    mode = "smoke" if report.get("smoke") else "full"
    lines.append(
        f"(stage times in ms; {mode} mode, P={report['nprocs']}, g={report['grain']})"
    )
    return "\n".join(lines)
