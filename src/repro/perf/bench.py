"""Pipeline benchmark harness: per-stage wall times to ``BENCH_pipeline.json``.

Runs the full pipeline (order -> symbolic -> enumerate_updates ->
partition -> dependencies -> schedule -> metrics) on the paper's test
matrices under a scoped :class:`repro.obs.Recorder`, sums the recorded
span durations per stage, and writes one JSON document so successive
PRs have a perf trajectory to regress against.  ``smoke`` mode swaps in
tiny generated grids: it exercises the exact same measurement and
serialization path in well under a second, which is what CI runs on
every push.

Each matrix entry also carries a result fingerprint (traffic total,
imbalance, pair-update count) so a timing regression can be told apart
from a semantics change.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from ..core.pipeline import block_mapping, prepare
from ..obs import trace as obs
from ..obs.trace import Recorder
from ..sparse import grid9
from ..sparse import harwell_boeing as hb

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "STAGES",
    "bench_pipeline",
    "compare_reports",
    "find_regressions",
    "render_bench",
    "render_delta",
]

BENCH_SCHEMA_VERSION = 1

#: A stage regression beyond this fraction of the baseline fails a
#: full-mode ``repro bench`` run.
REGRESSION_THRESHOLD = 0.25

#: Best-of-N repeats in full mode; smoke mode uses a single run.
FULL_MODE_REPEATS = 3

#: Stage name in the report -> span name recorded by the pipeline.
STAGES = {
    "order": "pipeline.order",
    "symbolic": "pipeline.symbolic",
    "enumerate_updates": "pipeline.enumerate_updates",
    "partition": "pipeline.partition",
    "dependencies": "pipeline.dependencies",
    "schedule": "pipeline.schedule",
    "metrics": "pipeline.metrics",
}

#: Tiny deterministic problems for smoke mode (CI on every push).
SMOKE_MATRICES = {
    "GRID9x8": lambda: grid9(8, 8),
    "GRID9x12": lambda: grid9(12, 12),
}


def _bench_once(name: str, graph, nprocs: int, grain: int) -> dict:
    with obs.enabled(Recorder()) as rec:
        t0 = time.perf_counter()
        prepared = prepare(graph, name=name)
        prepared.updates  # noqa: B018 - forces the enumerate_updates stage
        result = block_mapping(prepared, nprocs, grain=grain)
        wall = time.perf_counter() - t0
    stages = {
        stage: sum(s.duration for s in rec.spans_named(span_name))
        for stage, span_name in STAGES.items()
    }
    return {
        "n": int(graph.n),
        "factor_nnz": int(prepared.factor_nnz),
        "pair_updates": int(prepared.updates.num_pair_updates),
        "stages": stages,
        "wall_total": wall,
        "traffic_total": int(result.traffic.total),
        "imbalance": float(result.balance.imbalance),
    }


def _bench_one(name: str, graph, nprocs: int, grain: int, repeats: int) -> dict:
    """Best-of-``repeats`` per-stage timings (garbage collected between
    runs so one matrix's allocation debris is not billed to the next);
    result fingerprints come from the first run and are identical across
    repeats by construction (the pipeline is deterministic)."""
    runs = []
    for _ in range(max(1, repeats)):
        gc.collect()
        runs.append(_bench_once(name, graph, nprocs, grain))
    entry = runs[0]
    entry["stages"] = {
        stage: min(r["stages"][stage] for r in runs) for stage in STAGES
    }
    entry["wall_total"] = min(r["wall_total"] for r in runs)
    return entry


def bench_pipeline(
    matrices=None,
    nprocs: int = 16,
    grain: int = 25,
    smoke: bool = False,
    out: str | Path | None = "BENCH_pipeline.json",
    repeats: int | None = None,
    stamp: bool = True,
) -> dict:
    """Benchmark the pipeline stages and write the JSON report.

    ``matrices`` defaults to every paper matrix (Table 1/2), or the tiny
    smoke grids when ``smoke`` is set.  ``repeats`` defaults to
    :data:`FULL_MODE_REPEATS` (best-of-N) in full mode and 1 in smoke
    mode.  ``stamp=False`` omits the ``created_unix`` timestamp so two
    runs of the same tree produce byte-identical reports; comparisons
    (:func:`compare_reports`) never look at the timestamp either way.
    Returns the report dict; writes it to ``out`` unless ``out`` is
    ``None``.
    """
    if smoke:
        problems = {name: build() for name, build in SMOKE_MATRICES.items()}
    else:
        names = list(matrices) if matrices else list(hb.names())
        problems = {name: hb.load(name) for name in names}
    if repeats is None:
        repeats = 1 if smoke else FULL_MODE_REPEATS
    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "smoke": bool(smoke),
        "nprocs": int(nprocs),
        "grain": int(grain),
        "repeats": int(max(1, repeats)),
        "matrices": {
            name: _bench_one(name, graph, nprocs, grain, repeats)
            for name, graph in problems.items()
        },
    }
    if stamp:
        report["created_unix"] = time.time()
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def compare_reports(current: dict, baseline: dict) -> list[dict]:
    """Per-stage delta rows for matrices present in both reports.

    Volatile metadata (``created_unix``, repeat counts) is ignored; only
    stage times and wall totals are compared.  ``speedup`` > 1 means the
    current report is faster.
    """
    rows = []
    base_matrices = baseline.get("matrices", {})
    for name, cur in current.get("matrices", {}).items():
        base = base_matrices.get(name)
        if base is None:
            continue
        for stage in list(STAGES) + ["wall_total"]:
            if stage == "wall_total":
                b, c = base.get("wall_total"), cur.get("wall_total")
            else:
                b = base.get("stages", {}).get(stage)
                c = cur.get("stages", {}).get(stage)
            if b is None or c is None:
                continue
            rows.append(
                {
                    "matrix": name,
                    "stage": stage,
                    "baseline_s": float(b),
                    "current_s": float(c),
                    "speedup": float(b) / float(c) if c else float("inf"),
                }
            )
    return rows


def find_regressions(
    current: dict, baseline: dict, threshold: float = REGRESSION_THRESHOLD
) -> list[str]:
    """Human-readable descriptions of stages slower than baseline by more
    than ``threshold`` (fractional; 0.25 = 25%)."""
    out = []
    for row in compare_reports(current, baseline):
        if row["current_s"] > row["baseline_s"] * (1.0 + threshold):
            out.append(
                f"{row['matrix']}/{row['stage']}: "
                f"{row['current_s'] * 1e3:.2f}ms vs baseline "
                f"{row['baseline_s'] * 1e3:.2f}ms "
                f"({row['current_s'] / row['baseline_s']:.2f}x slower)"
            )
    return out


def render_delta(current: dict, baseline: dict) -> str:
    """ASCII per-stage delta table of ``current`` vs ``baseline``."""
    rows = compare_reports(current, baseline)
    if not rows:
        return "(no comparable matrices between current report and baseline)"
    stage_names = list(STAGES) + ["wall_total"]
    by_matrix: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_matrix.setdefault(row["matrix"], {})[row["stage"]] = row
    headers = ["matrix"] + stage_names
    lines = [
        "  ".join(f"{h:>18}" if i else f"{h:>10}" for i, h in enumerate(headers))
    ]
    for name, stages in by_matrix.items():
        cells = [f"{name:>10}"]
        for stage in stage_names:
            row = stages.get(stage)
            if row is None:
                cells.append(f"{'-':>18}")
            else:
                cells.append(
                    f"{row['current_s'] * 1e3:>10.2f} {row['speedup']:>5.2f}x"
                )
        lines.append("  ".join(cells))
    lines.append("(current ms and speedup vs baseline; >1x is faster)")
    return "\n".join(lines)


def render_bench(report: dict) -> str:
    """ASCII summary of a bench report (stage milliseconds per matrix)."""
    stage_names = list(STAGES)
    headers = ["matrix", "n", "nnz(L)"] + stage_names + ["total"]
    lines = ["  ".join(f"{h:>18}" if i > 2 else f"{h:>10}" for i, h in enumerate(headers))]
    for name, entry in report["matrices"].items():
        cells = [f"{name:>10}", f"{entry['n']:>10}", f"{entry['factor_nnz']:>10}"]
        for stage in stage_names:
            cells.append(f"{entry['stages'][stage] * 1e3:>18.2f}")
        cells.append(f"{entry['wall_total'] * 1e3:>18.2f}")
        lines.append("  ".join(cells))
    mode = "smoke" if report.get("smoke") else "full"
    lines.append(
        f"(stage times in ms; {mode} mode, P={report['nprocs']}, g={report['grain']})"
    )
    return "\n".join(lines)
