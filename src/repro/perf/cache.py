"""Content-addressed disk cache for :func:`repro.core.pipeline.prepare`.

Ordering and symbolic factorization are the sweep-invariant, Python-loop
heavy stages of the pipeline; everything downstream (partitioning,
scheduling, metrics) re-derives cheaply from their output.  This module
persists that output so repeated sweeps — and every worker process of a
parallel sweep — skip both stages entirely.

Cache entries are keyed by a SHA-256 over the *content* of the input
structure (CSR arrays of the :class:`SymmetricGraph`), the ordering
algorithm name, and :data:`CACHE_VERSION`, so a matrix generator tweak
or an ordering change can never serve a stale entry.  Entries are
``.npz`` files laid out ``<root>/<key[:2]>/<key>.npz`` and carry the
version redundantly inside the payload; an entry that is unreadable,
fails validation, or was written by a different version is **ignored**
(treated as a miss and recomputed), never trusted.

Observability: loads and stores run under ``perf.cache.load`` /
``perf.cache.store`` spans and bump ``perf.cache.hit`` /
``perf.cache.miss`` (plus ``perf.cache.store``) counters.  Alongside
the per-run counters, a ``stats.json`` in the cache root keeps
*advisory* lifetime hit/miss/store totals (best-effort: concurrent
writers may drop increments, unwritable roots are ignored) read back by
``python -m repro cache stats``.  Entry files are mtime-touched on
every hit, which makes :func:`prune_cache` — ``python -m repro cache
prune --max-bytes N`` — a true LRU: it evicts the least recently *used*
entries, not merely the oldest written.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from ..core.blocks import BlockKind, DenseBlock, UnitBlock
from ..core.clusters import Cluster, ClusterSet
from ..core.dependencies import DependencyInfo
from ..core.partitioner import PARTITION_IMPL_VERSION, Partition
from ..core.pipeline import (
    PartitionedMatrix,
    PreparedMatrix,
    partition_prepared,
    prepare,
)
from ..obs import trace as obs
from ..ordering import ORDERING_IMPL_VERSION
from ..sparse.dtypes import index_dtype
from ..sparse.pattern import LowerPattern, SymmetricGraph
from ..sparse.registry import BIG_TIER_MIN_N
from ..symbolic.fill import SYMBOLIC_IMPL_VERSION, SymbolicFactor

__all__ = [
    "CACHE_VERSION",
    "PrepareCache",
    "PartitionCache",
    "cache_max_bytes",
    "cached_prepare",
    "cached_partition",
    "cache_stats",
    "default_cache_dir",
    "parse_bytes",
    "prepare_key",
    "partition_key",
    "prune_cache",
    "render_cache_stats",
]

#: Bump whenever the on-disk payload layout or the semantics of any
#: cached stage change; old entries then miss on both key and payload.
#: v2: index arrays stored at their narrow (int32-capable) dtypes.
CACHE_VERSION = 2


def parse_bytes(text: str) -> int:
    """Parse a byte size with optional K/M/G suffix (e.g. ``100M``)."""
    raw = text.strip().upper()
    scale = 1
    for suffix, mult in (("K", 1024), ("M", 1024**2), ("G", 1024**3)):
        if raw.endswith(suffix):
            raw, scale = raw[:-1], mult
            break
    value = int(float(raw) * scale)
    if value < 0:
        raise ValueError("size must be >= 0")
    return value


def cache_max_bytes() -> int | None:
    """The ``$REPRO_CACHE_MAX_BYTES`` budget, or ``None`` when unset.

    When set, every successful store auto-prunes the cache back to this
    budget (LRU), and ``repro cache prune`` uses it as the default
    ``--max-bytes``.  Unparsable values are ignored.
    """
    env = os.environ.get("REPRO_CACHE_MAX_BYTES", "")
    if not env.strip():
        return None
    try:
        return parse_bytes(env)
    except ValueError:
        return None


def _auto_prune(root: Path) -> None:
    budget = cache_max_bytes()
    if budget is not None:
        prune_cache(root, max_bytes=budget)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-prepare``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-prepare"


def _bump_stats(root: Path, field: str) -> None:
    """Advisory lifetime counter bump in ``<root>/stats.json``.

    Best-effort by design: racing writers may lose an increment and a
    read-only root is silently skipped — the counters inform ``cache
    stats``, they never gate correctness.
    """
    path = root / "stats.json"
    try:
        try:
            doc = json.loads(path.read_text())
            if not isinstance(doc, dict):
                doc = {}
        except (OSError, ValueError):
            doc = {}
        doc[field] = int(doc.get(field, 0)) + 1
        root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=root, suffix=".json.tmp")
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        pass


def _touch(path: Path) -> None:
    """Refresh an entry's mtime on hit so LRU pruning sees real usage."""
    try:
        os.utime(path)
    except OSError:
        pass


def prepare_key(graph: SymmetricGraph, ordering: str) -> str:
    """Content hash identifying one (structure, ordering) prepare result.

    Includes the ordering- and symbolic-implementation version tags, so
    warm caches written by an older kernel are invalidated (treated as
    misses) rather than silently reused after a rewrite.
    """
    impl = ORDERING_IMPL_VERSION.get(ordering, 0)
    h = hashlib.sha256()
    h.update(
        f"repro-prepare|v{CACHE_VERSION}|{ordering}"
        f"|impl{impl}|sym{SYMBOLIC_IMPL_VERSION}|{graph.n}|".encode()
    )
    h.update(np.ascontiguousarray(graph.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(graph.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


class PrepareCache:
    """Disk cache mapping (structure, ordering) -> prepared factorization."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str, n: int | None = None) -> Path:
        """Entry path; big-tier problems get a ``.big.npz`` suffix so
        ``cache stats`` can split byte totals by tier."""
        if n is not None and n >= BIG_TIER_MIN_N:
            return self.root / key[:2] / f"{key}.big.npz"
        return self.root / key[:2] / f"{key}.npz"

    # ------------------------------------------------------------------
    def load(
        self, graph: SymmetricGraph, ordering: str = "mmd", name: str = ""
    ) -> PreparedMatrix | None:
        """Return the cached prepare result, or ``None`` on any miss.

        Corrupted, truncated, incomplete or version-mismatched entries
        are treated as misses — the caller recomputes and overwrites.
        """
        key = prepare_key(graph, ordering)
        path = self.path_for(key, graph.n)
        with obs.span("perf.cache.load", key=key[:12], matrix=name or "matrix"):
            try:
                with np.load(path) as data:
                    if int(data["version"]) != CACHE_VERSION:
                        raise ValueError("cache version mismatch")
                    perm = np.asarray(data["perm"], dtype=np.int64)
                    parent = np.asarray(data["parent"], dtype=np.int64)
                    indptr = np.asarray(data["indptr"], dtype=np.int64)
                    # Row indices keep the narrow storage dtype the
                    # symbolic stage would have produced natively.
                    rowidx = np.asarray(
                        data["rowidx"], dtype=index_dtype(graph.n)
                    )
                # LowerPattern validates shape/diagonal invariants; a
                # mangled payload raises here and counts as a miss.
                pattern = LowerPattern(graph.n, indptr, rowidx)
                if len(perm) != graph.n or len(parent) != graph.n:
                    raise ValueError("cache payload has wrong order")
            except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
                if not isinstance(exc, FileNotFoundError):
                    obs.counter("perf.cache.invalid")
                obs.counter("perf.cache.miss")
                _bump_stats(self.root, "prepare.miss")
                return None
        obs.counter("perf.cache.hit")
        _bump_stats(self.root, "prepare.hit")
        _touch(path)
        return PreparedMatrix(
            name=name or "matrix",
            graph=graph,
            perm=perm,
            symbolic=SymbolicFactor(pattern, parent, perm),
        )

    def store(
        self, graph: SymmetricGraph, ordering: str, prepared: PreparedMatrix
    ) -> Path:
        """Persist a prepare result atomically (write-temp + rename)."""
        key = prepare_key(graph, ordering)
        path = self.path_for(key, graph.n)
        with obs.span("perf.cache.store", key=key[:12], matrix=prepared.name):
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(
                        fh,
                        version=np.int64(CACHE_VERSION),
                        perm=prepared.perm,
                        parent=prepared.symbolic.parent,
                        indptr=prepared.pattern.indptr,
                        rowidx=prepared.pattern.rowidx,
                    )
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        obs.counter("perf.cache.store")
        _bump_stats(self.root, "prepare.store")
        _auto_prune(self.root)
        return path


def partition_key(
    graph: SymmetricGraph, ordering: str, grain: int, min_width: int
) -> str:
    """Content hash identifying one partition + dependency result.

    Layered on :func:`prepare_key` (so it inherits the structure hash
    and the ordering/symbolic impl tags) plus the partition parameters
    and :data:`~repro.core.partitioner.PARTITION_IMPL_VERSION`, the
    partition/dependency stage's own impl-version tag.
    """
    h = hashlib.sha256()
    h.update(
        f"repro-partition|v{CACHE_VERSION}|impl{PARTITION_IMPL_VERSION}"
        f"|g{grain}|w{min_width}|".encode()
    )
    h.update(prepare_key(graph, ordering).encode())
    return h.hexdigest()


_KIND_CODES = {BlockKind.COLUMN: 0, BlockKind.TRIANGLE: 1, BlockKind.RECTANGLE: 2}
_KIND_OF_CODE = {code: kind for kind, code in _KIND_CODES.items()}


class PartitionCache:
    """Disk cache for the nprocs-invariant partition/dependency stage.

    Maps (structure, ordering, grain, min_width) to the
    :class:`~repro.core.pipeline.PartitionedMatrix` payload: unit
    blocks, cluster geometry, dependency edges and per-unit work.  Unit
    element lists are *not* stored — they are regrouped from
    ``unit_of_element`` on load (element ids are ascending within every
    unit, so the regrouping is exact).  Only the default
    ``zero_tolerance == 0`` / ``grain_rectangle is None`` configuration
    is cacheable; anything else bypasses this cache.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str, n: int | None = None) -> Path:
        if n is not None and n >= BIG_TIER_MIN_N:
            return self.root / key[:2] / f"{key}.part.big.npz"
        return self.root / key[:2] / f"{key}.part.npz"

    # ------------------------------------------------------------------
    def load(
        self,
        prepared: PreparedMatrix,
        grain: int,
        min_width: int,
        ordering: str = "mmd",
    ) -> PartitionedMatrix | None:
        """Return the cached partition stage, or ``None`` on any miss."""
        key = partition_key(prepared.graph, ordering, grain, min_width)
        path = self.path_for(key, prepared.graph.n)
        with obs.span(
            "perf.cache.partition.load", key=key[:12], matrix=prepared.name
        ):
            try:
                with np.load(path) as data:
                    if int(data["version"]) != CACHE_VERSION:
                        raise ValueError("cache version mismatch")
                    if int(data["impl"]) != PARTITION_IMPL_VERSION:
                        raise ValueError("partition impl version mismatch")
                    payload = {name: np.asarray(data[name]) for name in data.files}
                partitioned = self._rebuild(prepared, grain, min_width, payload)
            except (OSError, KeyError, ValueError, IndexError, zipfile.BadZipFile) as exc:
                if not isinstance(exc, FileNotFoundError):
                    obs.counter("perf.cache.partition.invalid")
                obs.counter("perf.cache.partition.miss")
                _bump_stats(self.root, "partition.miss")
                return None
        obs.counter("perf.cache.partition.hit")
        _bump_stats(self.root, "partition.hit")
        _touch(path)
        return partitioned

    def _rebuild(
        self,
        prepared: PreparedMatrix,
        grain: int,
        min_width: int,
        data: dict,
    ) -> PartitionedMatrix:
        pattern = prepared.pattern
        unit_of_element = data["unit_of_element"].astype(np.int64)
        if len(unit_of_element) != pattern.nnz:
            raise ValueError("cache payload covers a different element count")
        u_kind = data["u_kind"].astype(np.int64)
        u_cluster = data["u_cluster"].astype(np.int64)
        u_extents = data["u_extents"].astype(np.int64)
        u_parent = data["u_parent"].astype(np.int64)
        u_order = data["u_order"].astype(np.int64)
        n_units = len(u_kind)
        if unit_of_element.size and (
            unit_of_element.min() < 0 or unit_of_element.max() >= n_units
        ):
            raise ValueError("cache payload has out-of-range unit ids")

        # Element lists regrouped from the ownership array: a stable
        # argsort keeps ids ascending inside every unit, exactly as the
        # partitioner emitted them.
        order = np.argsort(unit_of_element, kind="stable")
        bounds = np.searchsorted(
            unit_of_element[order], np.arange(n_units + 1, dtype=np.int64)
        )
        units = [
            UnitBlock(
                uid=u,
                kind=_KIND_OF_CODE[int(u_kind[u])],
                cluster=int(u_cluster[u]),
                col_lo=int(u_extents[u, 0]),
                col_hi=int(u_extents[u, 1]),
                row_lo=int(u_extents[u, 2]),
                row_hi=int(u_extents[u, 3]),
                elements=order[bounds[u] : bounds[u + 1]],
                parent_kind=_KIND_OF_CODE[int(u_parent[u])],
                order_key=tuple(int(x) for x in u_order[u]),
            )
            for u in range(n_units)
        ]

        c_col_lo = data["c_col_lo"].astype(np.int64)
        c_col_hi = data["c_col_hi"].astype(np.int64)
        c_is_col = data["c_is_col"].astype(bool)
        c_tri_pad = data["c_tri_pad"].astype(np.int64)
        c_rect_pad = data["c_rect_pad"].astype(np.int64)
        c_col_row_hi = data["c_col_row_hi"].astype(np.int64)
        rect_indptr = data["rect_indptr"].astype(np.int64)
        rect_rows = data["rect_rows"].astype(np.int64).reshape(-1, 2)
        clusters = []
        for i in range(len(c_col_lo)):
            lo, hi = int(c_col_lo[i]), int(c_col_hi[i])
            if c_is_col[i]:
                clusters.append(
                    Cluster(
                        i, lo, hi, None, (),
                        column=DenseBlock(
                            BlockKind.COLUMN, i, lo, hi, lo, int(c_col_row_hi[i])
                        ),
                        triangle_padding=int(c_tri_pad[i]),
                        rectangle_padding=int(c_rect_pad[i]),
                    )
                )
                continue
            rects = tuple(
                DenseBlock(BlockKind.RECTANGLE, i, lo, hi, int(r0), int(r1))
                for r0, r1 in rect_rows[rect_indptr[i] : rect_indptr[i + 1]]
            )
            clusters.append(
                Cluster(
                    i, lo, hi,
                    DenseBlock(BlockKind.TRIANGLE, i, lo, hi, lo, hi),
                    rects,
                    triangle_padding=int(c_tri_pad[i]),
                    rectangle_padding=int(c_rect_pad[i]),
                )
            )
        cluster_set = ClusterSet(pattern, tuple(clusters), min_width, 0.0)

        partition = Partition(
            pattern=pattern,
            clusters=cluster_set,
            units=units,
            unit_of_element=unit_of_element,
            grain_triangle=grain,
            grain_rectangle=int(data["grain_rectangle"]),
        )
        edges = data["edges"].astype(np.int64).reshape(-1, 2)
        category_counts = dict(
            zip(
                data["cat_keys"].astype(np.int64).tolist(),
                data["cat_vals"].astype(np.int64).tolist(),
            )
        )
        dependencies = DependencyInfo(
            partition, edges, category_counts, bool(data["dep_include_scale"])
        )
        return PartitionedMatrix(
            prepared=prepared,
            partition=partition,
            dependencies=dependencies,
            unit_work=data["unit_work"].astype(np.int64),
            grain=grain,
            min_width=min_width,
        )

    def store(
        self,
        prepared: PreparedMatrix,
        partitioned: PartitionedMatrix,
        ordering: str = "mmd",
    ) -> Path:
        """Persist the partition stage atomically (write-temp + rename)."""
        key = partition_key(
            prepared.graph, ordering, partitioned.grain, partitioned.min_width
        )
        path = self.path_for(key, prepared.graph.n)
        partition = partitioned.partition
        units = partition.units
        clusters = partition.clusters
        rect_counts = [
            0 if c.is_column else len(c.rectangles) for c in clusters
        ]
        rect_rows = np.asarray(
            [
                (r.row_lo, r.row_hi)
                for c in clusters
                if not c.is_column
                for r in c.rectangles
            ],
            dtype=np.int64,
        ).reshape(-1, 2)
        with obs.span(
            "perf.cache.partition.store", key=key[:12], matrix=prepared.name
        ):
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(
                        fh,
                        version=np.int64(CACHE_VERSION),
                        impl=np.int64(PARTITION_IMPL_VERSION),
                        grain=np.int64(partitioned.grain),
                        min_width=np.int64(partitioned.min_width),
                        grain_rectangle=np.int64(partition.grain_rectangle),
                        # Stored narrow (unit ids fit int32 far before
                        # nnz does); loads widen back to the partition
                        # stage's native int64.
                        unit_of_element=partition.unit_of_element.astype(
                            index_dtype(max(len(units), 1)), copy=False
                        ),
                        u_kind=np.asarray(
                            [_KIND_CODES[u.kind] for u in units], dtype=np.int64
                        ),
                        u_cluster=np.asarray(
                            [u.cluster for u in units], dtype=np.int64
                        ),
                        u_extents=np.asarray(
                            [
                                (u.col_lo, u.col_hi, u.row_lo, u.row_hi)
                                for u in units
                            ],
                            dtype=np.int64,
                        ).reshape(-1, 4),
                        u_parent=np.asarray(
                            [_KIND_CODES[u.parent_kind] for u in units],
                            dtype=np.int64,
                        ),
                        u_order=np.asarray(
                            [u.order_key for u in units], dtype=np.int64
                        ).reshape(-1, 5),
                        c_col_lo=np.asarray(
                            [c.col_lo for c in clusters], dtype=np.int64
                        ),
                        c_col_hi=np.asarray(
                            [c.col_hi for c in clusters], dtype=np.int64
                        ),
                        c_is_col=np.asarray(
                            [c.is_column for c in clusters], dtype=bool
                        ),
                        c_tri_pad=np.asarray(
                            [c.triangle_padding for c in clusters], dtype=np.int64
                        ),
                        c_rect_pad=np.asarray(
                            [c.rectangle_padding for c in clusters], dtype=np.int64
                        ),
                        c_col_row_hi=np.asarray(
                            [
                                c.column.row_hi if c.is_column else -1
                                for c in clusters
                            ],
                            dtype=np.int64,
                        ),
                        rect_indptr=np.concatenate(
                            [[0], np.cumsum(rect_counts)]
                        ).astype(np.int64),
                        rect_rows=rect_rows,
                        edges=partitioned.dependencies.edges,
                        cat_keys=np.asarray(
                            list(partitioned.dependencies.category_counts),
                            dtype=np.int64,
                        ),
                        cat_vals=np.asarray(
                            list(partitioned.dependencies.category_counts.values()),
                            dtype=np.int64,
                        ),
                        dep_include_scale=np.bool_(
                            partitioned.dependencies.include_scale
                        ),
                        unit_work=np.asarray(partitioned.unit_work, dtype=np.int64),
                    )
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        obs.counter("perf.cache.partition.store")
        _bump_stats(self.root, "partition.store")
        _auto_prune(self.root)
        return path


def cached_partition(
    prepared: PreparedMatrix,
    grain: int = 4,
    min_width: int = 4,
    ordering: str = "mmd",
    cache_dir: str | Path | None = None,
) -> PartitionedMatrix:
    """:func:`repro.core.pipeline.partition_prepared` through the disk
    cache.

    A hit skips the partition and dependency-analysis stages entirely; a
    miss runs them and stores the result for the next caller.
    """
    cache = PartitionCache(cache_dir)
    hit = cache.load(prepared, grain, min_width, ordering)
    if hit is not None:
        return hit
    partitioned = partition_prepared(prepared, grain=grain, min_width=min_width)
    cache.store(prepared, partitioned, ordering)
    return partitioned


def cached_prepare(
    graph: SymmetricGraph,
    ordering: str = "mmd",
    name: str = "",
    cache_dir: str | Path | None = None,
) -> PreparedMatrix:
    """:func:`repro.core.pipeline.prepare` through the disk cache.

    A hit skips the ordering and symbolic stages entirely; a miss runs
    them and stores the result for the next caller.
    """
    cache = PrepareCache(cache_dir)
    hit = cache.load(graph, ordering, name)
    if hit is not None:
        return hit
    prepared = prepare(graph, ordering=ordering, name=name)
    cache.store(graph, ordering, prepared)
    return prepared


def _cache_entries(root: Path) -> list[tuple[Path, int, float]]:
    """Every ``.npz`` entry under the two-level fanout as
    ``(path, size_bytes, mtime)``; unreadable files are skipped."""
    entries: list[tuple[Path, int, float]] = []
    if not root.is_dir():
        return entries
    for shard in sorted(root.iterdir()):
        if not (shard.is_dir() and len(shard.name) == 2):
            continue
        for path in sorted(shard.glob("*.npz")):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((path, st.st_size, st.st_mtime))
    return entries


def _entry_kind_tier(path: Path) -> tuple[str, str]:
    """Classify an entry file by (kind, tier) from its name suffix."""
    name = path.name
    kind = "partition" if (
        name.endswith(".part.npz") or name.endswith(".part.big.npz")
    ) else "prepare"
    tier = "big" if name.endswith(".big.npz") else "small"
    return kind, tier


def cache_stats(root: str | Path | None = None) -> dict:
    """Snapshot of the cache directory: entry counts and bytes split by
    kind (prepare vs partition) and by tier (small vs big), plus the
    advisory lifetime hit/miss counters from ``stats.json`` and the
    active ``$REPRO_CACHE_MAX_BYTES`` budget (``None`` when unset)."""
    base = Path(root) if root is not None else default_cache_dir()
    kinds = {
        "prepare": {"entries": 0, "bytes": 0},
        "partition": {"entries": 0, "bytes": 0},
    }
    tiers = {
        "small": {"entries": 0, "bytes": 0},
        "big": {"entries": 0, "bytes": 0},
    }
    for path, size, _ in _cache_entries(base):
        kind, tier = _entry_kind_tier(path)
        kinds[kind]["entries"] += 1
        kinds[kind]["bytes"] += size
        tiers[tier]["entries"] += 1
        tiers[tier]["bytes"] += size
    try:
        counters = json.loads((base / "stats.json").read_text())
        if not isinstance(counters, dict):
            counters = {}
    except (OSError, ValueError):
        counters = {}
    return {
        "root": str(base),
        "prepare": kinds["prepare"],
        "partition": kinds["partition"],
        "tiers": tiers,
        "total_bytes": kinds["prepare"]["bytes"] + kinds["partition"]["bytes"],
        "max_bytes": cache_max_bytes(),
        "counters": {k: counters[k] for k in sorted(counters)},
    }


def prune_cache(root: str | Path | None = None, max_bytes: int = 0) -> dict:
    """Evict least-recently-used entries until the cache fits
    ``max_bytes``.

    Hits refresh an entry's mtime (:func:`_touch`), so mtime order *is*
    recency order.  Newest entries are kept while they fit the budget;
    everything older is deleted.  Returns ``{"removed", "freed_bytes",
    "kept", "kept_bytes"}``.
    """
    base = Path(root) if root is not None else default_cache_dir()
    entries = _cache_entries(base)
    entries.sort(key=lambda e: e[2], reverse=True)  # newest first
    kept = removed = freed = kept_bytes = 0
    budget = max(0, int(max_bytes))
    for path, size, _ in entries:
        if kept_bytes + size <= budget:
            kept += 1
            kept_bytes += size
            continue
        try:
            path.unlink()
        except OSError:
            continue
        removed += 1
        freed += size
    return {
        "removed": removed,
        "freed_bytes": freed,
        "kept": kept,
        "kept_bytes": kept_bytes,
    }


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{int(n)}B"


def render_cache_stats(stats: dict) -> str:
    """ASCII summary of :func:`cache_stats` for ``repro cache stats``."""
    lines = [f"cache root: {stats['root']}"]
    for kind in ("prepare", "partition"):
        block = stats.get(kind, {})
        lines.append(
            f"  {kind:<9}  {block.get('entries', 0):>5} entries"
            f"  {_fmt_bytes(block.get('bytes', 0)):>10}"
        )
    for tier in ("small", "big"):
        block = stats.get("tiers", {}).get(tier, {})
        lines.append(
            f"  tier {tier:<4}  {block.get('entries', 0):>5} entries"
            f"  {_fmt_bytes(block.get('bytes', 0)):>10}"
        )
    lines.append(f"  {'total':<9}  {'':>5}         {_fmt_bytes(stats.get('total_bytes', 0)):>10}")
    if stats.get("max_bytes") is not None:
        lines.append(
            f"  budget ($REPRO_CACHE_MAX_BYTES): {_fmt_bytes(stats['max_bytes'])}"
        )
    counters = stats.get("counters", {})
    if counters:
        lines.append("lifetime counters:")
        for key in sorted(counters):
            lines.append(f"  {key:<18} {counters[key]}")
    else:
        lines.append("lifetime counters: (none recorded)")
    return "\n".join(lines)
