"""Content-addressed disk cache for :func:`repro.core.pipeline.prepare`.

Ordering and symbolic factorization are the sweep-invariant, Python-loop
heavy stages of the pipeline; everything downstream (partitioning,
scheduling, metrics) re-derives cheaply from their output.  This module
persists that output so repeated sweeps — and every worker process of a
parallel sweep — skip both stages entirely.

Cache entries are keyed by a SHA-256 over the *content* of the input
structure (CSR arrays of the :class:`SymmetricGraph`), the ordering
algorithm name, and :data:`CACHE_VERSION`, so a matrix generator tweak
or an ordering change can never serve a stale entry.  Entries are
``.npz`` files laid out ``<root>/<key[:2]>/<key>.npz`` and carry the
version redundantly inside the payload; an entry that is unreadable,
fails validation, or was written by a different version is **ignored**
(treated as a miss and recomputed), never trusted.

Observability: loads and stores run under ``perf.cache.load`` /
``perf.cache.store`` spans and bump ``perf.cache.hit`` /
``perf.cache.miss`` (plus ``perf.cache.store``) counters.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from ..core.pipeline import PreparedMatrix, prepare
from ..obs import trace as obs
from ..ordering import ORDERING_IMPL_VERSION
from ..sparse.pattern import LowerPattern, SymmetricGraph
from ..symbolic.fill import SYMBOLIC_IMPL_VERSION, SymbolicFactor

__all__ = [
    "CACHE_VERSION",
    "PrepareCache",
    "cached_prepare",
    "default_cache_dir",
    "prepare_key",
]

#: Bump whenever the on-disk payload layout or the semantics of any
#: cached stage change; old entries then miss on both key and payload.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-prepare``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-prepare"


def prepare_key(graph: SymmetricGraph, ordering: str) -> str:
    """Content hash identifying one (structure, ordering) prepare result.

    Includes the ordering- and symbolic-implementation version tags, so
    warm caches written by an older kernel are invalidated (treated as
    misses) rather than silently reused after a rewrite.
    """
    impl = ORDERING_IMPL_VERSION.get(ordering, 0)
    h = hashlib.sha256()
    h.update(
        f"repro-prepare|v{CACHE_VERSION}|{ordering}"
        f"|impl{impl}|sym{SYMBOLIC_IMPL_VERSION}|{graph.n}|".encode()
    )
    h.update(np.ascontiguousarray(graph.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(graph.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


class PrepareCache:
    """Disk cache mapping (structure, ordering) -> prepared factorization."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    # ------------------------------------------------------------------
    def load(
        self, graph: SymmetricGraph, ordering: str = "mmd", name: str = ""
    ) -> PreparedMatrix | None:
        """Return the cached prepare result, or ``None`` on any miss.

        Corrupted, truncated, incomplete or version-mismatched entries
        are treated as misses — the caller recomputes and overwrites.
        """
        key = prepare_key(graph, ordering)
        path = self.path_for(key)
        with obs.span("perf.cache.load", key=key[:12], matrix=name or "matrix"):
            try:
                with np.load(path) as data:
                    if int(data["version"]) != CACHE_VERSION:
                        raise ValueError("cache version mismatch")
                    perm = np.asarray(data["perm"], dtype=np.int64)
                    parent = np.asarray(data["parent"], dtype=np.int64)
                    indptr = np.asarray(data["indptr"], dtype=np.int64)
                    rowidx = np.asarray(data["rowidx"], dtype=np.int64)
                # LowerPattern validates shape/diagonal invariants; a
                # mangled payload raises here and counts as a miss.
                pattern = LowerPattern(graph.n, indptr, rowidx)
                if len(perm) != graph.n or len(parent) != graph.n:
                    raise ValueError("cache payload has wrong order")
            except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
                if not isinstance(exc, FileNotFoundError):
                    obs.counter("perf.cache.invalid")
                obs.counter("perf.cache.miss")
                return None
        obs.counter("perf.cache.hit")
        return PreparedMatrix(
            name=name or "matrix",
            graph=graph,
            perm=perm,
            symbolic=SymbolicFactor(pattern, parent, perm),
        )

    def store(
        self, graph: SymmetricGraph, ordering: str, prepared: PreparedMatrix
    ) -> Path:
        """Persist a prepare result atomically (write-temp + rename)."""
        key = prepare_key(graph, ordering)
        path = self.path_for(key)
        with obs.span("perf.cache.store", key=key[:12], matrix=prepared.name):
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(
                        fh,
                        version=np.int64(CACHE_VERSION),
                        perm=prepared.perm,
                        parent=prepared.symbolic.parent,
                        indptr=prepared.pattern.indptr,
                        rowidx=prepared.pattern.rowidx,
                    )
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        obs.counter("perf.cache.store")
        return path


def cached_prepare(
    graph: SymmetricGraph,
    ordering: str = "mmd",
    name: str = "",
    cache_dir: str | Path | None = None,
) -> PreparedMatrix:
    """:func:`repro.core.pipeline.prepare` through the disk cache.

    A hit skips the ordering and symbolic stages entirely; a miss runs
    them and stores the result for the next caller.
    """
    cache = PrepareCache(cache_dir)
    hit = cache.load(graph, ordering, name)
    if hit is not None:
        return hit
    prepared = prepare(graph, ordering=ordering, name=name)
    cache.store(graph, ordering, prepared)
    return prepared
