"""Supernodal (panel/blocked) numerical Cholesky.

The numerical counterpart of the paper's dense-block view: columns with
identical structure (fundamental supernodes — the strict form of the
paper's clusters) are factored together as dense panels, turning the
scalar column updates into dense matrix-matrix operations.  This is the
"high ratio of computation to communication per block" the paper's
blocking argument rests on, realized in the numerics.

The result is bit-for-bit the same factor structure as
:func:`repro.numeric.sparse_cholesky` (values equal to rounding).
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import LowerCSC, SymmetricCSC
from ..symbolic.fill import SymbolicFactor, symbolic_cholesky
from ..symbolic.supernodes import fundamental_supernodes
from .cholesky import NotPositiveDefiniteError, dense_cholesky

__all__ = ["supernodal_cholesky"]


def _dense_lower_solve_right(L11: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve X · L11ᵀ = B for X (row-wise forward substitution)."""
    w = L11.shape[0]
    X = B.astype(np.float64, copy=True)
    for j in range(w):
        X[:, j] /= L11[j, j]
        if j + 1 < w:
            X[:, j + 1 :] -= np.outer(X[:, j], L11[j + 1 :, j])
    return X


def supernodal_cholesky(
    a: SymmetricCSC, symbolic: SymbolicFactor | None = None
) -> LowerCSC:
    """Blocked left-looking Cholesky over fundamental supernodes.

    ``a`` must already be permuted; ``symbolic`` (computed here when
    omitted) must be its symbolic factor under the identity ordering.
    """
    if symbolic is None:
        symbolic = symbolic_cholesky(a.graph())
    pat = symbolic.pattern
    n = a.n
    supernodes = fundamental_supernodes(pat)

    # Panel storage: for supernode (s, e), rows = struct(col s), a dense
    # (len(rows) x width) array.
    panels: list[np.ndarray] = []
    panel_rows: list[np.ndarray] = []
    sn_of_col = np.empty(n, dtype=np.int64)
    for k, (s, e) in enumerate(supernodes):
        sn_of_col[s : e + 1] = k
        panel_rows.append(pat.col(s))

    # updaters[j_sn] = list of source supernode ids whose row structure
    # reaches into the target supernode's column range.
    updaters: list[list[int]] = [[] for _ in supernodes]
    for k, (s, e) in enumerate(supernodes):
        rows = panel_rows[k]
        touched = np.unique(sn_of_col[rows[rows > e]])
        for t in touched.tolist():
            updaters[t].append(k)

    apat = a.pattern
    for k, (s, e) in enumerate(supernodes):
        rows = panel_rows[k]
        width = e - s + 1
        panel = np.zeros((len(rows), width), dtype=np.float64)
        # Scatter A's columns (lower part) into the panel.
        for off, j in enumerate(range(s, e + 1)):
            alo, ahi = apat.indptr[j], apat.indptr[j + 1]
            panel[np.searchsorted(rows, apat.rowidx[alo:ahi]), off] = a.values[
                alo:ahi
            ]

        # Apply updates from every earlier supernode reaching into [s, e].
        for src in updaters[k]:
            src_rows = panel_rows[src]
            src_panel = panels[src]
            # Rows of the source panel that land in this supernode's
            # columns (the L1 part) and in its row structure (L2 part).
            in_cols = (src_rows >= s) & (src_rows <= e)
            below = src_rows >= s
            L1 = src_panel[in_cols, :]  # |J∩rows| x w_src
            L2 = src_panel[below, :]  # rows >= s
            update = L2 @ L1.T  # dense outer-product update
            tgt_r = np.searchsorted(rows, src_rows[below])
            tgt_c = src_rows[in_cols] - s
            panel[np.ix_(tgt_r, tgt_c)] -= update

        # Dense factorization of the diagonal block, then the solve for
        # the sub-diagonal panel.
        try:
            L11 = dense_cholesky(panel[:width, :width])
        except NotPositiveDefiniteError as exc:
            raise NotPositiveDefiniteError(s + exc.column, exc.pivot) from exc
        panel[:width, :width] = L11
        if len(rows) > width:
            panel[width:, :] = _dense_lower_solve_right(L11, panel[width:, :])
        panels.append(panel)

    # Assemble the CSC factor.  Within a supernode, column s+off's
    # structure is the panel rows from position off downward.
    values = np.zeros(pat.nnz, dtype=np.float64)
    for k, (s, e) in enumerate(supernodes):
        panel = panels[k]
        for off, j in enumerate(range(s, e + 1)):
            lo, hi = pat.indptr[j], pat.indptr[j + 1]
            values[lo:hi] = panel[off:, off]
    return LowerCSC(pat, values)
