"""Numerical Cholesky factorization (dense reference + sparse left-looking).

The sparse routine consumes the symbolic structure produced by
:func:`repro.symbolic.symbolic_cholesky` and fills in the values — the
"numerical factorization" step of the paper's four-step pipeline.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import LowerCSC, SymmetricCSC
from ..sparse.pattern import LowerPattern
from ..symbolic.fill import SymbolicFactor, symbolic_cholesky

__all__ = ["dense_cholesky", "sparse_cholesky", "NotPositiveDefiniteError"]


class NotPositiveDefiniteError(ValueError):
    """Raised when a non-positive pivot is encountered."""

    def __init__(self, column: int, pivot: float):
        super().__init__(
            f"matrix is not positive definite: pivot {pivot:g} at column {column}"
        )
        self.column = column
        self.pivot = pivot


def dense_cholesky(a: np.ndarray) -> np.ndarray:
    """Column-by-column dense Cholesky, A = L Lᵀ, implemented from scratch."""
    a = np.array(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    n = a.shape[0]
    L = np.tril(a)
    for j in range(n):
        pivot = L[j, j]
        if pivot <= 0.0:
            raise NotPositiveDefiniteError(j, float(pivot))
        L[j, j] = np.sqrt(pivot)
        if j + 1 < n:
            L[j + 1 :, j] /= L[j, j]
            col = L[j + 1 :, j]
            L[j + 1 :, j + 1 :] -= np.tril(np.outer(col, col))
    return L


def sparse_cholesky(
    a: SymmetricCSC, symbolic: SymbolicFactor | None = None
) -> LowerCSC:
    """Left-looking sparse Cholesky.

    ``symbolic`` must be the symbolic factor of ``a`` with the identity
    ordering (i.e. ``a`` is already permuted).  If omitted it is computed
    here.  Column j is built by scattering A's column into a dense work
    vector, subtracting every update from columns k with L[j, k] != 0,
    then scaling by the pivot square root.
    """
    if symbolic is None:
        symbolic = symbolic_cholesky(a.graph())
    pat: LowerPattern = symbolic.pattern
    n = a.n
    values = np.zeros(pat.nnz, dtype=np.float64)
    work = np.zeros(n, dtype=np.float64)

    # Row lists: for row j, the (element id, column k) of each L[j, k], k < j.
    row_elems: list[list[tuple[int, int]]] = [[] for _ in range(n)]

    apat = a.pattern
    for j in range(n):
        lo, hi = pat.indptr[j], pat.indptr[j + 1]
        struct = pat.rowidx[lo:hi]

        # Scatter column j of A (lower part).
        alo, ahi = apat.indptr[j], apat.indptr[j + 1]
        work[apat.rowidx[alo:ahi]] = a.values[alo:ahi]

        # Apply updates from every column k that has a nonzero in row j.
        for eid, k in row_elems[j]:
            ljk = values[eid]
            klo = eid  # element (j, k) position; entries below it have rows >= j
            khi = pat.indptr[k + 1]
            rows = pat.rowidx[klo:khi]
            np.subtract.at(work, rows, ljk * values[klo:khi])

        pivot = work[j]
        if pivot <= 0.0:
            work[struct] = 0.0
            raise NotPositiveDefiniteError(j, float(pivot))
        d = np.sqrt(pivot)
        colvals = work[struct]
        colvals[0] = d
        colvals[1:] = colvals[1:] / d
        values[lo:hi] = colvals
        work[struct] = 0.0

        # Register this column in the row lists of its off-diagonal rows.
        for off, i in enumerate(struct[1:].tolist(), start=1):
            row_elems[i].append((lo + off, j))

    return LowerCSC(pat, values)
