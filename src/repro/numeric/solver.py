"""Four-step direct solver for sparse SPD systems (paper §2).

1. Ordering (permutation P), 2. symbolic factorization, 3. numerical
factorization, 4. triangular solves:  L u = P b,  Lᵀ v = u,  x = Pᵀ v.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ordering import order as order_graph
from ..sparse.csc import LowerCSC, SymmetricCSC
from ..symbolic.fill import SymbolicFactor, symbolic_cholesky
from .cholesky import sparse_cholesky
from .triangular import solve_lower, solve_lower_transpose

__all__ = ["SPDSolver", "solve_spd"]


@dataclass
class SPDSolver:
    """A factored SPD system ready for repeated solves.

    Attributes
    ----------
    perm : ndarray
        Ordering used (perm[k] = original index of permuted variable k).
    symbolic : SymbolicFactor
        Structure of L in the permuted space.
    factor : LowerCSC
        The numerical Cholesky factor of P A Pᵀ.
    """

    perm: np.ndarray
    symbolic: SymbolicFactor
    factor: LowerCSC

    @classmethod
    def factorize(cls, a: SymmetricCSC, ordering: str = "mmd") -> "SPDSolver":
        perm = order_graph(a.graph(), ordering)
        permuted = a.permute(perm)
        # The symbolic factor of the permuted matrix with identity ordering.
        symbolic = symbolic_cholesky(permuted.graph())
        factor = sparse_cholesky(permuted, symbolic)
        return cls(np.asarray(perm, dtype=np.int64), symbolic, factor)

    def solve(self, b: np.ndarray) -> np.ndarray:
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.factor.n,):
            raise ValueError(f"b must have shape ({self.factor.n},)")
        pb = b[self.perm]
        u = solve_lower(self.factor, pb)
        v = solve_lower_transpose(self.factor, u)
        x = np.empty_like(v)
        x[self.perm] = v
        return x


def solve_spd(a: SymmetricCSC, b: np.ndarray, ordering: str = "mmd") -> np.ndarray:
    """Solve A x = b for SPD sparse A; convenience one-shot wrapper."""
    return SPDSolver.factorize(a, ordering).solve(b)
