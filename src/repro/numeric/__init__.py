"""Numerical factorization and triangular solves."""

from .cholesky import NotPositiveDefiniteError, dense_cholesky, sparse_cholesky
from .solver import SPDSolver, solve_spd
from .supernodal import supernodal_cholesky
from .triangular import solve_lower, solve_lower_transpose

__all__ = [
    "NotPositiveDefiniteError",
    "dense_cholesky",
    "sparse_cholesky",
    "supernodal_cholesky",
    "SPDSolver",
    "solve_spd",
    "solve_lower",
    "solve_lower_transpose",
]
