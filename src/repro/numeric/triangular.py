"""Sparse triangular solves with a :class:`~repro.sparse.csc.LowerCSC`."""

from __future__ import annotations

import numpy as np

from ..sparse.csc import LowerCSC

__all__ = ["solve_lower", "solve_lower_transpose"]


def solve_lower(L: LowerCSC, b: np.ndarray) -> np.ndarray:
    """Solve L x = b by column-oriented forward substitution."""
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (L.n,):
        raise ValueError(f"b must have shape ({L.n},)")
    x = b.copy()
    pat = L.pattern
    for j in range(L.n):
        lo, hi = pat.indptr[j], pat.indptr[j + 1]
        xj = x[j] / L.values[lo]
        x[j] = xj
        if hi > lo + 1:
            x[pat.rowidx[lo + 1 : hi]] -= xj * L.values[lo + 1 : hi]
    return x


def solve_lower_transpose(L: LowerCSC, b: np.ndarray) -> np.ndarray:
    """Solve Lᵀ x = b by column-oriented (row of Lᵀ) back substitution."""
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (L.n,):
        raise ValueError(f"b must have shape ({L.n},)")
    x = b.copy()
    pat = L.pattern
    for j in range(L.n - 1, -1, -1):
        lo, hi = pat.indptr[j], pat.indptr[j + 1]
        if hi > lo + 1:
            x[j] -= float(L.values[lo + 1 : hi] @ x[pat.rowidx[lo + 1 : hi]])
        x[j] /= L.values[lo]
    return x
