"""One self-contained HTML page per recorded run: the unified report.

ASCII tables answer "what just happened"; Perfetto answers "show me the
microseconds"; this module answers the question in between — *how did
this run behave, end to end, on one page I can attach to a CI
artifact?*  :func:`build_report` renders a run-registry manifest
(:mod:`repro.obs.runs`) into a single HTML file with **zero external
resources**: styles are inline, charts are inline SVG, and nothing
references the network, so the page opens identically from a CI
artifact zip, a mail attachment, or ``file://``.

Panels appear when the manifest carries their data and disappear when
it does not:

* **stage timings** — per-matrix horizontal bars from ``matrices``;
* **memory timeline** — the RSS sample curve (``extra["memory"]``,
  downsampled peak-preserving by :func:`downsample`);
* **sweep curves** — traffic vs processor count, one line per mapping
  scheme (``extra["records"]``);
* **histograms** — bucket bars + p50/p90/p99 for each recorded
  distribution (``extra["histograms"]``);
* **profiler top-N** — the self-time table of a ``profile`` run;
* **delta vs previous** — the registry comparison against the prior
  run of the same kind, the same rows the CI gate checks;
* **simulated machine** — for ``explain`` runs (``extra["explain"]``,
  built by :func:`repro.analysis.explain.explain_manifest`): the P×P
  communication heatmap, the critical path with compute/wait split, the
  λ-attribution waterfall with culprit blocks, and per-processor
  busy/wait/idle stacks — all on the simulated clock.

Styling follows the repo's chart conventions: colors are CSS custom
properties with light and dark values (``prefers-color-scheme`` plus a
``data-theme`` override), mapping schemes keep fixed hues (block =
blue, wrap = orange, block-adaptive = aqua — color follows the entity,
never the series count), every multi-series chart has a legend, every
chart has a table view, and text always wears ink tokens, never the
series color.  Only the standard library is used.
"""

from __future__ import annotations

import html
import math
import time
from pathlib import Path

from .histogram import bucket_bounds

__all__ = ["build_report", "render_report", "downsample", "SCHEME_COLORS"]

#: Fixed categorical slots (validated all-pairs CVD-safe): the hue
#: follows the scheme identity across every chart and filter state.
SCHEME_COLORS = {
    "block": "cat1",
    "wrap": "cat2",
    "block-adaptive": "cat3",
}
_EXTRA_SLOTS = ["cat1", "cat2", "cat3"]  # fallback cycle for unknown schemes

_CSS = """
:root {
  --bg: #fcfcfb; --panel: #f4f3f0;
  --ink: #1a1a19; --ink2: #5f5e59; --muted: #8a8984;
  --grid: #e4e3df; --axis: #b9b8b2;
  --cat1: #2a78d6; --cat2: #eb6834; --cat3: #1baf7a;
  --accent: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root {
    --bg: #1a1a19; --panel: #22211f;
    --ink: #f0efea; --ink2: #b3b2ab; --muted: #807f79;
    --grid: #34332f; --axis: #55544e;
    --cat1: #3987e5; --cat2: #d95926; --cat3: #199e70;
    --accent: #3987e5;
  }
}
[data-theme="light"] {
  --bg: #fcfcfb; --panel: #f4f3f0;
  --ink: #1a1a19; --ink2: #5f5e59; --muted: #8a8984;
  --grid: #e4e3df; --axis: #b9b8b2;
  --cat1: #2a78d6; --cat2: #eb6834; --cat3: #1baf7a; --accent: #2a78d6;
}
[data-theme="dark"] {
  --bg: #1a1a19; --panel: #22211f;
  --ink: #f0efea; --ink2: #b3b2ab; --muted: #807f79;
  --grid: #34332f; --axis: #55544e;
  --cat1: #3987e5; --cat2: #d95926; --cat3: #199e70; --accent: #3987e5;
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px; max-width: 960px;
  background: var(--bg); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
h3 { font-size: 13px; margin: 16px 0 6px; color: var(--ink2); }
.meta { color: var(--ink2); margin: 0 0 4px; }
.meta code { color: var(--ink); background: var(--panel);
  padding: 1px 5px; border-radius: 4px; }
section { margin-bottom: 8px; }
figure { margin: 0; padding: 12px; background: var(--panel);
  border-radius: 8px; }
figcaption { color: var(--ink2); font-size: 12px; margin-bottom: 8px; }
svg text { fill: var(--ink2); font: 11px system-ui, sans-serif; }
svg .lbl { fill: var(--ink); }
svg .axis { stroke: var(--axis); stroke-width: 1; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
.legend { display: flex; gap: 16px; flex-wrap: wrap;
  margin: 6px 0 0; padding: 0; list-style: none; font-size: 12px;
  color: var(--ink); }
.legend .chip { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
details { margin-top: 6px; }
summary { cursor: pointer; color: var(--ink2); font-size: 12px; }
table { border-collapse: collapse; margin-top: 6px; font-size: 12px; }
th, td { text-align: left; padding: 3px 10px 3px 0;
  border-bottom: 1px solid var(--grid); }
th { color: var(--ink2); font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.grid2 { display: grid; grid-template-columns: repeat(auto-fill,
  minmax(280px, 1fr)); gap: 12px; }
footer { margin-top: 32px; color: var(--muted); font-size: 12px; }
.delta-up { font-weight: 600; }
"""


# -- small helpers ------------------------------------------------------

def _esc(text) -> str:
    return html.escape(str(text), quote=True)


def _fmt(v: float) -> str:
    """Compact numeric label: 3 significant digits, no exponent noise."""
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    if abs(v) >= 1:
        return f"{v:.3g}"
    return f"{v:.2g}"


def downsample(samples: list, limit: int = 400) -> list:
    """Peak-preserving downsample of ``(t, value)`` pairs.

    Splits the series into ``limit`` chunks and keeps each chunk's
    maximum (plus the first and last raw points), so a memory spike
    narrower than the stride still shows in the rendered curve —
    exactly the property a watermark plot must not lose.
    """
    samples = sorted((float(t), float(v)) for t, v in samples)
    if len(samples) <= limit:
        return samples
    out = [samples[0]]
    chunk = len(samples) / float(limit)
    for i in range(limit):
        lo, hi = int(i * chunk), max(int((i + 1) * chunk), int(i * chunk) + 1)
        window = samples[lo:hi]
        if window:
            out.append(max(window, key=lambda s: s[1]))
    out.append(samples[-1])
    out = sorted(set(out))
    return out


def _table(headers: list[str], rows: list[list], numeric: set[int] = frozenset()) -> str:
    head = "".join(
        f'<th{" class=num" if i in numeric else ""}>{_esc(h)}</th>'
        for i, h in enumerate(headers)
    )
    body = "".join(
        "<tr>" + "".join(
            f'<td{" class=num" if i in numeric else ""}>{_esc(c)}</td>'
            for i, c in enumerate(row)
        ) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _table_view(headers: list[str], rows: list[list],
                numeric: set[int] = frozenset()) -> str:
    return ("<details><summary>table view</summary>"
            + _table(headers, rows, numeric) + "</details>")


def _legend(entries: list[tuple[str, str]]) -> str:
    """``entries``: (label, css color slot like ``cat1``)."""
    items = "".join(
        f'<li><span class="chip" style="background:var(--{slot})"></span>'
        f"{_esc(label)}</li>"
        for label, slot in entries
    )
    return f'<ul class="legend">{items}</ul>'


# -- SVG charts ---------------------------------------------------------

def _ticks(lo: float, hi: float, n: int = 4) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / n
    mag = 10.0 ** math.floor(math.log10(raw))
    step = min(s for s in (1, 2, 2.5, 5, 10) if s * mag >= raw) * mag
    start = math.ceil(lo / step) * step
    out = []
    t = start
    while t <= hi + 1e-12:
        out.append(round(t, 10))
        t += step
    return out or [lo, hi]


def _bar_chart(rows: list[tuple[str, float]], unit: str = "ms",
               width: int = 640) -> str:
    """Horizontal bars, one per row, single accent hue (magnitude job)."""
    if not rows:
        return ""
    label_w, bar_h, gap, pad = 170, 16, 6, 8
    vmax = max(v for _, v in rows) or 1.0
    chart_w = width - label_w - 90
    height = pad * 2 + len(rows) * (bar_h + gap) - gap
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'width="100%" preserveAspectRatio="xMinYMin meet">'
    ]
    for i, (label, v) in enumerate(rows):
        y = pad + i * (bar_h + gap)
        w = max(chart_w * v / vmax, 1.5)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 4}" '
            f'text-anchor="end">{_esc(label)}</text>'
        )
        # 4px-rounded data end; a square patch re-anchors the baseline
        # end so only the far end reads as rounded.
        parts.append(
            f'<rect x="{label_w}" y="{y}" width="{w:.1f}" height="{bar_h}" '
            f'rx="4" fill="var(--accent)"/>'
        )
        if w > 5:
            parts.append(
                f'<rect x="{label_w}" y="{y}" width="4" height="{bar_h}" '
                f'fill="var(--accent)"/>'
            )
        parts.append(
            f'<text x="{label_w + w + 6:.1f}" y="{y + bar_h - 4}" '
            f'class="lbl">{_fmt(v)} {_esc(unit)}</text>'
        )
    parts.append(
        f'<line x1="{label_w}" y1="{pad}" x2="{label_w}" '
        f'y2="{height - pad}" class="axis"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _line_chart(
    series: list[dict],
    *,
    width: int = 640,
    height: int = 240,
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
    markers: bool = True,
) -> str:
    """Multi-series line chart; one y axis, gridlines, no dual axes.

    ``series``: ``[{"label": ..., "slot": "cat1", "points": [(x, y)]}]``.
    """
    series = [s for s in series if s["points"]]
    if not series:
        return ""
    pad_l, pad_r, pad_t, pad_b = 64, 16, 10, 34
    xs = [x for s in series for x, _ in s["points"]]
    ys = [y for s in series for _, y in s["points"]]
    fx = (lambda v: math.log10(v)) if log_x and min(xs) > 0 else (lambda v: v)
    x_lo, x_hi = min(fx(x) for x in xs), max(fx(x) for x in xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    sx = lambda x: pad_l + plot_w * (fx(x) - x_lo) / (x_hi - x_lo)  # noqa: E731
    sy = lambda y: pad_t + plot_h * (1 - (y - y_lo) / (y_hi - y_lo))  # noqa: E731
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'width="100%" preserveAspectRatio="xMinYMin meet">'
    ]
    for t in _ticks(y_lo, y_hi):
        y = sy(t)
        parts.append(f'<line x1="{pad_l}" y1="{y:.1f}" '
                     f'x2="{width - pad_r}" y2="{y:.1f}" class="grid"/>')
        parts.append(f'<text x="{pad_l - 6}" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{_fmt(t)}</text>')
    x_tick_vals = sorted(set(xs)) if markers and len(set(xs)) <= 8 else None
    if x_tick_vals is None:
        x_tick_vals = [t for t in _ticks(min(xs), max(xs))
                       if min(xs) <= t <= max(xs)] or [min(xs), max(xs)]
    for t in x_tick_vals:
        x = sx(t)
        parts.append(f'<text x="{x:.1f}" y="{height - pad_b + 14}" '
                     f'text-anchor="middle">{_fmt(t)}</text>')
    parts.append(f'<line x1="{pad_l}" y1="{height - pad_b}" '
                 f'x2="{width - pad_r}" y2="{height - pad_b}" class="axis"/>')
    parts.append(f'<line x1="{pad_l}" y1="{pad_t}" '
                 f'x2="{pad_l}" y2="{height - pad_b}" class="axis"/>')
    if x_label:
        parts.append(f'<text x="{pad_l + plot_w / 2:.0f}" y="{height - 4}" '
                     f'text-anchor="middle">{_esc(x_label)}</text>')
    if y_label:
        parts.append(f'<text x="12" y="{pad_t + plot_h / 2:.0f}" '
                     f'text-anchor="middle" '
                     f'transform="rotate(-90 12 {pad_t + plot_h / 2:.0f})">'
                     f"{_esc(y_label)}</text>")
    for s in series:
        pts = sorted(s["points"])
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="var(--{s["slot"]})" stroke-width="2" '
                     f'stroke-linejoin="round"/>')
        if markers and len(pts) <= 40:
            for x, y in pts:
                # 2px surface ring keeps overlapping markers separable
                parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" '
                             f'r="4" fill="var(--{s["slot"]})" '
                             f'stroke="var(--panel)" stroke-width="2"/>')
    parts.append("</svg>")
    return "".join(parts)


def _hist_panel(name: str, doc: dict, width: int = 300) -> str:
    """One histogram: bucket bars + the summary stat row."""
    buckets = {int(k): int(v) for k, v in doc.get("buckets", {}).items()}
    finite = sorted(k for k in buckets if k > -(2 ** 30))
    under = sum(v for k, v in buckets.items() if k <= -(2 ** 30))
    bars: list[tuple[str, float]] = []
    if under:
        bars.append(("<=0", under))
    for k in finite:
        lo, _hi = bucket_bounds(k)
        bars.append((_fmt(lo), buckets[k]))
    height, pad = 96, 4
    cmax = max((v for _, v in bars), default=1)
    n = max(len(bars), 1)
    bw = max((width - 2 * pad) / n - 2, 1.5)
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" width="100%">']
    base = height - 18
    for i, (label, v) in enumerate(bars):
        x = pad + i * ((width - 2 * pad) / n)
        h = max((base - 6) * v / cmax, 1.5)
        parts.append(f'<rect x="{x:.1f}" y="{base - h:.1f}" '
                     f'width="{bw:.1f}" height="{h:.1f}" rx="2" '
                     f'fill="var(--accent)"/>')
        if n <= 12 or i % max(1, n // 8) == 0:
            parts.append(f'<text x="{x + bw / 2:.1f}" y="{height - 5}" '
                         f'text-anchor="middle">{_esc(label)}</text>')
    parts.append(f'<line x1="{pad}" y1="{base}" x2="{width - pad}" '
                 f'y2="{base}" class="axis"/>')
    parts.append("</svg>")
    stats = _table(
        ["count", "mean", "p50", "p90", "p99", "max"],
        [[doc.get("count", 0), _fmt(doc.get("mean", 0.0)),
          _fmt(doc.get("p50", 0.0)), _fmt(doc.get("p90", 0.0)),
          _fmt(doc.get("p99", 0.0)), _fmt(doc.get("max", 0.0))]],
        numeric={0, 1, 2, 3, 4, 5},
    )
    return (f"<figure><figcaption>{_esc(name)}</figcaption>"
            + "".join(parts) + stats + "</figure>")


# -- panels -------------------------------------------------------------

def _panel_header(manifest: dict) -> str:
    host = manifest.get("host") or {}
    bits = [
        f"run <code>{_esc(manifest.get('run_id', '?'))}</code>",
        f"kind <code>{_esc(manifest.get('kind', '?'))}</code>",
    ]
    if manifest.get("created"):
        bits.append(_esc(manifest["created"]))
    if manifest.get("git_sha"):
        bits.append(f"git <code>{_esc(str(manifest['git_sha'])[:10])}</code>")
    line2 = []
    if host.get("hostname"):
        line2.append(_esc(host["hostname"]))
    if host.get("platform"):
        line2.append(_esc(host["platform"]))
    if host.get("python"):
        line2.append(f"python {_esc(host['python'])}")
    if host.get("cpus"):
        line2.append(f"{_esc(host['cpus'])} cpus")
    out = "<header><h1>repro run report</h1>"
    out += f'<p class="meta">{" · ".join(bits)}</p>'
    if line2:
        out += f'<p class="meta">{" · ".join(line2)}</p>'
    if manifest.get("config"):
        cfg = ", ".join(f"{_esc(k)}={_esc(v)}"
                        for k, v in sorted(manifest["config"].items()))
        out += f'<p class="meta">config: {cfg}</p>'
    out += "</header>"
    return out


def _panel_stages(manifest: dict) -> str:
    matrices = manifest.get("matrices") or {}
    blocks = []
    for name, doc in sorted(matrices.items()):
        if not isinstance(doc, dict):
            continue
        stages = doc.get("stages") or {}
        if not stages:
            continue
        rows = [(stage, 1e3 * float(t)) for stage, t in stages.items()]
        mem = doc.get("mem_peak_mb")
        caption = f"stage wall time — {_esc(name)}"
        if isinstance(mem, (int, float)):
            caption += f" (peak RSS {_fmt(mem)} MB)"
        table_rows = [[stage, f"{v:.2f}"] for stage, v in rows]
        stage_mem = doc.get("stage_mem_peak_mb") or {}
        if stage_mem:
            table_rows = [
                [stage, f"{v:.2f}",
                 _fmt(stage_mem[stage]) if stage in stage_mem else "-"]
                for stage, v in rows
            ]
            tbl = _table_view(["stage", "ms", "peak MB"], table_rows, {1, 2})
        else:
            tbl = _table_view(["stage", "ms"], table_rows, {1})
        blocks.append(f"<figure><figcaption>{caption}</figcaption>"
                      + _bar_chart(rows) + tbl + "</figure>")
    if not blocks:
        return ""
    return "<section id='stages'><h2>Stage timings</h2>" + "".join(blocks) + "</section>"


def _panel_memory(manifest: dict) -> str:
    """RSS timelines: the run-level one plus any per-matrix bench ones
    (each matrix ran sequentially with its own clock, so each gets its
    own figure rather than a misleading overlay)."""
    timelines: list[tuple[str, list]] = []
    run_level = manifest.get("memory") or []
    if len(run_level) >= 2:
        timelines.append(("whole run", run_level))
    for name, doc in sorted((manifest.get("matrices") or {}).items()):
        if isinstance(doc, dict) and len(doc.get("memory") or []) >= 2:
            timelines.append((name, doc["memory"]))
    if not timelines:
        return ""
    figures = []
    for label, samples in timelines:
        pts = downsample(samples)
        peak_t, peak_v = max(pts, key=lambda s: s[1])
        chart = _line_chart(
            [{"label": "RSS", "slot": "accent", "points": pts}],
            x_label="seconds since start", y_label="RSS MB", markers=False,
        )
        rows = [[f"{t:.3f}", f"{v:.1f}"]
                for t, v in pts[:: max(1, len(pts) // 50)]]
        figures.append(
            f"<figure><figcaption>resident set size — {_esc(label)} — "
            f"peak {_fmt(peak_v)} MB at {peak_t:.2f}s "
            f"({len(samples)} samples)</figcaption>"
            + chart + _table_view(["t (s)", "RSS MB"], rows, {0, 1})
            + "</figure>"
        )
    return ("<section id='memory'><h2>Memory timeline</h2>"
            + "".join(figures) + "</section>")


def _scheme_slot(scheme: str, taken: dict) -> str:
    if scheme in SCHEME_COLORS:
        return SCHEME_COLORS[scheme]
    if scheme not in taken:
        taken[scheme] = _EXTRA_SLOTS[len(taken) % len(_EXTRA_SLOTS)]
    return taken[scheme]


def _panel_sweep(manifest: dict) -> str:
    records = manifest.get("records") or []
    if not records:
        return ""
    by_matrix: dict[str, dict[str, dict[int, list[float]]]] = {}
    for r in records:
        try:
            m, s, p = str(r["matrix"]), str(r["scheme"]), int(r["nprocs"])
            traffic = float(r["traffic_total"])
        except (KeyError, TypeError, ValueError):
            continue
        by_matrix.setdefault(m, {}).setdefault(s, {}).setdefault(p, []).append(traffic)
    blocks = []
    taken: dict[str, str] = {}
    for m, schemes in sorted(by_matrix.items()):
        series, legend, table_rows = [], [], []
        for s, by_p in sorted(schemes.items()):
            slot = _scheme_slot(s, taken)
            pts = [(p, sum(v) / len(v)) for p, v in sorted(by_p.items())]
            series.append({"label": s, "slot": slot, "points": pts})
            legend.append((s, slot))
            table_rows += [[s, p, _fmt(v)] for p, v in pts]
        chart = _line_chart(series, x_label="processors P",
                            y_label="traffic (words)", log_x=True)
        blocks.append(
            f"<figure><figcaption>communication traffic vs P — {_esc(m)} "
            "(mean over grain/width grid)</figcaption>"
            + chart + _legend(legend)
            + _table_view(["scheme", "P", "traffic"], table_rows, {1, 2})
            + "</figure>"
        )
    if not blocks:
        return ""
    return ("<section id='sweep'><h2>Sweep: traffic vs processors</h2>"
            + "".join(blocks) + "</section>")


def _panel_histograms(manifest: dict) -> str:
    hists = manifest.get("histograms") or {}
    panels = [_hist_panel(name, doc) for name, doc in sorted(hists.items())
              if isinstance(doc, dict)]
    if not panels:
        return ""
    return ("<section id='histograms'><h2>Distributions</h2>"
            f'<div class="grid2">{"".join(panels)}</div></section>')


def _panel_profile(manifest: dict) -> str:
    prof = manifest.get("profile") or {}
    top = prof.get("top") or []
    if not top:
        return ""
    rows = [
        [r.get("func", "?"), r.get("span", "?"), r.get("samples", 0),
         f"{r.get('pct', 0.0):.1f}%", f"{1e3 * r.get('est_s', 0.0):.1f}"]
        for r in top
    ]
    cap = (f"{prof.get('nsamples', 0)} samples at "
           f"{_fmt(prof.get('hz', 0))} Hz over "
           f"{_fmt(prof.get('duration_s', 0.0))}s")
    return (
        "<section id='profile'><h2>Profiler self-time (top "
        f"{len(rows)})</h2><figure><figcaption>{cap}</figcaption>"
        + _table(["function", "span", "samples", "self %", "est ms"],
                 rows, {2, 3, 4})
        + "</figure></section>"
    )


def _panel_delta(manifest: dict, previous: dict | None) -> str:
    if previous is None:
        return ""
    from . import runs as obs_runs

    try:
        rows = obs_runs.compare_runs(previous, manifest)
    except Exception:
        return ""
    if not rows:
        return ""
    table_rows = []
    for r in rows:
        base, cur = float(r["baseline_s"]), float(r["current_s"])
        unit = r.get("unit", "s")
        if unit == "mb":
            base_txt, cur_txt = f"{base:.1f} MB", f"{cur:.1f} MB"
        else:
            base_txt, cur_txt = f"{1e3 * base:.2f} ms", f"{1e3 * cur:.2f} ms"
        ratio = cur / base if base > 0 else float("inf")
        mark = "&#9650; slower" if ratio > 1.05 else (
            "&#9660; faster" if ratio < 0.95 else "&#8776; same")
        table_rows.append([
            r.get("matrix", "?"), r.get("stage", "?"),
            base_txt, cur_txt, f"{ratio:.2f}x", mark,
        ])
    cap = (f"previous run <code>{_esc(previous.get('run_id', '?'))}</code>"
           + (f" ({_esc(previous['created'])})" if previous.get("created") else ""))
    return (
        "<section id='delta'><h2>Delta vs previous run</h2>"
        f"<figure><figcaption>{cap}</figcaption>"
        + _table(["matrix", "stage", "baseline", "current", "ratio", ""],
                 table_rows, {2, 3, 4})
        + "</figure></section>"
    )


# -- explain panels (simulated machine, sim-clock domain) ---------------

def _panel_explain_header(ex: dict) -> str:
    rows = [
        ["matrix", ex.get("matrix", ex.get("name", "?"))],
        ["scheme", ex.get("scheme", "?")],
        ["processors", ex.get("nprocs", "?")],
        ["makespan (sim units)", _fmt(float(ex.get("makespan", 0.0)))],
        ["idle fraction", f"{float(ex.get('idle_fraction', 0.0)):.3f}"],
        ["traffic total (= ledger bytes)", ex.get("message_bytes", 0)],
        ["messages", ex.get("n_messages", 0)],
        ["work imbalance λ", f"{float(ex.get('work_imbalance', 0.0)):.3f}"],
    ]
    return (
        "<section id='explain'><h2>Simulated machine</h2>"
        "<figure><figcaption>headline figures — simulated clock "
        "(abstract machine time), not wall clock</figcaption>"
        + _table(["metric", "value"], rows, {1}) + "</figure></section>"
    )


def _panel_comm(ex: dict) -> str:
    """P×P communication heatmap: sequential job, one hue via opacity."""
    links = ex.get("links") or []
    matrix = ex.get("comm_matrix")
    if not links and not matrix:
        return ""
    figures = []
    if matrix:
        n = len(matrix)
        vmax = max((v for row in matrix for v in row), default=0)
        side = 520
        cell = side / max(n, 1)
        parts = [f'<svg viewBox="0 0 {side + 60} {side + 40}" role="img" '
                 f'width="100%" preserveAspectRatio="xMinYMin meet">']
        for p, row in enumerate(matrix):
            for q, v in enumerate(row):
                if not v:
                    continue
                # light→dark single hue: opacity carries the magnitude
                op = 0.15 + 0.85 * (v / vmax) if vmax else 0.0
                parts.append(
                    f'<rect x="{40 + q * cell:.1f}" y="{10 + p * cell:.1f}" '
                    f'width="{max(cell - 0.3, 0.7):.2f}" '
                    f'height="{max(cell - 0.3, 0.7):.2f}" '
                    f'fill="var(--accent)" fill-opacity="{op:.3f}">'
                    f"<title>p{p} &#8592; p{q}: {v} elements</title></rect>"
                )
        parts.append(f'<text x="{40 + side / 2:.0f}" y="{side + 32}" '
                     f'text-anchor="middle">sender q</text>')
        parts.append(f'<text x="12" y="{10 + side / 2:.0f}" text-anchor="middle" '
                     f'transform="rotate(-90 12 {10 + side / 2:.0f})">'
                     "receiver p</text>")
        parts.append(f'<line x1="40" y1="{10 + side}" x2="{40 + side}" '
                     f'y2="{10 + side}" class="axis"/>')
        parts.append(f'<line x1="40" y1="10" x2="40" y2="{10 + side}" '
                     'class="axis"/>')
        parts.append("</svg>")
        used = sum(1 for row in matrix for v in row if v)
        figures.append(
            "<figure><figcaption>communication matrix C[p, q] = elements "
            f"p fetches from q — {used} of {n * n} links used, heaviest "
            f"{_fmt(vmax)} elements (hover a cell for the value)"
            "</figcaption>" + "".join(parts)
            + _table_view(["src", "dst", "elements"],
                          [[l["src"], l["dst"], l["bytes"]] for l in links],
                          {0, 1, 2})
            + "</figure>"
        )
    elif links:
        rows = [(f'p{l["src"]}→p{l["dst"]}', float(l["bytes"])) for l in links]
        figures.append(
            "<figure><figcaption>heaviest links (matrix omitted at this "
            "processor count)</figcaption>"
            + _bar_chart(rows, unit="elements")
            + _table_view(["src", "dst", "elements"],
                          [[l["src"], l["dst"], l["bytes"]] for l in links],
                          {0, 1, 2})
            + "</figure>"
        )
    return ("<section id='comm'><h2>Communication matrix</h2>"
            + "".join(figures) + "</section>")


def _panel_critical_path(ex: dict) -> str:
    cp = ex.get("critical_path") or {}
    units = cp.get("units") or []
    if not units:
        return ""
    length = float(cp.get("length", 0.0)) or 1.0
    compute = float(cp.get("compute", 0.0))
    wait = float(cp.get("wait", 0.0))
    # one stacked bar: compute (cat1) vs wait (cat2), 2px surface gap
    w_total, h = 640, 22
    w_c = (w_total - 2) * compute / length
    bar = (
        f'<svg viewBox="0 0 {w_total} {h + 18}" role="img" width="100%" '
        'preserveAspectRatio="xMinYMin meet">'
        f'<rect x="0" y="0" width="{w_c:.1f}" height="{h}" rx="4" '
        'fill="var(--cat1)"/>'
        f'<rect x="{w_c + 2:.1f}" y="0" width="{w_total - w_c - 2:.1f}" '
        f'height="{h}" rx="4" fill="var(--cat2)"/>'
        f'<text x="0" y="{h + 14}">compute {_fmt(compute)} '
        f"({100 * compute / length:.0f}%) · wait {_fmt(wait)} "
        f"({100 * wait / length:.0f}%)</text></svg>"
    )
    edge_counts: dict[str, int] = {}
    for u in units:
        e = u.get("edge", "?")
        if e != "start":
            edge_counts[e] = edge_counts.get(e, 0) + 1
    edges_txt = ", ".join(f"{k}&#215;{v}" for k, v in sorted(edge_counts.items()))
    shown = units[-40:]
    rows = [[u["uid"], f'p{u["proc"]}', u["stage"], u.get("kind", "?"),
             _fmt(float(u["start"])), _fmt(float(u["finish"])), u["edge"]]
            for u in shown]
    trunc = " (truncated)" if cp.get("truncated") else ""
    cap = (f"{cp.get('n_units', len(units))} units{trunc}, length "
           f"{_fmt(length)} = simulated makespan; links: {edges_txt or '-'}")
    return (
        "<section id='critical-path'><h2>Critical path</h2>"
        f"<figure><figcaption>{cap}</figcaption>" + bar
        + _legend([("compute", "cat1"), ("wait", "cat2")])
        + "<details><summary>last "
        + str(len(shown)) + " units</summary>"
        + _table(["uid", "proc", "stage", "kind", "start", "finish",
                  "released by"], rows, {0, 2, 4, 5})
        + "</details></figure></section>"
    )


def _panel_imbalance(ex: dict) -> str:
    imb = ex.get("imbalance") or {}
    stages = imb.get("stages") or []
    if not stages:
        return ""
    lam = float(imb.get("lambda", 0.0))
    p_star = imb.get("proc", "?")
    # waterfall: per-stage excess of the peak processor vs the stage
    # mean — diverging job, cat2 above zero / cat1 below
    w_total, bar_w_pad, h = 640, 2, 160
    n = len(stages)
    bw = max((w_total - 60) / max(n, 1) - bar_w_pad, 1.5)
    vmax = max((abs(float(s["excess"])) for s in stages), default=1.0) or 1.0
    mid = h / 2
    parts = [f'<svg viewBox="0 0 {w_total} {h + 22}" role="img" width="100%" '
             'preserveAspectRatio="xMinYMin meet">']
    parts.append(f'<line x1="40" y1="{mid}" x2="{w_total - 10}" y2="{mid}" '
                 'class="axis"/>')
    for i, s in enumerate(stages):
        v = float(s["excess"])
        x = 45 + i * (bw + bar_w_pad)
        bh = (mid - 12) * abs(v) / vmax
        y = mid - bh if v >= 0 else mid
        slot = "cat2" if v >= 0 else "cat1"
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bw:.1f}" '
            f'height="{max(bh, 0.8):.1f}" rx="2" fill="var(--{slot})">'
            f'<title>stage {s["stage"]}: excess {_fmt(v)}, '
            f'stage λ {float(s.get("lambda_s", 0.0)):.2f}</title></rect>'
        )
        if n <= 16 or i % max(1, n // 12) == 0:
            parts.append(f'<text x="{x + bw / 2:.1f}" y="{h + 16}" '
                         f'text-anchor="middle">{_esc(s["stage"])}</text>')
    parts.append(f'<text x="40" y="{h + 16}">stage</text>')
    parts.append("</svg>")
    culprits = imb.get("culprits") or []
    rows = [[s["stage"], _fmt(float(s["excess"])), _fmt(float(s["peak_work"])),
             _fmt(float(s["mean_work"])), f'{float(s.get("lambda_s", 0.0)):.3f}']
            for s in sorted(stages, key=lambda r: -float(r["excess"]))]
    out = (
        "<section id='imbalance'><h2>Imbalance attribution</h2>"
        f"<figure><figcaption>λ = {lam:.3f}, peak processor p{_esc(p_star)}; "
        "bars show each stage's peak-processor excess over the stage mean "
        "(Σ = λ·W<sub>ave</sub>)</figcaption>"
        + "".join(parts)
        + _legend([("excess (above mean)", "cat2"), ("deficit", "cat1")])
        + _table_view(["stage", "excess", "peak work", "mean work", "stage λ"],
                      rows, {0, 1, 2, 3, 4})
        + "</figure>"
    )
    if culprits:
        out += (
            "<figure><figcaption>heaviest blocks on the peak processor"
            "</figcaption>"
            + _table(["uid", "stage", "kind", "work"],
                     [[c["uid"], c["stage"], c.get("kind", "?"),
                       _fmt(float(c["work"]))] for c in culprits],
                     {0, 1, 3})
            + "</figure>"
        )
    return out + "</section>"


def _panel_proc_times(ex: dict) -> str:
    pt = ex.get("proc_times") or {}
    busy, wait, idle = pt.get("busy"), pt.get("wait"), pt.get("idle")
    if not busy:
        return ""
    makespan = float(ex.get("makespan", 0.0)) or 1.0
    n = len(busy)
    w_total, h = 640, 170
    bw = max((w_total - 50) / max(n, 1) - 2, 1.0)
    parts = [f'<svg viewBox="0 0 {w_total} {h + 22}" role="img" width="100%" '
             'preserveAspectRatio="xMinYMin meet">']
    for p in range(n):
        x = 45 + p * (bw + 2)
        y = 10.0
        segs = [(float(busy[p]), "cat1"), (float(wait[p]), "cat2"),
                (float(idle[p]), "grid")]
        tip = (f"p{p}: busy {_fmt(segs[0][0])}, wait {_fmt(segs[1][0])}, "
               f"idle {_fmt(segs[2][0])}")
        for v, slot in segs:
            sh = (h - 10) * v / makespan
            if sh <= 0:
                continue
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bw:.1f}" '
                f'height="{max(sh - 2, 0.8):.1f}" rx="2" '
                f'fill="var(--{slot})"><title>{tip}</title></rect>'
            )
            y += sh
        if n <= 16 or p % max(1, n // 12) == 0:
            parts.append(f'<text x="{x + bw / 2:.1f}" y="{h + 16}" '
                         f'text-anchor="middle">{p}</text>')
    parts.append(f'<text x="40" y="{h + 16}">proc</text>')
    parts.append("</svg>")
    rows = [[p, _fmt(float(busy[p])), _fmt(float(wait[p])),
             _fmt(float(idle[p]))] for p in range(n)]
    return (
        "<section id='proc-times'><h2>Processor time</h2>"
        "<figure><figcaption>per-processor makespan decomposition "
        "(busy + wait + idle = makespan, top to bottom)</figcaption>"
        + "".join(parts)
        + _legend([("busy", "cat1"), ("wait", "cat2"), ("idle", "grid")])
        + _table_view(["proc", "busy", "wait", "idle"], rows, {0, 1, 2, 3})
        + "</figure></section>"
    )


def _panels_explain(manifest: dict) -> str:
    ex = manifest.get("explain")
    if not isinstance(ex, dict):
        return ""
    return (
        _panel_explain_header(ex)
        + _panel_comm(ex)
        + _panel_critical_path(ex)
        + _panel_imbalance(ex)
        + _panel_proc_times(ex)
    )


# -- assembly -----------------------------------------------------------

def build_report(manifest: dict, previous: dict | None = None) -> str:
    """Render one manifest (plus an optional prior run for the delta
    panel) into a complete, self-contained HTML document string."""
    panels = [
        _panel_header(manifest),
        "<main>",
        _panel_stages(manifest),
        _panels_explain(manifest),
        _panel_memory(manifest),
        _panel_sweep(manifest),
        _panel_histograms(manifest),
        _panel_profile(manifest),
        _panel_delta(manifest, previous),
        "</main>",
    ]
    body = "".join(p for p in panels if p)
    if "<section" not in body:
        body += ("<main><p class='meta'>This run manifest carries no "
                 "renderable panels (no stage timings, memory samples, "
                 "sweep records, histograms or profile).</p></main>")
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    title = f"repro run report — {manifest.get('run_id', 'run')}"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + body
        + f"\n<footer>generated {stamp} · self-contained (no external "
          "resources) · python -m repro report</footer>\n</body></html>\n"
    )


def render_report(
    ref: str | None = None,
    runs_dir=None,
    out: str | Path = "REPORT.html",
) -> Path:
    """Load a run (``ref`` as in ``runs show``; ``None`` = latest),
    pair it with the prior run of the same kind for the delta panel,
    and write the HTML report to ``out``.  Returns the output path."""
    from . import runs as obs_runs

    manifest = obs_runs.load_run(ref if ref else "latest", runs_dir)
    previous = None
    kind = manifest.get("kind")
    if kind:
        same_kind = obs_runs.list_runs(runs_dir, kind)
        earlier = [m for m in same_kind
                   if m.get("created_unix", 0) < manifest.get("created_unix", 0)
                   and m.get("run_id") != manifest.get("run_id")]
        if earlier:
            previous = earlier[-1]
    out = Path(out)
    out.write_text(build_report(manifest, previous))
    return out
