"""Span-attributed sampling profiler: where does the wall clock go?

Spans time the stages the author thought to instrument; a profiler
finds the cost the author did not.  This module samples every live
Python thread's call stack from a background thread (via
``sys._current_frames()``) at a fixed rate — no sys.settrace, no
bytecode hooks, so the profiled code runs at native speed and the
measured overhead at the default 200 Hz stays under the 5% bar
``tests/perf`` asserts on the CANN1072 pipeline.

Each sample is tagged with the sampled thread's **currently open span**
(read from the active :class:`~repro.obs.trace.Recorder`), which makes
two complementary views possible:

* :meth:`SamplingProfiler.self_time` — a per-(span, function) self-time
  table: "62% of ``pipeline.dependencies`` is ``np.unique``";
* :meth:`SamplingProfiler.collapsed` — folded-stack lines
  (``frame;frame;frame count``) directly consumable by ``flamegraph.pl``
  or https://www.speedscope.app (drag-and-drop the file).

The CLI front end is ``python -m repro profile <target> --hz 200``.
Only the standard library is used.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter

from .trace import Recorder, get_recorder, is_enabled

__all__ = ["SamplingProfiler", "profiled"]

#: Threads whose name starts with one of these never get sampled: the
#: profiler itself and the memory monitor are observers, not workload.
_OBSERVER_PREFIX = "repro-obs"

#: Stack frames beyond this depth are folded into a "..." marker.
MAX_DEPTH = 64

#: Span tag used for samples taken while the thread had no open span.
NO_SPAN = "(no span)"


def _frame_label(frame) -> str:
    code = frame.f_code
    filename = code.co_filename
    # Shorten absolute paths to the last two components: enough to
    # disambiguate repro modules without machine-specific prefixes.
    parts = filename.replace("\\", "/").rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{code.co_name} ({short}:{frame.f_lineno})"


class SamplingProfiler:
    """Samples all threads' stacks at ``hz`` from a daemon thread.

    ``recorder`` supplies the span attribution (default: the active
    recorder when tracing is enabled).  Samples accumulate in
    ``self.samples`` as ``Counter[(span, stack_tuple)]`` with stacks
    root-first; ``nsamples`` counts total samples taken and
    ``duration`` the profiled wall time.
    """

    def __init__(self, hz: float = 200.0, recorder: Recorder | None = None):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz!r}")
        self.hz = float(hz)
        self.recorder = recorder
        self.samples: Counter = Counter()
        self.nsamples = 0
        self.duration = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0 = 0.0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self.recorder is None and is_enabled():
            self.recorder = get_recorder()
        self._stop.clear()
        self._t0 = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name=f"{_OBSERVER_PREFIX}-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.duration += time.perf_counter() - self._t0
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling -------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        while not self._stop.wait(interval):
            self._sample_once(own)

    def _sample_once(self, own_ident: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        rec = self.recorder
        for ident, frame in sys._current_frames().items():
            if ident == own_ident:
                continue
            name = names.get(ident, "")
            if name.startswith(_OBSERVER_PREFIX):
                continue
            stack = []
            depth = 0
            while frame is not None and depth < MAX_DEPTH:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if frame is not None:
                stack.append("...")
            stack.reverse()  # root-first, the folded-stack convention
            span = rec.open_span_name(ident) if rec is not None else None
            self.samples[(span or NO_SPAN, tuple(stack))] += 1
            self.nsamples += 1

    # -- views ----------------------------------------------------------
    def collapsed(self, with_span_root: bool = True) -> str:
        """Folded-stack lines for flamegraph.pl / speedscope.

        With ``with_span_root`` (default) each stack is rooted at a
        synthetic ``span:<name>`` frame, so the flamegraph groups by
        pipeline stage before it groups by call path.
        """
        lines = []
        for (span, stack), count in sorted(self.samples.items()):
            frames = (f"span:{span}", *stack) if with_span_root else stack
            lines.append(";".join(frames) + f" {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def self_time(self) -> list[dict]:
        """Per-(span, leaf function) self-sample rows, heaviest first.

        A frame's *self* samples are the ones where it was the innermost
        frame — the function actually on the CPU (or holding the GIL)
        when the sampler fired.
        """
        leaves: Counter = Counter()
        for (span, stack), count in self.samples.items():
            leaf = stack[-1] if stack else "(unknown)"
            leaves[(span, leaf)] += count
        total = self.nsamples or 1
        return [
            {
                "span": span,
                "func": leaf,
                "samples": count,
                "pct": 100.0 * count / total,
                "est_s": count / self.hz,
            }
            for (span, leaf), count in leaves.most_common()
        ]

    def table(self, top: int = 20) -> str:
        """ASCII top-``top`` self-time table."""
        from ..analysis.tables import render_table  # stdlib-only; lazy

        rows = [
            [r["func"], r["span"], r["samples"], f"{r['pct']:.1f}%",
             f"{r['est_s'] * 1e3:.1f}"]
            for r in self.self_time()[:top]
        ]
        title = (
            f"Profile: {self.nsamples} samples at {self.hz:.0f} Hz "
            f"over {self.duration:.2f}s"
        )
        if not rows:
            return title + "\n(no samples; the profiled section was too short)"
        return render_table(
            ["self (function)", "span", "samples", "self %", "est ms"],
            rows, title,
        )

    def to_dict(self, top: int = 30) -> dict:
        """JSON-safe digest embedded in run manifests and the HTML
        report: sampling metadata plus the top-``top`` self-time rows."""
        return {
            "hz": self.hz,
            "duration_s": self.duration,
            "nsamples": self.nsamples,
            "top": [
                {k: (round(v, 4) if isinstance(v, float) else v)
                 for k, v in row.items()}
                for row in self.self_time()[:top]
            ],
        }


def profiled(hz: float = 200.0, recorder: Recorder | None = None) -> SamplingProfiler:
    """Context-manager sugar: ``with profiled(200) as prof: ...``."""
    return SamplingProfiler(hz=hz, recorder=recorder)
