"""Memory watermarks: a background RSS sampler feeding span attribution.

ROADMAP item 1 (the 100-1000x workload scale-up) is blocked on knowing
where memory goes; wall-clock spans alone cannot say whether the
symbolic stage peaked at 40 MB or 4 GB.  :class:`MemoryMonitor` closes
that gap with three cooperating pieces:

* a **sampler**: a daemon thread reads the process RSS from
  ``/proc/self/statm`` (or psutil where available) every ``interval``
  seconds and appends ``(t, rss_bytes)`` to the owning recorder's
  ``memory_samples`` timeline — timestamps are relative to the
  recorder's epoch, so the samples line up with spans and survive the
  shard merge of a parallel sweep;
* **span attribution**: every span closed while a monitor is attached
  picks up ``mem_peak_mb`` (the high-water RSS over the span's window,
  from the samples plus an entry/exit reading) and ``mem_delta_mb``
  (net RSS change across the span) in its args;
* **deep mode** (``REPRO_TRACE_MEM=deep``): tracemalloc is started and
  spans additionally carry ``mem_alloc_kb``, the *net Python
  allocation* delta — RSS tells you what the OS granted, tracemalloc
  tells you which allocations survived.

``REPRO_TRACE_MEM=0`` (or ``off``) disables attachment entirely; on
platforms with neither ``/proc`` nor psutil the monitor degrades to a
no-op rather than failing.  Only the standard library is required.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

from .trace import Recorder, get_recorder

__all__ = [
    "rss_bytes",
    "memory_enabled",
    "deep_tracing_requested",
    "MemoryMonitor",
    "monitored",
]

_MB = 1024.0 * 1024.0

try:  # one sysconf call at import; Linux and macOS both have it
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


def _rss_from_proc() -> int | None:
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def _rss_from_psutil() -> int | None:  # pragma: no cover - linux CI has /proc
    try:
        import psutil
    except ImportError:
        return None
    try:
        return int(psutil.Process().memory_info().rss)
    except Exception:
        return None


def rss_bytes() -> int | None:
    """Current resident set size in bytes, or ``None`` when unreadable."""
    rss = _rss_from_proc()
    if rss is not None:
        return rss
    return _rss_from_psutil()


def memory_enabled() -> bool:
    """False when ``REPRO_TRACE_MEM`` is ``0``/``off`` or RSS is
    unreadable on this platform; harnesses skip attachment then."""
    if os.environ.get("REPRO_TRACE_MEM", "").lower() in ("0", "off"):
        return False
    return rss_bytes() is not None


def deep_tracing_requested() -> bool:
    """True when ``REPRO_TRACE_MEM=deep`` asks for tracemalloc deltas."""
    return os.environ.get("REPRO_TRACE_MEM", "").lower() == "deep"


class MemoryMonitor:
    """Samples process RSS onto a recorder and marks span watermarks.

    One monitor serves one recorder; :meth:`start` installs it as
    ``recorder.memory`` (so spans pick up watermarks on exit) and spawns
    the sampler thread, :meth:`stop` detaches it, takes a final sample
    and records the run-level ``mem.rss_peak_mb`` gauge.  All sample
    state lives on the recorder (``memory_samples``), so shards ship it
    across process boundaries like any other telemetry.
    """

    def __init__(
        self,
        recorder: Recorder,
        interval: float = 0.005,
        deep: bool | None = None,
    ) -> None:
        self.recorder = recorder
        self.interval = float(interval)
        self.deep = deep_tracing_requested() if deep is None else bool(deep)
        self.peak_rss = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_tracemalloc = False

    # -- sampling -------------------------------------------------------
    def sample(self) -> int | None:
        """Take one RSS sample now; appends to the recorder's timeline."""
        rss = rss_bytes()
        if rss is None:
            return None
        if rss > self.peak_rss:
            self.peak_rss = rss
        self.recorder.memory_samples.append(
            (time.perf_counter() - self.recorder.epoch, rss)
        )
        return rss

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def start(self) -> "MemoryMonitor":
        if self.deep:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        self.sample()
        self.recorder.memory = self
        if rss_bytes() is not None:
            self._thread = threading.Thread(
                target=self._run, name="repro-obs-memory", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.sample()
        if self.recorder.memory is self:
            self.recorder.memory = None
        if self.peak_rss:
            self.recorder.set_gauge(
                "mem.rss_peak_mb", round(self.peak_rss / _MB, 3)
            )
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False

    # -- span attribution ----------------------------------------------
    def mark(self) -> tuple[int, int, int]:
        """Span-entry watermark: (sample index, rss now, traced now)."""
        rss = rss_bytes() or 0
        if rss > self.peak_rss:
            self.peak_rss = rss
        traced = 0
        if self.deep:
            import tracemalloc

            traced = tracemalloc.get_traced_memory()[0]
        return (len(self.recorder.memory_samples), rss, traced)

    def since(self, mark: tuple[int, int, int]) -> dict:
        """Span-exit watermark args for a span opened at ``mark``.

        Peak is the max of the entry/exit readings and every background
        sample taken in between, so short spans still get a watermark
        (their own two readings) and long spans get the true high water.
        """
        index, rss0, traced0 = mark
        rss1 = rss_bytes() or rss0
        if rss1 > self.peak_rss:
            self.peak_rss = rss1
        peak = max(rss0, rss1)
        samples = self.recorder.memory_samples
        if index < len(samples):
            window_peak = max(rss for _, rss in samples[index:])
            if window_peak > peak:
                peak = window_peak
        out = {
            "mem_peak_mb": round(peak / _MB, 3),
            "mem_delta_mb": round((rss1 - rss0) / _MB, 3),
        }
        if self.deep:
            import tracemalloc

            traced1 = tracemalloc.get_traced_memory()[0]
            out["mem_alloc_kb"] = round((traced1 - traced0) / 1024.0, 1)
        return out


@contextmanager
def monitored(
    recorder: Recorder | None = None,
    interval: float = 0.005,
    deep: bool | None = None,
):
    """Attach a :class:`MemoryMonitor` to ``recorder`` (default: the
    active recorder) for the duration of the block; yields the monitor,
    or ``None`` when memory tracking is disabled or unavailable."""
    if not memory_enabled():
        yield None
        return
    rec = recorder if recorder is not None else get_recorder()
    monitor = MemoryMonitor(rec, interval=interval, deep=deep)
    monitor.start()
    try:
        yield monitor
    finally:
        monitor.stop()
