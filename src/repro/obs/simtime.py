"""Simulated-machine telemetry: the *sim-clock* domain.

The rest of :mod:`repro.obs` observes the reproduction pipeline on the
wall clock (spans, RSS, profiler samples).  This module observes the
*simulated machine* — the paper's actual subject — on its own clock
domain, in abstract machine time units:

* :class:`SimRun` — one simulated execution: per-unit start/finish/
  processor/stage records, a message ledger, and the analyses that
  answer the paper's questions (P×P communication matrices, per-link
  volumes, busy/wait/idle decomposition, critical-path extraction, λ
  attribution to stage × processor with top-k culprit blocks);
* :class:`SimMessage` — one ledger entry: (src, dst, bytes,
  cause-block, send/recv sim-time);
* :class:`MessageLedger` — a Lamport-clock ledger for the executable
  :mod:`repro.mpsim` ranks, whose "simulated time" is logical (event
  counting) rather than the machine model's α/β cost model.

Emitters live next to the things they observe:
:func:`repro.machine.simulate.simulate_assignment` builds a
machine-model :class:`SimRun`; :func:`repro.mpsim.launcher.run_parallel`
attaches a :class:`MessageLedger` to the communicator.  Recorded runs
land on :class:`repro.obs.trace.Recorder.sim_runs` via
:func:`record_sim_run` and are exported by :mod:`repro.obs.export`
(JSONL lines, Perfetto flow events on the simulated-machine clock
track) and rendered by :mod:`repro.obs.report` (comm heatmap, critical
path, imbalance waterfall).  See ``docs/observability.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from . import trace as obs_trace

__all__ = [
    "SimMessage",
    "SimRun",
    "ProcTimes",
    "CriticalPath",
    "ImbalanceAttribution",
    "MessageLedger",
    "record_sim_run",
    "busy_grid",
    "ledger_run",
    "REASON_NONE",
    "REASON_PROC",
    "REASON_DEP",
    "REASON_MSG",
]

#: Why a unit started when it did (``SimRun.reason_kind``): nothing
#: bound it (it started at t=0), the processor was busy with an earlier
#: unit, a same-processor predecessor finished, or a message from
#: another processor arrived.
REASON_NONE = 0
REASON_PROC = 1
REASON_DEP = 2
REASON_MSG = 3

_REASON_NAMES = {
    REASON_NONE: "start",
    REASON_PROC: "proc-busy",
    REASON_DEP: "local-dep",
    REASON_MSG: "message",
}


@dataclass(frozen=True)
class SimMessage:
    """One message ledger entry, in simulated time.

    ``nbytes`` counts distinct elements carried (the paper's word-count
    traffic unit); ``cause`` is the unit block whose data the message
    carries (or a tag id for mpsim ledgers); ``recv`` is ``None`` for a
    message that was never delivered (fault injection)."""

    src: int
    dst: int
    nbytes: int
    cause: int
    send: float
    recv: float | None
    channel: str = "machine"


@dataclass(frozen=True)
class ProcTimes:
    """Per-processor decomposition of the makespan: time computing,
    time stalled waiting for data/predecessors, and trailing idle time.
    ``busy + wait + idle == makespan`` per processor by construction."""

    busy: np.ndarray
    wait: np.ndarray
    idle: np.ndarray
    makespan: float


@dataclass(frozen=True)
class CriticalPath:
    """The chain of units that bounds the makespan.

    ``units`` is in execution order; ``edges[i]`` names why
    ``units[i+1]`` waited for ``units[i]`` (``proc-busy``,
    ``local-dep`` or ``message``).  ``length == makespan`` because each
    link is tight: every unit on the path started exactly when its
    predecessor released it."""

    units: np.ndarray
    edges: list[str]
    length: float
    compute: float
    wait: float


@dataclass(frozen=True)
class ImbalanceAttribution:
    """λ = W_max/W_ave − 1, decomposed by elimination stage.

    ``stage_rows[s]["excess"]`` is how much more work the peak
    processor ``proc`` did in stage ``s`` than the stage's mean — the
    rows sum to ``imbalance * mean_work`` exactly, so the waterfall
    reconstructs λ.  ``culprits`` are the top-k heaviest unit blocks on
    the peak processor."""

    imbalance: float
    proc: int
    work: np.ndarray
    mean_work: float
    stage_rows: list[dict]
    culprits: list[dict]


@dataclass
class SimRun:
    """One simulated execution of a schedule, on the simulated clock.

    Unit arrays are parallel (one entry per unit); a ledger-only run
    (an mpsim execution, ``clock="lamport"``) has empty unit arrays and
    supports only the message analyses."""

    name: str
    scheme: str
    nprocs: int
    makespan: float
    clock: str  # "machine" (α/β cost model) or "lamport" (mpsim)
    proc: np.ndarray
    stage: np.ndarray
    start: np.ndarray
    finish: np.ndarray
    work: np.ndarray
    kind: tuple[str, ...]
    reason: np.ndarray
    reason_kind: np.ndarray
    messages: list[SimMessage] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def n_units(self) -> int:
        return len(self.start)

    def _require_units(self, what: str) -> None:
        if not self.n_units:
            raise ValueError(
                f"{what} needs per-unit records; this {self.clock!r}-clock "
                "run carries only a message ledger"
            )

    # -- message analyses ----------------------------------------------
    def total_message_bytes(self) -> int:
        """Total ledger volume; for a machine-model run this bit-matches
        ``machine.traffic.data_traffic(...).total`` (same dedup rule)."""
        return int(sum(m.nbytes for m in self.messages))

    def comm_matrix(self) -> np.ndarray:
        """C[p, q] = ledger bytes received by p from q, matching the
        orientation of :func:`repro.machine.traffic.communication_matrix`."""
        out = np.zeros((self.nprocs, self.nprocs), dtype=np.int64)
        for m in self.messages:
            out[m.dst, m.src] += m.nbytes
        return out

    def link_volumes(self, top: int | None = None) -> list[tuple[int, int, int]]:
        """(src, dst, bytes) per used link, heaviest first."""
        totals: dict[tuple[int, int], int] = {}
        for m in self.messages:
            key = (m.src, m.dst)
            totals[key] = totals.get(key, 0) + m.nbytes
        links = sorted(
            ((s, d, v) for (s, d), v in totals.items()),
            key=lambda e: (-e[2], e[0], e[1]),
        )
        return links if top is None else links[:top]

    # -- timeline analyses ---------------------------------------------
    def proc_times(self) -> ProcTimes:
        """busy/wait/idle per processor; the three sum to the makespan."""
        self._require_units("proc_times")
        busy = np.zeros(self.nprocs, dtype=np.float64)
        wait = np.zeros(self.nprocs, dtype=np.float64)
        last = np.zeros(self.nprocs, dtype=np.float64)
        order = np.lexsort((self.finish, self.start, self.proc))
        for u in order.tolist():
            p = int(self.proc[u])
            gap = float(self.start[u]) - last[p]
            if gap > 0:
                wait[p] += gap
            busy[p] += float(self.finish[u] - self.start[u])
            last[p] = float(self.finish[u])
        # Trailing idle is measured from the last finish, not derived
        # from busy+wait, so busy+wait+idle == makespan is a genuine
        # invariant of the simulation (pinned by tests).
        idle = self.makespan - last
        return ProcTimes(busy, wait, idle, self.makespan)

    def stage_work(self) -> tuple[np.ndarray, np.ndarray]:
        """(stage ids, W) with W[s, p] = work of stage s on processor p."""
        self._require_units("stage_work")
        stages = np.unique(self.stage)
        w = np.zeros((len(stages), self.nprocs), dtype=np.float64)
        row = np.searchsorted(stages, self.stage)
        np.add.at(w, (row, self.proc), self.work)
        return stages, w

    def critical_path(self) -> CriticalPath:
        """Walk start-reasons backwards from the makespan-defining unit.

        Every link is tight (a unit started the instant its reason
        released it), so the path telescopes to the makespan exactly."""
        self._require_units("critical_path")
        last = int(np.argmax(self.finish))
        chain = [last]
        edges: list[str] = []
        u = last
        for _ in range(self.n_units):
            k = int(self.reason_kind[u])
            if k == REASON_NONE:
                break
            prev = int(self.reason[u])
            edges.append(_REASON_NAMES[k])
            chain.append(prev)
            u = prev
        else:
            raise ValueError("critical-path walk did not terminate")
        chain.reverse()
        edges.reverse()
        units = np.asarray(chain, dtype=np.int64)
        compute = float(np.sum(self.finish[units] - self.start[units]))
        length = float(self.finish[last] - self.start[units[0]])
        return CriticalPath(units, edges, length, compute, length - compute)

    def imbalance(self, top_k: int = 5) -> ImbalanceAttribution:
        """Attribute λ to stage × processor, with top-k culprit blocks."""
        self._require_units("imbalance")
        w = np.zeros(self.nprocs, dtype=np.float64)
        np.add.at(w, self.proc, self.work)
        mean = float(w.mean()) if self.nprocs else 0.0
        lam = float(w.max() / mean - 1.0) if mean > 0 else 0.0
        p_star = int(np.argmax(w))
        stages, sw = self.stage_work()
        rows = []
        for i, s in enumerate(stages.tolist()):
            stage_mean = float(sw[i].mean())
            rows.append({
                "stage": int(s),
                "excess": float(sw[i, p_star] - stage_mean),
                "peak_work": float(sw[i, p_star]),
                "mean_work": stage_mean,
                "max_work": float(sw[i].max()),
                "lambda_s": (float(sw[i].max() / stage_mean - 1.0)
                             if stage_mean > 0 else 0.0),
            })
        on_peak = np.flatnonzero(self.proc == p_star)
        heavy = on_peak[np.argsort(-self.work[on_peak], kind="stable")][:top_k]
        culprits = [{
            "uid": int(u),
            "stage": int(self.stage[u]),
            "kind": self.kind[u] if u < len(self.kind) else "?",
            "work": float(self.work[u]),
        } for u in heavy.tolist()]
        return ImbalanceAttribution(lam, p_star, w, mean, rows, culprits)

    # -- serialization ---------------------------------------------------
    def to_manifest(self, top_links: int = 30, path_cap: int = 200,
                    matrix_cap: int = 128) -> dict:
        """JSON-safe summary for the run registry / HTML report.

        The full P×P matrix is included up to ``matrix_cap`` processors
        (beyond that only the top links are kept); the critical path is
        truncated to ``path_cap`` units (summary figures stay exact)."""
        doc: dict = {
            "name": self.name,
            "scheme": self.scheme,
            "nprocs": int(self.nprocs),
            "clock": self.clock,
            "makespan": float(self.makespan),
            "n_units": int(self.n_units),
            "n_messages": len(self.messages),
            "message_bytes": self.total_message_bytes(),
            "links": [
                {"src": s, "dst": d, "bytes": v}
                for s, d, v in self.link_volumes(top=top_links)
            ],
        }
        if self.nprocs <= matrix_cap:
            doc["comm_matrix"] = self.comm_matrix().tolist()
        if self.n_units:
            pt = self.proc_times()
            doc["proc_times"] = {
                "busy": [round(float(v), 6) for v in pt.busy],
                "wait": [round(float(v), 6) for v in pt.wait],
                "idle": [round(float(v), 6) for v in pt.idle],
            }
            cp = self.critical_path()
            cp_units = cp.units.tolist()
            doc["critical_path"] = {
                "length": cp.length,
                "compute": cp.compute,
                "wait": cp.wait,
                "n_units": len(cp_units),
                "truncated": len(cp_units) > path_cap,
                "units": [{
                    "uid": int(u),
                    "proc": int(self.proc[u]),
                    "stage": int(self.stage[u]),
                    "kind": self.kind[u] if u < len(self.kind) else "?",
                    "start": float(self.start[u]),
                    "finish": float(self.finish[u]),
                    "edge": ("start" if i == 0 else cp.edges[i - 1]),
                } for i, u in enumerate(cp_units[:path_cap])],
            }
            att = self.imbalance()
            doc["imbalance"] = {
                "lambda": att.imbalance,
                "proc": att.proc,
                "mean_work": att.mean_work,
                "work": [float(v) for v in att.work],
                "stages": att.stage_rows,
                "culprits": att.culprits,
            }
        if self.meta:
            doc["meta"] = {k: _plain(v) for k, v in sorted(self.meta.items())}
        return doc


def _plain(value):
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return value


def busy_grid(start, finish, proc, nprocs: int, width: int,
              makespan: float) -> np.ndarray:
    """Quantize unit intervals onto a (nprocs × width) busy raster.

    This is the single source of truth for Gantt-style rendering: the
    ASCII chart (:func:`repro.analysis.gantt.render_gantt`) and the
    report panels both consume it, so they can never disagree.  A unit
    with positive duration always covers at least one cell."""
    start = np.asarray(start, dtype=np.float64)
    finish = np.asarray(finish, dtype=np.float64)
    proc = np.asarray(proc, dtype=np.int64)
    busy = np.zeros((nprocs, width), dtype=bool)
    if makespan <= 0:
        return busy
    scale = width / makespan
    for u in range(len(start)):
        a = int(start[u] * scale)
        b = int(np.ceil(finish[u] * scale))
        busy[proc[u], a: max(b, a + (finish[u] > start[u]))] = True
    return busy


def ledger_run(name: str, scheme: str, nprocs: int, makespan: float,
               messages: list[SimMessage], clock: str = "lamport",
               meta: dict | None = None) -> SimRun:
    """A :class:`SimRun` carrying only a message ledger (no unit records)."""
    empty_f = np.zeros(0, dtype=np.float64)
    empty_i = np.zeros(0, dtype=np.int64)
    return SimRun(
        name=name, scheme=scheme, nprocs=nprocs, makespan=float(makespan),
        clock=clock, proc=empty_i, stage=empty_i, start=empty_f,
        finish=empty_f, work=empty_f, kind=(), reason=empty_i,
        reason_kind=empty_i, messages=messages, meta=dict(meta or {}),
    )


class MessageLedger:
    """Lamport-clock message ledger for the mpsim executors.

    Each rank keeps a logical clock: a send ticks the sender's clock and
    stamps the message; a delivery advances the receiver's clock to
    ``max(local, send) + 1``.  The resulting ledger orders every message
    causally — a second clock domain ("lamport") distinct from both the
    wall clock and the machine model's α/β time."""

    def __init__(self, nprocs: int, channel: str = "mpsim"):
        self.nprocs = nprocs
        self.channel = channel
        self.clock = [0] * nprocs
        self._msgs: list[list] = []  # [src, dst, nbytes, cause, send, recv]
        self._lock = threading.Lock()

    def on_send(self, src: int, dst: int, nbytes: int, cause: int = -1) -> int:
        """Record a send; returns the message id to pass to ``on_recv``."""
        with self._lock:
            self.clock[src] += 1
            mid = len(self._msgs)
            self._msgs.append([src, dst, nbytes, cause, self.clock[src], None])
            return mid

    def on_recv(self, mid: int) -> None:
        """Record delivery of message ``mid`` at the destination rank."""
        with self._lock:
            m = self._msgs[mid]
            t = max(self.clock[m[1]], m[4]) + 1
            self.clock[m[1]] = t
            m[5] = t

    @property
    def messages(self) -> list[SimMessage]:
        with self._lock:
            return [
                SimMessage(src=s, dst=d, nbytes=n, cause=c, send=float(t0),
                           recv=None if t1 is None else float(t1),
                           channel=self.channel)
                for s, d, n, c, t0, t1 in self._msgs
            ]

    def undelivered(self) -> int:
        """Messages sent but never received (dropped or still in flight)."""
        with self._lock:
            return sum(1 for m in self._msgs if m[5] is None)

    def to_sim_run(self, name: str, scheme: str = "mpsim") -> SimRun:
        with self._lock:
            makespan = float(max(self.clock, default=0))
        return ledger_run(name, scheme, self.nprocs, makespan,
                          self.messages, clock="lamport")


def record_sim_run(run: SimRun) -> None:
    """Append ``run`` to the active recorder (no-op when tracing is off)."""
    if not obs_trace.is_enabled():
        return
    obs_trace.get_recorder().add_sim_run(run)
