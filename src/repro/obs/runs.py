"""Persistent run registry: one manifest per bench/sweep run.

``BENCH_*.json`` files capture a single snapshot; this module keeps the
*history*.  Every ``python -m repro sweep|bench|bench-sweep`` invocation
appends one JSON line to ``.repro/runs/<kind>.jsonl`` describing the run:

* identity — a unique ``run_id``, the run ``kind``, creation time and
  the git SHA of the working tree (when available);
* configuration — the grid/matrix/parameter set the run measured;
* measurements — per-stage timings in the same ``matrices`` shape the
  bench reports use (so :func:`repro.perf.bench.compare_reports` and
  :func:`~repro.perf.bench.find_regressions` apply verbatim), plus
  cache hit/miss counters and the wall clock.

``python -m repro runs list|show|compare`` reads the registry back;
``runs compare OLD NEW --fail-on-regression`` is the CI gate — it exits
nonzero when any stage regressed beyond the bench threshold (25%).

The registry root defaults to ``.repro/runs`` under the current
directory and can be redirected with ``$REPRO_RUNS_DIR`` (tests and CI
do).  Registry writes are advisory: a read-only checkout must never
break a sweep, so :func:`record_run` swallows ``OSError``.

Top-level imports are standard-library only; the comparison helpers
import :mod:`repro.perf.bench` lazily to keep ``repro.obs`` importable
on its own.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
import uuid
from pathlib import Path

__all__ = [
    "RUNS_SCHEMA_VERSION",
    "default_runs_dir",
    "git_sha",
    "host_info",
    "record_run",
    "list_runs",
    "load_run",
    "compare_runs",
    "find_run_regressions",
    "render_runs_table",
    "render_run",
    "render_run_delta",
]

#: v2 added the ``host`` provenance block (hostname/platform/python/cpus)
#: to every manifest.  Readers treat both versions alike — v1 manifests
#: simply have no ``host`` key.
RUNS_SCHEMA_VERSION = 2


def default_runs_dir() -> Path:
    """``$REPRO_RUNS_DIR`` if set, else ``.repro/runs`` in the cwd."""
    env = os.environ.get("REPRO_RUNS_DIR")
    if env:
        return Path(env)
    return Path(".repro") / "runs"


def git_sha() -> str | None:
    """The working tree's HEAD SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def host_info() -> dict:
    """Where a run was measured: enough to explain a timing delta that
    is really a machine delta, nothing identifying beyond the hostname."""
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def _new_run_id(kind: str, created: float) -> str:
    stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime(created))
    return f"{kind}-{stamp}-{uuid.uuid4().hex[:6]}"


def record_run(
    kind: str,
    config: dict | None = None,
    matrices: dict | None = None,
    counters: dict | None = None,
    wall_s: float | None = None,
    root: str | Path | None = None,
    extra: dict | None = None,
) -> dict | None:
    """Append one run manifest to the registry; returns the manifest.

    ``matrices`` must follow the bench-report shape (``{name:
    {"stages": {...}, "wall_total": ...}}`` for pipeline timings, or the
    sweep-bench ``wall_noreuse``/``wall_reuse`` shape) so two manifests
    of the same kind are directly comparable.  Returns ``None`` — and
    writes nothing — when the registry directory is not writable.
    """
    created = time.time()
    manifest = {
        "schema_version": RUNS_SCHEMA_VERSION,
        "run_id": _new_run_id(kind, created),
        "kind": kind,
        "created_unix": created,
        "created": time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(created)),
        "git_sha": git_sha(),
        "host": host_info(),
        "config": dict(config or {}),
        "matrices": dict(matrices or {}),
        "counters": {k: v for k, v in sorted((counters or {}).items())},
        "wall_s": None if wall_s is None else float(wall_s),
    }
    if extra:
        manifest.update(extra)
    path = Path(root) if root is not None else default_runs_dir()
    try:
        path.mkdir(parents=True, exist_ok=True)
        with open(path / f"{kind}.jsonl", "a") as fh:
            fh.write(json.dumps(manifest, sort_keys=True) + "\n")
    except OSError:
        return None
    return manifest


def list_runs(root: str | Path | None = None, kind: str | None = None) -> list[dict]:
    """Every recorded manifest, oldest first with same-second ties
    broken by run id — a total order, so CI log diffs are
    deterministic; bad lines are skipped."""
    path = Path(root) if root is not None else default_runs_dir()
    manifests: list[dict] = []
    if not path.is_dir():
        return manifests
    for file in sorted(path.glob("*.jsonl")):
        for line in file.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if isinstance(doc, dict) and (kind is None or doc.get("kind") == kind):
                manifests.append(doc)
    manifests.sort(
        key=lambda m: (m.get("created_unix", 0.0), str(m.get("run_id", "")))
    )
    return manifests


def load_run(ref: str, root: str | Path | None = None) -> dict:
    """Resolve ``ref`` to a manifest-shaped dict.

    ``ref`` may be a file path (a manifest or any ``BENCH_*.json``
    report — reports are wrapped so they compare like manifests), the
    literal ``latest`` / ``<kind>:latest``, a full ``run_id``, or a
    unique ``run_id`` prefix.  Raises :class:`ValueError` when nothing
    (or more than one run) matches.
    """
    if os.path.isfile(ref):
        with open(ref) as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict):
            raise ValueError(f"{ref}: not a JSON object")
        if "run_id" not in doc:  # a bench report; wrap it
            doc = {
                "run_id": str(ref),
                "kind": "bench-report",
                "matrices": doc.get("matrices", {}),
                "config": {
                    k: doc[k]
                    for k in (
                        "smoke", "tier", "nprocs", "grain", "grid", "repeats"
                    )
                    if k in doc
                },
            }
        return doc
    kind = None
    if ref == "latest" or ref.endswith(":latest"):
        kind = None if ref == "latest" else ref.rsplit(":", 1)[0]
        manifests = list_runs(root, kind)
        if not manifests:
            raise ValueError(f"no recorded runs match {ref!r}")
        return manifests[-1]
    manifests = list_runs(root)
    exact = [m for m in manifests if m.get("run_id") == ref]
    if len(exact) == 1:
        return exact[0]
    prefixed = [m for m in manifests if str(m.get("run_id", "")).startswith(ref)]
    if len(prefixed) == 1:
        return prefixed[0]
    if len(prefixed) > 1:
        ids = ", ".join(str(m["run_id"]) for m in prefixed[:5])
        raise ValueError(f"run ref {ref!r} is ambiguous: {ids}")
    raise ValueError(f"no run or file matches {ref!r}")


def _is_sweep_shape(doc: dict) -> bool:
    sample = next(iter(doc.get("matrices", {}).values()), None)
    return isinstance(sample, dict) and "wall_reuse" in sample


def compare_runs(old: dict, new: dict) -> list[dict]:
    """Per-stage delta rows (``baseline`` = old, ``current`` = new).

    Dispatches on the manifests' ``matrices`` shape: pipeline-stage
    entries go through :func:`repro.perf.bench.compare_reports`,
    sweep-bench entries through
    :func:`~repro.perf.bench.compare_sweep_reports`.
    """
    from ..perf.bench import compare_reports, compare_sweep_reports

    if _is_sweep_shape(new) or _is_sweep_shape(old):
        return compare_sweep_reports(new, old)
    return compare_reports(new, old)


def find_run_regressions(
    old: dict, new: dict, threshold: float | None = None
) -> list[str]:
    """Stages of ``new`` slower than ``old`` — or, for memory rows
    (``unit: "mb"``), hungrier — by more than ``threshold`` (default:
    the bench harness's 25%), as human-readable strings."""
    from ..perf.bench import REGRESSION_THRESHOLD, describe_regression

    if threshold is None:
        threshold = REGRESSION_THRESHOLD
    out = []
    for row in compare_runs(old, new):
        if row["current_s"] > row["baseline_s"] * (1.0 + threshold):
            out.append(describe_regression(row))
    return out


def render_run_delta(old: dict, new: dict) -> str:
    """ASCII delta table between two manifests (shape-dispatched)."""
    from ..perf.bench import render_delta, render_sweep_delta

    if _is_sweep_shape(new) or _is_sweep_shape(old):
        return render_sweep_delta(new, old)
    return render_delta(new, old)


def render_runs_table(manifests: list[dict]) -> str:
    """One line per run: id, kind, created, git SHA, wall, matrices."""
    if not manifests:
        return "(no recorded runs)"
    headers = ["run id", "kind", "created", "git", "wall s", "matrices"]
    rows = []
    for m in manifests:
        sha = m.get("git_sha") or "-"
        wall = m.get("wall_s")
        rows.append(
            [
                str(m.get("run_id", "?")),
                str(m.get("kind", "?")),
                str(m.get("created", "?")),
                sha[:10],
                "-" if wall is None else f"{wall:.2f}",
                ",".join(sorted(m.get("matrices", {}))) or "-",
            ]
        )
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows]
    return "\n".join(lines)


def render_run(manifest: dict) -> str:
    """Pretty-printed manifest for ``runs show``."""
    return json.dumps(manifest, indent=2, sort_keys=True)
