"""Fixed log-bucket histograms: distributions instead of averages.

The paper's whole argument is about *skew* — the imbalance λ is a
max/mean ratio, and a mean hides exactly the tail it measures.  The
recorder's counters and gauges have the same blind spot: a sweep that
reports only the mean per-cell wall time cannot show that one straggler
group took 40× the median.  :class:`Histogram` fixes that with a
fixed-base logarithmic bucketing:

* buckets are ``[BASE**k, BASE**(k+1))`` with ``BASE = 2**0.25``
  (~19% wide), so any percentile estimate is within one bucket width
  (<10% relative error) of the true value — good enough to tell p99
  from p50, which is the whole point;
* bucket boundaries are *fixed*, never data-dependent, so two
  histograms recorded in different processes (or different runs) merge
  by adding bucket counts — :mod:`repro.obs.shard` relies on this;
* storage is a sparse ``{bucket_index: count}`` dict: observing a value
  is one ``math.log`` and one dict update, cheap enough for per-cell
  sweep timings.

Non-positive values land in a dedicated underflow bucket counted at the
tracked exact minimum.  Exact ``count``/``sum``/``min``/``max`` ride
along, so means stay exact and percentile estimates are clamped into
the true range.  Only the standard library is used.
"""

from __future__ import annotations

import math

__all__ = ["BASE", "Histogram", "bucket_index", "bucket_bounds"]

#: Geometric bucket growth factor; 2**0.25 keeps relative bucket width
#: under 20% across the whole range.
BASE = 2.0 ** 0.25

_LOG_BASE = math.log(BASE)

#: Sparse-dict key for the "value <= 0" underflow bucket.  Real bucket
#: indices for positive floats stay far above this.
_UNDERFLOW = -(2 ** 31)


def bucket_index(value: float) -> int:
    """The fixed bucket index holding ``value`` (underflow for <= 0)."""
    if value <= 0.0:
        return _UNDERFLOW
    return math.floor(math.log(value) / _LOG_BASE)


def bucket_bounds(index: int) -> tuple[float, float]:
    """The ``[lo, hi)`` value range of bucket ``index``."""
    if index == _UNDERFLOW:
        return (0.0, 0.0)
    return (BASE ** index, BASE ** (index + 1))


class Histogram:
    """A mergeable fixed-log-bucket histogram of one named metric."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    # -- recording ------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Accumulate ``other`` into this histogram (fixed buckets add)."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    # -- queries --------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (0-100); exact min/max clamp the
        estimate, so p0/p100 are exact and everything else is within one
        bucket width."""
        if self.count == 0:
            return 0.0
        if q <= 0:
            return self.min
        if q >= 100:
            return self.max
        target = q / 100.0 * self.count
        running = 0
        for idx in sorted(self.buckets):
            running += self.buckets[idx]
            if running >= target:
                if idx == _UNDERFLOW:
                    return max(self.min, 0.0) if self.min < 0 else self.min
                lo, hi = bucket_bounds(idx)
                mid = math.sqrt(lo * hi)  # geometric bucket midpoint
                return min(max(mid, self.min), self.max)
        return self.max

    def summary(self) -> dict:
        """The scalar digest rendered in tables and manifests."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    # -- (de)serialization ---------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe payload (bucket keys become strings) for manifests
        and shards; :meth:`from_dict` round-trips it exactly."""
        out = self.summary()
        out["buckets"] = {str(k): v for k, v in sorted(self.buckets.items())}
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "Histogram":
        hist = cls()
        hist.count = int(doc.get("count", 0))
        hist.total = float(doc.get("sum", 0.0))
        if hist.count:
            hist.min = float(doc.get("min", math.inf))
            hist.max = float(doc.get("max", -math.inf))
        hist.buckets = {
            int(k): int(v) for k, v in (doc.get("buckets") or {}).items()
        }
        return hist

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
            and self.buckets == other.buckets
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "Histogram(empty)"
        return (
            f"Histogram(count={self.count}, mean={self.mean:.3g}, "
            f"p50={self.percentile(50):.3g}, p99={self.percentile(99):.3g})"
        )
