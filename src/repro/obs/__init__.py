"""repro.obs — pipeline-wide tracing and metrics.

:mod:`repro.obs.trace` is the zero-dependency recording core (spans,
counters, gauges, histograms, simulated timelines) that the rest of the
stack calls into; it is a cheap no-op until enabled.
:mod:`repro.obs.export` turns a recorded run into JSONL, Chrome-trace
JSON (``chrome://tracing`` / Perfetto) or an ASCII summary.
:mod:`repro.obs.shard` ships worker recorders across process boundaries
and merges them into one multi-process trace; :mod:`repro.obs.runs` is
the persistent run registry behind ``python -m repro runs``.
:mod:`repro.obs.memory` attaches RSS watermarks to spans,
:mod:`repro.obs.profile` is the span-attributed sampling profiler, and
:mod:`repro.obs.report` renders a recorded run as one self-contained
HTML page.  :mod:`repro.obs.simtime` is the *simulated-clock* domain:
message ledgers, communication matrices, critical-path extraction and
λ attribution for the simulated machine.  See ``docs/observability.md``.
"""

from . import runs, shard
from .histogram import Histogram
from .memory import MemoryMonitor, memory_enabled, monitored, rss_bytes
from .profile import SamplingProfiler, profiled
from .simtime import (
    CriticalPath,
    ImbalanceAttribution,
    MessageLedger,
    ProcTimes,
    SimMessage,
    SimRun,
    busy_grid,
    ledger_run,
    record_sim_run,
)
from .export import (
    chrome_trace_json,
    summary_table,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .trace import (
    Recorder,
    SpanRecord,
    TimelineEvent,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    get_recorder,
    is_enabled,
    observe,
    set_recorder,
    span,
    timeline_event,
)

__all__ = [
    "runs",
    "shard",
    "Histogram",
    "MemoryMonitor",
    "memory_enabled",
    "monitored",
    "rss_bytes",
    "SamplingProfiler",
    "profiled",
    "CriticalPath",
    "ImbalanceAttribution",
    "MessageLedger",
    "ProcTimes",
    "SimMessage",
    "SimRun",
    "busy_grid",
    "ledger_run",
    "record_sim_run",
    "Recorder",
    "SpanRecord",
    "TimelineEvent",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_recorder",
    "is_enabled",
    "observe",
    "set_recorder",
    "span",
    "timeline_event",
    "chrome_trace_json",
    "summary_table",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
