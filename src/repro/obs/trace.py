"""Zero-dependency structured tracing: spans, counters, gauges, timelines.

The paper's whole contribution is measurement, so the reproduction's own
pipeline should be measurable too.  This module provides the recording
core used throughout the stack:

* :func:`span` — a nestable context manager timing one pipeline stage
  (``with span("partition", matrix="LAP30"): ...``), recorded on exit
  with wall-clock start/end, nesting depth and arbitrary key/value args;
* :func:`counter` — a named monotonically accumulated count
  (``counter("partition.units", 12)``);
* :func:`gauge` — a named last-value-wins observation;
* :func:`observe` — one sample of a named distribution, accumulated
  into a fixed log-bucket :class:`~repro.obs.histogram.Histogram`
  (``observe("perf.sweep.unit_ms", 12.5)``), so p50/p90/p99 survive
  where a mean would average the skew away;
* :func:`timeline_event` — an event with *caller-supplied* timestamps on
  a numbered lane, for simulated clocks (the schedule simulator emits
  one per unit block, so a run renders as a Gantt chart in Perfetto).

When a :class:`repro.obs.memory.MemoryMonitor` is attached to the
recorder, every span additionally records ``mem_peak_mb`` /
``mem_delta_mb`` (and ``mem_alloc_kb`` in deep mode) in its args, and
the recorder accumulates an RSS sample timeline in ``memory_samples``.

Everything lands in a :class:`Recorder`.  Tracing is **off by default**
and every entry point first checks a module-level flag, so the disabled
cost at an instrumented call site is one function call and one branch —
the overhead target is <5% on the scaling benchmark.  Enable globally
with :func:`enable`/:func:`disable`, or scoped with::

    with enabled() as rec:
        run_pipeline()
    print(rec.counters)

Only the standard library is used; exporters live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .histogram import Histogram

__all__ = [
    "SpanRecord",
    "TimelineEvent",
    "Recorder",
    "enable",
    "disable",
    "enabled",
    "is_enabled",
    "get_recorder",
    "set_recorder",
    "span",
    "counter",
    "gauge",
    "observe",
    "timeline_event",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a timed, named, possibly nested interval."""

    name: str
    start: float  # seconds since the recorder's epoch
    end: float
    depth: int  # 0 = top level (per thread)
    thread: int  # python thread ident
    args: dict = field(default_factory=dict)
    error: str | None = None  # exception type name if the body raised
    pid: int | None = None  # None = the recording process itself

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TimelineEvent:
    """An event on a simulated clock: ``lane`` is e.g. a processor id."""

    name: str
    ts: float  # simulated time, abstract units
    dur: float
    lane: int
    track: str = "sim"
    args: dict = field(default_factory=dict)


class Recorder:
    """Accumulates spans, counters, gauges and timeline events for one run.

    Appends are guarded by a lock (the mpsim runtime records from many
    threads); the per-thread span stack lives in thread-local storage so
    concurrent spans nest independently.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        #: Wall-clock (unix) time of the epoch, so recorders created in
        #: different processes can be merged onto one timeline: a span's
        #: absolute time is ``recorder.epoch_unix + span.start``.
        self.epoch_unix = time.time()
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, object] = {}
        self.histograms: dict[str, Histogram] = {}
        self.timeline: list[TimelineEvent] = []
        #: Simulated-machine executions (:class:`repro.obs.simtime.SimRun`)
        #: appended by :func:`repro.obs.simtime.record_sim_run` — the
        #: sim-clock domain, distinct from wall-clock spans.
        self.sim_runs: list = []
        #: ``(t_rel_epoch, rss_bytes)`` samples appended by an attached
        #: :class:`repro.obs.memory.MemoryMonitor`.
        self.memory_samples: list[tuple[float, int]] = []
        #: The attached memory monitor (``None`` = no span watermarks).
        self.memory = None
        self._lock = threading.Lock()
        # Per-thread open-span stacks, keyed by thread ident in a plain
        # dict (GIL-atomic get/set) rather than thread-local storage so
        # the sampling profiler can read *other* threads' open spans.
        self._stacks: dict[int, list] = {}

    # -- spans ----------------------------------------------------------
    def _stack(self) -> list:
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = self._stacks[ident] = []
        return stack

    def open_span_name(self, ident: int) -> str | None:
        """Innermost open span name of thread ``ident`` (profiler use;
        safe to call from any thread — worst case a stale answer)."""
        stack = self._stacks.get(ident)
        if not stack:
            return None
        try:
            return stack[-1]._name
        except IndexError:  # popped between the check and the read
            return None

    def span(self, name: str, **args) -> "_Span":
        return _Span(self, name, args)

    @property
    def active_depth(self) -> int:
        """Nesting depth of the calling thread's open spans."""
        return len(self._stack())

    def _record_span(self, rec: SpanRecord) -> None:
        with self._lock:
            self.spans.append(rec)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        depth: int = 0,
        thread: int = 0,
        args: dict | None = None,
        error: str | None = None,
        pid: int | None = None,
    ) -> None:
        """Record a fully-formed span (merged shards, synthetic spans)."""
        self._record_span(
            SpanRecord(
                name=name,
                start=float(start),
                end=float(end),
                depth=int(depth),
                thread=int(thread),
                args=dict(args or {}),
                error=error,
                pid=pid,
            )
        )

    def drain_open_spans(self, error: str | None = None) -> int:
        """Force-close every span the calling thread still has open.

        Worker exception paths call this before the recorder is
        snapshotted so an in-flight span (entered but never exited —
        e.g. via a manual ``__enter__`` without a ``with`` block) is
        recorded rather than silently dropped.  Each drained span ends
        now and carries ``error``; returns how many were drained.  Spans
        closed here are marked done, so a late ``__exit__`` is a no-op.
        """
        stack = self._stack()
        now = time.perf_counter() - self.epoch
        drained = 0
        while stack:
            sp = stack.pop()
            sp._done = True
            self._record_span(
                SpanRecord(
                    name=sp._name,
                    start=sp._t0,
                    end=now,
                    depth=len(stack),
                    thread=threading.get_ident(),
                    args=sp._args,
                    error=error,
                )
            )
            drained += 1
        return drained

    # -- scalars --------------------------------------------------------
    def add_counter(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one sample to the named fixed-log-bucket histogram."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    # -- timelines ------------------------------------------------------
    def add_timeline_event(
        self, name: str, ts: float, dur: float, lane: int, track: str = "sim", **args
    ) -> None:
        with self._lock:
            self.timeline.append(TimelineEvent(name, float(ts), float(dur), int(lane), track, args))

    def add_sim_run(self, run) -> None:
        """Record one simulated-machine execution (a ``simtime.SimRun``)."""
        with self._lock:
            self.sim_runs.append(run)

    # -- queries --------------------------------------------------------
    def spans_named(self, name: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def is_empty(self) -> bool:
        return not (
            self.spans
            or self.counters
            or self.gauges
            or self.histograms
            or self.timeline
            or self.sim_runs
            or self.memory_samples
        )


class _Span:
    """Context manager recording one span on exit (exceptions included)."""

    __slots__ = ("_rec", "_name", "_args", "_t0", "_depth", "_done", "_mem")

    def __init__(self, rec: Recorder, name: str, args: dict):
        self._rec = rec
        self._name = name
        self._args = args
        self._done = False

    def __enter__(self) -> "_Span":
        stack = self._rec._stack()
        self._depth = len(stack)
        stack.append(self)
        monitor = self._rec.memory
        self._mem = None if monitor is None else monitor.mark()
        self._t0 = time.perf_counter() - self._rec.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._done:  # already force-closed by drain_open_spans()
            return False
        t1 = time.perf_counter() - self._rec.epoch
        self._done = True
        stack = self._rec._stack()
        if stack and stack[-1] is self:
            stack.pop()
        monitor = self._rec.memory
        if self._mem is not None and monitor is not None:
            self._args.update(monitor.since(self._mem))
        self._rec._record_span(
            SpanRecord(
                name=self._name,
                start=self._t0,
                end=t1,
                depth=self._depth,
                thread=threading.get_ident(),
                args=self._args,
                error=None if exc_type is None else exc_type.__name__,
            )
        )
        return False  # never swallow exceptions


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()
_enabled = False
_recorder = Recorder()
_state_lock = threading.Lock()


def is_enabled() -> bool:
    """True when instrumented call sites actually record."""
    return _enabled


def get_recorder() -> Recorder:
    """The currently installed recorder (recording only while enabled)."""
    return _recorder


def set_recorder(recorder: Recorder) -> None:
    global _recorder
    with _state_lock:
        _recorder = recorder


def enable(recorder: Recorder | None = None) -> Recorder:
    """Turn tracing on and return the active recorder.

    ``recorder`` replaces the installed recorder when given; otherwise
    the existing one keeps accumulating (pass ``Recorder()`` explicitly
    to start clean).
    """
    global _enabled, _recorder
    with _state_lock:
        if recorder is not None:
            _recorder = recorder
        _enabled = True
        return _recorder


def disable() -> None:
    global _enabled
    with _state_lock:
        _enabled = False


@contextmanager
def enabled(recorder: Recorder | None = None):
    """Scoped tracing: enable around a block, restore the prior state
    after, and yield the recorder that captured the block."""
    global _enabled, _recorder
    with _state_lock:
        prev_enabled, prev_recorder = _enabled, _recorder
        _recorder = recorder if recorder is not None else Recorder()
        _enabled = True
        active = _recorder
    try:
        yield active
    finally:
        with _state_lock:
            _enabled, _recorder = prev_enabled, prev_recorder


def span(name: str, **args):
    """Time a stage; a shared no-op context manager when disabled."""
    if not _enabled:
        return _NOOP
    return _recorder.span(name, **args)


def counter(name: str, value: float = 1) -> None:
    """Accumulate ``value`` onto the named counter (no-op when disabled)."""
    if not _enabled:
        return
    _recorder.add_counter(name, value)


def gauge(name: str, value) -> None:
    """Record the latest value of a named gauge (no-op when disabled)."""
    if not _enabled:
        return
    _recorder.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Add one histogram sample (no-op when disabled)."""
    if not _enabled:
        return
    _recorder.observe(name, value)


def timeline_event(name: str, ts: float, dur: float, lane: int, track: str = "sim", **args) -> None:
    """Record a simulated-clock event (no-op when disabled)."""
    if not _enabled:
        return
    _recorder.add_timeline_event(name, ts, dur, lane, track, **args)
