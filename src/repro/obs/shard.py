"""Cross-process trace collection: recorder shards and their merge.

A parallel sweep runs each task under a scoped :class:`Recorder` inside
a ``ProcessPoolExecutor`` worker.  Before this module, those recorders
were flattened into a handful of summary counters and everything else —
spans, per-task timings, cache traffic detail — died with the worker.
Now each worker snapshots its recorder into a :class:`RecorderShard`, a
plain picklable value shipped back with the task result (or spilled to a
file when large), and the parent merges every shard into its own
recorder:

* span/timeline timestamps are **epoch-aligned**: each recorder stamps
  its epoch with wall-clock time (``Recorder.epoch_unix``), so a shard's
  relative timestamps are rebased onto the parent's epoch and the whole
  fan-out renders on one timeline;
* merged spans are tagged with the worker's **pid**, which the Chrome
  trace exporter turns into one process lane per worker;
* counters accumulate and gauges last-write-win, exactly as if the
  worker had recorded into the parent directly.

Shards bigger than :data:`SPILL_THRESHOLD_BYTES` when pickled are
written to a shard file instead of riding the result pickle through the
pool's result queue; :func:`unpack` reads (and removes) the file on the
parent side.  Only the standard library is used.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from .histogram import Histogram
from .trace import Recorder, SpanRecord, TimelineEvent

__all__ = [
    "SHARD_FORMAT_VERSION",
    "SPILL_THRESHOLD_BYTES",
    "RecorderShard",
    "snapshot",
    "pack",
    "unpack",
    "merge_into",
]

#: Bump when the shard payload layout changes; :func:`unpack` rejects
#: shards written by a different version instead of misreading them.
#: v2 added histograms and the memory-sample timeline.
SHARD_FORMAT_VERSION = 2

#: Pickled shards at or above this size are spilled to a file and only
#: the path travels through the process pool's result queue.
SPILL_THRESHOLD_BYTES = 256 * 1024


@dataclass
class RecorderShard:
    """A picklable snapshot of one worker's :class:`Recorder`."""

    pid: int
    epoch_unix: float
    spans: list[SpanRecord] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, object] = field(default_factory=dict)
    timeline: list[TimelineEvent] = field(default_factory=list)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    memory_samples: list[tuple[float, int]] = field(default_factory=list)
    format_version: int = SHARD_FORMAT_VERSION

    def is_empty(self) -> bool:
        return not (
            self.spans
            or self.counters
            or self.gauges
            or self.timeline
            or self.histograms
            or self.memory_samples
        )


def snapshot(recorder: Recorder) -> RecorderShard:
    """Freeze ``recorder`` into a shard for shipment to another process."""
    return RecorderShard(
        pid=os.getpid(),
        epoch_unix=recorder.epoch_unix,
        spans=list(recorder.spans),
        counters=dict(recorder.counters),
        gauges=dict(recorder.gauges),
        timeline=list(recorder.timeline),
        histograms=dict(recorder.histograms),
        memory_samples=list(recorder.memory_samples),
    )


def pack(
    shard: RecorderShard,
    spill_dir: str | Path | None = None,
    threshold: int | None = None,
) -> tuple[str, object]:
    """Serialize a shard for the pool's result queue.

    Returns ``("inline", bytes)`` for small shards, or spills to
    ``spill_dir`` and returns ``("file", path)`` when the pickle reaches
    ``threshold`` bytes (default :data:`SPILL_THRESHOLD_BYTES`).  With
    no ``spill_dir`` the shard always travels inline.
    """
    if threshold is None:
        threshold = SPILL_THRESHOLD_BYTES
    blob = pickle.dumps(shard, protocol=pickle.HIGHEST_PROTOCOL)
    if spill_dir is None or len(blob) < threshold:
        return ("inline", blob)
    spill_dir = Path(spill_dir)
    spill_dir.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=spill_dir, prefix=f"shard-{shard.pid}-", suffix=".pkl"
    )
    with os.fdopen(fd, "wb") as fh:
        fh.write(blob)
    return ("file", tmp)


def unpack(payload: tuple[str, object]) -> RecorderShard:
    """Rehydrate a :func:`pack` payload; spilled files are removed after
    a successful read.  Rejects unknown payload kinds and format
    versions loudly — a mangled shard must never merge silently."""
    kind, value = payload
    if kind == "inline":
        shard = pickle.loads(value)
    elif kind == "file":
        with open(value, "rb") as fh:
            shard = pickle.load(fh)
        os.unlink(value)
    else:
        raise ValueError(f"unknown shard payload kind {kind!r}")
    if not isinstance(shard, RecorderShard):
        raise ValueError(f"shard payload holds {type(shard).__name__}, not a RecorderShard")
    if shard.format_version != SHARD_FORMAT_VERSION:
        raise ValueError(
            f"shard format v{shard.format_version} != expected v{SHARD_FORMAT_VERSION}"
        )
    return shard


def merge_into(recorder: Recorder, shard: RecorderShard) -> None:
    """Merge one worker shard into ``recorder``.

    Span and timeline timestamps are rebased from the shard's epoch onto
    the recorder's (both carry the wall-clock time of their epoch, so
    the offset is their difference); spans keep their original thread
    ident and pick up the worker's pid so the exporter can give every
    worker its own lane group.  Counters accumulate; gauges last-write-
    win, matching single-recorder semantics.  Histograms merge by
    adding fixed-bucket counts; memory samples are rebased like spans
    onto the parent's sample timeline (the merged stream is re-sorted
    at export time, not here).
    """
    delta = shard.epoch_unix - recorder.epoch_unix
    for s in shard.spans:
        recorder.add_span(
            s.name,
            s.start + delta,
            s.end + delta,
            depth=s.depth,
            thread=s.thread,
            args=s.args,
            error=s.error,
            pid=shard.pid if s.pid is None else s.pid,
        )
    for e in shard.timeline:
        recorder.add_timeline_event(e.name, e.ts, e.dur, e.lane, e.track, **e.args)
    for name, value in shard.counters.items():
        recorder.add_counter(name, value)
    for name, value in shard.gauges.items():
        recorder.set_gauge(name, value)
    for name, hist in shard.histograms.items():
        mine = recorder.histograms.get(name)
        if mine is None:
            mine = recorder.histograms[name] = Histogram()
        mine.merge(hist)
    for t, rss in shard.memory_samples:
        recorder.memory_samples.append((t + delta, rss))
