"""Exporters for :class:`repro.obs.trace.Recorder` runs.

Three output shapes:

* :func:`to_jsonl` — one JSON object per line (spans, timeline events,
  counters, gauges), the archival/greppable form;
* :func:`to_chrome_trace` / :func:`chrome_trace_json` — the Chrome
  Trace Event Format (the ``traceEvents`` JSON object array), loadable
  in ``chrome://tracing`` or https://ui.perfetto.dev.  Wall-clock spans
  appear as one process ("repro pipeline", a thread per python thread);
  spans merged from worker shards (:mod:`repro.obs.shard`) appear as
  one further process per worker pid; simulated-machine timeline events
  appear as another process with one lane per processor, so a
  :func:`repro.machine.simulate.simulate_schedule` run renders as a
  Gantt chart;
* :func:`summary_table` — the ASCII per-stage timing/counter summary
  printed by ``python -m repro trace <target>``.

Only the standard library is used.
"""

from __future__ import annotations

import json
from typing import TextIO

from .trace import Recorder

__all__ = [
    "to_jsonl",
    "write_jsonl",
    "to_chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "summary_table",
]

# Wall-clock spans and simulated events are separate Chrome-trace
# processes so their clocks (seconds vs abstract units) never mix.
# Spans merged from worker shards (SpanRecord.pid set) get one further
# Chrome process per worker, numbered from _PID_WORKER_BASE.
_PID_PIPELINE = 1
_PID_SIM = 2
_PID_WORKER_BASE = 100
#: Flow-arrow cap per trace: the heaviest messages only.
_MAX_FLOWS = 2000


def _jsonable(value):
    """Best-effort conversion of span/event args to JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    tolist = getattr(value, "tolist", None)  # numpy scalars/arrays
    if callable(tolist):
        return _jsonable(tolist())
    return str(value)


def to_jsonl(recorder: Recorder) -> str:
    """Serialize a run as JSON Lines (one record per line)."""
    lines = []
    for s in recorder.spans:
        lines.append(json.dumps({
            "type": "span", "name": s.name, "start": s.start, "end": s.end,
            "depth": s.depth, "thread": s.thread, "pid": s.pid,
            "error": s.error, "args": _jsonable(s.args),
        }, sort_keys=True))
    for e in recorder.timeline:
        lines.append(json.dumps({
            "type": "timeline", "name": e.name, "ts": e.ts, "dur": e.dur,
            "lane": e.lane, "track": e.track, "args": _jsonable(e.args),
        }, sort_keys=True))
    for name, value in sorted(recorder.counters.items()):
        lines.append(json.dumps({"type": "counter", "name": name, "value": value}))
    for name, value in sorted(recorder.gauges.items()):
        lines.append(json.dumps(
            {"type": "gauge", "name": name, "value": _jsonable(value)}, sort_keys=True
        ))
    for name, hist in sorted(recorder.histograms.items()):
        lines.append(json.dumps(
            {"type": "histogram", "name": name, **hist.to_dict()}, sort_keys=True
        ))
    for run in recorder.sim_runs:
        lines.append(json.dumps(
            {"type": "sim_run", **run.to_manifest()}, sort_keys=True
        ))
        for m in run.messages:
            lines.append(json.dumps({
                "type": "sim_message", "run": run.name, "clock": run.clock,
                "src": m.src, "dst": m.dst, "bytes": m.nbytes,
                "cause": m.cause, "send": m.send, "recv": m.recv,
            }, sort_keys=True))
    for t, rss in sorted(recorder.memory_samples):
        lines.append(json.dumps(
            {"type": "memory", "t": t, "rss_bytes": int(rss)}, sort_keys=True
        ))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(recorder: Recorder, path_or_file) -> None:
    _write(path_or_file, to_jsonl(recorder))


def to_chrome_trace(recorder: Recorder) -> dict:
    """Build the Chrome Trace Event Format object for a run.

    Wall-clock span times are exported in microseconds (the format's
    unit); simulated timeline events use one abstract time unit = 1 µs,
    which Perfetto displays with correct relative proportions.
    """
    events: list[dict] = [
        {"ph": "M", "pid": _PID_PIPELINE, "name": "process_name",
         "args": {"name": "repro pipeline (wall clock)"}},
        {"ph": "M", "pid": _PID_SIM, "name": "process_name",
         "args": {"name": "simulated machine (abstract time)"}},
    ]
    # One Chrome process per recording process: the parent's spans
    # (pid None) on _PID_PIPELINE, each merged worker shard on its own
    # numbered process, with thread lanes inside each.
    worker_pids = sorted({s.pid for s in recorder.spans if s.pid is not None})
    chrome_pid = {None: _PID_PIPELINE}
    chrome_pid.update(
        (pid, _PID_WORKER_BASE + i) for i, pid in enumerate(worker_pids)
    )
    for pid in worker_pids:
        events.append({"ph": "M", "pid": chrome_pid[pid], "name": "process_name",
                       "args": {"name": f"sweep worker (pid {pid})"}})
    tid_of: dict[tuple, int] = {}
    for group in (None, *worker_pids):
        threads = sorted({s.thread for s in recorder.spans if s.pid == group})
        for i, t in enumerate(threads):
            tid_of[(group, t)] = i
            events.append({"ph": "M", "pid": chrome_pid[group], "tid": i,
                           "name": "thread_name", "args": {"name": f"thread {t}"}})
    for s in recorder.spans:
        args = dict(_jsonable(s.args))
        if s.error is not None:
            args["error"] = s.error
        events.append({
            "ph": "X", "pid": chrome_pid[s.pid], "tid": tid_of[(s.pid, s.thread)],
            "name": s.name, "cat": "pipeline",
            "ts": s.start * 1e6, "dur": s.duration * 1e6, "args": args,
        })
    lanes = sorted({e.lane for e in recorder.timeline})
    for lane in lanes:
        events.append({"ph": "M", "pid": _PID_SIM, "tid": lane,
                       "name": "thread_name", "args": {"name": f"proc {lane}"}})
    for e in recorder.timeline:
        events.append({
            "ph": "X", "pid": _PID_SIM, "tid": e.lane,
            "name": e.name, "cat": e.track,
            "ts": e.ts, "dur": e.dur, "args": dict(_jsonable(e.args)),
        })
    # RSS samples render as a Perfetto counter track on the pipeline
    # process; histogram percentiles as one counter sample per metric.
    for t, rss in sorted(recorder.memory_samples):
        events.append({
            "ph": "C", "pid": _PID_PIPELINE, "name": "mem.rss_mb",
            "ts": t * 1e6, "args": {"rss_mb": round(rss / (1024.0 * 1024.0), 3)},
        })
    for name, hist in sorted(recorder.histograms.items()):
        events.append({
            "ph": "C", "pid": _PID_PIPELINE, "name": name, "ts": 0,
            "args": {
                "p50": hist.percentile(50),
                "p90": hist.percentile(90),
                "p99": hist.percentile(99),
            },
        })
    # Messages from the sim-clock ledger become Perfetto flow arrows on
    # the simulated-machine process (same second clock domain as the
    # timeline lanes above).  Capped at the heaviest _MAX_FLOWS so a
    # 10⁴-message ledger does not drown the trace; the full ledger is
    # always in the JSONL export.
    flow_id = 0
    for run in recorder.sim_runs:
        delivered = [m for m in run.messages if m.recv is not None]
        delivered.sort(key=lambda m: (-m.nbytes, m.send, m.src, m.dst))
        for m in delivered[:_MAX_FLOWS]:
            flow_id += 1
            name = f"msg {m.src}->{m.dst} ({m.nbytes} el)"
            events.append({
                "ph": "s", "pid": _PID_SIM, "tid": m.src, "id": flow_id,
                "name": name, "cat": f"sim-msg-{run.clock}", "ts": m.send,
                "args": {"bytes": m.nbytes, "cause": m.cause, "run": run.name},
            })
            events.append({
                "ph": "f", "pid": _PID_SIM, "tid": m.dst, "id": flow_id,
                "name": name, "cat": f"sim-msg-{run.clock}", "ts": m.recv,
                "bp": "e", "args": {"bytes": m.nbytes},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(sorted(recorder.counters.items())),
            "gauges": {k: _jsonable(v) for k, v in sorted(recorder.gauges.items())},
            "histograms": {
                k: h.to_dict() for k, h in sorted(recorder.histograms.items())
            },
            "sim_runs": [run.to_manifest(top_links=10)
                         for run in recorder.sim_runs],
        },
    }


def chrome_trace_json(recorder: Recorder) -> str:
    return json.dumps(to_chrome_trace(recorder), indent=1)


def write_chrome_trace(recorder: Recorder, path_or_file) -> None:
    _write(path_or_file, chrome_trace_json(recorder))


def _write(path_or_file, text: str) -> None:
    if hasattr(path_or_file, "write"):
        f: TextIO = path_or_file
        f.write(text)
        return
    with open(path_or_file, "w") as f:
        f.write(text)


def summary_table(recorder: Recorder) -> str:
    """ASCII per-stage summary: span timings, then counters and gauges."""
    from ..analysis.tables import render_table  # stdlib-only module; lazy
    # import keeps repro.obs importable without pulling in repro.analysis.

    parts: list[str] = []
    if recorder.spans:
        stats: dict[str, list[float]] = {}
        order: list[str] = []
        for s in recorder.spans:
            if s.name not in stats:
                stats[s.name] = []
                order.append(s.name)
            stats[s.name].append(s.duration)
        rows = []
        for name in order:
            durs = stats[name]
            total = sum(durs)
            rows.append([
                name, len(durs), f"{1e3 * total:.2f}",
                f"{1e3 * total / len(durs):.3f}", f"{1e3 * max(durs):.3f}",
            ])
        parts.append(render_table(
            ["span", "count", "total ms", "mean ms", "max ms"], rows, "Stage timings"
        ))
    if recorder.counters:
        rows = [[name, value] for name, value in sorted(recorder.counters.items())]
        parts.append(render_table(["counter", "value"], rows, "Counters"))
    if recorder.gauges:
        rows = [[name, str(_jsonable(value))] for name, value in sorted(recorder.gauges.items())]
        parts.append(render_table(["gauge", "value"], rows, "Gauges"))
    if recorder.histograms:
        rows = []
        for name, hist in sorted(recorder.histograms.items()):
            rows.append([
                name, hist.count, f"{hist.mean:.3g}",
                f"{hist.percentile(50):.3g}", f"{hist.percentile(90):.3g}",
                f"{hist.percentile(99):.3g}", f"{hist.max:.3g}",
            ])
        parts.append(render_table(
            ["histogram", "count", "mean", "p50", "p90", "p99", "max"],
            rows, "Histograms",
        ))
    if recorder.memory_samples:
        samples = sorted(recorder.memory_samples)
        mb = 1024.0 * 1024.0
        peak_t, peak_rss = max(samples, key=lambda s: s[1])
        rows = [[
            len(samples),
            f"{samples[0][1] / mb:.1f}",
            f"{peak_rss / mb:.1f}",
            f"{peak_t:.3f}",
            f"{samples[-1][1] / mb:.1f}",
        ]]
        parts.append(render_table(
            ["samples", "first MB", "peak MB", "peak at s", "last MB"],
            rows, "Memory (RSS)",
        ))
    if recorder.timeline:
        lanes = sorted({e.lane for e in recorder.timeline})
        t_end = max((e.ts + e.dur) for e in recorder.timeline)
        busy = {lane: 0.0 for lane in lanes}
        for e in recorder.timeline:
            busy[e.lane] += e.dur
        rows = [
            [lane,
             sum(1 for e in recorder.timeline if e.lane == lane),
             f"{busy[lane]:.0f}",
             f"{100 * busy[lane] / t_end:.1f}%" if t_end else "-"]
            for lane in lanes
        ]
        parts.append(render_table(
            ["lane", "events", "busy", "busy %"],
            rows,
            f"Simulated timeline ({len(recorder.timeline)} events, span {t_end:.0f} units)",
        ))
    if recorder.sim_runs:
        rows = []
        for run in recorder.sim_runs:
            if run.n_units:
                lam = f"{run.imbalance().imbalance:.3f}"
                cp = f"{len(run.critical_path().units)}"
            else:
                lam = cp = "-"
            rows.append([
                run.name, run.scheme, run.nprocs, run.clock,
                f"{run.makespan:.0f}", len(run.messages),
                run.total_message_bytes(), lam, cp,
            ])
        parts.append(render_table(
            ["run", "scheme", "P", "clock", "makespan", "msgs", "bytes",
             "lambda", "cp units"],
            rows, "Simulated machine (sim clock)",
        ))
    if not parts:
        return "(empty trace)"
    return "\n\n".join(parts)
