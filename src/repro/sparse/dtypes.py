"""Index-dtype discipline for large sparse structures.

The big-tier workloads (n = 10^5 .. 10^6 unknowns, nnz(L) in the
millions) are dominated by index arrays: row indices, element ids,
update endpoints, read lists.  Storing them as int64 doubles the
resident size of every stage for no benefit — no realistic problem
needs more than 31 bits per *index* — so index arrays are stored as
int32 whenever their value range fits and only widen to int64 when a
count genuinely demands it.

Three rules, applied everywhere an index array is built:

* **storage** uses :func:`index_dtype` of the largest value the array
  can hold (``n`` for node/row/column indices, ``nnz`` for element ids,
  the pair-update total for update indices);
* **linearized keys** (``col * n + row`` style dedup/sort keys) are
  always computed through :func:`linear_index` which forces int64 —
  the *values* exceed 32 bits long before the array lengths do;
* **counts and cumsums** stay int64 (``indptr`` included): they are
  O(n) in number, so the savings would be negligible and the overflow
  risk — pair-update totals beyond 2^31 are perfectly reachable — is
  real.

Under numpy's NEP 50 promotion (numpy >= 2) an int32 array combined
with a Python int stays int32 and combined with an explicit
``np.int64`` scalar widens to int64, which is exactly the behaviour the
two helper functions rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["INDEX_MAX_INT32", "index_dtype", "as_index_array", "linear_index"]

#: Largest value an int32 index can address.
INDEX_MAX_INT32 = int(np.iinfo(np.int32).max)


def index_dtype(limit: int) -> np.dtype:
    """Smallest index dtype whose range covers ``0 .. limit``.

    ``limit`` is the largest *value* the array may hold (not its
    length).  int32 up to 2^31 - 1, int64 beyond.
    """
    return np.dtype(np.int32 if limit <= INDEX_MAX_INT32 else np.int64)


def as_index_array(a, limit: int | None = None) -> np.ndarray:
    """Coerce ``a`` to a 1-D index array.

    With ``limit`` the result is narrowed (or widened) to
    :func:`index_dtype`; without it an existing int32/int64 array keeps
    its dtype and anything else becomes int64.
    """
    arr = np.asarray(a)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D index array, got shape {arr.shape}")
    if limit is not None:
        return np.ascontiguousarray(arr, dtype=index_dtype(limit))
    if arr.dtype in (np.int32, np.int64):
        return arr
    return np.ascontiguousarray(arr, dtype=np.int64)


def linear_index(major, minor, n: int) -> np.ndarray:
    """``major * n + minor`` as int64, regardless of the input dtypes.

    This is the linearized sort/dedup key used for (row, col) pairs;
    its values reach ``n * n`` and overflow int32 for any n above
    ~46k, so the widening is forced rather than left to promotion.
    """
    return np.asarray(major, dtype=np.int64) * np.int64(n) + minor
