"""Named big-tier generated matrices, and the combined matrix namespace.

:mod:`repro.sparse.harwell_boeing` carries the five paper-scale test
problems (10²–10³ unknowns).  This module registers the 10⁵–10⁶-unknown
*generated* instances built from :mod:`repro.sparse.generators` — the
big tier — and provides the combined name → graph resolution that
``sweep``/``bench``/``trace``/``profile`` use, so either kind of matrix
can be named on the command line.

Every instance is fully determined by (family, parameters, seed): the
generators are vectorized and seeded through PCG64, so two processes
asking for the same name get bit-identical patterns
(:func:`pattern_fingerprint` is the equality witness the tests use).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from . import generators as gen
from . import harwell_boeing as hb
from .pattern import SymmetricGraph

__all__ = [
    "GeneratedMatrix",
    "BIG_MATRICES",
    "BIG_TIER_MIN_N",
    "big_names",
    "matrix_names",
    "load",
    "is_big",
    "describe",
    "pattern_fingerprint",
]

#: Problems with at least this many unknowns are "big tier": their disk
#: cache entries are tagged separately and the big benchmarks target them.
BIG_TIER_MIN_N = 100_000


@dataclass(frozen=True)
class GeneratedMatrix:
    """A named, reproducible generated test problem.

    ``enumeration_feasible`` marks whether the full update-enumeration /
    metrics pipeline fits the big-tier memory envelope; instances where
    it does not (uncapped power-law graphs, whose factors are nearly
    dense) still support ``prepare()`` and partitioning studies.
    """

    name: str
    description: str
    family: str
    n: int
    enumeration_feasible: bool = True
    _builder: Callable[[], SymmetricGraph] = field(
        default=None, repr=False, compare=False
    )

    def build(self) -> SymmetricGraph:
        graph = self._builder()
        if graph.n != self.n:
            raise AssertionError(
                f"{self.name}: generator produced n={graph.n}, registered {self.n}"
            )
        return graph


def _entry(
    name: str,
    description: str,
    family: str,
    n: int,
    builder: Callable[[], SymmetricGraph],
    enumeration_feasible: bool = True,
) -> GeneratedMatrix:
    return GeneratedMatrix(
        name=name,
        description=description,
        family=family,
        n=n,
        enumeration_feasible=enumeration_feasible,
        _builder=builder,
    )


#: The big-tier registry.  Duct-shaped 3D meshes (long x, short y/z)
#: keep factor fill — and with it update-enumeration memory — bounded
#: while exercising genuine 3D coupling; the social instances bound
#: separator growth via the chord-length cap (see the generator docs).
BIG_MATRICES: dict[str, GeneratedMatrix] = {
    m.name: m
    for m in [
        _entry(
            "GRIDA100K",
            "anisotropic 12500 x 8 grid, reach-2 strong axis",
            "aniso_grid",
            100_000,
            lambda: gen.aniso_grid(12500, 8, reach=2),
        ),
        _entry(
            "HEX100K",
            "hexahedral duct mesh, 6250 x 4 x 4 nodes",
            "hex_mesh",
            100_000,
            lambda: gen.hex_mesh(6250, 4, 4),
        ),
        _entry(
            "TET100K",
            "Kuhn tetrahedral duct mesh, 6250 x 4 x 4 nodes",
            "tet_mesh",
            100_000,
            lambda: gen.tet_mesh(6250, 4, 4),
        ),
        _entry(
            "SOC100K",
            "small-world social graph, 100k nodes, capped power-law chords",
            "social_graph",
            100_000,
            lambda: gen.social_graph(100_000, seed=7),
        ),
        _entry(
            "POW100K",
            "power-law (Chung-Lu over random tree) graph, 100k nodes",
            "powlaw_graph",
            100_000,
            lambda: gen.powlaw_graph(100_000, seed=11),
            enumeration_feasible=False,
        ),
        _entry(
            "GRIDA1M",
            "anisotropic 125000 x 8 grid, reach-2 strong axis",
            "aniso_grid",
            1_000_000,
            lambda: gen.aniso_grid(125_000, 8, reach=2),
        ),
        _entry(
            "SOC1M",
            "small-world social graph, 1M nodes, capped power-law chords",
            "social_graph",
            1_000_000,
            lambda: gen.social_graph(1_000_000, seed=7),
        ),
    ]
}


def big_names() -> tuple[str, ...]:
    """Names of the registered big-tier generated matrices."""
    return tuple(BIG_MATRICES)


def matrix_names() -> tuple[str, ...]:
    """All loadable matrix names: paper tier first, then big tier."""
    return tuple(hb.names()) + big_names()


@lru_cache(maxsize=None)
def load(name: str) -> SymmetricGraph:
    """Load any named matrix — Harwell-Boeing analogue or generated."""
    if name in hb.PAPER_MATRICES:
        return hb.load(name)
    if name in BIG_MATRICES:
        return BIG_MATRICES[name].build()
    raise KeyError(
        f"unknown matrix {name!r}; expected one of {matrix_names()}"
    )


def is_big(name: str) -> bool:
    """True if ``name`` is a registered big-tier matrix."""
    return name in BIG_MATRICES


def describe(name: str) -> str:
    if name in hb.PAPER_MATRICES:
        return hb.PAPER_MATRICES[name].description
    return BIG_MATRICES[name].description


def pattern_fingerprint(graph: SymmetricGraph) -> str:
    """SHA-256 of the adjacency structure, dtype-independent.

    The hashed bytes are the int64-normalized CSR arrays plus ``n``, so
    the fingerprint is stable across index-dtype changes and across
    processes/platforms; two graphs are structurally equal iff their
    fingerprints match.
    """
    h = hashlib.sha256()
    h.update(np.int64(graph.n).tobytes())
    h.update(np.ascontiguousarray(graph.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(graph.indices, dtype=np.int64).tobytes())
    return h.hexdigest()
