"""Sparsity-structure generators.

These produce :class:`~repro.sparse.pattern.SymmetricGraph` adjacency
structures for the test problems used in the paper's evaluation and for
the test suite.  ``grid9(30, 30)`` regenerates the LAP30 problem exactly
(900 equations, 4322 lower-triangular nonzeros); the other four
Harwell-Boeing matrices are approximated by structural analogues — see
DESIGN.md §2 and :mod:`repro.sparse.harwell_boeing`.

The big-tier families (:func:`hex_mesh`, :func:`tet_mesh`,
:func:`aniso_grid`, :func:`social_graph`, :func:`powlaw_graph`) scale to
10⁵–10⁶ unknowns.  They are fully vectorized (edge lists are built in
O(edges) memory with no Python loops over nodes) and seeded through
``numpy.random.default_rng``, whose PCG64 stream is platform- and
process-stable, so the same (family, parameters, seed) triple always
produces a bit-identical pattern.  Named instances live in
:mod:`repro.sparse.registry`.
"""

from __future__ import annotations

import numpy as np

from .csc import SymmetricCSC
from .pattern import SymmetricGraph

__all__ = [
    "grid5",
    "grid9",
    "lshape_mesh",
    "power_network",
    "knn_mesh",
    "stiffened_cylinder",
    "random_symmetric_graph",
    "band_graph",
    "band_lower_pattern",
    "path_graph",
    "star_graph",
    "spd_from_graph",
    "laplacian_matrix",
    "hex_mesh",
    "tet_mesh",
    "aniso_grid",
    "social_graph",
    "powlaw_graph",
]


def _grid_index(nx: int) -> np.ndarray:
    return np.arange(nx, dtype=np.int64)


def grid5(nx: int, ny: int) -> SymmetricGraph:
    """5-point (von Neumann) stencil on an ``nx`` x ``ny`` grid.

    Node (ix, iy) has index ``ix * ny + iy``.
    """
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    us, vs = [], []
    us.append(idx[:-1, :].ravel())  # horizontal (x-direction)
    vs.append(idx[1:, :].ravel())
    us.append(idx[:, :-1].ravel())  # vertical (y-direction)
    vs.append(idx[:, 1:].ravel())
    return SymmetricGraph.from_edges(
        nx * ny, np.concatenate(us), np.concatenate(vs)
    )


def grid9(nx: int, ny: int) -> SymmetricGraph:
    """9-point (Moore / king-move) stencil on an ``nx`` x ``ny`` grid.

    ``grid9(30, 30)`` is the LAP30 problem of the paper: 900 equations and
    900 + 3422 = 4322 lower-triangular nonzeros.
    """
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    us, vs = [], []
    us.append(idx[:-1, :].ravel())
    vs.append(idx[1:, :].ravel())
    us.append(idx[:, :-1].ravel())
    vs.append(idx[:, 1:].ravel())
    us.append(idx[:-1, :-1].ravel())  # main diagonal
    vs.append(idx[1:, 1:].ravel())
    us.append(idx[1:, :-1].ravel())  # anti diagonal
    vs.append(idx[:-1, 1:].ravel())
    return SymmetricGraph.from_edges(
        nx * ny, np.concatenate(us), np.concatenate(vs)
    )


def lshape_mesh(nx: int, ny: int, cut_x: int, cut_y: int) -> SymmetricGraph:
    """Right-triangulated finite-element mesh on an L-shaped domain.

    The domain is the (nx x ny)-cell rectangle with the top-right
    ``cut_x`` x ``cut_y`` cell block removed.  Each remaining unit cell is
    split into two triangles by its main diagonal, as in George's LSHAPE
    problems.  Nodes in the removed region are dropped; remaining nodes
    are numbered row-major over the retained grid points.
    """
    if not (0 <= cut_x <= nx and 0 <= cut_y <= ny):
        raise ValueError("cut block does not fit inside the rectangle")
    keep = np.ones((nx + 1, ny + 1), dtype=bool)
    # Remove strictly interior nodes of the cut block (top-right corner):
    # nodes with ix > nx - cut_x and iy > ny - cut_y.
    if cut_x and cut_y:
        keep[nx - cut_x + 1 :, ny - cut_y + 1 :] = False
    new_id = np.full((nx + 1, ny + 1), -1, dtype=np.int64)
    new_id[keep] = np.arange(keep.sum(), dtype=np.int64)
    n = int(keep.sum())

    us, vs = [], []

    def add(a, b):
        mask = (a >= 0) & (b >= 0)
        us.append(a[mask])
        vs.append(b[mask])

    add(new_id[:-1, :].ravel(), new_id[1:, :].ravel())  # horizontal
    add(new_id[:, :-1].ravel(), new_id[:, 1:].ravel())  # vertical
    # A diagonal edge exists only if the whole cell is retained.
    cell_ok = keep[:-1, :-1] & keep[1:, :-1] & keep[:-1, 1:] & keep[1:, 1:]
    a = np.where(cell_ok, new_id[:-1, :-1], -1).ravel()
    b = np.where(cell_ok, new_id[1:, 1:], -1).ravel()
    add(a, b)
    return SymmetricGraph.from_edges(n, np.concatenate(us), np.concatenate(vs))


def power_network(
    n: int,
    extra_edges: int,
    seed: int = 0,
    hub_bias: float = 1.0,
    local_loop_frac: float = 0.7,
) -> SymmetricGraph:
    """Synthetic electrical-transmission-network topology.

    A preferential-attachment spanning tree (power grids are mostly
    radial) plus ``extra_edges`` loop-closing chords.  A fraction
    ``local_loop_frac`` of the chords close *local* loops (they connect
    2-hop neighbours, as real distribution loops do); the rest are
    long-range ties.  The default mix reproduces the fill behaviour of
    the BUS1138 structure under MMD (≈3300 factor nonzeros).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not (0.0 <= local_loop_frac <= 1.0):
        raise ValueError("local_loop_frac must be in [0, 1]")
    rng = np.random.default_rng(seed)
    us: list[int] = []
    vs: list[int] = []
    deg = np.zeros(n, dtype=np.float64)
    adj: list[set[int]] = [set() for _ in range(n)]
    for v in range(1, n):
        w = deg[:v] + hub_bias
        u = int(rng.choice(v, p=w / w.sum()))
        us.append(u)
        vs.append(v)
        deg[u] += 1
        deg[v] += 1
        adj[u].add(v)
        adj[v].add(u)
    existing = {(min(a, b), max(a, b)) for a, b in zip(us, vs)}
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 1000 * max(extra_edges, 1):
        attempts += 1
        a = int(rng.integers(n))
        if rng.random() < local_loop_frac:
            two_hop: set[int] = set()
            for m in adj[a]:
                two_hop |= adj[m]
            two_hop -= adj[a]
            two_hop.discard(a)
            if not two_hop:
                continue
            candidates = sorted(two_hop)
            b = candidates[int(rng.integers(len(candidates)))]
        else:
            b = int(rng.integers(n))
            if b == a:
                continue
        key = (min(a, b), max(a, b))
        if key in existing:
            continue
        existing.add(key)
        adj[a].add(b)
        adj[b].add(a)
        us.append(a)
        vs.append(b)
        added += 1
    return SymmetricGraph.from_edges(
        n, np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)
    )


def knn_mesh(
    n: int, target_edges: int, seed: int = 0, layout: str = "square"
) -> SymmetricGraph:
    """Symmetrized k-nearest-neighbour graph over a 2-D point cloud.

    Used as a structural analogue for the CAN (Cannes) matrices: an
    irregular mesh with a relatively high, spatially-correlated degree.
    Edges are the union of each point's nearest neighbours, grown until at
    least ``target_edges`` undirected edges exist, then the longest
    surplus edges are dropped to hit the target exactly (when possible
    while keeping the k-NN core).
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    rng = np.random.default_rng(seed)
    if layout == "annulus":
        theta = rng.uniform(0.0, 2 * np.pi, size=n)
        r = rng.uniform(1.0, 2.0, size=n)
        pts = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)
    elif layout == "square":
        pts = rng.uniform(0.0, 1.0, size=(n, 2))
    else:
        raise ValueError(f"unknown layout {layout!r}")
    d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    order = np.argsort(d2, axis=1)

    edges: set[tuple[int, int]] = set()
    k = 1
    while len(edges) < target_edges and k < n:
        nb = order[:, k - 1]
        for i in range(n):
            j = int(nb[i])
            edges.add((min(i, j), max(i, j)))
        k += 1
    edge_arr = np.asarray(sorted(edges), dtype=np.int64)
    if len(edge_arr) > target_edges:
        lengths = d2[edge_arr[:, 0], edge_arr[:, 1]]
        keep = np.argsort(lengths, kind="stable")[:target_edges]
        edge_arr = edge_arr[np.sort(keep)]
    return SymmetricGraph.from_edges(n, edge_arr[:, 0], edge_arr[:, 1])


def stiffened_cylinder(
    n_around: int,
    n_along: int,
    diagonals: bool = True,
    stiffener_stride: int = 0,
) -> SymmetricGraph:
    """Quad-shell mesh of a cylinder with optional face diagonals and
    longitudinal stiffener chords — a structural analogue for the DWT
    (submarine frame) matrices.

    Node (a, s) — position ``a`` around the ring, station ``s`` along the
    axis — has index ``s * n_around + a``.  ``stiffener_stride`` > 0 adds
    chords connecting station s to station s+2 every ``stiffener_stride``
    ring positions.
    """
    if n_around < 3 or n_along < 1:
        raise ValueError("need at least a 3-node ring and one station")
    n = n_around * n_along
    idx = np.arange(n, dtype=np.int64).reshape(n_along, n_around)
    us, vs = [], []
    us.append(idx.ravel())  # ring edges (wrap around)
    vs.append(np.roll(idx, -1, axis=1).ravel())
    us.append(idx[:-1, :].ravel())  # longitudinal edges
    vs.append(idx[1:, :].ravel())
    if diagonals:
        us.append(idx[:-1, :].ravel())  # one diagonal per quad face
        vs.append(np.roll(idx, -1, axis=1)[1:, :].ravel())
    if stiffener_stride > 0 and n_along > 2:
        stations = np.arange(0, n_along - 2, dtype=np.int64)
        rings = np.arange(0, n_around, stiffener_stride, dtype=np.int64)
        ss, rr = np.meshgrid(stations, rings, indexing="ij")
        us.append(idx[ss, rr].ravel())
        vs.append(idx[ss + 2, rr].ravel())
    return SymmetricGraph.from_edges(n, np.concatenate(us), np.concatenate(vs))


def random_symmetric_graph(n: int, density: float, seed: int = 0) -> SymmetricGraph:
    """Erdős–Rényi-style symmetric pattern with expected off-diagonal
    density ``density`` (fraction of the strict lower triangle filled)."""
    if not (0.0 <= density <= 1.0):
        raise ValueError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    mask = np.tril(rng.random((n, n)) < density, -1)
    u, v = np.nonzero(mask)
    return SymmetricGraph.from_edges(n, u, v)


def band_graph(n: int, bandwidth: int) -> SymmetricGraph:
    """Band matrix structure: node i adjacent to i±1 .. i±bandwidth.

    Under the natural ordering its Cholesky factor is the dense band
    (:func:`band_lower_pattern`), making this the stress generator for
    update enumeration: many columns, uniform moderate fill.
    """
    if bandwidth < 1:
        raise ValueError("bandwidth must be >= 1")
    us, vs = [], []
    for d in range(1, min(bandwidth, n - 1) + 1):
        u = np.arange(n - d, dtype=np.int64)
        us.append(u)
        vs.append(u + d)
    if not us:
        return SymmetricGraph.empty(n)
    return SymmetricGraph.from_edges(n, np.concatenate(us), np.concatenate(vs))


def band_lower_pattern(n: int, bandwidth: int):
    """Dense-band lower pattern: column j holds rows j .. j+bandwidth.

    This is the (fill-closed) factor structure of :func:`band_graph`
    under the natural ordering, built directly without a symbolic
    factorization pass.
    """
    from .pattern import LowerPattern

    counts = np.minimum(bandwidth + 1, n - np.arange(n, dtype=np.int64))
    cols = np.repeat(np.arange(n, dtype=np.int64), counts)
    rows = np.arange(len(cols), dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    rows += cols
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return LowerPattern(n, indptr, rows)


def path_graph(n: int) -> SymmetricGraph:
    e = np.arange(n - 1, dtype=np.int64)
    return SymmetricGraph.from_edges(n, e, e + 1)


def star_graph(n: int) -> SymmetricGraph:
    """Node 0 connected to all others."""
    v = np.arange(1, n, dtype=np.int64)
    return SymmetricGraph.from_edges(n, np.zeros(n - 1, dtype=np.int64), v)


def spd_from_graph(graph: SymmetricGraph, seed: int = 0) -> SymmetricCSC:
    """A symmetric positive-definite matrix with the given structure.

    Off-diagonal values are random in [-1, -0.1]; the diagonal is set to
    strict row-dominance, which guarantees positive definiteness.
    """
    rng = np.random.default_rng(seed)
    u, v = graph.edges()
    vals = -rng.uniform(0.1, 1.0, size=len(u))
    rows = np.concatenate([np.maximum(u, v), np.arange(graph.n, dtype=np.int64)])
    cols = np.concatenate([np.minimum(u, v), np.arange(graph.n, dtype=np.int64)])
    diag = np.ones(graph.n, dtype=np.float64)
    np.add.at(diag, u, np.abs(vals))
    np.add.at(diag, v, np.abs(vals))
    allv = np.concatenate([vals, diag])
    return SymmetricCSC.from_entries(graph.n, rows, cols, allv)


def laplacian_matrix(graph: SymmetricGraph, shift: float = 1e-3) -> SymmetricCSC:
    """Graph Laplacian plus ``shift`` times identity (SPD for shift > 0)."""
    u, v = graph.edges()
    rows = np.concatenate([np.maximum(u, v), np.arange(graph.n, dtype=np.int64)])
    cols = np.concatenate([np.minimum(u, v), np.arange(graph.n, dtype=np.int64)])
    deg = graph.degree().astype(np.float64)
    vals = np.concatenate([-np.ones(len(u)), deg + shift])
    return SymmetricCSC.from_entries(graph.n, rows, cols, vals)


# ----------------------------------------------------------------------
# Big-tier generator families (10^5 - 10^6 unknowns)
# ----------------------------------------------------------------------
def _grid3d_index(nx: int, ny: int, nz: int) -> np.ndarray:
    if nx < 1 or ny < 1 or nz < 1:
        raise ValueError("grid dimensions must be positive")
    return np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)


def hex_mesh(nx: int, ny: int, nz: int) -> SymmetricGraph:
    """Structured 3D hexahedral-element mesh on an ``nx x ny x nz`` grid.

    Node (ix, iy, iz) has index ``(ix * ny + iy) * nz + iz``.  Edges are
    the three axis-aligned face couplings plus the yz-plane (cross-
    section) diagonals, i.e. the coupling of trilinear hex elements with
    the in-plane shear terms retained.  The full 27-point hex stencil is
    deliberately *not* used: its factor fill at 10^5+ unknowns pushes
    update enumeration past the big-tier memory envelope, while this
    stencil keeps the duct-shaped instances (long x, short y/z) inside
    it.  Deterministic — no randomness.
    """
    idx = _grid3d_index(nx, ny, nz)
    us, vs = [], []
    us.append(idx[:-1, :, :].ravel())  # x faces
    vs.append(idx[1:, :, :].ravel())
    us.append(idx[:, :-1, :].ravel())  # y faces
    vs.append(idx[:, 1:, :].ravel())
    us.append(idx[:, :, :-1].ravel())  # z faces
    vs.append(idx[:, :, 1:].ravel())
    us.append(idx[:, :-1, :-1].ravel())  # yz main diagonal
    vs.append(idx[:, 1:, 1:].ravel())
    us.append(idx[:, 1:, :-1].ravel())  # yz anti diagonal
    vs.append(idx[:, :-1, 1:].ravel())
    return SymmetricGraph.from_edges(
        idx.size, np.concatenate(us), np.concatenate(vs)
    )


def tet_mesh(nx: int, ny: int, nz: int) -> SymmetricGraph:
    """Structured 3D tetrahedral mesh: Kuhn subdivision of a brick grid.

    Every unit cube of the ``nx x ny x nz`` node grid is split into six
    tetrahedra sharing the main body diagonal (the Freudenthal/Kuhn
    triangulation).  The resulting node connectivity is the six axis
    neighbours, one face diagonal per coordinate plane, and the body
    diagonal — 14 neighbours per interior node.  Deterministic.
    """
    idx = _grid3d_index(nx, ny, nz)
    us, vs = [], []
    us.append(idx[:-1, :, :].ravel())  # x
    vs.append(idx[1:, :, :].ravel())
    us.append(idx[:, :-1, :].ravel())  # y
    vs.append(idx[:, 1:, :].ravel())
    us.append(idx[:, :, :-1].ravel())  # z
    vs.append(idx[:, :, 1:].ravel())
    us.append(idx[:-1, :-1, :].ravel())  # xy face diagonal
    vs.append(idx[1:, 1:, :].ravel())
    us.append(idx[:, :-1, :-1].ravel())  # yz face diagonal
    vs.append(idx[:, 1:, 1:].ravel())
    us.append(idx[:-1, :, :-1].ravel())  # xz face diagonal
    vs.append(idx[1:, :, 1:].ravel())
    us.append(idx[:-1, :-1, :-1].ravel())  # body diagonal
    vs.append(idx[1:, 1:, 1:].ravel())
    return SymmetricGraph.from_edges(
        idx.size, np.concatenate(us), np.concatenate(vs)
    )


def aniso_grid(nx: int, ny: int, reach: int = 2) -> SymmetricGraph:
    """2D anisotropic grid: 5-point stencil widened along the strong axis.

    Models a strongly anisotropic operator discretized on an ``nx x ny``
    grid with high aspect ratio (``nx >> ny``): besides the 5-point
    couplings, each node couples to its x-neighbours at distances
    ``2..reach`` — the wider stencil a high-order/upwinded scheme uses
    along the strong-coupling direction.  Deterministic.
    """
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    if reach < 1:
        raise ValueError("reach must be >= 1")
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    us, vs = [], []
    us.append(idx[:, :-1].ravel())  # y-direction (weak axis)
    vs.append(idx[:, 1:].ravel())
    for r in range(1, reach + 1):  # x-direction links of range 1..reach
        if r < nx:
            us.append(idx[:-r, :].ravel())
            vs.append(idx[r:, :].ravel())
    return SymmetricGraph.from_edges(
        nx * ny, np.concatenate(us), np.concatenate(vs)
    )


def social_graph(
    n: int,
    chords_per_node: float = 1.8,
    gamma: float = 2.5,
    max_len: int = 256,
    seed: int = 0,
) -> SymmetricGraph:
    """Locality-bounded small-world graph: ring plus power-law chords.

    A Hamiltonian ring guarantees connectivity; on top of it,
    ``round(n * chords_per_node)`` chords connect each sampled node to a
    neighbour at a Pareto(``gamma`` - 1)-distributed ring distance capped
    at ``max_len``.  The heavy-tailed chord lengths give the long-range
    shortcuts of a social/communication network while the cap bounds the
    separator growth, keeping minimum-degree ordering and update
    enumeration feasible at 10^5+ unknowns (unlike an uncapped power-law
    graph — see :func:`powlaw_graph`).
    """
    if n < 3:
        raise ValueError("social_graph needs n >= 3")
    rng = np.random.default_rng(seed)
    ring = np.arange(n, dtype=np.int64)
    us = [ring]
    vs = [np.roll(ring, -1)]
    m = int(round(n * chords_per_node))
    if m:
        lengths = np.minimum(
            (rng.pareto(gamma - 1.0, size=m) + 1.0).astype(np.int64) * 2,
            max_len,
        )
        a = rng.integers(0, n, size=m)
        us.append(a)
        vs.append((a + lengths) % n)
    return SymmetricGraph.from_edges(n, np.concatenate(us), np.concatenate(vs))


def powlaw_graph(
    n: int,
    avg_degree: float = 3.0,
    gamma: float = 2.5,
    max_degree: int | None = None,
    seed: int = 0,
) -> SymmetricGraph:
    """Power-law (Chung-Lu style) graph over a random recursive tree.

    A vectorized random recursive tree guarantees connectivity; extra
    edges are then sampled with endpoint probabilities proportional to
    Zipf(``gamma``) weights (optionally truncated at ``max_degree``-like
    weight cap), giving a heavy-tailed degree distribution.

    .. warning::
       The global hubs make the factor of such graphs nearly dense:
       update enumeration needs >10^9 pairs at n = 10^5 under *any*
       fill-reducing ordering.  Registered big-tier instances of this
       family are therefore generator/partition-study only — run
       ``prepare()`` and the partitioner on them, not the full metrics
       sweep.  See docs/performance.md.
    """
    if n < 2:
        raise ValueError("powlaw_graph needs n >= 2")
    rng = np.random.default_rng(seed)
    # Random recursive tree: node k >= 1 attaches to a uniform earlier node.
    parents = (rng.random(n - 1) * np.arange(1, n)).astype(np.int64)
    us = [parents]
    vs = [np.arange(1, n, dtype=np.int64)]
    extra = int(round(n * max(avg_degree - 2.0, 0.0) / 2.0))
    if extra:
        w = np.arange(1, n + 1, dtype=np.float64) ** (-1.0 / (gamma - 1.0))
        if max_degree is not None:
            w = np.minimum(w, max_degree / float(n))
        p = w / w.sum()
        a = rng.choice(n, size=extra, p=p)
        b = rng.choice(n, size=extra, p=p)
        # Decouple weight rank from node id so hubs are spread over the
        # index space (a relabelling by random permutation).
        relabel = rng.permutation(n)
        us.append(relabel[a])
        vs.append(relabel[b])
    return SymmetricGraph.from_edges(n, np.concatenate(us), np.concatenate(vs))
