"""Registry of the paper's five Harwell-Boeing test problems.

The actual Harwell-Boeing tapes are not redistributable and are not
available offline, so this module regenerates each problem:

* **LAP30** is regenerated *exactly*: the 9-point discretization of the
  Laplacian on the unit square with Dirichlet boundary conditions is the
  king-move graph on a 30x30 grid (900 equations, 4322 lower nonzeros).
* **BUS1138**, **CAN1072**, **DWT512**, **LSHP1009** are synthetic
  structural analogues matched on order, nonzero count (within 1%) and
  graph family; see DESIGN.md §2 for the substitution argument.

All structures are deterministic (fixed seeds).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from .generators import (
    grid9,
    knn_mesh,
    lshape_mesh,
    power_network,
    stiffened_cylinder,
)
from .pattern import SymmetricGraph

__all__ = ["TestMatrix", "PAPER_MATRICES", "load", "names"]


@dataclass(frozen=True)
class TestMatrix:
    """One row of the paper's Table 1."""

    name: str
    description: str
    paper_n: int
    paper_nnz: int
    paper_factor_nnz: int
    exact: bool
    _builder: Callable[[], SymmetricGraph]

    def build(self) -> SymmetricGraph:
        return self._builder()


PAPER_MATRICES: dict[str, TestMatrix] = {
    "BUS1138": TestMatrix(
        name="BUS1138",
        description="Symmetric structure of power system networks "
        "(synthetic analogue: preferential-attachment tree + loop chords)",
        paper_n=1138,
        paper_nnz=2596,
        paper_factor_nnz=3304,
        exact=False,
        _builder=lambda: power_network(1138, 321, seed=7, local_loop_frac=0.7),
    ),
    "CANN1072": TestMatrix(
        name="CANN1072",
        description="Symmetric pattern from Cannes, Lucien Marro "
        "(synthetic analogue: symmetrized k-NN mesh on an annulus)",
        paper_n=1072,
        paper_nnz=6758,
        paper_factor_nnz=20512,
        exact=False,
        _builder=lambda: knn_mesh(1072, 5686, seed=3, layout="square"),
    ),
    "DWT512": TestMatrix(
        name="DWT512",
        description="Symmetric submarine frame from NSRDC "
        "(synthetic analogue: long thin stiffened cylinder shell mesh)",
        paper_n=512,
        paper_nnz=2007,
        paper_factor_nnz=3786,
        exact=False,
        _builder=lambda: stiffened_cylinder(4, 128, diagonals=True, stiffener_stride=2),
    ),
    "LAP30": TestMatrix(
        name="LAP30",
        description="9-point discretization of the Laplacian on the unit "
        "square with Dirichlet boundary conditions (exact regeneration)",
        paper_n=900,
        paper_nnz=4322,
        paper_factor_nnz=16697,
        exact=True,
        _builder=lambda: grid9(30, 30),
    ),
    "LSHP1009": TestMatrix(
        name="LSHP1009",
        description="Alan George LSHAPE problem "
        "(analogue: right-triangulated L-shaped mesh, 33x33 grid minus 8x10 block)",
        paper_n=1009,
        paper_nnz=3937,
        paper_factor_nnz=18268,
        exact=False,
        _builder=lambda: lshape_mesh(32, 32, 8, 10),
    ),
}


def names() -> list[str]:
    """Names of the five paper matrices, in Table 1 order."""
    return list(PAPER_MATRICES)


@lru_cache(maxsize=None)
def load(name: str) -> SymmetricGraph:
    """Build the named test structure (see :data:`PAPER_MATRICES`).

    The builders are deterministic, so results are memoized — repeated
    sweeps and benchmarks share one instance per name.  Treat the
    returned graph as read-only (everything in this repository does).
    """
    try:
        return PAPER_MATRICES[name].build()
    except KeyError:
        raise KeyError(
            f"unknown test matrix {name!r}; available: {', '.join(PAPER_MATRICES)}"
        ) from None
