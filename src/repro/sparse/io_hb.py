"""Harwell-Boeing (fixed-format Fortran) I/O.

The paper's test matrices are distributed in the Harwell-Boeing format
(Duff, Grimes & Lewis 1989).  This module implements a reader and writer
for the assembled symmetric cases used here: ``PSA`` (pattern symmetric
assembled) and ``RSA`` (real symmetric assembled), including a small
Fortran edit-descriptor parser for formats like ``(16I5)`` and
``(5E16.8)``.
"""

from __future__ import annotations

import io
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .csc import SymmetricCSC
from .pattern import SymmetricGraph

__all__ = ["FortranFormat", "write_harwell_boeing", "read_harwell_boeing"]

_INT_FMT = re.compile(r"^\s*\(\s*(\d+)\s*I\s*(\d+)\s*\)\s*$", re.IGNORECASE)
_REAL_FMT = re.compile(
    r"^\s*\(\s*(\d+)\s*[EFD]\s*(\d+)\s*\.\s*(\d+)\s*(?:E\s*\d+)?\s*\)\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class FortranFormat:
    """A simple repeated edit descriptor: ``count`` fields of ``width``
    characters per line; ``decimals`` is None for integer formats."""

    count: int
    width: int
    decimals: int | None = None

    @classmethod
    def parse(cls, text: str) -> "FortranFormat":
        m = _INT_FMT.match(text)
        if m:
            return cls(int(m.group(1)), int(m.group(2)))
        m = _REAL_FMT.match(text)
        if m:
            return cls(int(m.group(1)), int(m.group(2)), int(m.group(3)))
        raise ValueError(f"unsupported Fortran format: {text!r}")

    def render(self) -> str:
        if self.decimals is None:
            return f"({self.count}I{self.width})"
        return f"({self.count}E{self.width}.{self.decimals})"

    def lines_for(self, n_items: int) -> int:
        return -(-n_items // self.count) if n_items else 0

    def write(self, fh, values) -> None:
        for start in range(0, len(values), self.count):
            chunk = values[start : start + self.count]
            if self.decimals is None:
                fh.write("".join(f"{int(v):>{self.width}d}" for v in chunk))
            else:
                fh.write(
                    "".join(f"{float(v):>{self.width}.{self.decimals}E}" for v in chunk)
                )
            fh.write("\n")

    def read(self, fh, n_items: int) -> np.ndarray:
        out = []
        while len(out) < n_items:
            line = fh.readline()
            if not line:
                raise ValueError("unexpected end of Harwell-Boeing data")
            line = line.rstrip("\n")
            for k in range(self.count):
                field = line[k * self.width : (k + 1) * self.width]
                if not field.strip():
                    continue
                out.append(int(field) if self.decimals is None else float(field))
                if len(out) == n_items:
                    break
        dtype = np.int64 if self.decimals is None else np.float64
        return np.asarray(out, dtype=dtype)


_PTR_FMT = FortranFormat(8, 10)
_IND_FMT = FortranFormat(12, 6)
_VAL_FMT = FortranFormat(4, 20, 12)


def _open_for(obj, mode: str):
    if isinstance(obj, (str, Path)):
        return open(obj, mode), True
    return obj, False


def _lower_csc_arrays(obj):
    if isinstance(obj, SymmetricCSC):
        pat = obj.pattern
        return pat.indptr, pat.rowidx, obj.values
    if isinstance(obj, SymmetricGraph):
        pat = obj.lower()
        return pat.indptr, pat.rowidx, None
    raise TypeError(f"cannot write object of type {type(obj).__name__}")


def write_harwell_boeing(obj, target, title: str = "", key: str = "REPRO") -> None:
    """Write a symmetric matrix/pattern in Harwell-Boeing format.

    :class:`SymmetricCSC` is written as RSA, :class:`SymmetricGraph` as PSA.
    """
    indptr, rowidx, values = _lower_csc_arrays(obj)
    n = len(indptr) - 1
    nnz = len(rowidx)
    ptrcrd = _PTR_FMT.lines_for(n + 1)
    indcrd = _IND_FMT.lines_for(nnz)
    valcrd = _VAL_FMT.lines_for(nnz) if values is not None else 0
    totcrd = ptrcrd + indcrd + valcrd
    mxtype = "RSA" if values is not None else "PSA"

    fh, owned = _open_for(target, "w")
    try:
        fh.write(f"{title:<72.72s}{key:<8.8s}\n")
        fh.write(f"{totcrd:>14d}{ptrcrd:>14d}{indcrd:>14d}{valcrd:>14d}{0:>14d}\n")
        fh.write(f"{mxtype:<3s}{'':11s}{n:>14d}{n:>14d}{nnz:>14d}{0:>14d}\n")
        fh.write(
            f"{_PTR_FMT.render():<16s}{_IND_FMT.render():<16s}"
            f"{_VAL_FMT.render():<20s}{'':20s}\n"
        )
        _PTR_FMT.write(fh, (indptr + 1).tolist())
        _IND_FMT.write(fh, (rowidx + 1).tolist())
        if values is not None:
            _VAL_FMT.write(fh, values.tolist())
    finally:
        if owned:
            fh.close()


def read_harwell_boeing(source):
    """Read an assembled symmetric Harwell-Boeing file (PSA or RSA).

    Returns :class:`SymmetricGraph` for PSA, :class:`SymmetricCSC` for RSA.
    """
    fh, owned = _open_for(source, "r")
    try:
        fh.readline()  # title line (ignored)
        card2 = fh.readline()
        valcrd = int(card2[42:56])
        card3 = fh.readline()
        mxtype = card3[:3].upper()
        if mxtype[1] != "S" or mxtype[2] != "A":
            raise ValueError(f"unsupported matrix type {mxtype!r}")
        nrow = int(card3[14:28])
        ncol = int(card3[28:42])
        nnz = int(card3[42:56])
        if nrow != ncol:
            raise ValueError("matrix is not square")
        card4 = fh.readline()
        ptrfmt = FortranFormat.parse(card4[0:16])
        indfmt = FortranFormat.parse(card4[16:32])
        valfmt = FortranFormat.parse(card4[32:52]) if valcrd > 0 else None

        indptr = ptrfmt.read(fh, ncol + 1) - 1
        rowidx = indfmt.read(fh, nnz) - 1
        cols = np.repeat(np.arange(ncol, dtype=np.int64), np.diff(indptr))
        if mxtype[0] == "R" and valfmt is not None:
            values = valfmt.read(fh, nnz)
            return SymmetricCSC.from_entries(ncol, rowidx, cols, values)
        off = rowidx != cols
        return SymmetricGraph.from_edges(ncol, rowidx[off], cols[off])
    finally:
        if owned:
            fh.close()


def harwell_boeing_string(obj, title: str = "", key: str = "REPRO") -> str:
    buf = io.StringIO()
    write_harwell_boeing(obj, buf, title=title, key=key)
    return buf.getvalue()
