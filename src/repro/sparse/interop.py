"""Conversions to and from scipy.sparse.

The library's own structures are deliberately minimal; these adapters
let users bring matrices from the scipy ecosystem (and push factors back
into it) without touching internals.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .csc import LowerCSC, SymmetricCSC
from .pattern import SymmetricGraph

__all__ = [
    "symmetric_from_scipy",
    "graph_from_scipy",
    "symmetric_to_scipy",
    "lower_to_scipy",
]


def symmetric_from_scipy(matrix, tol: float = 0.0) -> SymmetricCSC:
    """Build a :class:`SymmetricCSC` from any scipy sparse matrix.

    The matrix must be numerically symmetric (checked to ``tol`` + a
    small relative slack); only the lower triangle is stored.
    """
    m = sp.coo_matrix(matrix)
    if m.shape[0] != m.shape[1]:
        raise ValueError("matrix must be square")
    asym = abs(m - m.T)
    if asym.nnz and asym.max() > max(tol, 1e-12 * max(abs(m.max()), 1.0)):
        raise ValueError("matrix is not symmetric")
    keep = m.row >= m.col
    return SymmetricCSC.from_entries(
        m.shape[0], m.row[keep], m.col[keep], m.data[keep]
    )


def graph_from_scipy(matrix) -> SymmetricGraph:
    """Adjacency structure of a scipy sparse matrix's symmetric pattern
    (the pattern is symmetrized; values are ignored)."""
    m = sp.coo_matrix(matrix)
    if m.shape[0] != m.shape[1]:
        raise ValueError("matrix must be square")
    off = m.row != m.col
    return SymmetricGraph.from_edges(m.shape[0], m.row[off], m.col[off])


def symmetric_to_scipy(a: SymmetricCSC) -> sp.csc_matrix:
    """Expand a :class:`SymmetricCSC` to a full (both-triangles) scipy CSC."""
    rows = a.pattern.rowidx
    cols = a.pattern.element_cols()
    offd = rows != cols
    r = np.concatenate([rows, cols[offd]])
    c = np.concatenate([cols, rows[offd]])
    v = np.concatenate([a.values, a.values[offd]])
    return sp.coo_matrix((v, (r, c)), shape=(a.n, a.n)).tocsc()


def lower_to_scipy(L: LowerCSC) -> sp.csc_matrix:
    """A :class:`LowerCSC` factor as a scipy lower-triangular CSC."""
    rows = L.pattern.rowidx
    cols = L.pattern.element_cols()
    return sp.coo_matrix((L.values, (rows, cols)), shape=(L.n, L.n)).tocsc()
