"""Matrix Market (coordinate) I/O for symmetric matrices and patterns."""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .csc import SymmetricCSC
from .pattern import SymmetricGraph

__all__ = ["write_matrix_market", "read_matrix_market"]

_HEADER = "%%MatrixMarket matrix coordinate {field} symmetric\n"


def _open_for(obj, mode: str):
    if isinstance(obj, (str, Path)):
        return open(obj, mode), True
    return obj, False


def write_matrix_market(obj, target) -> None:
    """Write a :class:`SymmetricCSC` (real) or :class:`SymmetricGraph`
    (pattern) in Matrix Market coordinate symmetric format.

    ``target`` may be a path or a writable text file object.
    """
    fh, owned = _open_for(target, "w")
    try:
        if isinstance(obj, SymmetricCSC):
            rows = obj.pattern.rowidx
            cols = obj.pattern.element_cols()
            fh.write(_HEADER.format(field="real"))
            fh.write(f"{obj.n} {obj.n} {obj.nnz}\n")
            for r, c, v in zip(rows.tolist(), cols.tolist(), obj.values.tolist()):
                fh.write(f"{r + 1} {c + 1} {v!r}\n")
        elif isinstance(obj, SymmetricGraph):
            u, v = obj.edges()
            n_entries = len(u) + obj.n
            fh.write(_HEADER.format(field="pattern"))
            fh.write(f"{obj.n} {obj.n} {n_entries}\n")
            for i in range(obj.n):
                fh.write(f"{i + 1} {i + 1}\n")
            for a, b in zip(u.tolist(), v.tolist()):
                fh.write(f"{max(a, b) + 1} {min(a, b) + 1}\n")
        else:
            raise TypeError(f"cannot write object of type {type(obj).__name__}")
    finally:
        if owned:
            fh.close()


def read_matrix_market(source):
    """Read a symmetric Matrix Market coordinate file.

    Returns a :class:`SymmetricCSC` for ``real``/``integer`` files and a
    :class:`SymmetricGraph` for ``pattern`` files.
    """
    fh, owned = _open_for(source, "r")
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a Matrix Market file")
        parts = header.strip().split()
        if len(parts) < 5 or parts[1] != "matrix" or parts[2] != "coordinate":
            raise ValueError(f"unsupported MatrixMarket header: {header.strip()}")
        field, symmetry = parts[3], parts[4]
        if symmetry != "symmetric":
            raise ValueError("only symmetric matrices are supported")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = (int(t) for t in line.split())
        if nrows != ncols:
            raise ValueError("matrix is not square")
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64) if field in ("real", "integer") else None
        k = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            toks = line.split()
            rows[k] = int(toks[0]) - 1
            cols[k] = int(toks[1]) - 1
            if vals is not None:
                vals[k] = float(toks[2])
            k += 1
        if k != nnz:
            raise ValueError(f"expected {nnz} entries, found {k}")
        if vals is not None:
            lo_r, lo_c = np.maximum(rows, cols), np.minimum(rows, cols)
            return SymmetricCSC.from_entries(nrows, lo_r, lo_c, vals)
        off = rows != cols
        return SymmetricGraph.from_edges(nrows, rows[off], cols[off])
    finally:
        if owned:
            fh.close()


def matrix_market_string(obj) -> str:
    """Render to a Matrix Market string (convenience for tests/examples)."""
    buf = io.StringIO()
    write_matrix_market(obj, buf)
    return buf.getvalue()
