"""Numeric symmetric sparse matrices in lower-triangular CSC form."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dtypes import index_dtype
from .pattern import LowerPattern, SymmetricGraph

__all__ = ["SymmetricCSC", "LowerCSC"]


@dataclass(frozen=True)
class SymmetricCSC:
    """A symmetric matrix stored as its lower triangle (values + pattern).

    ``values[k]`` is the numeric value of element id ``k`` of ``pattern``.
    Entries may be numerically zero; the pattern is authoritative.
    """

    pattern: LowerPattern
    values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.values) != self.pattern.nnz:
            raise ValueError("values length must equal pattern.nnz")

    @classmethod
    def from_entries(cls, n: int, rows, cols, vals) -> "SymmetricCSC":
        rows = np.asarray(rows, dtype=index_dtype(n))
        cols = np.asarray(cols, dtype=index_dtype(n))
        vals = np.asarray(vals, dtype=np.float64)
        pattern = LowerPattern.from_entries(n, rows, cols)
        values = np.zeros(pattern.nnz, dtype=np.float64)
        for r, c, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
            values[pattern.element_id(r, c)] += v
        return cls(pattern, values)

    @classmethod
    def from_dense(cls, a: np.ndarray, tol: float = 0.0) -> "SymmetricCSC":
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("matrix must be square")
        if not np.allclose(a, a.T):
            raise ValueError("matrix is not symmetric")
        rows, cols = np.nonzero(np.abs(np.tril(a)) > tol)
        return cls.from_entries(a.shape[0], rows, cols, a[rows, cols])

    @property
    def n(self) -> int:
        return self.pattern.n

    @property
    def nnz(self) -> int:
        return self.pattern.nnz

    def get(self, i: int, j: int) -> float:
        if i < j:
            i, j = j, i
        k = self.pattern.element_id(i, j)
        return 0.0 if k < 0 else float(self.values[k])

    def diagonal(self) -> np.ndarray:
        return self.values[self.pattern.indptr[:-1]]

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n, self.n), dtype=np.float64)
        rows = self.pattern.rowidx
        cols = self.pattern.element_cols()
        out[rows, cols] = self.values
        out[cols, rows] = self.values
        return out

    def graph(self) -> SymmetricGraph:
        return self.pattern.to_symmetric_graph()

    def permute(self, perm) -> "SymmetricCSC":
        """Symmetric permutation: result[k, l] = self[perm[k], perm[l]]."""
        perm = np.asarray(perm, dtype=index_dtype(self.n))
        inv = np.empty(self.n, dtype=index_dtype(self.n))
        inv[perm] = np.arange(self.n, dtype=index_dtype(self.n))
        rows = inv[self.pattern.rowidx]
        cols = inv[self.pattern.element_cols()]
        lo_r = np.maximum(rows, cols)
        lo_c = np.minimum(rows, cols)
        return SymmetricCSC.from_entries(self.n, lo_r, lo_c, self.values)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Symmetric matrix-vector product using only the stored triangle."""
        x = np.asarray(x, dtype=np.float64)
        rows = self.pattern.rowidx
        cols = self.pattern.element_cols()
        y = np.zeros(self.n, dtype=np.float64)
        np.add.at(y, rows, self.values * x[cols])
        off = rows != cols
        np.add.at(y, cols[off], self.values[off] * x[rows[off]])
        return y


@dataclass(frozen=True)
class LowerCSC:
    """A lower-triangular factor: values aligned with a :class:`LowerPattern`."""

    pattern: LowerPattern
    values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.values) != self.pattern.nnz:
            raise ValueError("values length must equal pattern.nnz")

    @property
    def n(self) -> int:
        return self.pattern.n

    @property
    def nnz(self) -> int:
        return self.pattern.nnz

    def get(self, i: int, j: int) -> float:
        k = self.pattern.element_id(i, j)
        return 0.0 if k < 0 else float(self.values[k])

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n, self.n), dtype=np.float64)
        out[self.pattern.rowidx, self.pattern.element_cols()] = self.values
        return out
