"""Sparse matrix substrate: structures, numeric storage, I/O, generators."""

from .coo import COOBuilder
from .csc import LowerCSC, SymmetricCSC
from .dtypes import as_index_array, index_dtype, linear_index
from .generators import (
    aniso_grid,
    band_graph,
    band_lower_pattern,
    grid5,
    grid9,
    hex_mesh,
    knn_mesh,
    laplacian_matrix,
    lshape_mesh,
    path_graph,
    power_network,
    powlaw_graph,
    random_symmetric_graph,
    social_graph,
    spd_from_graph,
    star_graph,
    stiffened_cylinder,
    tet_mesh,
)
from .harwell_boeing import PAPER_MATRICES, TestMatrix, load, names
from .registry import (
    BIG_MATRICES,
    BIG_TIER_MIN_N,
    GeneratedMatrix,
    big_names,
    is_big,
    matrix_names,
    pattern_fingerprint,
)
from .interop import (
    graph_from_scipy,
    lower_to_scipy,
    symmetric_from_scipy,
    symmetric_to_scipy,
)
from .io_hb import read_harwell_boeing, write_harwell_boeing
from .io_mm import read_matrix_market, write_matrix_market
from .pattern import LowerPattern, SymmetricGraph

__all__ = [
    "COOBuilder",
    "LowerCSC",
    "SymmetricCSC",
    "LowerPattern",
    "SymmetricGraph",
    "aniso_grid",
    "band_graph",
    "band_lower_pattern",
    "grid5",
    "grid9",
    "hex_mesh",
    "knn_mesh",
    "laplacian_matrix",
    "lshape_mesh",
    "path_graph",
    "power_network",
    "powlaw_graph",
    "random_symmetric_graph",
    "social_graph",
    "spd_from_graph",
    "star_graph",
    "stiffened_cylinder",
    "tet_mesh",
    "as_index_array",
    "index_dtype",
    "linear_index",
    "BIG_MATRICES",
    "BIG_TIER_MIN_N",
    "GeneratedMatrix",
    "big_names",
    "is_big",
    "matrix_names",
    "pattern_fingerprint",
    "graph_from_scipy",
    "lower_to_scipy",
    "symmetric_from_scipy",
    "symmetric_to_scipy",
    "PAPER_MATRICES",
    "TestMatrix",
    "load",
    "names",
    "read_harwell_boeing",
    "write_harwell_boeing",
    "read_matrix_market",
    "write_matrix_market",
]
