"""Structure-only sparse matrix types.

Two views of symmetry are used throughout the library:

* :class:`SymmetricGraph` — the adjacency structure of a symmetric matrix
  (both halves, no diagonal).  This is what orderings consume.
* :class:`LowerPattern` — a compressed-sparse-column lower-triangular
  pattern with the diagonal always present.  This is what the symbolic
  factorization produces and what the partitioner consumes.

Both are immutable after construction; all index arrays are sorted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dtypes import as_index_array as _as_index_array
from .dtypes import index_dtype, linear_index

__all__ = ["SymmetricGraph", "LowerPattern"]


@dataclass(frozen=True)
class SymmetricGraph:
    """Adjacency structure of an n x n symmetric matrix.

    Stored in CSR form covering *both* triangles, diagonal excluded.
    ``indices[indptr[i]:indptr[i+1]]`` are the sorted neighbours of node
    ``i``.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("n must be non-negative")
        if len(self.indptr) != self.n + 1:
            raise ValueError("indptr must have length n + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr is inconsistent with indices")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, u, v) -> "SymmetricGraph":
        """Build from undirected edge lists ``(u[k], v[k])``.

        Duplicate edges and self loops are removed.
        """
        u = _as_index_array(u)
        v = _as_index_array(v)
        if len(u) != len(v):
            raise ValueError("u and v must have equal length")
        if len(u) and (u.min() < 0 or v.min() < 0 or u.max() >= n or v.max() >= n):
            raise ValueError("edge endpoint out of range")
        keep = u != v
        u, v = u[keep], v[keep]
        # Symmetrize, then dedupe via the linearized key of each directed
        # edge.  The sorted unique keys are already in (src, dst) order,
        # so src/dst are recovered by div/mod — no lexsort pass.
        idt = index_dtype(n)
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        key = np.unique(linear_index(src, dst, n))
        src = (key // n).astype(idt)
        dst = (key % n).astype(idt)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(n, indptr, dst)

    @classmethod
    def from_dense(cls, a: np.ndarray) -> "SymmetricGraph":
        """Build from a dense symmetric matrix (or boolean mask)."""
        a = np.asarray(a)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("matrix must be square")
        mask = a != 0
        if not np.array_equal(mask, mask.T):
            raise ValueError("pattern is not symmetric")
        u, v = np.nonzero(np.triu(mask, 1))
        return cls.from_edges(a.shape[0], u, v)

    @classmethod
    def empty(cls, n: int) -> "SymmetricGraph":
        return cls(
            n, np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=index_dtype(n))
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges (off-diagonal nonzero pairs / 2)."""
        return len(self.indices) // 2

    @property
    def nnz_lower(self) -> int:
        """Nonzeros of the lower triangle including the diagonal."""
        return self.n + self.num_edges

    def neighbors(self, i: int) -> np.ndarray:
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def degree(self, i: int | None = None):
        d = np.diff(self.indptr)
        return d if i is None else int(d[i])

    def has_edge(self, i: int, j: int) -> bool:
        nb = self.neighbors(i)
        k = np.searchsorted(nb, j)
        return bool(k < len(nb) and nb[k] == j)

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (u, v) arrays with u < v, one entry per undirected edge."""
        src = np.repeat(np.arange(self.n, dtype=index_dtype(self.n)), np.diff(self.indptr))
        dst = self.indices
        keep = src < dst
        return src[keep], dst[keep]

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def permute(self, perm) -> "SymmetricGraph":
        """Apply a symmetric permutation.

        ``perm[k]`` is the old index of the node that becomes new index
        ``k`` (i.e. the elimination order).  The result G' satisfies
        G'.has_edge(k, l) == G.has_edge(perm[k], perm[l]).
        """
        perm = _as_index_array(perm)
        if sorted(perm.tolist()) != list(range(self.n)):
            raise ValueError("perm is not a permutation of 0..n-1")
        inv = np.empty(self.n, dtype=index_dtype(self.n))
        inv[perm] = np.arange(self.n, dtype=index_dtype(self.n))
        u, v = self.edges()
        return SymmetricGraph.from_edges(self.n, inv[u], inv[v])

    def to_dense_bool(self) -> np.ndarray:
        out = np.zeros((self.n, self.n), dtype=bool)
        src = np.repeat(np.arange(self.n), np.diff(self.indptr))
        out[src, self.indices] = True
        return out

    def lower(self) -> "LowerPattern":
        """Lower-triangular pattern (diagonal added) of this matrix."""
        u, v = self.edges()  # u < v; lower entry is (v, u): row v, col u
        diag = np.arange(self.n, dtype=index_dtype(self.n))
        rows = np.concatenate([v, diag])
        cols = np.concatenate([u, diag])
        return LowerPattern.from_entries(self.n, rows, cols)

    def __eq__(self, other) -> bool:  # pragma: no cover - trivial
        return (
            isinstance(other, SymmetricGraph)
            and self.n == other.n
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )


@dataclass(frozen=True)
class LowerPattern:
    """CSC pattern of a lower-triangular matrix with unit-present diagonal.

    ``rowidx[indptr[j]:indptr[j+1]]`` are the sorted row indices of column
    ``j``; the first entry of every column is the diagonal ``j`` itself.
    Element ids are positions in ``rowidx`` and are used throughout the
    partitioner as stable element handles.
    """

    n: int
    indptr: np.ndarray
    rowidx: np.ndarray

    def __post_init__(self) -> None:
        if len(self.indptr) != self.n + 1:
            raise ValueError("indptr must have length n + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.rowidx):
            raise ValueError("indptr inconsistent with rowidx")
        if self.n:
            lo = np.asarray(self.indptr[:-1])
            empty = np.flatnonzero(lo >= np.asarray(self.indptr[1:]))
            if empty.size:
                raise ValueError(
                    f"column {int(empty[0])} is missing its diagonal entry"
                )
            bad = np.flatnonzero(
                np.asarray(self.rowidx)[lo] != np.arange(self.n)
            )
            if bad.size:
                raise ValueError(f"column {int(bad[0])} is missing its diagonal entry")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_entries(cls, n: int, rows, cols) -> "LowerPattern":
        """Build from (row, col) entry lists; diagonal entries are added,
        duplicates removed, upper-triangle entries rejected."""
        rows = _as_index_array(rows)
        cols = _as_index_array(cols)
        if len(rows) != len(cols):
            raise ValueError("rows and cols must have equal length")
        if len(rows) and (rows < cols).any():
            raise ValueError("entry above the diagonal in a LowerPattern")
        if len(rows) and (rows.max() >= n or cols.min() < 0):
            raise ValueError("entry out of range")
        diag = np.arange(n, dtype=index_dtype(n))
        rows = np.concatenate([rows, diag])
        cols = np.concatenate([cols, diag])
        key = np.unique(linear_index(cols, rows, n))
        cols = key // n
        rows = (key % n).astype(index_dtype(n))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(n, indptr, rows)

    @classmethod
    def from_dense(cls, a: np.ndarray) -> "LowerPattern":
        a = np.asarray(a)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("matrix must be square")
        rows, cols = np.nonzero(np.tril(a != 0))
        return cls.from_entries(a.shape[0], rows, cols)

    @classmethod
    def dense(cls, n: int) -> "LowerPattern":
        """Fully dense lower triangle of order n."""
        cols = np.repeat(np.arange(n, dtype=np.int64), np.arange(n, 0, -1))
        rows = np.concatenate([np.arange(j, n, dtype=np.int64) for j in range(n)]) \
            if n else np.zeros(0, dtype=np.int64)
        return cls.from_entries(n, rows, cols)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.rowidx)

    def col(self, j: int) -> np.ndarray:
        """Sorted row indices of column j (diagonal first)."""
        return self.rowidx[self.indptr[j] : self.indptr[j + 1]]

    def col_count(self, j: int | None = None):
        d = np.diff(self.indptr)
        return d if j is None else int(d[j])

    def offdiag_count(self, j: int | None = None):
        d = np.diff(self.indptr) - 1
        return d if j is None else int(d[j])

    def has(self, i: int, j: int) -> bool:
        return self.element_id(i, j) >= 0

    def element_id(self, i: int, j: int) -> int:
        """Position of entry (i, j) in ``rowidx``, or -1 if structurally zero."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        k = lo + np.searchsorted(self.rowidx[lo:hi], i)
        if k < hi and self.rowidx[k] == i:
            return int(k)
        return -1

    def element_ids(self, i, j) -> np.ndarray:
        """Vectorized :meth:`element_id` for arrays of rows/cols."""
        i = _as_index_array(i)
        j = _as_index_array(j)
        out = np.empty(len(i), dtype=np.int64)
        for k in range(len(i)):
            out[k] = self.element_id(int(i[k]), int(j[k]))
        return out

    def element_rows(self) -> np.ndarray:
        """Row index of every element id (alias of ``rowidx``)."""
        return self.rowidx

    def element_cols(self) -> np.ndarray:
        """Column index of every element id."""
        return np.repeat(
            np.arange(self.n, dtype=index_dtype(self.n)), np.diff(self.indptr)
        )

    def to_dense_bool(self) -> np.ndarray:
        out = np.zeros((self.n, self.n), dtype=bool)
        out[self.rowidx, self.element_cols()] = True
        return out

    def to_symmetric_graph(self) -> SymmetricGraph:
        cols = self.element_cols()
        off = self.rowidx != cols
        return SymmetricGraph.from_edges(self.n, self.rowidx[off], cols[off])

    def contains(self, other: "LowerPattern") -> bool:
        """True if every entry of ``other`` is present here."""
        if self.n != other.n:
            return False
        mine = set(zip(self.rowidx.tolist(), self.element_cols().tolist()))
        theirs = zip(other.rowidx.tolist(), other.element_cols().tolist())
        return all(t in mine for t in theirs)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LowerPattern)
            and self.n == other.n
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.rowidx, other.rowidx)
        )
