"""Coordinate-format accumulator for building symmetric matrices."""

from __future__ import annotations

import numpy as np

from .csc import SymmetricCSC
from .pattern import SymmetricGraph

__all__ = ["COOBuilder"]


class COOBuilder:
    """Accumulates (i, j, v) triples of a symmetric matrix.

    Only one triangle needs to be supplied; entries are mirrored on build.
    Duplicate entries are summed, matching the usual finite-element
    assembly convention.
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = n
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._vals: list[float] = []

    def add(self, i: int, j: int, v: float) -> None:
        """Add ``v`` to entry (i, j) (and (j, i) by symmetry on build)."""
        if not (0 <= i < self.n and 0 <= j < self.n):
            raise IndexError(f"entry ({i}, {j}) out of range for n={self.n}")
        self._rows.append(i)
        self._cols.append(j)
        self._vals.append(float(v))

    def add_many(self, rows, cols, vals) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (len(rows) == len(cols) == len(vals)):
            raise ValueError("rows, cols, vals must have equal length")
        if len(rows) and (
            rows.min() < 0 or cols.min() < 0 or rows.max() >= self.n or cols.max() >= self.n
        ):
            raise IndexError("entry out of range")
        self._rows.extend(rows.tolist())
        self._cols.extend(cols.tolist())
        self._vals.extend(vals.tolist())

    def __len__(self) -> int:
        return len(self._rows)

    def build(self) -> SymmetricCSC:
        """Assemble into a :class:`SymmetricCSC` (duplicates summed)."""
        rows = np.asarray(self._rows, dtype=np.int64)
        cols = np.asarray(self._cols, dtype=np.int64)
        vals = np.asarray(self._vals, dtype=np.float64)
        # Fold everything into the lower triangle.
        lo_r = np.maximum(rows, cols)
        lo_c = np.minimum(rows, cols)
        key = lo_c * np.int64(self.n) + lo_r
        uniq, inverse = np.unique(key, return_inverse=True)
        summed = np.zeros(len(uniq), dtype=np.float64)
        np.add.at(summed, inverse, vals)
        out_c = uniq // self.n
        out_r = uniq % self.n
        return SymmetricCSC.from_entries(self.n, out_r, out_c, summed)

    def build_graph(self) -> SymmetricGraph:
        """Assemble only the structure (off-diagonal adjacency)."""
        rows = np.asarray(self._rows, dtype=np.int64)
        cols = np.asarray(self._cols, dtype=np.int64)
        return SymmetricGraph.from_edges(self.n, rows, cols)
