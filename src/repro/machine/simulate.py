"""Event-driven schedule simulation with dependency delays.

The paper measures partition quality while explicitly ignoring
dependency-delay idle time ("we are concerned with the quality of the
partitioner/scheduler ... and hence do not take into account data
dependency delays"), and argues that with many more units than
processors the idle time stays small.  This module adds the missing
model so that claim can be checked: units execute for ``work`` time on
their processor, and a unit may start only after every predecessor's
data has arrived — with an α + β·volume message delay when the
predecessor lives on another processor.

Every simulation also emits into the sim-clock telemetry layer
(:mod:`repro.obs.simtime`): :func:`simulate_assignment` returns a
:class:`~repro.obs.simtime.SimRun` carrying per-unit records, start
reasons (for critical-path extraction) and the message ledger, whose
total bytes bit-match :func:`repro.machine.traffic.data_traffic` for
the same assignment (both dedup distinct non-local (processor, source
element) reads).  Block assignments simulate at unit-block granularity;
wrap/column assignments (no partition, but a per-column processor map)
simulate at column granularity over the column dependency DAG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..core.dependencies import DependencyInfo
from ..obs import simtime
from ..obs import trace as obs
from ..symbolic.updates import UpdateSet
from .traffic import access_pairs

__all__ = [
    "MachineModel",
    "ScheduleTimeline",
    "simulate_schedule",
    "simulate_assignment",
    "simulation_messages",
    "edge_volumes",
    "unit_graph",
    "topological_order",
]


@dataclass(frozen=True)
class MachineModel:
    """Timing parameters: per-work-unit compute time, message latency α
    and per-element cost β (all in the same abstract time unit)."""

    compute: float = 1.0
    alpha: float = 10.0
    beta: float = 1.0


def topological_order(n_units: int, edges: np.ndarray) -> np.ndarray:
    """Kahn topological sort of the unit DAG, ties broken by uid.

    Unit ids are *not* a topological order: inside a cluster triangle,
    unit rectangles (emitted after the diagonal unit triangles) update
    later diagonal triangles.  Raises if a cycle is found.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if len(edges):
        indeg = np.bincount(edges[:, 1], minlength=n_units)
        # CSR-style adjacency: sort edges by source, slice per unit.
        order = np.argsort(edges[:, 0], kind="stable")
        src_sorted = edges[order, 0]
        dst_sorted = np.ascontiguousarray(edges[order, 1])
        bounds = np.searchsorted(src_sorted, np.arange(n_units + 1, dtype=np.int64))
    else:
        indeg = np.zeros(n_units, dtype=np.int64)
        dst_sorted = np.zeros(0, dtype=np.int64)
        bounds = np.zeros(n_units + 1, dtype=np.int64)
    import heapq

    heap = np.flatnonzero(indeg == 0).tolist()
    heapq.heapify(heap)
    out = np.empty(n_units, dtype=np.int64)
    k = 0
    while heap:
        u = heapq.heappop(heap)
        out[k] = u
        k += 1
        for v in dst_sorted[bounds[u] : bounds[u + 1]].tolist():
            indeg[v] -= 1
            if indeg[v] == 0:
                heapq.heappush(heap, v)
    if k != n_units:
        raise ValueError("unit dependency graph has a cycle")
    return out


@dataclass(frozen=True)
class ScheduleTimeline:
    """Result of a schedule simulation."""

    start: np.ndarray
    finish: np.ndarray
    proc_busy: np.ndarray
    makespan: float

    @property
    def idle_fraction(self) -> float:
        """Fraction of processor-time spent idle before the makespan."""
        n = len(self.proc_busy)
        if self.makespan == 0:
            return 0.0
        return 1.0 - float(self.proc_busy.sum()) / (n * self.makespan)


def unit_graph(
    unit_of_element: np.ndarray,
    updates: UpdateSet,
    n_units: int,
    nnz: int,
    include_scale: bool = True,
) -> tuple[np.ndarray, dict[tuple[int, int], int]]:
    """Unit DAG edges and per-edge distinct-element volumes, for any
    element→unit map (block partitions and column granularity alike).

    Volume of edge (s, t) = number of distinct elements owned by unit s
    that updates targeting unit t read.
    """
    uoe = np.asarray(unit_of_element, dtype=np.int64)
    tgt_unit = uoe[updates.target]
    pairs_src = np.concatenate([updates.source_i, updates.source_j])
    pairs_tgt = np.concatenate([tgt_unit, tgt_unit])
    if include_scale:
        pairs_src = np.concatenate([pairs_src, updates.scale_source])
        pairs_tgt = np.concatenate([pairs_tgt, uoe])
    src_unit = uoe[pairs_src]
    keep = src_unit != pairs_tgt
    # Distinct (target unit, source element) pairs, then count per edge.
    key = np.unique(pairs_tgt[keep] * np.int64(nnz) + pairs_src[keep])
    t = key // nnz
    s_elem = key % nnz
    s_unit = uoe[s_elem]
    # Grouped count per (source unit, target unit) edge via np.unique.
    edge_key, counts = np.unique(s_unit * np.int64(n_units) + t, return_counts=True)
    edges = np.stack([edge_key // n_units, edge_key % n_units], axis=1)
    volumes = {
        (int(k // n_units), int(k % n_units)): int(c)
        for k, c in zip(edge_key.tolist(), counts.tolist())
    }
    return edges, volumes


def edge_volumes(
    assignment: Assignment, deps: DependencyInfo, updates: UpdateSet
) -> dict[tuple[int, int], int]:
    """Distinct elements transferred along each unit-dependency edge.

    Volume of edge (s, t) = number of distinct elements owned by unit s
    that updates targeting unit t read.
    """
    partition = assignment.partition
    if partition is None:
        raise ValueError("edge volumes require a block assignment")
    return unit_graph(
        partition.unit_of_element,
        updates,
        partition.num_units,
        partition.pattern.nnz,
        deps.include_scale,
    )[1]


def _adjacency(n_units: int, edges: np.ndarray) -> tuple[list, list]:
    """CSR-style predecessor/successor lists from sorted unique edges."""
    order = np.argsort(edges[:, 1], kind="stable")
    src = np.ascontiguousarray(edges[order, 0])
    tgt = edges[order, 1]
    bounds = np.searchsorted(tgt, np.arange(n_units + 1, dtype=np.int64))
    preds = [src[bounds[u] : bounds[u + 1]] for u in range(n_units)]
    src2 = edges[:, 0]
    tgt2 = np.ascontiguousarray(edges[:, 1])
    bounds2 = np.searchsorted(src2, np.arange(n_units + 1, dtype=np.int64))
    succs = [tgt2[bounds2[u] : bounds2[u + 1]] for u in range(n_units)]
    return preds, succs


def _simulate_units(
    n_units: int,
    nprocs: int,
    proc_of_unit: np.ndarray,
    work: np.ndarray,
    preds: list,
    succs: list,
    volumes: dict[tuple[int, int], int],
    model: MachineModel,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The event loop: greedy list scheduling with message delays.

    Besides start/finish/busy it records *why* each unit started when it
    did (``reason``: the releasing unit, ``reason_kind``: a
    :mod:`repro.obs.simtime` REASON_* code) — every link is tight, so a
    backwards walk over the reasons is the critical path.
    """
    proc_free = np.zeros(nprocs, dtype=np.float64)
    proc_busy = np.zeros(nprocs, dtype=np.float64)
    start = np.zeros(n_units, dtype=np.float64)
    finish = np.zeros(n_units, dtype=np.float64)
    reason = np.full(n_units, -1, dtype=np.int64)
    reason_kind = np.zeros(n_units, dtype=np.int64)

    indeg = np.asarray([len(p) for p in preds], dtype=np.int64)
    # Incremental data-arrival times: arrival[u] is the max, over the
    # predecessors of u that have finished so far, of the time their data
    # reaches u's (fixed) processor.  It is updated once per dependency
    # edge when the predecessor finishes, and is final by the time
    # indeg[u] hits zero — so dispatch never rescans predecessors.
    # arrival_from/arrival_msg track the argmax predecessor and whether
    # it released u via a message (cross-processor) or locally.
    arrival = np.zeros(n_units, dtype=np.float64)
    arrival_from = np.full(n_units, -1, dtype=np.int64)
    arrival_msg = np.zeros(n_units, dtype=bool)
    last_on_proc = np.full(nprocs, -1, dtype=np.int64)
    ready: list[set[int]] = [set() for _ in range(nprocs)]
    for u in range(n_units):
        if indeg[u] == 0:
            ready[int(proc_of_unit[u])].add(u)
    running: list[bool] = [False] * nprocs
    done = 0

    import heapq

    events: list[tuple[float, int, int]] = []  # (finish time, unit, proc)

    def try_start(p: int) -> None:
        if running[p] or not ready[p]:
            return
        best = None
        best_key = None
        free = proc_free[p]
        for u in ready[p]:
            key = (max(arrival[u], free), u)
            if best_key is None or key < best_key:
                best, best_key = u, key
        assert best is not None and best_key is not None
        ready[p].remove(best)
        t0 = best_key[0]
        if arrival[best] > free:
            # Data-bound: the unit started the instant its slowest
            # predecessor's data arrived.
            reason[best] = arrival_from[best]
            reason_kind[best] = (
                simtime.REASON_MSG if arrival_msg[best] else simtime.REASON_DEP
            )
        elif free > 0:
            # Processor-bound: it started the instant the previous unit
            # on this processor finished.
            reason[best] = last_on_proc[p]
            reason_kind[best] = simtime.REASON_PROC
        start[best] = t0
        dur = model.compute * work[best]
        finish[best] = t0 + dur
        proc_busy[p] += dur
        running[p] = True
        heapq.heappush(events, (finish[best], best, p))

    for p in range(nprocs):
        try_start(p)
    while events:
        t, u, p = heapq.heappop(events)
        proc_free[p] = t
        running[p] = False
        last_on_proc[p] = u
        done += 1
        for v in succs[u].tolist():
            a = t
            is_msg = p != int(proc_of_unit[v])
            if is_msg:
                a += model.alpha + model.beta * volumes.get((u, v), 0)
            if a > arrival[v]:
                arrival[v] = a
                arrival_from[v] = u
                arrival_msg[v] = is_msg
            indeg[v] -= 1
            if indeg[v] == 0:
                q = int(proc_of_unit[v])
                ready[q].add(v)
                try_start(q)
        try_start(p)

    if done != n_units:
        raise ValueError("unit dependency graph has a cycle")
    return start, finish, proc_busy, reason, reason_kind


def simulation_messages(
    assignment: Assignment,
    updates: UpdateSet,
    unit_of_element: np.ndarray,
    finish: np.ndarray,
    model: MachineModel,
    include_scale: bool = True,
) -> list[simtime.SimMessage]:
    """The message ledger of a simulated schedule.

    One ledger entry per (cause unit, destination processor): its bytes
    are the *distinct* non-local source elements of that unit the
    destination reads — exactly the dedup rule of
    :func:`repro.machine.traffic.data_traffic`, so total ledger bytes
    bit-match the paper's traffic figure, per-destination sums match
    ``per_processor`` and the P×P aggregation matches
    ``communication_matrix``.  The send time is the cause unit's finish;
    the receive time adds the α + β·bytes message delay.
    """
    nnz = assignment.pattern.nnz
    owner = assignment.owner_of_element
    nprocs = assignment.nprocs
    procs, srcs = access_pairs(assignment, updates, include_scale)
    key = np.unique(procs.astype(np.int64) * np.int64(nnz) + srcs)
    proc = key // nnz
    src = key % nnz
    keep = owner[src] != proc
    proc, src = proc[keep], src[keep]
    uoe = np.asarray(unit_of_element, dtype=np.int64)
    cause = uoe[src]
    gkey, counts = np.unique(cause * np.int64(nprocs) + proc, return_counts=True)
    cause_unit = gkey // nprocs
    dst_proc = gkey % nprocs
    src_proc = np.asarray(assignment.proc_of_unit, dtype=np.int64)[cause_unit]
    send = finish[cause_unit]
    recv = send + model.alpha + model.beta * counts
    return [
        simtime.SimMessage(src=int(s), dst=int(d), nbytes=int(n), cause=int(c),
                           send=float(t0), recv=float(t1))
        for s, d, n, c, t0, t1 in zip(
            src_proc.tolist(), dst_proc.tolist(), counts.tolist(),
            cause_unit.tolist(), send.tolist(), recv.tolist(),
        )
    ]


def simulate_assignment(
    assignment: Assignment,
    updates: UpdateSet,
    model: MachineModel | None = None,
    deps: DependencyInfo | None = None,
    name: str = "",
    include_scale: bool = True,
    with_messages: bool = True,
) -> tuple[ScheduleTimeline, simtime.SimRun]:
    """Simulate any assignment with a unit-level view; returns the
    timeline plus the full sim-clock record.

    Block assignments run at unit-block granularity over the analyzed
    dependency DAG (``deps`` is computed when not supplied); wrap and
    block-cyclic column assignments run at column granularity over the
    column dependency DAG, with elimination stages defined as up-to-32
    equal column strips.  ``with_messages=False`` skips the ledger
    (timeline values are unaffected).
    """
    model = model or MachineModel()
    partition = assignment.partition
    if partition is not None:
        if deps is None:
            from ..core.dependencies import analyze_dependencies

            deps = analyze_dependencies(partition, updates, include_scale)
        include_scale = deps.include_scale
        n_units = partition.num_units
        uoe = partition.unit_of_element
        volumes = edge_volumes(assignment, deps, updates)
        preds, succs = deps.predecessors, deps.successors
        stage = partition.cluster_of_unit
        kinds = tuple(u.kind.value for u in partition.units)
    elif assignment.proc_of_unit is not None:
        n_units = assignment.pattern.n
        uoe = np.asarray(updates.element_cols, dtype=np.int64)
        _edges, volumes = unit_graph(
            uoe, updates, n_units, assignment.pattern.nnz, include_scale
        )
        preds, succs = _adjacency(n_units, _edges)
        n_stages = min(32, n_units) if n_units else 1
        stage = (np.arange(n_units, dtype=np.int64) * n_stages) // max(n_units, 1)
        kinds = ("column",) * n_units
    else:
        raise ValueError(
            f"{assignment.scheme}: simulation needs a unit-level view "
            "(a block partition or a per-column processor map)"
        )
    work = np.zeros(n_units, dtype=np.float64)
    np.add.at(work, uoe, updates.element_work().astype(np.float64))
    start, finish, proc_busy, reason, reason_kind = _simulate_units(
        n_units, assignment.nprocs, assignment.proc_of_unit, work,
        preds, succs, volumes, model,
    )
    makespan = float(finish.max()) if n_units else 0.0
    timeline = ScheduleTimeline(start, finish, proc_busy, makespan)
    messages = (
        simulation_messages(assignment, updates, uoe, finish, model, include_scale)
        if with_messages else []
    )
    run = simtime.SimRun(
        name=name or assignment.scheme,
        scheme=assignment.scheme,
        nprocs=assignment.nprocs,
        makespan=makespan,
        clock="machine",
        proc=np.asarray(assignment.proc_of_unit, dtype=np.int64),
        stage=np.asarray(stage, dtype=np.int64),
        start=start,
        finish=finish,
        work=work,
        kind=kinds,
        reason=reason,
        reason_kind=reason_kind,
        messages=messages,
        meta={
            "model": {"compute": model.compute, "alpha": model.alpha,
                      "beta": model.beta},
            "include_scale": include_scale,
        },
    )
    if obs.is_enabled():
        for u in range(n_units):
            obs.timeline_event(
                f"unit {u} ({kinds[u]})",
                ts=float(start[u]),
                dur=float(finish[u] - start[u]),
                lane=int(assignment.proc_of_unit[u]),
                track="simulate_schedule",
                uid=u,
                cluster=int(stage[u]),
                work=float(work[u]),
            )
        obs.counter("sim.units", n_units)
        obs.counter("sim.events", n_units)
        obs.gauge("sim.makespan", makespan)
        obs.gauge("sim.idle_fraction", timeline.idle_fraction)
        obs.gauge("sim.proc_busy", proc_busy.tolist())
        if messages:
            obs.counter("sim.messages", len(messages))
            obs.counter("sim.message_bytes", run.total_message_bytes())
        simtime.record_sim_run(run)
    return timeline, run


def simulate_schedule(
    assignment: Assignment,
    deps: DependencyInfo,
    updates: UpdateSet,
    model: MachineModel | None = None,
) -> ScheduleTimeline:
    """Simulate the block schedule with dependency and message delays.

    Event-driven greedy list scheduling: whenever a processor is free it
    starts, among its own units whose predecessors have all completed,
    the one that can begin earliest (data-arrival time, ties by uid).
    """
    if assignment.partition is None:
        raise ValueError("simulation requires a block assignment")
    timeline, _run = simulate_assignment(
        assignment, updates, model=model, deps=deps,
        with_messages=obs.is_enabled(),
    )
    return timeline
