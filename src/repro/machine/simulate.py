"""Event-driven schedule simulation with dependency delays.

The paper measures partition quality while explicitly ignoring
dependency-delay idle time ("we are concerned with the quality of the
partitioner/scheduler ... and hence do not take into account data
dependency delays"), and argues that with many more units than
processors the idle time stays small.  This module adds the missing
model so that claim can be checked: units execute for ``work`` time on
their processor, and a unit may start only after every predecessor's
data has arrived — with an α + β·volume message delay when the
predecessor lives on another processor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..core.dependencies import DependencyInfo
from ..obs import trace as obs
from ..symbolic.updates import UpdateSet

__all__ = ["MachineModel", "ScheduleTimeline", "simulate_schedule", "edge_volumes", "topological_order"]


@dataclass(frozen=True)
class MachineModel:
    """Timing parameters: per-work-unit compute time, message latency α
    and per-element cost β (all in the same abstract time unit)."""

    compute: float = 1.0
    alpha: float = 10.0
    beta: float = 1.0


def topological_order(n_units: int, edges: np.ndarray) -> np.ndarray:
    """Kahn topological sort of the unit DAG, ties broken by uid.

    Unit ids are *not* a topological order: inside a cluster triangle,
    unit rectangles (emitted after the diagonal unit triangles) update
    later diagonal triangles.  Raises if a cycle is found.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if len(edges):
        indeg = np.bincount(edges[:, 1], minlength=n_units)
        # CSR-style adjacency: sort edges by source, slice per unit.
        order = np.argsort(edges[:, 0], kind="stable")
        src_sorted = edges[order, 0]
        dst_sorted = np.ascontiguousarray(edges[order, 1])
        bounds = np.searchsorted(src_sorted, np.arange(n_units + 1, dtype=np.int64))
    else:
        indeg = np.zeros(n_units, dtype=np.int64)
        dst_sorted = np.zeros(0, dtype=np.int64)
        bounds = np.zeros(n_units + 1, dtype=np.int64)
    import heapq

    heap = np.flatnonzero(indeg == 0).tolist()
    heapq.heapify(heap)
    out = np.empty(n_units, dtype=np.int64)
    k = 0
    while heap:
        u = heapq.heappop(heap)
        out[k] = u
        k += 1
        for v in dst_sorted[bounds[u] : bounds[u + 1]].tolist():
            indeg[v] -= 1
            if indeg[v] == 0:
                heapq.heappush(heap, v)
    if k != n_units:
        raise ValueError("unit dependency graph has a cycle")
    return out


@dataclass(frozen=True)
class ScheduleTimeline:
    """Result of a schedule simulation."""

    start: np.ndarray
    finish: np.ndarray
    proc_busy: np.ndarray
    makespan: float

    @property
    def idle_fraction(self) -> float:
        """Fraction of processor-time spent idle before the makespan."""
        n = len(self.proc_busy)
        if self.makespan == 0:
            return 0.0
        return 1.0 - float(self.proc_busy.sum()) / (n * self.makespan)


def edge_volumes(
    assignment: Assignment, deps: DependencyInfo, updates: UpdateSet
) -> dict[tuple[int, int], int]:
    """Distinct elements transferred along each unit-dependency edge.

    Volume of edge (s, t) = number of distinct elements owned by unit s
    that updates targeting unit t read.
    """
    partition = assignment.partition
    if partition is None:
        raise ValueError("edge volumes require a block assignment")
    uoe = partition.unit_of_element
    tgt_unit = uoe[updates.target]
    pairs_src = np.concatenate([updates.source_i, updates.source_j])
    pairs_tgt = np.concatenate([tgt_unit, tgt_unit])
    if deps.include_scale:
        all_eids = np.arange(partition.pattern.nnz, dtype=np.int64)
        pairs_src = np.concatenate([pairs_src, updates.scale_source])
        pairs_tgt = np.concatenate([pairs_tgt, uoe[all_eids]])
    src_unit = uoe[pairs_src]
    keep = src_unit != pairs_tgt
    # Distinct (target unit, source element) pairs, then count per edge.
    nnz = partition.pattern.nnz
    key = np.unique(pairs_tgt[keep] * np.int64(nnz) + pairs_src[keep])
    t = key // nnz
    s_elem = key % nnz
    s_unit = uoe[s_elem]
    # Grouped count per (source unit, target unit) edge via np.unique.
    n_units = partition.num_units
    edge_key, counts = np.unique(s_unit * np.int64(n_units) + t, return_counts=True)
    return {
        (int(k // n_units), int(k % n_units)): int(c)
        for k, c in zip(edge_key.tolist(), counts.tolist())
    }


def simulate_schedule(
    assignment: Assignment,
    deps: DependencyInfo,
    updates: UpdateSet,
    model: MachineModel | None = None,
) -> ScheduleTimeline:
    """Simulate the block schedule with dependency and message delays.

    Event-driven greedy list scheduling: whenever a processor is free it
    starts, among its own units whose predecessors have all completed,
    the one that can begin earliest (data-arrival time, ties by uid).
    """
    partition = assignment.partition
    if partition is None:
        raise ValueError("simulation requires a block assignment")
    model = model or MachineModel()
    n_units = partition.num_units
    work = np.zeros(n_units, dtype=np.float64)
    np.add.at(work, partition.unit_of_element, updates.element_work().astype(np.float64))

    volumes = edge_volumes(assignment, deps, updates)
    preds = deps.predecessors
    succs = deps.successors
    proc_of_unit = assignment.proc_of_unit
    nprocs = assignment.nprocs
    proc_free = np.zeros(nprocs, dtype=np.float64)
    proc_busy = np.zeros(nprocs, dtype=np.float64)
    start = np.zeros(n_units, dtype=np.float64)
    finish = np.zeros(n_units, dtype=np.float64)

    indeg = np.asarray([len(p) for p in preds], dtype=np.int64)
    # Incremental data-arrival times: arrival[u] is the max, over the
    # predecessors of u that have finished so far, of the time their data
    # reaches u's (fixed) processor.  It is updated once per dependency
    # edge when the predecessor finishes, and is final by the time
    # indeg[u] hits zero — so dispatch never rescans predecessors.
    arrival = np.zeros(n_units, dtype=np.float64)
    ready: list[set[int]] = [set() for _ in range(nprocs)]
    for u in range(n_units):
        if indeg[u] == 0:
            ready[int(proc_of_unit[u])].add(u)
    running: list[bool] = [False] * nprocs
    done = 0

    import heapq

    events: list[tuple[float, int, int]] = []  # (finish time, unit, proc)

    def try_start(p: int) -> None:
        if running[p] or not ready[p]:
            return
        best = None
        best_key = None
        free = proc_free[p]
        for u in ready[p]:
            key = (max(arrival[u], free), u)
            if best_key is None or key < best_key:
                best, best_key = u, key
        assert best is not None and best_key is not None
        ready[p].remove(best)
        t0 = best_key[0]
        start[best] = t0
        dur = model.compute * work[best]
        finish[best] = t0 + dur
        proc_busy[p] += dur
        running[p] = True
        heapq.heappush(events, (finish[best], best, p))

    for p in range(nprocs):
        try_start(p)
    while events:
        t, u, p = heapq.heappop(events)
        proc_free[p] = t
        running[p] = False
        done += 1
        for v in succs[u].tolist():
            a = t
            if p != int(proc_of_unit[v]):
                a += model.alpha + model.beta * volumes.get((u, v), 0)
            if a > arrival[v]:
                arrival[v] = a
            indeg[v] -= 1
            if indeg[v] == 0:
                q = int(proc_of_unit[v])
                ready[q].add(v)
                try_start(q)
        try_start(p)

    if done != n_units:
        raise ValueError("unit dependency graph has a cycle")
    makespan = float(finish.max()) if n_units else 0.0
    timeline = ScheduleTimeline(start, finish, proc_busy, makespan)
    if obs.is_enabled():
        units = partition.units
        for u in range(n_units):
            obs.timeline_event(
                f"unit {u} ({units[u].kind.value})",
                ts=float(start[u]),
                dur=float(finish[u] - start[u]),
                lane=int(proc_of_unit[u]),
                track="simulate_schedule",
                uid=u,
                cluster=int(units[u].cluster),
                work=float(work[u]),
            )
        obs.counter("sim.units", n_units)
        obs.counter("sim.events", n_units)
        obs.gauge("sim.makespan", makespan)
        obs.gauge("sim.idle_fraction", timeline.idle_fraction)
        obs.gauge("sim.proc_busy", proc_busy.tolist())
    return timeline
