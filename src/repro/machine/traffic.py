"""Data-traffic accounting (paper §4).

"The data traffic is defined as a count of all the non-local data
accesses.  Accessing a single non-local element constitutes a unit data
traffic irrespective of the location from where it is fetched.  Once a
data element is fetched, that element is stored locally and subsequent
usage of that element in the local computations does not add to the
data traffic."

Implemented exactly: for each processor, the number of *distinct*
non-local elements read by any update it computes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..symbolic.updates import UpdateSet

__all__ = [
    "TrafficResult",
    "data_traffic",
    "data_traffic_reference",
    "communication_matrix",
    "access_pairs",
]


@dataclass(frozen=True)
class TrafficResult:
    """Traffic per processor plus the paper's two summary figures."""

    per_processor: np.ndarray

    @property
    def total(self) -> int:
        return int(self.per_processor.sum())

    @property
    def mean(self) -> float:
        return float(self.per_processor.mean())

    @property
    def max(self) -> int:
        return int(self.per_processor.max())


def _access_pairs(
    assignment: Assignment, updates: UpdateSet, include_scale: bool
) -> tuple[np.ndarray, np.ndarray]:
    """(processor, source element) pairs for every read of the
    factorization, before dedup."""
    owner = assignment.owner_of_element
    tgt_proc = owner[updates.target]
    procs = [tgt_proc, tgt_proc]
    srcs = [updates.source_i, updates.source_j]
    if include_scale:
        procs.append(owner)
        srcs.append(updates.scale_source)
    return np.concatenate(procs), np.concatenate(srcs)


#: Public alias: the simulated message ledger
#: (:func:`repro.machine.simulate.simulation_messages`) dedups the same
#: pairs so its total bytes bit-match :func:`data_traffic`.
access_pairs = _access_pairs


def data_traffic(
    assignment: Assignment, updates: UpdateSet, include_scale: bool = True
) -> TrafficResult:
    """Distinct non-local element fetches per processor.

    ``include_scale`` counts the read of the column diagonal during the
    scale update; the pair-update reads are always counted.
    """
    nnz = assignment.pattern.nnz
    owner = assignment.owner_of_element
    procs, srcs = _access_pairs(assignment, updates, include_scale)
    key = np.unique(procs.astype(np.int64) * np.int64(nnz) + srcs)
    proc = key // nnz
    src = key % nnz
    nonlocal_mask = owner[src] != proc
    per_proc = np.bincount(proc[nonlocal_mask], minlength=assignment.nprocs)
    return TrafficResult(per_proc.astype(np.int64))


#: The per-assignment path; :mod:`repro.machine.batched` evaluates K
#: assignments in one pass and is asserted value-identical to this.
data_traffic_reference = data_traffic


def communication_matrix(
    assignment: Assignment, updates: UpdateSet, include_scale: bool = True
) -> np.ndarray:
    """C[p, q] = distinct elements owned by q fetched by p (p != q).

    Not a paper metric, but exposes the paper's qualitative hot-spot
    claim: wrap mappings make every processor talk to every other, while
    block mappings confine traffic to small processor groups.
    """
    nnz = assignment.pattern.nnz
    owner = assignment.owner_of_element
    procs, srcs = _access_pairs(assignment, updates, include_scale)
    key = np.unique(procs.astype(np.int64) * np.int64(nnz) + srcs)
    proc = key // nnz
    src = key % nnz
    src_owner = owner[src]
    keep = src_owner != proc
    n = assignment.nprocs
    out = np.zeros((n, n), dtype=np.int64)
    np.add.at(out, (proc[keep], src_owner[keep]), 1)
    return out
