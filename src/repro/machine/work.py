"""Computational-work accounting (paper §4 cost model).

Updating an element by a pair of off-diagonal elements costs **2**
units; the diagonal/scale update of an element costs **1** unit.  The
work assigned to a processor is the work of the elements it owns.
"""

from __future__ import annotations

import numpy as np

from ..core.assignment import Assignment
from ..symbolic.updates import UpdateSet

__all__ = [
    "processor_work",
    "processor_work_reference",
    "unit_work",
    "total_work",
]


def processor_work(assignment: Assignment, updates: UpdateSet) -> np.ndarray:
    """Work units per processor under owner-computes."""
    ew = updates.element_work().astype(np.float64)
    out = np.bincount(
        assignment.owner_of_element, weights=ew, minlength=assignment.nprocs
    )
    return out.astype(np.int64)


#: The per-assignment path; :mod:`repro.machine.batched` evaluates K
#: assignments in one pass and is asserted value-identical to this.
processor_work_reference = processor_work


def unit_work(partition, updates: UpdateSet) -> np.ndarray:
    """Work units per unit block of a partition."""
    ew = updates.element_work()
    out = np.zeros(partition.num_units, dtype=np.int64)
    np.add.at(out, partition.unit_of_element, ew)
    return out


def total_work(updates: UpdateSet) -> int:
    """Total (partition-invariant) work: 2·#pair-updates + nnz(L)."""
    return updates.total_work()
