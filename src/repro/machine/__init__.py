"""Distributed-memory machine model: work, traffic, balance, timing."""

from .batched import (
    DEFAULT_CHUNK_READS,
    ReadIndex,
    batched_load_balance,
    batched_metrics,
    batched_traffic,
    batched_traffic_oneshot,
    read_chunk_bounds,
    build_read_index,
)
from .hotspot import HotspotProfile, hotspot_profile
from .metrics import LoadBalance, imbalance_factor, load_balance
from .simulate import (
    MachineModel,
    ScheduleTimeline,
    edge_volumes,
    simulate_assignment,
    simulate_schedule,
    simulation_messages,
    topological_order,
    unit_graph,
)
from .scorecard import scorecard, sim_scorecard
from .solve_metrics import solve_balance, solve_traffic, solve_work
from .traffic import (
    TrafficResult,
    access_pairs,
    communication_matrix,
    data_traffic,
    data_traffic_reference,
)
from .work import processor_work, processor_work_reference, total_work, unit_work

__all__ = [
    "ReadIndex",
    "batched_load_balance",
    "batched_metrics",
    "batched_traffic",
    "batched_traffic_oneshot",
    "read_chunk_bounds",
    "DEFAULT_CHUNK_READS",
    "build_read_index",
    "HotspotProfile",
    "hotspot_profile",
    "LoadBalance",
    "imbalance_factor",
    "load_balance",
    "MachineModel",
    "ScheduleTimeline",
    "edge_volumes",
    "simulate_assignment",
    "simulate_schedule",
    "simulation_messages",
    "topological_order",
    "unit_graph",
    "scorecard",
    "sim_scorecard",
    "solve_balance",
    "solve_traffic",
    "solve_work",
    "TrafficResult",
    "access_pairs",
    "communication_matrix",
    "data_traffic",
    "data_traffic_reference",
    "processor_work",
    "processor_work_reference",
    "total_work",
    "unit_work",
]
