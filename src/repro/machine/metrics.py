"""Load-balance metrics (paper §4).

The load-imbalance factor is

    λ = (W_max − W_ave) · N / W_tot = W_max / W_ave − 1,

and with zero dependency-delay idle time the parallel efficiency is
``e = W_ave / W_max``, so ``λ = 1/e − 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LoadBalance", "load_balance", "imbalance_factor"]


@dataclass(frozen=True)
class LoadBalance:
    """Work-distribution summary for one assignment."""

    per_processor: np.ndarray

    @property
    def total(self) -> int:
        return int(self.per_processor.sum())

    @property
    def max(self) -> int:
        return int(self.per_processor.max())

    @property
    def mean(self) -> float:
        return float(self.per_processor.mean())

    @property
    def imbalance(self) -> float:
        """The paper's λ."""
        if self.total == 0:
            return 0.0
        return self.max / self.mean - 1.0

    @property
    def efficiency(self) -> float:
        """Speedup / N, ignoring dependency delays: 1 / (1 + λ)."""
        if self.max == 0:
            return 1.0
        return self.mean / self.max

    @property
    def speedup(self) -> float:
        """W_tot / W_max: sequential over parallel time, no idle time."""
        if self.max == 0:
            return float(len(self.per_processor))
        return self.total / self.max


def load_balance(work_per_processor: np.ndarray) -> LoadBalance:
    return LoadBalance(np.asarray(work_per_processor, dtype=np.int64))


def imbalance_factor(work_per_processor: np.ndarray) -> float:
    return load_balance(work_per_processor).imbalance
