"""Batched multi-assignment metrics kernel.

The paper's experimental grid measures one fixed structure under many
processor counts and mapping schemes.  Traffic accounting is the
per-cell bottleneck: :func:`repro.machine.traffic.data_traffic` dedups
the (processor, source element) read pairs with one ``np.unique`` over
int64 keys of magnitude ``nprocs * nnz`` — and a K-cell sweep pays that
sort K times even though the *source side* of every read is identical
across cells.

This module batches the K evaluations into one pass:

1. the read list (source element, reading element) is materialized once
   per :class:`~repro.symbolic.updates.UpdateSet` and **pre-sorted by
   source** (:class:`ReadIndex`, cached on ``PreparedMatrix``);
2. the K owner arrays, stacked ``(K, nnz)``, are gathered to per-read
   processor ids and offset into disjoint ranges (assignment k occupies
   processors ``offset[k] .. offset[k] + nprocs[k]``), so one stable
   sort on that single small-range key orders all K cells by
   (cell, processor, source) at once — and the key fits ``int16`` for
   any realistic grid, where numpy's stable sort is a radix sort;
3. duplicates are adjacent after the sort, so distinct non-local
   fetches fall out of one segmented-dedup mask and a single
   ``np.bincount``.

At big-tier sizes (nnz(L) and read counts in the millions) the flat
``(K * reads)``-sized sort intermediates dominate peak RSS, so the
kernel streams: the read list is processed in fixed-size chunks whose
boundaries are snapped to *source-run* boundaries
(:func:`read_chunk_bounds`).  ``src`` is ascending, so all reads of one
source element are contiguous — no (processor, source) pair can ever
span two chunks, which makes the per-chunk dedup + bincount accumulation
**bit-identical** to the one-shot pass (kept as
:func:`batched_traffic_oneshot`; the test suite asserts equality on
every bundled matrix).  The chunk size defaults to
:data:`DEFAULT_CHUNK_READS` and can be tuned per call or via
``$REPRO_BATCH_CHUNK_READS``.

The per-assignment paths (:func:`~repro.machine.traffic.data_traffic`,
:func:`~repro.machine.work.processor_work`) are kept as the reference
implementations; the test suite asserts array-for-array identity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..obs import trace as obs
from ..sparse.dtypes import index_dtype
from ..symbolic.updates import UpdateSet
from .metrics import LoadBalance, load_balance
from .traffic import TrafficResult

__all__ = [
    "DEFAULT_CHUNK_READS",
    "ReadIndex",
    "build_read_index",
    "read_chunk_bounds",
    "batched_traffic",
    "batched_traffic_oneshot",
    "batched_load_balance",
    "batched_metrics",
]

#: Reads per chunk of the streaming traffic kernel.  At the default the
#: transient sort arrays stay ~100 MB for K ~ 4 cells regardless of
#: problem size; override per call or with ``$REPRO_BATCH_CHUNK_READS``
#: (0 disables chunking entirely).
DEFAULT_CHUNK_READS = 4_000_000


def _chunk_reads_setting(chunk_reads: int | None) -> int:
    if chunk_reads is not None:
        return int(chunk_reads)
    env = os.environ.get("REPRO_BATCH_CHUNK_READS", "")
    try:
        return int(env)
    except ValueError:
        return DEFAULT_CHUNK_READS


@dataclass(frozen=True)
class ReadIndex:
    """The assignment-invariant read list of a factorization, sorted by
    source element.

    ``src[r]`` is the element id read by the r-th access and
    ``reader[r]`` the element id whose owner performs it (the update's
    target, or the element itself for diagonal/scale reads).  ``src`` is
    ascending, which is what lets the batched kernel finish with a
    stable sort on the processor key alone.
    """

    include_scale: bool
    src: np.ndarray
    reader: np.ndarray

    @property
    def num_reads(self) -> int:
        return len(self.src)


def build_read_index(updates: UpdateSet, include_scale: bool = True) -> ReadIndex:
    """Materialize and source-sort the read list of ``updates``.

    Every pair update reads two off-diagonal sources on behalf of its
    target; ``include_scale`` adds one diagonal read per element,
    matching the flag of :func:`~repro.machine.traffic.data_traffic`.
    """
    edt = index_dtype(updates.pattern.nnz)
    srcs = [updates.source_i, updates.source_j]
    readers = [updates.target, updates.target]
    if include_scale:
        srcs.append(updates.scale_source)
        readers.append(np.arange(updates.pattern.nnz, dtype=edt))
    src = np.concatenate(srcs).astype(edt, copy=False)
    reader = np.concatenate(readers).astype(edt, copy=False)
    order = np.argsort(src, kind="stable")
    return ReadIndex(
        include_scale=include_scale,
        src=np.ascontiguousarray(src[order]),
        reader=np.ascontiguousarray(reader[order]),
    )


def read_chunk_bounds(src: np.ndarray, chunk_reads: int) -> list[int]:
    """Chunk boundaries over a source-sorted read list.

    Returns ascending offsets ``[0, ..., len(src)]`` where every chunk
    is at most ``chunk_reads`` long *except* when a single source's run
    of reads is itself longer — runs are never split, because the
    per-chunk dedup is only correct while all reads of one source stay
    in one chunk.  ``chunk_reads <= 0`` means one chunk (the one-shot
    pass).
    """
    reads = len(src)
    if chunk_reads <= 0 or reads <= chunk_reads:
        return [0, reads] if reads else [0]
    bounds = [0]
    while bounds[-1] < reads:
        cut = min(bounds[-1] + chunk_reads, reads)
        if cut < reads:
            # Snap back to the start of the source run straddling the
            # cut; if that run began at (or before) the chunk start,
            # the run is longer than the budget — take it whole.
            run_start = int(np.searchsorted(src, src[cut], side="left"))
            if run_start > bounds[-1]:
                cut = run_start
            else:
                cut = int(np.searchsorted(src, src[bounds[-1]], side="right"))
        bounds.append(int(cut))
    return bounds


def _stack_owners(owners) -> np.ndarray:
    owners = list(owners)
    if not owners:
        return np.empty((0, 0), dtype=np.int32)
    # Owner values are processor ids — far below 2^31 — so the stacked
    # (K, nnz) array is kept at int32 regardless of the input dtypes.
    arr = np.stack([np.asarray(o, dtype=np.int32) for o in owners])
    if arr.ndim != 2:
        raise ValueError("owners must stack to a (K, nnz) array")
    return arr


def _proc_key_dtype(total_procs: int):
    """Smallest signed dtype holding the offset processor key; int16
    keeps numpy's stable sort on the radix path."""
    if total_procs <= np.iinfo(np.int16).max:
        return np.int16
    if total_procs <= np.iinfo(np.int32).max:
        return np.int32
    return np.int64


def _validated_inputs(
    updates: UpdateSet,
    owners,
    nprocs: Sequence[int],
    read_index: ReadIndex | None,
    include_scale: bool,
):
    owners = _stack_owners(owners)
    nprocs = np.asarray(nprocs, dtype=np.int64)
    if len(nprocs) != len(owners):
        raise ValueError("need one processor count per owner array")
    if read_index is None:
        read_index = build_read_index(updates, include_scale)
    elif read_index.include_scale != include_scale:
        raise ValueError(
            "read index was built with include_scale="
            f"{read_index.include_scale}, requested {include_scale}"
        )
    return owners, nprocs, read_index


def _chunk_counts(
    shifted: np.ndarray,
    owners: np.ndarray,
    offsets: np.ndarray,
    read_index: ReadIndex,
    lo: int,
    hi: int,
    total_procs: int,
) -> np.ndarray:
    """Distinct non-local fetch counts contributed by reads ``lo:hi``.

    One small-range key per read per cell: cell k's processors occupy
    the disjoint range [offsets[k], offsets[k+1]), so sorting the flat
    key groups by (cell, processor) — and the stable sort keeps the
    pre-sorted sources ascending inside every group.  Offsetting and
    narrowing before the (K, reads) gather keeps the big intermediate
    at the key dtype instead of int64.
    """
    k_count = len(shifted)
    flat = shifted[:, read_index.reader[lo:hi]].ravel()
    order = np.argsort(flat, kind="stable")
    p = flat[order]
    s = np.tile(read_index.src[lo:hi], k_count)[order]

    first = np.empty(len(p), dtype=bool)
    first[0] = True
    first[1:] = (p[1:] != p[:-1]) | (s[1:] != s[:-1])

    # Only distinct (processor, source) pairs can count, so the cell
    # recovery (ranges are disjoint) and the local-read test — fetches
    # of elements the reader owns — run on the deduped rows alone.
    p_f = p[first].astype(np.int64)
    s_f = s[first]
    k_of = np.searchsorted(offsets[1:], p_f, side="right")
    nonlocal_mask = owners[k_of, s_f] != (p_f - offsets[k_of])
    return np.bincount(p_f[nonlocal_mask], minlength=total_procs)


def batched_traffic(
    updates: UpdateSet,
    owners,
    nprocs: Sequence[int],
    read_index: ReadIndex | None = None,
    include_scale: bool = True,
    chunk_reads: int | None = None,
) -> list[TrafficResult]:
    """Distinct non-local fetches per processor for K owner arrays at
    once; value-identical to K :func:`data_traffic` calls.

    ``owners`` stacks to ``(K, nnz)`` and ``nprocs[k]`` is the processor
    count of assignment k (the counts may differ across k).  The read
    list is streamed in source-aligned chunks of at most ``chunk_reads``
    reads (default :data:`DEFAULT_CHUNK_READS`, overridable via
    ``$REPRO_BATCH_CHUNK_READS``; 0 forces one chunk).  Chunk boundaries
    never split a source run, so the accumulated counts are bit-identical
    to :func:`batched_traffic_oneshot` at every chunk size.
    """
    owners, nprocs, read_index = _validated_inputs(
        updates, owners, nprocs, read_index, include_scale
    )
    k_count = len(owners)
    offsets = np.concatenate([[0], np.cumsum(nprocs)])
    total_procs = int(offsets[-1])
    if read_index.num_reads == 0 or k_count == 0:
        return [
            TrafficResult(np.zeros(int(p), dtype=np.int64)) for p in nprocs
        ]
    shifted = (owners + offsets[:-1, None]).astype(
        _proc_key_dtype(total_procs), copy=False
    )
    bounds = read_chunk_bounds(
        read_index.src, _chunk_reads_setting(chunk_reads)
    )
    counts = np.zeros(total_procs, dtype=np.int64)
    for lo, hi in zip(bounds, bounds[1:]):
        counts += _chunk_counts(
            shifted, owners, offsets, read_index, lo, hi, total_procs
        )
    obs.counter("machine.batched.cells", k_count)
    obs.counter("machine.batched.chunks", max(0, len(bounds) - 1))
    return [
        TrafficResult(counts[offsets[k] : offsets[k + 1]].astype(np.int64))
        for k in range(k_count)
    ]


def batched_traffic_oneshot(
    updates: UpdateSet,
    owners,
    nprocs: Sequence[int],
    read_index: ReadIndex | None = None,
    include_scale: bool = True,
) -> list[TrafficResult]:
    """The unchunked reference pass: one sort over the whole read list.

    Kept as the identity baseline the chunked kernel is asserted
    against (and the fastest choice when the flat ``K * reads``
    intermediates comfortably fit in memory).
    """
    owners, nprocs, read_index = _validated_inputs(
        updates, owners, nprocs, read_index, include_scale
    )
    k_count = len(owners)
    offsets = np.concatenate([[0], np.cumsum(nprocs)])
    total_procs = int(offsets[-1])
    reads = read_index.num_reads
    if reads == 0 or k_count == 0:
        return [
            TrafficResult(np.zeros(int(p), dtype=np.int64)) for p in nprocs
        ]
    shifted = (owners + offsets[:-1, None]).astype(
        _proc_key_dtype(total_procs), copy=False
    )
    counts = _chunk_counts(
        shifted, owners, offsets, read_index, 0, reads, total_procs
    )
    obs.counter("machine.batched.cells", k_count)
    return [
        TrafficResult(counts[offsets[k] : offsets[k + 1]].astype(np.int64))
        for k in range(k_count)
    ]


def batched_load_balance(
    updates: UpdateSet, owners, nprocs: Sequence[int]
) -> list[LoadBalance]:
    """Owner-computes work distribution for K owner arrays; one weighted
    bincount per cell, value-identical to K :func:`processor_work` +
    :func:`load_balance` calls.

    The per-cell loop (rather than one bincount over a flattened
    ``(K, nnz)`` float64 broadcast) keeps the transient at ``nnz``
    doubles instead of ``K * nnz`` — the summation order within each
    cell is unchanged, so the results are bit-identical.
    """
    owners = _stack_owners(owners)
    nprocs = np.asarray(nprocs, dtype=np.int64)
    if len(nprocs) != len(owners):
        raise ValueError("need one processor count per owner array")
    if len(owners) == 0:
        return []
    ew = updates.element_work().astype(np.float64)
    return [
        load_balance(
            np.bincount(
                owners[k], weights=ew, minlength=int(nprocs[k])
            ).astype(np.int64)
        )
        for k in range(len(owners))
    ]


def batched_metrics(
    updates: UpdateSet,
    assignments,
    read_index: ReadIndex | None = None,
    include_scale: bool = True,
    chunk_reads: int | None = None,
) -> list[tuple[TrafficResult, LoadBalance]]:
    """Traffic and load balance for K assignments of one structure.

    All assignments must map the same pattern the updates were
    enumerated on; their processor counts may differ.  ``chunk_reads``
    bounds the traffic kernel's per-chunk working set (see
    :func:`batched_traffic`).
    """
    assignments = list(assignments)
    nnz = updates.pattern.nnz
    for a in assignments:
        if len(a.owner_of_element) != nnz:
            raise ValueError(
                f"assignment {a.scheme!r} maps {len(a.owner_of_element)} "
                f"elements, updates cover {nnz}"
            )
    owners = [a.owner_of_element for a in assignments]
    nprocs = [a.nprocs for a in assignments]
    with obs.span("machine.batched_metrics", cells=len(assignments)):
        traffic = batched_traffic(
            updates, owners, nprocs, read_index, include_scale,
            chunk_reads=chunk_reads,
        )
        balance = batched_load_balance(updates, owners, nprocs)
    return list(zip(traffic, balance))
