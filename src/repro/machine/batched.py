"""Batched multi-assignment metrics kernel.

The paper's experimental grid measures one fixed structure under many
processor counts and mapping schemes.  Traffic accounting is the
per-cell bottleneck: :func:`repro.machine.traffic.data_traffic` dedups
the (processor, source element) read pairs with one ``np.unique`` over
int64 keys of magnitude ``nprocs * nnz`` — and a K-cell sweep pays that
sort K times even though the *source side* of every read is identical
across cells.

This module batches the K evaluations into one pass:

1. the read list (source element, reading element) is materialized once
   per :class:`~repro.symbolic.updates.UpdateSet` and **pre-sorted by
   source** (:class:`ReadIndex`, cached on ``PreparedMatrix``);
2. the K owner arrays, stacked ``(K, nnz)``, are gathered to per-read
   processor ids and offset into disjoint ranges (assignment k occupies
   processors ``offset[k] .. offset[k] + nprocs[k]``), so one stable
   sort on that single small-range key orders all K cells by
   (cell, processor, source) at once — and the key fits ``int16`` for
   any realistic grid, where numpy's stable sort is a radix sort;
3. duplicates are adjacent after the sort, so distinct non-local
   fetches fall out of one segmented-dedup mask and a single
   ``np.bincount``.

The per-assignment paths (:func:`~repro.machine.traffic.data_traffic`,
:func:`~repro.machine.work.processor_work`) are kept as the reference
implementations; the test suite asserts array-for-array identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..obs import trace as obs
from ..symbolic.updates import UpdateSet
from .metrics import LoadBalance, load_balance
from .traffic import TrafficResult

__all__ = [
    "ReadIndex",
    "build_read_index",
    "batched_traffic",
    "batched_load_balance",
    "batched_metrics",
]


@dataclass(frozen=True)
class ReadIndex:
    """The assignment-invariant read list of a factorization, sorted by
    source element.

    ``src[r]`` is the element id read by the r-th access and
    ``reader[r]`` the element id whose owner performs it (the update's
    target, or the element itself for diagonal/scale reads).  ``src`` is
    ascending, which is what lets the batched kernel finish with a
    stable sort on the processor key alone.
    """

    include_scale: bool
    src: np.ndarray
    reader: np.ndarray

    @property
    def num_reads(self) -> int:
        return len(self.src)


def build_read_index(updates: UpdateSet, include_scale: bool = True) -> ReadIndex:
    """Materialize and source-sort the read list of ``updates``.

    Every pair update reads two off-diagonal sources on behalf of its
    target; ``include_scale`` adds one diagonal read per element,
    matching the flag of :func:`~repro.machine.traffic.data_traffic`.
    """
    srcs = [updates.source_i, updates.source_j]
    readers = [updates.target, updates.target]
    if include_scale:
        srcs.append(updates.scale_source)
        readers.append(np.arange(updates.pattern.nnz, dtype=np.int64))
    src = np.concatenate(srcs)
    reader = np.concatenate(readers)
    order = np.argsort(src, kind="stable")
    return ReadIndex(
        include_scale=include_scale,
        src=np.ascontiguousarray(src[order]),
        reader=np.ascontiguousarray(reader[order]),
    )


def _stack_owners(owners) -> np.ndarray:
    owners = list(owners)
    if not owners:
        return np.empty((0, 0), dtype=np.int64)
    arr = np.stack([np.asarray(o, dtype=np.int64) for o in owners])
    if arr.ndim != 2:
        raise ValueError("owners must stack to a (K, nnz) array")
    return arr


def _proc_key_dtype(total_procs: int):
    """Smallest signed dtype holding the offset processor key; int16
    keeps numpy's stable sort on the radix path."""
    if total_procs <= np.iinfo(np.int16).max:
        return np.int16
    if total_procs <= np.iinfo(np.int32).max:
        return np.int32
    return np.int64


def batched_traffic(
    updates: UpdateSet,
    owners,
    nprocs: Sequence[int],
    read_index: ReadIndex | None = None,
    include_scale: bool = True,
) -> list[TrafficResult]:
    """Distinct non-local fetches per processor for K owner arrays at
    once; value-identical to K :func:`data_traffic` calls.

    ``owners`` stacks to ``(K, nnz)`` and ``nprocs[k]`` is the processor
    count of assignment k (the counts may differ across k).
    """
    owners = _stack_owners(owners)
    nprocs = np.asarray(nprocs, dtype=np.int64)
    if len(nprocs) != len(owners):
        raise ValueError("need one processor count per owner array")
    if read_index is None:
        read_index = build_read_index(updates, include_scale)
    elif read_index.include_scale != include_scale:
        raise ValueError(
            "read index was built with include_scale="
            f"{read_index.include_scale}, requested {include_scale}"
        )
    k_count = len(owners)
    offsets = np.concatenate([[0], np.cumsum(nprocs)])
    total_procs = int(offsets[-1])
    reads = read_index.num_reads
    if reads == 0 or k_count == 0:
        return [
            TrafficResult(np.zeros(int(p), dtype=np.int64)) for p in nprocs
        ]

    # One small-range key per read per cell: cell k's processors occupy
    # the disjoint range [offsets[k], offsets[k+1]), so sorting the flat
    # key groups by (cell, processor) — and the stable sort keeps the
    # pre-sorted sources ascending inside every group.  Offsetting and
    # narrowing before the (K, reads) gather keeps the big intermediate
    # at the key dtype instead of int64.
    shifted = (owners + offsets[:-1, None]).astype(
        _proc_key_dtype(total_procs), copy=False
    )
    flat = shifted[:, read_index.reader].ravel()
    order = np.argsort(flat, kind="stable")
    p = flat[order]
    s = np.tile(read_index.src, k_count)[order]

    first = np.empty(len(p), dtype=bool)
    first[0] = True
    first[1:] = (p[1:] != p[:-1]) | (s[1:] != s[:-1])

    # Only distinct (processor, source) pairs can count, so the cell
    # recovery (ranges are disjoint) and the local-read test — fetches
    # of elements the reader owns — run on the deduped rows alone.
    p_f = p[first].astype(np.int64)
    s_f = s[first]
    k_of = np.searchsorted(offsets[1:], p_f, side="right")
    nonlocal_mask = owners[k_of, s_f] != (p_f - offsets[k_of])
    counts = np.bincount(p_f[nonlocal_mask], minlength=total_procs)
    obs.counter("machine.batched.cells", k_count)
    return [
        TrafficResult(counts[offsets[k] : offsets[k + 1]].astype(np.int64))
        for k in range(k_count)
    ]


def batched_load_balance(
    updates: UpdateSet, owners, nprocs: Sequence[int]
) -> list[LoadBalance]:
    """Owner-computes work distribution for K owner arrays in one
    weighted bincount; value-identical to K :func:`processor_work` +
    :func:`load_balance` calls."""
    owners = _stack_owners(owners)
    nprocs = np.asarray(nprocs, dtype=np.int64)
    if len(nprocs) != len(owners):
        raise ValueError("need one processor count per owner array")
    if len(owners) == 0:
        return []
    offsets = np.concatenate([[0], np.cumsum(nprocs)])
    ew = updates.element_work().astype(np.float64)
    work = np.bincount(
        (owners + offsets[:-1, None]).ravel(),
        weights=np.broadcast_to(ew, owners.shape).ravel(),
        minlength=int(offsets[-1]),
    )
    return [
        load_balance(work[offsets[k] : offsets[k + 1]].astype(np.int64))
        for k in range(len(owners))
    ]


def batched_metrics(
    updates: UpdateSet,
    assignments,
    read_index: ReadIndex | None = None,
    include_scale: bool = True,
) -> list[tuple[TrafficResult, LoadBalance]]:
    """Traffic and load balance for K assignments of one structure.

    All assignments must map the same pattern the updates were
    enumerated on; their processor counts may differ.
    """
    assignments = list(assignments)
    nnz = updates.pattern.nnz
    for a in assignments:
        if len(a.owner_of_element) != nnz:
            raise ValueError(
                f"assignment {a.scheme!r} maps {len(a.owner_of_element)} "
                f"elements, updates cover {nnz}"
            )
    owners = [a.owner_of_element for a in assignments]
    nprocs = [a.nprocs for a in assignments]
    with obs.span("machine.batched_metrics", cells=len(assignments)):
        traffic = batched_traffic(updates, owners, nprocs, read_index, include_scale)
        balance = batched_load_balance(updates, owners, nprocs)
    return list(zip(traffic, balance))
