"""Work and traffic accounting for the triangular-solve phase.

The paper's conclusion notes that "in real applications factoring is
only a part of the overall solution ... other computations such as
triangular solves can provide additional flexibility in balancing the
load which is not taken into account here".  This module extends the §4
cost model to the solves so that claim can be quantified:

* **Work** — each off-diagonal nonzero L[i, j] costs one multiply-add
  (charged to its owner), each column one division (charged to the
  diagonal's owner).  One forward plus one backward solve doubles it.
* **Traffic** — owner-computes with the paper's fetch-once rule:
  the owner of element (i, j) reads the solution value x_j (held by the
  owner of the diagonal (j, j)); the accumulator of row i (held by the
  owner of (i, i)) reads one aggregated contribution per remote
  contributing processor.  The backward solve is symmetric with the
  roles of i and j exchanged.
"""

from __future__ import annotations

import numpy as np

from ..core.assignment import Assignment
from .metrics import LoadBalance, load_balance
from .traffic import TrafficResult

__all__ = ["solve_work", "solve_traffic", "solve_balance"]


def _offdiag(assignment: Assignment):
    pattern = assignment.pattern
    cols = pattern.element_cols()
    off = pattern.rowidx != cols
    return pattern, pattern.rowidx[off], cols[off], np.nonzero(off)[0]


def solve_work(assignment: Assignment, both_sweeps: bool = True) -> np.ndarray:
    """Work per processor for the triangular solve(s).

    One unit per off-diagonal multiply-add, one per diagonal division;
    ``both_sweeps`` charges the forward and the backward solve.
    """
    pattern = assignment.pattern
    owner = assignment.owner_of_element
    per_proc = np.bincount(owner, minlength=assignment.nprocs).astype(np.int64)
    return 2 * per_proc if both_sweeps else per_proc


def solve_balance(assignment: Assignment, both_sweeps: bool = True) -> LoadBalance:
    return load_balance(solve_work(assignment, both_sweeps))


def _sweep_traffic(
    owner: np.ndarray,
    diag_owner_of_col: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    eids: np.ndarray,
    n: int,
    nprocs: int,
) -> np.ndarray:
    """Distinct non-local fetches for one forward sweep.

    ``rows``/``cols`` are the off-diagonal coordinates; element (i, j)'s
    owner reads x_j; row i's accumulator owner reads one aggregate per
    remote contributing processor.
    """
    elem_owner = owner[eids]
    # Reads of solution values: (element owner, source column) pairs.
    key = np.unique(elem_owner.astype(np.int64) * np.int64(n) + cols)
    proc = key // n
    src_col = key % n
    nonlocal_x = proc != diag_owner_of_col[src_col]
    per_proc = np.bincount(proc[nonlocal_x], minlength=nprocs)

    # Aggregated contributions: (accumulator owner, row, contributing proc).
    acc_owner = diag_owner_of_col[rows]
    contrib_key = np.unique(
        (acc_owner.astype(np.int64) * np.int64(n) + rows) * np.int64(nprocs)
        + elem_owner
    )
    a_owner = contrib_key // (n * nprocs)
    contributing = contrib_key % nprocs
    remote = a_owner != contributing
    per_proc = per_proc + np.bincount(a_owner[remote], minlength=nprocs)
    return per_proc.astype(np.int64)


def solve_traffic(assignment: Assignment, both_sweeps: bool = True) -> TrafficResult:
    """Distinct-fetch traffic of the triangular solve phase."""
    pattern, rows, cols, eids = _offdiag(assignment)
    owner = assignment.owner_of_element
    diag_owner = owner[pattern.indptr[:-1]]
    n = pattern.n
    forward = _sweep_traffic(
        owner, diag_owner, rows, cols, eids, n, assignment.nprocs
    )
    if not both_sweeps:
        return TrafficResult(forward)
    # Backward sweep (Lᵀ): element (i, j) contributes L[i,j]·x_i to the
    # dot product of column j — swap the roles of rows and columns.
    backward = _sweep_traffic(
        owner, diag_owner, cols, rows, eids, n, assignment.nprocs
    )
    return TrafficResult(forward + backward)
