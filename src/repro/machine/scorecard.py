"""One-call scorecard for an assignment: every metric in one dict."""

from __future__ import annotations

from ..core.assignment import Assignment
from ..symbolic.updates import UpdateSet
from .hotspot import hotspot_profile
from .metrics import load_balance
from .solve_metrics import solve_balance, solve_traffic
from .traffic import data_traffic
from .work import processor_work

__all__ = ["scorecard"]


def scorecard(assignment: Assignment, updates: UpdateSet) -> dict:
    """All headline metrics of an assignment as a flat dict."""
    traffic = data_traffic(assignment, updates)
    balance = load_balance(processor_work(assignment, updates))
    hot = hotspot_profile(assignment, updates)
    s_traffic = solve_traffic(assignment)
    s_balance = solve_balance(assignment)
    return {
        "scheme": assignment.scheme,
        "nprocs": assignment.nprocs,
        "factor_traffic_total": traffic.total,
        "factor_traffic_mean": traffic.mean,
        "factor_traffic_max": traffic.max,
        "factor_work_total": balance.total,
        "factor_work_max": balance.max,
        "factor_imbalance": balance.imbalance,
        "factor_efficiency": balance.efficiency,
        "solve_traffic_total": s_traffic.total,
        "solve_imbalance": s_balance.imbalance,
        "hotspot_factor": hot.hotspot_factor,
        "mean_partners": hot.mean_partners,
        "pairs_for_90pct_traffic": hot.pairs_for_fraction(0.9),
    }
