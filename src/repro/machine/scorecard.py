"""One-call scorecard for an assignment: every metric in one dict."""

from __future__ import annotations

from ..core.assignment import Assignment
from ..symbolic.updates import UpdateSet
from .hotspot import hotspot_profile
from .metrics import load_balance
from .solve_metrics import solve_balance, solve_traffic
from .traffic import data_traffic
from .work import processor_work

__all__ = ["scorecard", "sim_scorecard"]


def scorecard(assignment: Assignment, updates: UpdateSet) -> dict:
    """All headline metrics of an assignment as a flat dict."""
    traffic = data_traffic(assignment, updates)
    balance = load_balance(processor_work(assignment, updates))
    hot = hotspot_profile(assignment, updates)
    s_traffic = solve_traffic(assignment)
    s_balance = solve_balance(assignment)
    return {
        "scheme": assignment.scheme,
        "nprocs": assignment.nprocs,
        "factor_traffic_total": traffic.total,
        "factor_traffic_mean": traffic.mean,
        "factor_traffic_max": traffic.max,
        "factor_work_total": balance.total,
        "factor_work_max": balance.max,
        "factor_imbalance": balance.imbalance,
        "factor_efficiency": balance.efficiency,
        "solve_traffic_total": s_traffic.total,
        "solve_imbalance": s_balance.imbalance,
        "hotspot_factor": hot.hotspot_factor,
        "mean_partners": hot.mean_partners,
        "pairs_for_90pct_traffic": hot.pairs_for_fraction(0.9),
    }


def sim_scorecard(assignment: Assignment, updates: UpdateSet) -> dict:
    """The static scorecard plus the simulated-time view of the same
    assignment: makespan, busy/wait/idle split, critical-path shape and
    message-ledger volume from one :class:`~repro.obs.simtime.SimRun`.

    ``sim_message_bytes`` equals ``factor_traffic_total`` by
    construction (the ledger dedups exactly like the traffic metric) —
    kept as separate keys so the identity stays visible in output."""
    from .simulate import simulate_assignment

    out = scorecard(assignment, updates)
    timeline, run = simulate_assignment(assignment, updates)
    pt = run.proc_times()
    cp = run.critical_path()
    out.update({
        "sim_makespan": timeline.makespan,
        "sim_idle_fraction": timeline.idle_fraction,
        "sim_messages": len(run.messages),
        "sim_message_bytes": run.total_message_bytes(),
        "sim_wait_max": float(pt.wait.max()),
        "sim_cp_units": int(cp.units.size),
        "sim_cp_wait_fraction": (cp.wait / cp.length) if cp.length > 0 else 0.0,
    })
    return out
