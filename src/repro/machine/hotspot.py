"""Hot-spot analysis of the communication pattern.

The paper: "Wrap-mappings usually lead to processors communicating with
a large number of other processors leading to a large amount of data
traffic and possibly to hot-spots.  However, in block-based schemes,
most of the communication among blocks ... can mostly be confined to
small groups of processors."  These metrics quantify that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..symbolic.updates import UpdateSet
from .traffic import communication_matrix

__all__ = ["HotspotProfile", "hotspot_profile"]


@dataclass(frozen=True)
class HotspotProfile:
    """Concentration statistics of a processor-pair traffic matrix."""

    matrix: np.ndarray

    @property
    def nprocs(self) -> int:
        return self.matrix.shape[0]

    @property
    def total(self) -> int:
        return int(self.matrix.sum())

    @property
    def active_pairs(self) -> int:
        """Ordered processor pairs with any traffic."""
        return int((self.matrix > 0).sum())

    @property
    def mean_partners(self) -> float:
        """Average number of distinct senders each processor reads from."""
        return float((self.matrix > 0).sum(axis=1).mean())

    @property
    def max_inbound(self) -> int:
        """Heaviest per-processor inbound volume (the hot spot)."""
        return int(self.matrix.sum(axis=1).max()) if self.total else 0

    @property
    def max_outbound(self) -> int:
        """Heaviest per-processor outbound volume (most-read owner)."""
        return int(self.matrix.sum(axis=0).max()) if self.total else 0

    @property
    def hotspot_factor(self) -> float:
        """max outbound / mean outbound — 1.0 is perfectly even demand.

        The 'outbound' direction is the contended one: many processors
        pulling from one owner is the hot spot the paper warns about.
        """
        if self.total == 0:
            return 1.0
        col_sums = self.matrix.sum(axis=0)
        return float(col_sums.max() / col_sums.mean())

    def pairs_for_fraction(self, fraction: float = 0.9) -> int:
        """Number of heaviest ordered pairs covering ``fraction`` of the
        traffic (smaller = more concentrated/local communication)."""
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        if self.total == 0:
            return 0
        flat = np.sort(self.matrix.ravel())[::-1]
        cum = np.cumsum(flat)
        return int(np.searchsorted(cum, fraction * cum[-1])) + 1


def hotspot_profile(
    assignment: Assignment, updates: UpdateSet, include_scale: bool = True
) -> HotspotProfile:
    """Hot-spot profile of an assignment's communication matrix."""
    return HotspotProfile(
        communication_matrix(assignment, updates, include_scale=include_scale)
    )
