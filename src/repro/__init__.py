"""repro — reproduction of Venugopal & Naik (Supercomputing 1991):
*Effects of Partitioning and Scheduling Sparse Matrix Factorization on
Communication and Load Balance*.

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.sparse`   — structures, I/O, generators, test matrices
* :mod:`repro.ordering` — MMD / MD / RCM / ND fill-reducing orderings
* :mod:`repro.symbolic` — elimination tree, symbolic factorization
* :mod:`repro.numeric`  — numerical Cholesky and triangular solves
* :mod:`repro.core`     — the block partitioner, scheduler, wrap baseline
* :mod:`repro.machine`  — work / traffic / load-balance accounting
* :mod:`repro.mpsim`    — simulated message-passing runtime
* :mod:`repro.obs`      — tracing/metrics layer (spans, counters, exports)
* :mod:`repro.analysis` — experiment harness regenerating the paper's tables
"""

from . import obs
from .core import (
    MappingResult,
    PreparedMatrix,
    block_mapping,
    prepare,
    wrap_mapping,
)
from .sparse import PAPER_MATRICES, load

__version__ = "1.0.0"

__all__ = [
    "MappingResult",
    "PreparedMatrix",
    "block_mapping",
    "prepare",
    "wrap_mapping",
    "PAPER_MATRICES",
    "load",
    "obs",
    "__version__",
]
