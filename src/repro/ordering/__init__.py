"""Fill-reducing orderings: MMD (the paper's choice), MD, RCM, ND."""

from .amd import approximate_minimum_degree
from .mmd import minimum_degree, multiple_minimum_degree
from .nested_dissection import nested_dissection
from .perm import (
    identity_permutation,
    invert_permutation,
    is_permutation,
    random_permutation,
)
from .rcm import bandwidth, pseudo_peripheral_node, reverse_cuthill_mckee

__all__ = [
    "approximate_minimum_degree",
    "minimum_degree",
    "multiple_minimum_degree",
    "nested_dissection",
    "identity_permutation",
    "invert_permutation",
    "is_permutation",
    "random_permutation",
    "bandwidth",
    "pseudo_peripheral_node",
    "reverse_cuthill_mckee",
]

ORDERINGS = {
    "natural": lambda g: identity_permutation(g.n),
    "mmd": multiple_minimum_degree,
    "md": minimum_degree,
    "amd": approximate_minimum_degree,
    "rcm": reverse_cuthill_mckee,
    "nd": nested_dissection,
}
"""Name -> callable registry used by the pipeline and the CLI."""


def order(graph, method: str = "mmd"):
    """Order ``graph`` with the named method from :data:`ORDERINGS`."""
    try:
        fn = ORDERINGS[method]
    except KeyError:
        raise KeyError(
            f"unknown ordering {method!r}; available: {', '.join(ORDERINGS)}"
        ) from None
    return fn(graph)
