"""Fill-reducing orderings: MMD (the paper's choice), MD, RCM, ND."""

from .amd import approximate_minimum_degree
from .mmd import (
    minimum_degree,
    multiple_minimum_degree,
    multiple_minimum_degree_reference,
)
from .nested_dissection import nested_dissection
from .perm import (
    identity_permutation,
    invert_permutation,
    is_permutation,
    random_permutation,
)
from .rcm import bandwidth, pseudo_peripheral_node, reverse_cuthill_mckee

__all__ = [
    "approximate_minimum_degree",
    "minimum_degree",
    "multiple_minimum_degree",
    "multiple_minimum_degree_reference",
    "nested_dissection",
    "identity_permutation",
    "invert_permutation",
    "is_permutation",
    "random_permutation",
    "bandwidth",
    "pseudo_peripheral_node",
    "reverse_cuthill_mckee",
]

ORDERINGS = {
    "natural": lambda g: identity_permutation(g.n),
    "mmd": multiple_minimum_degree,
    "md": minimum_degree,
    "amd": approximate_minimum_degree,
    "rcm": reverse_cuthill_mckee,
    "nd": nested_dissection,
}
"""Name -> callable registry used by the pipeline and the CLI."""

ORDERING_IMPL_VERSION = {
    "natural": 1,
    "mmd": 2,  # 2: bitset/arena quotient-graph rewrite of the set-based MMD
    "md": 1,
    "amd": 1,
    "rcm": 1,
    "nd": 1,
}
"""Per-ordering implementation version, part of the ``prepare()`` disk
cache key: bump an entry whenever that ordering's implementation changes,
so warm caches written by the old code are invalidated instead of
silently reused."""


def order(graph, method: str = "mmd"):
    """Order ``graph`` with the named method from :data:`ORDERINGS`."""
    try:
        fn = ORDERINGS[method]
    except KeyError:
        raise KeyError(
            f"unknown ordering {method!r}; available: {', '.join(ORDERINGS)}"
        ) from None
    return fn(graph)
