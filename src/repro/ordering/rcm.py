"""Reverse Cuthill-McKee ordering (bandwidth/profile reduction)."""

from __future__ import annotations

from collections import deque

import numpy as np

from ..sparse.pattern import SymmetricGraph

__all__ = ["reverse_cuthill_mckee", "pseudo_peripheral_node", "bandwidth"]


def pseudo_peripheral_node(graph: SymmetricGraph, start: int) -> int:
    """George-Liu pseudo-peripheral node heuristic from ``start``.

    Repeatedly moves to a minimum-degree node in the deepest BFS level
    until the eccentricity stops growing.
    """
    node = start
    last_ecc = -1
    while True:
        levels = _bfs_levels(graph, node)
        ecc = int(levels.max())
        if ecc <= last_ecc:
            return node
        last_ecc = ecc
        frontier = np.nonzero(levels == ecc)[0]
        deg = graph.degree()
        node = int(frontier[np.argmin(deg[frontier])])


def _bfs_levels(graph: SymmetricGraph, start: int) -> np.ndarray:
    levels = np.full(graph.n, -1, dtype=np.int64)
    levels[start] = 0
    q = deque([start])
    while q:
        v = q.popleft()
        for u in graph.neighbors(v):
            if levels[u] < 0:
                levels[u] = levels[v] + 1
                q.append(int(u))
    return levels


def reverse_cuthill_mckee(graph: SymmetricGraph) -> np.ndarray:
    """RCM ordering; handles disconnected graphs component by component."""
    n = graph.n
    deg = graph.degree()
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    for seed in range(n):
        if visited[seed]:
            continue
        root = pseudo_peripheral_node(_component_view(graph, seed, visited), seed) \
            if deg[seed] > 0 else seed
        visited[root] = True
        q = deque([root])
        order.append(root)
        while q:
            v = q.popleft()
            nbrs = [int(u) for u in graph.neighbors(v) if not visited[u]]
            nbrs.sort(key=lambda u: (deg[u], u))
            for u in nbrs:
                visited[u] = True
                order.append(u)
                q.append(u)
    return np.asarray(order[::-1], dtype=np.int64)


def _component_view(graph: SymmetricGraph, seed: int, visited: np.ndarray) -> SymmetricGraph:
    # The pseudo-peripheral search never leaves seed's component, and BFS
    # levels of other components stay -1 (never the max), so the full
    # graph works as the view.
    return graph


def bandwidth(graph: SymmetricGraph, perm=None) -> int:
    """Half bandwidth max|i-j| over edges of the (permuted) structure."""
    u, v = graph.edges()
    if len(u) == 0:
        return 0
    if perm is not None:
        inv = np.empty(graph.n, dtype=np.int64)
        inv[np.asarray(perm, dtype=np.int64)] = np.arange(graph.n)
        u, v = inv[u], inv[v]
    return int(np.abs(u - v).max())
