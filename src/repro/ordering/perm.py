"""Permutation utilities shared by the ordering algorithms.

Convention: an ordering is an array ``perm`` with ``perm[k]`` = the
*original* index of the variable eliminated k-th.  The permuted matrix is
``B[k, l] = A[perm[k], perm[l]]``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["is_permutation", "invert_permutation", "identity_permutation", "random_permutation"]


def is_permutation(perm, n: int | None = None) -> bool:
    """True if ``perm`` is a permutation of 0..len(perm)-1 (of 0..n-1 if given)."""
    perm = np.asarray(perm)
    m = len(perm) if n is None else n
    if len(perm) != m:
        return False
    seen = np.zeros(m, dtype=bool)
    for p in perm:
        if not (0 <= p < m) or seen[p]:
            return False
        seen[p] = True
    return True


def invert_permutation(perm) -> np.ndarray:
    """``inv[old] = new`` for ``perm[new] = old``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty(len(perm), dtype=np.int64)
    inv[perm] = np.arange(len(perm), dtype=np.int64)
    return inv


def identity_permutation(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def random_permutation(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)
