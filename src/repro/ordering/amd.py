"""Approximate minimum degree (AMD) ordering.

A quotient-graph minimum-degree ordering in the style of Amestoy, Davis
and Duff (1996): eliminated pivots become *elements* whose variable
lists stand in for the fill cliques, adjacent elements are absorbed on
elimination, indistinguishable supervariables are merged, and selection
uses the AMD approximate-degree upper bound

    d_i = min( n - k,
               d_i^prev + |Lp \\ i|,
               |A_i \\ i| + |Lp \\ i| + Σ_{e in E_i, e != p} |L_e \\ Lp| )

(all sizes weighted by supervariable multiplicity).  AMD postdates the
paper (which uses Liu's MMD); it is included as the modern comparison
ordering for the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..sparse.pattern import SymmetricGraph

__all__ = ["approximate_minimum_degree"]


def approximate_minimum_degree(graph: SymmetricGraph) -> np.ndarray:
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    adj: list[set[int]] = [set(graph.neighbors(i).tolist()) for i in range(n)]
    elems: list[set[int]] = [set() for _ in range(n)]  # elements adjacent to var
    elem_vars: dict[int, set[int]] = {}  # element id (its pivot) -> variable list
    nv = np.ones(n, dtype=np.int64)  # supervariable weights
    members: list[list[int]] = [[i] for i in range(n)]
    alive = np.ones(n, dtype=bool)

    def wsize(s: set[int]) -> int:
        return int(sum(nv[v] for v in s))

    # Initial (exact) external degrees.
    degree = np.array([wsize(adj[i]) for i in range(n)], dtype=np.int64)

    perm: list[int] = []
    remaining = n

    while remaining > 0:
        alive_idx = np.nonzero(alive)[0]
        p = int(alive_idx[np.argmin(degree[alive_idx])])

        # --- form the new element Lp ----------------------------------
        lp: set[int] = set(adj[p])
        for e in elems[p]:
            lp |= elem_vars[e]
        lp.discard(p)
        lp = {v for v in lp if alive[v]}

        perm.extend(members[p])
        remaining -= len(members[p])
        alive[p] = False

        absorbed = set(elems[p])
        for e in absorbed:
            elem_vars.pop(e, None)
        elem_vars[p] = lp

        # --- update adjacency / element lists of affected variables ----
        for i in lp:
            adj[i] -= lp
            adj[i].discard(p)
            elems[i] = (elems[i] - absorbed) | {p}

        # --- approximate degree update ---------------------------------
        lp_w = wsize(lp)
        for i in lp:
            lp_minus_i = lp_w - int(nv[i])
            bound_prev = int(degree[i]) + lp_minus_i
            outside = 0
            for e in elems[i]:
                if e == p:
                    continue
                outside += wsize(elem_vars[e] - lp)
            bound_full = wsize(adj[i]) + lp_minus_i + outside
            degree[i] = min(remaining - 1 if remaining else 0,
                            bound_prev, bound_full)
            if degree[i] < 0:
                degree[i] = 0

        # --- supervariable detection among Lp ---------------------------
        by_key: dict[tuple, int] = {}
        for i in sorted(lp):
            if not alive[i]:
                continue
            key = (frozenset(adj[i]), frozenset(elems[i]))
            rep = by_key.get(key)
            if rep is None:
                by_key[key] = i
                continue
            # Merge i into rep.
            members[rep].extend(members[i])
            nv[rep] += nv[i]
            alive[i] = False
            for j in adj[i]:
                adj[j].discard(i)
            for e in elems[i]:
                elem_vars[e].discard(i)
            adj[i].clear()
            elems[i].clear()
            degree[rep] = max(0, int(degree[rep]) - 0)

        # Drop merged variables from the new element list.
        elem_vars[p] = {v for v in elem_vars[p] if alive[v]}

    out = np.asarray(perm, dtype=np.int64)
    if len(out) != n:  # pragma: no cover - internal invariant
        raise AssertionError("AMD failed to order every variable")
    return out
