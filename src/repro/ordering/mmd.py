"""Minimum degree orderings.

Two variants are provided:

* :func:`minimum_degree` — the textbook single-elimination algorithm on
  an explicit elimination graph.
* :func:`multiple_minimum_degree` — Liu's modified multiple minimum
  degree (MMD, TOMS 1985), the ordering the paper uses for all of its
  experiments.  It adds the three classic refinements:

  - **multiple elimination**: an independent set of minimum-degree nodes
    is eliminated per pass before degrees are recomputed;
  - **indistinguishable-node merging** (supervariables): nodes with
    identical closed neighbourhoods are merged and eliminated together;
  - **external degree**: the degree used for selection counts original
    variables outside the node's own supervariable.

Both run on the explicit elimination graph with supervariable weights;
for the n ~ 1000 problems of the paper this is comfortably fast and much
easier to audit than a full quotient-graph implementation.
"""

from __future__ import annotations

import numpy as np

from ..sparse.pattern import SymmetricGraph

__all__ = ["minimum_degree", "multiple_minimum_degree"]


def _init_adjacency(graph: SymmetricGraph) -> list[set[int]]:
    return [set(graph.neighbors(i).tolist()) for i in range(graph.n)]


def minimum_degree(graph: SymmetricGraph) -> np.ndarray:
    """Single-elimination minimum degree.  Ties break to the lowest index."""
    n = graph.n
    adj = _init_adjacency(graph)
    alive = np.ones(n, dtype=bool)
    deg = np.array([len(a) for a in adj], dtype=np.int64)
    perm = np.empty(n, dtype=np.int64)
    for k in range(n):
        alive_idx = np.nonzero(alive)[0]
        v = int(alive_idx[np.argmin(deg[alive_idx])])
        perm[k] = v
        alive[v] = False
        nbrs = adj[v]
        for u in nbrs:
            au = adj[u]
            au.discard(v)
            au |= nbrs
            au.discard(u)
        for u in nbrs:
            deg[u] = len(adj[u])
        adj[v] = set()
    return perm


def multiple_minimum_degree(graph: SymmetricGraph, delta: int = 0) -> np.ndarray:
    """Liu's multiple minimum degree ordering.

    ``delta`` is the multiple-elimination tolerance: nodes whose external
    degree is within ``delta`` of the minimum are eligible in the same
    elimination pass (delta = 0 reproduces strict MMD).
    """
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    adj = _init_adjacency(graph)
    weight = np.ones(n, dtype=np.int64)  # supervariable sizes
    members: list[list[int]] = [[i] for i in range(n)]
    alive = np.ones(n, dtype=bool)

    def external_degree(v: int) -> int:
        return int(sum(weight[u] for u in adj[v]))

    extdeg = np.array([external_degree(i) for i in range(n)], dtype=np.int64)
    perm: list[int] = []
    n_remaining = n

    while n_remaining > 0:
        alive_idx = np.nonzero(alive)[0]
        dmin = int(extdeg[alive_idx].min())
        # --- multiple elimination: independent set of (near-)min nodes ---
        threshold = dmin + delta
        selected: list[int] = []
        blocked: set[int] = set()
        for v in alive_idx:
            v = int(v)
            if extdeg[v] > threshold or v in blocked:
                continue
            selected.append(v)
            blocked.add(v)
            blocked.update(adj[v])
        touched: set[int] = set()
        for v in selected:
            perm.extend(members[v])
            n_remaining -= len(members[v])
            alive[v] = False
            nbrs = adj[v]
            for u in nbrs:
                au = adj[u]
                au.discard(v)
                au |= nbrs
                au.discard(u)
            touched.update(nbrs)
            adj[v] = set()
        touched = {u for u in touched if alive[u]}

        # --- indistinguishable-node merging among the touched nodes ---
        by_closure: dict[frozenset[int], int] = {}
        for u in sorted(touched):
            closure = frozenset(adj[u] | {u})
            rep = by_closure.get(closure)
            if rep is None:
                by_closure[closure] = u
            else:
                # u is indistinguishable from rep: merge u into rep.
                members[rep].extend(members[u])
                weight[rep] += weight[u]
                alive[u] = False
                n_remaining_unchanged = True  # members move, none eliminated
                assert n_remaining_unchanged
                for w in adj[u]:
                    adj[w].discard(u)
                adj[u] = set()
        touched = {u for u in touched if alive[u]}

        for u in touched:
            extdeg[u] = external_degree(u)

    out = np.asarray(perm, dtype=np.int64)
    if len(out) != n:  # pragma: no cover - internal invariant
        raise AssertionError("MMD failed to eliminate every variable")
    return out
