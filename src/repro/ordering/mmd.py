"""Minimum degree orderings.

Three variants are provided:

* :func:`minimum_degree` — the textbook single-elimination algorithm on
  an explicit elimination graph.
* :func:`multiple_minimum_degree_reference` — Liu's modified multiple
  minimum degree (MMD, TOMS 1985) on an explicit elimination graph of
  Python sets.  Easy to audit, and the executable specification the
  fast path is asserted against.
* :func:`multiple_minimum_degree` — the same algorithm on two fast
  representations, dispatched by problem size.  Up to
  :data:`_BITSET_MAX_N` unknowns, the elimination graph lives as one
  Python big integer per row (:func:`_mmd_bitset`): clique unions,
  reach computation, and indistinguishable-node detection are single
  C-level bit operations, dead nodes are masked lazily by a global
  alive bitmask, and merges key an exact closure-bitset dictionary.
  Beyond that, a GENMMD-style quotient graph in flat numpy arrays takes
  over: one elbow-room store for variable/element adjacency, element
  absorption instead of explicit fill, batched reach/degree computation
  per elimination pass, and supervariable (mass) elimination via
  indistinguishable-node hashing.  Both return the **identical
  permutation** to the reference — the pass structure, tie-breaking,
  and merge order are reproduced exactly, only the data structure
  differs.

Both MMD variants implement the three classic refinements:

- **multiple elimination**: an independent set of minimum-degree nodes
  is eliminated per pass before degrees are recomputed;
- **indistinguishable-node merging** (supervariables): nodes with
  identical closed neighbourhoods are merged and eliminated together;
- **external degree**: the degree used for selection counts original
  variables outside the node's own supervariable.
"""

from __future__ import annotations

import numpy as np

from ..obs import trace as obs
from ..sparse.pattern import SymmetricGraph

__all__ = [
    "minimum_degree",
    "multiple_minimum_degree",
    "multiple_minimum_degree_reference",
]

#: External-degree sentinel for nodes no longer alive; larger than any
#: real degree (< n) but far from the int64 overflow line so that
#: ``sentinel + delta`` is always safe.
_DEAD = np.int64(1) << 50


def _init_adjacency(graph: SymmetricGraph) -> list[set[int]]:
    return [set(graph.neighbors(i).tolist()) for i in range(graph.n)]


def minimum_degree(graph: SymmetricGraph) -> np.ndarray:
    """Single-elimination minimum degree.  Ties break to the lowest index."""
    n = graph.n
    adj = _init_adjacency(graph)
    alive = np.ones(n, dtype=bool)
    deg = np.array([len(a) for a in adj], dtype=np.int64)
    perm = np.empty(n, dtype=np.int64)
    for k in range(n):
        alive_idx = np.nonzero(alive)[0]
        v = int(alive_idx[np.argmin(deg[alive_idx])])
        perm[k] = v
        alive[v] = False
        nbrs = adj[v]
        for u in nbrs:
            au = adj[u]
            au.discard(v)
            au |= nbrs
            au.discard(u)
        for u in nbrs:
            deg[u] = len(adj[u])
        adj[v] = set()
    return perm


def multiple_minimum_degree_reference(
    graph: SymmetricGraph, delta: int = 0
) -> np.ndarray:
    """Liu's multiple minimum degree ordering (set-of-sets reference).

    ``delta`` is the multiple-elimination tolerance: nodes whose external
    degree is within ``delta`` of the minimum are eligible in the same
    elimination pass (delta = 0 reproduces strict MMD).
    """
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    adj = _init_adjacency(graph)
    weight = np.ones(n, dtype=np.int64)  # supervariable sizes
    members: list[list[int]] = [[i] for i in range(n)]
    alive = np.ones(n, dtype=bool)

    def external_degree(v: int) -> int:
        return int(sum(weight[u] for u in adj[v]))

    extdeg = np.array([external_degree(i) for i in range(n)], dtype=np.int64)
    perm: list[int] = []
    n_remaining = n

    while n_remaining > 0:
        alive_idx = np.nonzero(alive)[0]
        dmin = int(extdeg[alive_idx].min())
        # --- multiple elimination: independent set of (near-)min nodes ---
        threshold = dmin + delta
        selected: list[int] = []
        blocked: set[int] = set()
        for v in alive_idx:
            v = int(v)
            if extdeg[v] > threshold or v in blocked:
                continue
            selected.append(v)
            blocked.add(v)
            blocked.update(adj[v])
        touched: set[int] = set()
        for v in selected:
            perm.extend(members[v])
            n_remaining -= len(members[v])
            alive[v] = False
            nbrs = adj[v]
            for u in nbrs:
                au = adj[u]
                au.discard(v)
                au |= nbrs
                au.discard(u)
            touched.update(nbrs)
            adj[v] = set()
        touched = {u for u in touched if alive[u]}

        # --- indistinguishable-node merging among the touched nodes ---
        by_closure: dict[frozenset[int], int] = {}
        for u in sorted(touched):
            closure = frozenset(adj[u] | {u})
            rep = by_closure.get(closure)
            if rep is None:
                by_closure[closure] = u
            else:
                # u is indistinguishable from rep: merge u into rep.
                members[rep].extend(members[u])
                weight[rep] += weight[u]
                alive[u] = False
                for w in adj[u]:
                    adj[w].discard(u)
                adj[u] = set()
        touched = {u for u in touched if alive[u]}

        for u in touched:
            extdeg[u] = external_degree(u)

    out = np.asarray(perm, dtype=np.int64)
    if len(out) != n:  # pragma: no cover - internal invariant
        raise AssertionError("MMD failed to eliminate every variable")
    return out


def _ragged_take(data: np.ndarray, starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenate ``data[starts[i] : starts[i] + lens[i]]`` for all ``i``."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lens)
    idx = np.repeat(starts - (ends - lens), lens) + np.arange(total, dtype=np.int64)
    return data[idx]


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit mixer (splitmix64); used as a content-hash code
    table so a closure's hash is the wrap-around sum of its members' codes."""
    z = x.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class _Store:
    """Append-only int64 arena with elbow room.

    All adjacency segments (variable lists, element-id lists, element
    member lists) live in one flat array.  Rewritten segments are appended
    at ``free``; stale copies are reclaimed by a mark/sweep compaction when
    a reservation does not fit, and the arena doubles if compaction alone
    is not enough.
    """

    __slots__ = ("data", "free")

    def __init__(self, capacity: int) -> None:
        self.data = np.empty(capacity, dtype=np.int64)
        self.free = 0

    def reserve(self, need: int, compact) -> None:
        if self.free + need <= len(self.data):
            return
        compact()
        if self.free + need > len(self.data):
            cap = max(2 * len(self.data), self.free + need + 64)
            grown = np.empty(cap, dtype=np.int64)
            grown[: self.free] = self.data[: self.free]
            self.data = grown


#: Graphs up to this size take the big-int bitset fast path in
#: :func:`multiple_minimum_degree` (one Python integer per adjacency
#: row, so per-row cost scales with n/64 words); larger graphs use the
#: sparse CSR arena, whose cost scales with reach volume instead of n
#: per row operation.
_BITSET_MAX_N = 8192

_PACK_SHIFT = 25
_PACK_MASK = (1 << _PACK_SHIFT) - 1


def _mmd_bitset(graph: SymmetricGraph, delta: int = 0) -> np.ndarray:
    """Bitset MMD fast path: the elimination graph as Python big ints.

    Each variable's adjacency row is one arbitrary-precision integer
    (bit ``c`` set means adjacency to ``c``), so clique unions, reach
    extraction and independence blocking are single C-level big-int
    operations with no per-element interpreter work.  Cleanup is fully
    lazy: nothing is ever deleted from a row.  Instead a global
    alive-mask ``G`` loses a bit whenever a variable dies (elimination
    or merge), and every read masks with ``G`` — a pivot's reach is
    ``row & G``, and a touched variable's closed neighbourhood at its
    merge-scan visit is again ``row & G`` (its self bit was set by the
    clique union, and ``G`` evolves during the scan exactly like the
    reference's eager deletions).

    Indistinguishable-node (mass) merging needs no hashing or screening
    at this tier: the masked closure integer itself is the dictionary
    key, giving the reference's frozen-dictionary semantics verbatim —
    entries are keyed by the closure value at visit time and are never
    updated afterwards.  External degrees are ``int.bit_count`` plus a
    supervariable-weight correction over ``closure & hmask`` (``hmask``
    flags reps with weight > 1), taken at visit time; a later merge
    only changes the rep's own degree, which is patched in place.
    """
    n = graph.n
    idx = graph.indices
    ptr = graph.indptr.tolist()
    rowbits = np.zeros(n * n, dtype=bool)
    rowbits[np.repeat(np.arange(n, dtype=np.int64) * n, np.diff(graph.indptr)) + idx] = True
    packed = np.packbits(rowbits.reshape(n, n), axis=1, bitorder="little")
    del rowbits
    nb = packed.shape[1]
    buf = packed.tobytes()
    adj = [int.from_bytes(buf[i * nb : (i + 1) * nb], "little") for i in range(n)]
    del packed, buf

    extnp = np.diff(graph.indptr).astype(np.int64)
    weight = [1] * n
    members: list[list[int]] = [[i] for i in range(n)]
    G = (1 << n) - 1  # alive mask; reads strip dead bits lazily
    hmask = 0  # bits of supervariables with weight > 1
    perm: list[int] = []
    n_remaining = n
    n_passes = 0
    n_merged = 0
    n_absorbed = 0
    n_mass = 0

    while n_remaining > 0:
        n_passes += 1
        threshold = int(extnp.min()) + delta
        candidates = np.flatnonzero(extnp <= threshold).tolist()

        # Multiple elimination: greedy independent set in index order.
        # Stale (dead) bits in a row cannot block a candidate, because
        # candidates are alive.
        bmask = 0
        selected = []
        for v in candidates:
            if (bmask >> v) & 1:
                continue
            selected.append(v)
            bmask |= adj[v]
        for v in selected:
            G ^= 1 << v
            mv = members[v]
            perm.extend(mv)
            n_remaining -= len(mv)
            if len(mv) > 1:
                n_mass += 1
        sel = np.asarray(selected, dtype=np.int64)
        extnp[sel] = _DEAD

        # Element absorption: each member of pivot v's reach gains the
        # whole reach (including its own self bit, which doubles as the
        # closure bit for the merge scan below).  Small reaches walk
        # their bits directly; large ones decode through unpackbits.
        nbytes = (n + 7) >> 3
        tmask = 0
        for v in selected:
            reach = adj[v] & G
            if reach == 0:
                continue
            n_absorbed += 1
            tmask |= reach
            if reach.bit_count() > 24:
                hits = np.flatnonzero(
                    np.unpackbits(
                        np.frombuffer(
                            reach.to_bytes(nbytes, "little"), np.uint8
                        ),
                        bitorder="little",
                    )
                ).tolist()
                for u in hits:
                    adj[u] |= reach
            else:
                m = reach
                while m:
                    b = m & -m
                    m ^= b
                    adj[b.bit_length() - 1] |= reach

        if tmask == 0:
            continue  # all selected pivots were isolated

        # Merge scan in ascending node order.  ``cur`` is the exact
        # closed neighbourhood at visit time (self bit included, dead
        # bits masked); equal closures merge, first visitor wins, and
        # the frozen dict key never changes afterwards.
        upd_idx: list[int] = []
        upd_val: list[int] = []
        merged: list[int] = []
        closures: dict[int, tuple[int, int]] = {}
        touched = np.flatnonzero(
            np.unpackbits(
                np.frombuffer(tmask.to_bytes(nbytes, "little"), np.uint8),
                bitorder="little",
            )
        ).tolist()
        for u in touched:
            cur = adj[u] & G
            adj[u] = cur
            hit = closures.get(cur)
            if hit is None:
                # External degree at visit time: popcount of the
                # closure plus supervariable excess, minus own weight.
                ext = cur.bit_count() - 1
                hx = cur & hmask
                if hx:
                    wu = weight[u]
                    while hx:
                        hb = hx & -hx
                        hx ^= hb
                        ext += weight[hb.bit_length() - 1] - 1
                    ext -= wu - 1
                closures[cur] = (u, len(upd_idx))
                upd_idx.append(u)
                upd_val.append(ext)
                continue
            rep, rpos = hit
            n_merged += 1
            wu = weight[u]
            members[rep].extend(members[u])
            weight[rep] += wu
            upd_val[rpos] -= wu
            hmask |= 1 << rep
            G ^= 1 << u
            merged.append(u)

        extnp[upd_idx] = upd_val
        if merged:
            extnp[merged] = _DEAD

    obs.counter("perf.order.passes", n_passes)
    obs.counter("perf.order.supernodes_merged", n_merged)
    obs.counter("perf.order.elements_absorbed", n_absorbed)
    obs.counter("perf.order.mass_eliminations", n_mass)
    obs.counter("perf.order.compactions", 0)
    return np.asarray(perm, dtype=np.int64)


def multiple_minimum_degree(graph: SymmetricGraph, delta: int = 0) -> np.ndarray:
    """Array MMD on an elbow-room CSR store; permutation-identical to the
    reference.

    Every live variable keeps its current elimination-graph adjacency as a
    sorted CSR row inside one flat int64 arena (:class:`_Store`).  Each
    elimination pass forms one *element* per pivot (the pivot's reach) and
    absorbs it eagerly: the rows of all touched variables are rebuilt by a
    single batched gather / key-sort / dedup over the old rows plus the
    new elements, then appended to the arena (stale copies are reclaimed
    by mark/sweep compaction when space runs out).  Rows of untouched
    variables are never rewritten — dead entries (eliminated pivots and
    merged supervariables) are filtered lazily on read, which is exact
    because an untouched variable's reach can only ever lose members.

    External degrees and closure content-hashes are maintained together in
    one numpy array of packed per-node codes (supervariable weight in the
    low 25 bits, a 39-bit splitmix64 content code above), so one cumulative
    sum per pass yields both the exact external degree of every touched
    variable and the hash of its closed neighbourhood.  Supervariable
    (mass) elimination uses that hash as an indistinguishability screen:
    only when two closure hashes collide does an exact sequential replay
    of the reference's merge loop run, verifying candidate pairs against
    the frozen closures their dict entries were created with.

    The selection order, tie-breaking, pass structure and merge order of
    :func:`multiple_minimum_degree_reference` are reproduced exactly; the
    test suite asserts identical permutations on every bundled matrix.
    """
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n <= _BITSET_MAX_N:
        return _mmd_bitset(graph, delta)
    if n >= (1 << 25):  # pragma: no cover - packed-code capacity guard
        raise NotImplementedError("packed degree codes require n < 2**25")

    nnz = int(graph.indptr[-1])
    store = _Store(3 * nnz + 8 * n + 64)
    store.data[:nnz] = graph.indices
    store.free = nnz

    row_start = graph.indptr[:-1].astype(np.int64)
    row_len = np.diff(graph.indptr).astype(np.int64)

    alive = np.ones(n, dtype=bool)
    weight = np.ones(n, dtype=np.int64)
    extdeg = row_len.copy()

    # Supervariable member chains: merged nodes are emitted with their rep.
    head = list(range(n))
    tail = list(range(n))
    nxt = [-1] * n

    blocked = np.zeros(n, dtype=np.int64)  # pass-stamped independence mask
    death_rank = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    f39 = _splitmix64(np.arange(1, n + 1, dtype=np.int64)) >> np.uint64(25)
    # Packed per-node code: 39-bit content hash above a 25-bit weight
    # field.  Segment sums of ccode give Σweight exactly in the low bits
    # (total weight is n < 2**25, and 64-bit wrap-around cannot carry
    # downward) and a wrap-around content hash above.
    ccode = (f39 << np.uint64(25)).view(np.int64) + weight
    _MASK25 = np.int64((1 << 25) - 1)
    _SALT = np.uint64(0x9E3779B97F4A7C15)
    _salt_int = 0x9E3779B97F4A7C15
    _MASK39U = np.uint64((1 << 39) - 1)
    _mask39 = (1 << 39) - 1
    _mask64 = (1 << 64) - 1

    perm = np.empty(n, dtype=np.int64)
    arange_n = np.arange(n + 1, dtype=np.int64)
    z1 = np.zeros(1, dtype=np.int64)
    n_plus_1 = np.int64(n + 1)
    n_eliminated = 0
    n_passes = 0
    n_merged = 0
    n_absorbed = 0
    n_mass = 0
    n_compactions = 0
    any_merged_ever = False

    def compact() -> None:
        nonlocal n_compactions
        n_compactions += 1
        av = np.flatnonzero(alive)
        lens = row_len[av]
        packed = _ragged_take(store.data, row_start[av], lens)
        row_start[av] = np.cumsum(lens) - lens
        store.data[: len(packed)] = packed
        store.free = len(packed)

    def replay_merges(touched, vals, starts, ends, keys, h39sums, sizes) -> bool:
        """Exact sequential merge replay, run only on closure-hash collisions.

        Visits touched nodes in index order like the reference.  Clean
        nodes reuse the vectorized closure keys; a merge marks every
        segment containing the dead node dirty (those are exactly the
        touched nodes in its reach, by symmetry) and dirty keys are
        recomputed incrementally.  Hash-matched pairs are verified against
        the exact frozen closure the dict entry was created with.
        """
        nonlocal n_merged, any_merged_ever
        touched_list = touched.tolist()
        keys_l = keys.tolist()
        starts_l = starts.tolist()
        ends_l = ends.tolist()
        hs = sz = fown = None  # materialized lazily on the first merge
        dirty: set[int] = set()

        def closure(seg: np.ndarray, self_id: int) -> np.ndarray:
            out = np.empty(len(seg) + 1, dtype=np.int64)
            pos = int(np.searchsorted(seg, self_id))
            out[:pos] = seg[:pos]
            out[pos] = self_id
            out[pos + 1 :] = seg[pos:]
            return out

        buckets: dict[int, list[int]] = {}
        merged_any = False
        for rank, u in enumerate(touched_list):
            if not alive[u]:
                continue
            if rank in dirty:
                key = (
                    ((hs[rank] + fown[rank]) & _mask39)
                    + sz[rank] * _salt_int
                ) & _mask64
            else:
                key = keys_l[rank]
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [rank]
                continue
            seg_u = vals[starts_l[rank] : ends_l[rank]]
            cur_u = seg_u[alive[seg_u]]
            cl_u = closure(cur_u, u)
            rep = -1
            for cand in bucket:
                seg_r = vals[starts_l[cand] : ends_l[cand]]
                frozen = seg_r[death_rank[seg_r] >= cand]
                if np.array_equal(cl_u, closure(frozen, touched_list[cand])):
                    rep = touched_list[cand]
                    break
            if rep < 0:
                bucket.append(rank)
                continue
            # u is indistinguishable from rep: merge u into rep.
            merged_any = True
            any_merged_ever = True
            n_merged += 1
            weight[rep] += weight[u]
            ccode[rep] += weight[u]
            nxt[tail[rep]] = head[u]
            tail[rep] = tail[u]
            alive[u] = False
            extdeg[u] = _DEAD
            death_rank[u] = rank
            if hs is None:
                hs = h39sums.tolist()
                sz = sizes.tolist()
                fown = f39[touched].tolist()
            fu = int(f39[u])
            # Segments containing u are exactly the touched nodes in u's
            # reach (adjacency snapshots are symmetric).
            pos = np.searchsorted(touched, cur_u)
            pos[pos == len(touched_list)] = 0
            hit = touched[pos] == cur_u
            for i in pos[hit].tolist():
                hs[i] = (hs[i] - fu) & _mask39
                sz[i] -= 1
                dirty.add(i)
        return merged_any

    while n_eliminated < n:
        n_passes += 1
        threshold = extdeg.min() + delta
        candidates = np.flatnonzero(extdeg <= threshold)
        # Independent-set selection in index order, exactly as the
        # reference: a candidate adjacent to an earlier pivot is blocked.
        # Raw rows are stamped unfiltered — stale entries are dead nodes,
        # which are never candidates, so over-stamping them is harmless.
        rs = row_start[candidates].tolist()
        rl = row_len[candidates].tolist()
        data = store.data
        sel: list[int] = []
        sel_raw: list[np.ndarray] = []
        for ci, v in enumerate(candidates.tolist()):
            if blocked[v] == n_passes:
                continue
            raw = data[rs[ci] : rs[ci] + rl[ci]]
            blocked[raw] = n_passes
            sel.append(v)
            sel_raw.append(raw)
        for v in sel:
            node = head[v]
            while node >= 0:
                perm[n_eliminated] = node
                n_eliminated += 1
                node = nxt[node]
        sel_arr = np.asarray(sel, dtype=np.int64)
        if any_merged_ever:
            n_mass += int((weight[sel_arr] > 1).sum())
        alive[sel_arr] = False
        extdeg[sel_arr] = _DEAD
        # Exact reach of each pivot: its row minus dead entries.  Same-pass
        # pivots are mutually non-adjacent, so the snapshot taken here is
        # still each pivot's exact adjacency at elimination time.
        pieces = []
        for raw in sel_raw:
            r = raw[alive[raw]]
            if len(r):
                pieces.append(r)
        if not pieces:
            continue
        n_absorbed += len(pieces)
        if len(pieces) == 1:
            cat = touched = pieces[0]
        else:
            cat = np.concatenate(pieces)
            cat.sort()
            dup = np.empty(len(cat), dtype=bool)
            dup[0] = True
            np.not_equal(cat[1:], cat[:-1], out=dup[1:])
            touched = cat[dup]
        k = len(touched)
        ar_k = arange_n[:k]
        # One update stream rebuilds every touched row: the old rows plus
        # each new element crossed with its own members (u gains L_i for
        # every pivot i whose reach contains u).
        tlens = row_len[touched]
        parts_vals = [_ragged_take(data, row_start[touched], tlens)]
        parts_owner = [np.repeat(ar_k, tlens)]
        if len(pieces) == 1:
            parts_vals.append(np.tile(touched, k))
            parts_owner.append(np.repeat(ar_k, k))
        elif len(pieces) <= 3:
            for r in pieces:
                parts_vals.append(np.tile(r, len(r)))
                parts_owner.append(np.repeat(np.searchsorted(touched, r), len(r)))
        else:
            plens = np.array([len(r) for r in pieces], dtype=np.int64)
            sq = plens * plens
            total = int(sq.sum())
            pcat = np.concatenate(pieces)
            base = np.cumsum(plens) - plens
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(sq) - sq, sq
            )
            parts_vals.append(
                pcat[np.repeat(base, sq) + within % np.repeat(plens, sq)]
            )
            parts_owner.append(
                np.repeat(np.searchsorted(touched, pcat), np.repeat(plens, plens))
            )
        vals = np.concatenate(parts_vals)
        owners = np.concatenate(parts_owner)
        keep = alive[vals] & (vals != touched[owners])
        key = owners[keep] * n_plus_1 + vals[keep]
        key.sort()
        if len(key) > 1:
            mask = np.empty(len(key), dtype=bool)
            mask[0] = True
            np.not_equal(key[1:], key[:-1], out=mask[1:])
            key = key[mask]
        vals = key % n_plus_1
        counts = np.bincount(key // n_plus_1, minlength=k)
        ends = np.cumsum(counts)
        starts = ends - counts
        # Append the rebuilt rows to the arena (eager element absorption).
        store.reserve(len(vals), compact)
        base = store.free
        store.data[base : base + len(vals)] = vals
        row_start[touched] = base + starts
        row_len[touched] = counts
        store.free = base + len(vals)
        # One cumulative sum of the packed codes yields both the external
        # degrees (low bits) and the closure content hashes (high bits).
        cumc = np.concatenate([z1, np.cumsum(ccode[vals])])
        csums = cumc[ends] - cumc[starts]
        wsums = csums & _MASK25
        h39sums = csums.view(np.uint64) >> np.uint64(25)
        sizes = ends - starts
        closure_key = (
            (h39sums + f39[touched]) & _MASK39U
        ) + sizes.view(np.uint64) * _SALT
        ck = np.sort(closure_key)
        if len(ck) > 1 and bool((ck[1:] == ck[:-1]).any()):
            if replay_merges(touched, vals, starts, ends, closure_key, h39sums, sizes):
                # Merges only remove nodes, so the post-merge reaches are
                # the pre-merge segments filtered to live entries/owners.
                live_nodes = alive[touched]
                owners_flat = np.repeat(ar_k, sizes)
                keep = alive[vals] & live_nodes[owners_flat]
                vals = vals[keep]
                counts = np.bincount(owners_flat[keep], minlength=k)[live_nodes]
                touched = touched[live_nodes]
                ends = np.cumsum(counts)
                starts = ends - counts
                cumc = np.concatenate([z1, np.cumsum(ccode[vals])])
                csums = cumc[ends] - cumc[starts]
                wsums = csums & _MASK25
        extdeg[touched] = wsums
    obs.counter("perf.order.passes", n_passes)
    obs.counter("perf.order.supernodes_merged", n_merged)
    obs.counter("perf.order.elements_absorbed", n_absorbed)
    obs.counter("perf.order.mass_eliminations", n_mass)
    obs.counter("perf.order.compactions", n_compactions)
    return perm
