"""Simple nested dissection ordering via BFS-level vertex separators.

Not used by the paper (which orders everything with MMD) but provided as
a comparison ordering for the examples and the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..sparse.pattern import SymmetricGraph
from .mmd import minimum_degree

__all__ = ["nested_dissection"]


def _subgraph(graph: SymmetricGraph, nodes: np.ndarray) -> tuple[SymmetricGraph, np.ndarray]:
    """Induced subgraph; returns (graph, local->global map)."""
    glob = np.asarray(sorted(nodes), dtype=np.int64)
    local = {int(g): i for i, g in enumerate(glob)}
    us, vs = [], []
    for i, g in enumerate(glob.tolist()):
        for u in graph.neighbors(g):
            lu = local.get(int(u))
            if lu is not None and lu > i:
                us.append(i)
                vs.append(lu)
    return SymmetricGraph.from_edges(len(glob), np.asarray(us, dtype=np.int64),
                                     np.asarray(vs, dtype=np.int64)), glob


def _bfs_halves(graph: SymmetricGraph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split by BFS level median; the frontier between halves is the separator."""
    n = graph.n
    levels = np.full(n, -1, dtype=np.int64)
    comp_order: list[int] = []
    for s in range(n):
        if levels[s] >= 0:
            continue
        levels[s] = 0
        q = deque([s])
        while q:
            v = q.popleft()
            comp_order.append(v)
            for u in graph.neighbors(v):
                if levels[u] < 0:
                    levels[u] = levels[v] + 1
                    q.append(int(u))
    half = n // 2
    in_a = np.zeros(n, dtype=bool)
    in_a[np.asarray(comp_order[:half], dtype=np.int64)] = True
    # Separator: nodes of side A adjacent to side B.
    sep = []
    for v in range(n):
        if in_a[v] and any(not in_a[u] for u in graph.neighbors(v)):
            sep.append(v)
    sep = np.asarray(sep, dtype=np.int64)
    in_sep = np.zeros(n, dtype=bool)
    in_sep[sep] = True
    a = np.asarray([v for v in range(n) if in_a[v] and not in_sep[v]], dtype=np.int64)
    b = np.asarray([v for v in range(n) if not in_a[v]], dtype=np.int64)
    return a, b, sep


def nested_dissection(graph: SymmetricGraph, leaf_size: int = 32) -> np.ndarray:
    """Order by recursive dissection; leaves ordered with minimum degree."""
    if graph.n <= leaf_size or graph.num_edges == 0:
        return minimum_degree(graph)
    a, b, sep = _bfs_halves(graph)
    if len(a) == 0 or len(b) == 0:
        return minimum_degree(graph)
    out = np.empty(graph.n, dtype=np.int64)
    pos = 0
    for part in (a, b):
        sub, glob = _subgraph(graph, part)
        sub_perm = nested_dissection(sub, leaf_size)
        out[pos : pos + len(part)] = glob[sub_perm]
        pos += len(part)
    out[pos:] = sep  # separator eliminated last
    return out
