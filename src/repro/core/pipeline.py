"""One-call drivers: matrix structure -> ordered -> partitioned ->
scheduled -> measured.

:class:`PreparedMatrix` caches the expensive, sweep-invariant stages
(ordering, symbolic factorization, update enumeration) so parameter
sweeps over grain size / processor count / cluster width re-use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..machine.metrics import LoadBalance, load_balance
from ..obs import trace as obs
from ..machine.traffic import TrafficResult, data_traffic
from ..machine.work import processor_work, unit_work
from ..ordering import order as order_graph
from ..sparse.pattern import LowerPattern, SymmetricGraph
from ..symbolic.fill import SymbolicFactor, symbolic_cholesky
from ..symbolic.updates import UpdateSet, enumerate_updates
from .assignment import Assignment
from .dependencies import DependencyInfo, analyze_dependencies
from .partitioner import Partition, partition_factor
from .scheduler import SchedulerOptions, schedule_blocks
from .wrap import wrap_assignment

__all__ = [
    "PreparedMatrix",
    "MappingResult",
    "prepare",
    "block_mapping",
    "adaptive_block_mapping",
    "wrap_mapping",
]


@dataclass
class PreparedMatrix:
    """A structure ordered and symbolically factored, ready for mapping
    experiments."""

    name: str
    graph: SymmetricGraph
    perm: np.ndarray
    symbolic: SymbolicFactor

    @property
    def pattern(self) -> LowerPattern:
        return self.symbolic.pattern

    @cached_property
    def updates(self) -> UpdateSet:
        with obs.span("pipeline.enumerate_updates", matrix=self.name):
            out = enumerate_updates(self.pattern)
        obs.counter("pipeline.stage.enumerate_updates")
        obs.counter("pipeline.pair_updates", len(out.target))
        return out

    @property
    def factor_nnz(self) -> int:
        return self.pattern.nnz

    @property
    def total_work(self) -> int:
        return self.updates.total_work()


def prepare(graph: SymmetricGraph, ordering: str = "mmd", name: str = "") -> PreparedMatrix:
    """Order and symbolically factor a structure."""
    label = name or "matrix"
    with obs.span("pipeline.prepare", matrix=label, ordering=ordering):
        with obs.span("pipeline.order", matrix=label, ordering=ordering):
            perm = order_graph(graph, ordering)
        obs.counter("pipeline.stage.order")
        with obs.span("pipeline.symbolic", matrix=label):
            symbolic = symbolic_cholesky(graph, perm)
        obs.counter("pipeline.stage.symbolic")
    return PreparedMatrix(name=label, graph=graph, perm=np.asarray(perm), symbolic=symbolic)


@dataclass
class MappingResult:
    """Everything measured for one (matrix, scheme, parameters) cell."""

    prepared: PreparedMatrix
    assignment: Assignment
    traffic: TrafficResult
    balance: LoadBalance
    partition: Partition | None = None
    dependencies: DependencyInfo | None = None

    @property
    def scheme(self) -> str:
        return self.assignment.scheme

    @property
    def nprocs(self) -> int:
        return self.assignment.nprocs

    def summary(self) -> dict:
        """Flat dict of the paper's reported figures."""
        return {
            "matrix": self.prepared.name,
            "scheme": self.scheme,
            "nprocs": self.nprocs,
            "traffic_total": self.traffic.total,
            "traffic_mean": self.traffic.mean,
            "work_mean": self.balance.mean,
            "work_max": self.balance.max,
            "imbalance": self.balance.imbalance,
        }


def block_mapping(
    prepared: PreparedMatrix,
    nprocs: int,
    grain: int = 4,
    min_width: int = 4,
    zero_tolerance: float = 0.0,
    grain_rectangle: int | None = None,
    options: SchedulerOptions | None = None,
    include_scale_traffic: bool = True,
) -> MappingResult:
    """Run the paper's block-based partitioner + scheduler and measure it."""
    with obs.span("pipeline.block_mapping", matrix=prepared.name, nprocs=nprocs, grain=grain):
        with obs.span("pipeline.partition", matrix=prepared.name, grain=grain):
            partition = partition_factor(
                prepared.pattern,
                grain=grain,
                min_width=min_width,
                zero_tolerance=zero_tolerance,
                grain_rectangle=grain_rectangle,
            )
        obs.counter("pipeline.stage.partition")
        updates = prepared.updates
        with obs.span("pipeline.dependencies", matrix=prepared.name):
            deps = analyze_dependencies(partition, updates)
        obs.counter("pipeline.stage.dependencies")
        with obs.span("pipeline.schedule", matrix=prepared.name, nprocs=nprocs):
            uw = unit_work(partition, updates)
            assignment = schedule_blocks(partition, deps, nprocs, unit_work=uw, options=options)
        obs.counter("pipeline.stage.schedule")
        with obs.span("pipeline.metrics", matrix=prepared.name):
            traffic = data_traffic(assignment, updates, include_scale=include_scale_traffic)
            balance = load_balance(processor_work(assignment, updates))
        obs.counter("pipeline.stage.metrics")
    return MappingResult(prepared, assignment, traffic, balance, partition, deps)


def adaptive_block_mapping(
    prepared: PreparedMatrix,
    nprocs: int,
    grain: int = 4,
    min_width: int = 4,
    zero_tolerance: float = 0.0,
    options: SchedulerOptions | None = None,
    include_scale_traffic: bool = True,
) -> MappingResult:
    """Run the interleaved adaptive partitioner/scheduler (§3.2 parameter
    (a)): triangle partition counts limited by predecessor-processor
    counts."""
    from .adaptive import adaptive_schedule

    with obs.span("pipeline.adaptive_block_mapping", matrix=prepared.name, nprocs=nprocs, grain=grain):
        updates = prepared.updates
        with obs.span("pipeline.adaptive_schedule", matrix=prepared.name, nprocs=nprocs):
            partition, assignment = adaptive_schedule(
                prepared.pattern,
                updates,
                nprocs,
                grain=grain,
                min_width=min_width,
                zero_tolerance=zero_tolerance,
                options=options,
            )
        obs.counter("pipeline.stage.partition")
        obs.counter("pipeline.stage.schedule")
        with obs.span("pipeline.dependencies", matrix=prepared.name):
            deps = analyze_dependencies(partition, updates)
        obs.counter("pipeline.stage.dependencies")
        with obs.span("pipeline.metrics", matrix=prepared.name):
            traffic = data_traffic(assignment, updates, include_scale=include_scale_traffic)
            balance = load_balance(processor_work(assignment, updates))
        obs.counter("pipeline.stage.metrics")
    return MappingResult(prepared, assignment, traffic, balance, partition, deps)


def wrap_mapping(
    prepared: PreparedMatrix,
    nprocs: int,
    include_scale_traffic: bool = True,
) -> MappingResult:
    """Run the wrap-mapped column baseline and measure it."""
    with obs.span("pipeline.wrap_mapping", matrix=prepared.name, nprocs=nprocs):
        assignment = wrap_assignment(prepared.pattern, nprocs)
        obs.counter("pipeline.stage.schedule")
        updates = prepared.updates
        with obs.span("pipeline.metrics", matrix=prepared.name):
            traffic = data_traffic(assignment, updates, include_scale=include_scale_traffic)
            balance = load_balance(processor_work(assignment, updates))
        obs.counter("pipeline.stage.metrics")
    return MappingResult(prepared, assignment, traffic, balance)
