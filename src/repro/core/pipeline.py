"""One-call drivers: matrix structure -> ordered -> partitioned ->
scheduled -> measured.

:class:`PreparedMatrix` caches the expensive, sweep-invariant stages
(ordering, symbolic factorization, update enumeration) so parameter
sweeps over grain size / processor count / cluster width re-use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..machine.metrics import LoadBalance, load_balance
from ..obs import trace as obs
from ..machine.traffic import TrafficResult, data_traffic
from ..machine.work import processor_work, unit_work
from ..ordering import order as order_graph
from ..sparse.pattern import LowerPattern, SymmetricGraph
from ..symbolic.fill import SymbolicFactor, symbolic_cholesky
from ..symbolic.updates import UpdateSet, enumerate_updates
from .assignment import Assignment
from .dependencies import DependencyInfo, analyze_dependencies
from .partitioner import Partition, partition_factor
from .scheduler import SchedulerOptions, schedule_blocks
from .wrap import wrap_assignment

__all__ = [
    "PreparedMatrix",
    "PartitionedMatrix",
    "MappingResult",
    "prepare",
    "partition_prepared",
    "block_mapping",
    "block_mappings",
    "adaptive_block_mapping",
    "adaptive_block_mappings",
    "wrap_mapping",
    "wrap_mappings",
]


@dataclass
class PreparedMatrix:
    """A structure ordered and symbolically factored, ready for mapping
    experiments."""

    name: str
    graph: SymmetricGraph
    perm: np.ndarray
    symbolic: SymbolicFactor

    @property
    def pattern(self) -> LowerPattern:
        return self.symbolic.pattern

    @cached_property
    def updates(self) -> UpdateSet:
        with obs.span("pipeline.enumerate_updates", matrix=self.name):
            out = enumerate_updates(self.pattern)
        obs.counter("pipeline.stage.enumerate_updates")
        obs.counter("pipeline.pair_updates", len(out.target))
        return out

    @cached_property
    def read_index(self):
        """Source-sorted read list of the factorization (assignment
        invariant; lets :mod:`repro.machine.batched` measure many owner
        arrays in one pass)."""
        from ..machine.batched import build_read_index

        with obs.span("pipeline.read_index", matrix=self.name):
            out = build_read_index(self.updates)
        obs.counter("pipeline.stage.read_index")
        return out

    @property
    def factor_nnz(self) -> int:
        return self.pattern.nnz

    @property
    def total_work(self) -> int:
        return self.updates.total_work()


def prepare(graph: SymmetricGraph, ordering: str = "mmd", name: str = "") -> PreparedMatrix:
    """Order and symbolically factor a structure."""
    label = name or "matrix"
    with obs.span("pipeline.prepare", matrix=label, ordering=ordering):
        with obs.span("pipeline.order", matrix=label, ordering=ordering):
            perm = order_graph(graph, ordering)
        obs.counter("pipeline.stage.order")
        with obs.span("pipeline.symbolic", matrix=label):
            symbolic = symbolic_cholesky(graph, perm)
        obs.counter("pipeline.stage.symbolic")
    return PreparedMatrix(name=label, graph=graph, perm=np.asarray(perm), symbolic=symbolic)


@dataclass
class PartitionedMatrix:
    """A prepared matrix carried through the processor-count-invariant
    mapping stages.

    Partitioning, dependency analysis and per-unit work depend only on
    (structure, ordering, grain, min_width) — never on the processor
    count — so one ``PartitionedMatrix`` serves every ``nprocs`` cell of
    a sweep grid (see :func:`block_mappings`).
    """

    prepared: PreparedMatrix
    partition: Partition
    dependencies: DependencyInfo
    unit_work: np.ndarray
    grain: int
    min_width: int
    zero_tolerance: float = 0.0
    grain_rectangle: int | None = None

    @property
    def pattern(self) -> LowerPattern:
        return self.prepared.pattern

    @property
    def updates(self) -> UpdateSet:
        return self.prepared.updates


def partition_prepared(
    prepared: PreparedMatrix,
    grain: int = 4,
    min_width: int = 4,
    zero_tolerance: float = 0.0,
    grain_rectangle: int | None = None,
) -> PartitionedMatrix:
    """Run the nprocs-invariant stages once: partition + dependencies +
    unit work.  The result feeds :func:`block_mappings` for any number
    of processor counts."""
    with obs.span("pipeline.partition", matrix=prepared.name, grain=grain):
        partition = partition_factor(
            prepared.pattern,
            grain=grain,
            min_width=min_width,
            zero_tolerance=zero_tolerance,
            grain_rectangle=grain_rectangle,
        )
    obs.counter("pipeline.stage.partition")
    updates = prepared.updates
    with obs.span("pipeline.dependencies", matrix=prepared.name):
        deps = analyze_dependencies(partition, updates)
    obs.counter("pipeline.stage.dependencies")
    return PartitionedMatrix(
        prepared=prepared,
        partition=partition,
        dependencies=deps,
        unit_work=unit_work(partition, updates),
        grain=grain,
        min_width=min_width,
        zero_tolerance=zero_tolerance,
        grain_rectangle=grain_rectangle,
    )


@dataclass
class MappingResult:
    """Everything measured for one (matrix, scheme, parameters) cell."""

    prepared: PreparedMatrix
    assignment: Assignment
    traffic: TrafficResult
    balance: LoadBalance
    partition: Partition | None = None
    dependencies: DependencyInfo | None = None

    @property
    def scheme(self) -> str:
        return self.assignment.scheme

    @property
    def nprocs(self) -> int:
        return self.assignment.nprocs

    def summary(self) -> dict:
        """Flat dict of the paper's reported figures."""
        return {
            "matrix": self.prepared.name,
            "scheme": self.scheme,
            "nprocs": self.nprocs,
            "traffic_total": self.traffic.total,
            "traffic_mean": self.traffic.mean,
            "work_mean": self.balance.mean,
            "work_max": self.balance.max,
            "imbalance": self.balance.imbalance,
        }


def block_mapping(
    prepared: PreparedMatrix,
    nprocs: int,
    grain: int = 4,
    min_width: int = 4,
    zero_tolerance: float = 0.0,
    grain_rectangle: int | None = None,
    options: SchedulerOptions | None = None,
    include_scale_traffic: bool = True,
) -> MappingResult:
    """Run the paper's block-based partitioner + scheduler and measure it."""
    with obs.span("pipeline.block_mapping", matrix=prepared.name, nprocs=nprocs, grain=grain):
        with obs.span("pipeline.partition", matrix=prepared.name, grain=grain):
            partition = partition_factor(
                prepared.pattern,
                grain=grain,
                min_width=min_width,
                zero_tolerance=zero_tolerance,
                grain_rectangle=grain_rectangle,
            )
        obs.counter("pipeline.stage.partition")
        updates = prepared.updates
        with obs.span("pipeline.dependencies", matrix=prepared.name):
            deps = analyze_dependencies(partition, updates)
        obs.counter("pipeline.stage.dependencies")
        with obs.span("pipeline.schedule", matrix=prepared.name, nprocs=nprocs):
            uw = unit_work(partition, updates)
            assignment = schedule_blocks(partition, deps, nprocs, unit_work=uw, options=options)
        obs.counter("pipeline.stage.schedule")
        with obs.span("pipeline.metrics", matrix=prepared.name):
            traffic = data_traffic(assignment, updates, include_scale=include_scale_traffic)
            balance = load_balance(processor_work(assignment, updates))
        obs.counter("pipeline.stage.metrics")
    return MappingResult(prepared, assignment, traffic, balance, partition, deps)


def adaptive_block_mapping(
    prepared: PreparedMatrix,
    nprocs: int,
    grain: int = 4,
    min_width: int = 4,
    zero_tolerance: float = 0.0,
    options: SchedulerOptions | None = None,
    include_scale_traffic: bool = True,
) -> MappingResult:
    """Run the interleaved adaptive partitioner/scheduler (§3.2 parameter
    (a)): triangle partition counts limited by predecessor-processor
    counts."""
    from .adaptive import adaptive_schedule

    with obs.span("pipeline.adaptive_block_mapping", matrix=prepared.name, nprocs=nprocs, grain=grain):
        updates = prepared.updates
        with obs.span("pipeline.adaptive_schedule", matrix=prepared.name, nprocs=nprocs):
            partition, assignment = adaptive_schedule(
                prepared.pattern,
                updates,
                nprocs,
                grain=grain,
                min_width=min_width,
                zero_tolerance=zero_tolerance,
                options=options,
            )
        obs.counter("pipeline.stage.partition")
        obs.counter("pipeline.stage.schedule")
        with obs.span("pipeline.dependencies", matrix=prepared.name):
            deps = analyze_dependencies(partition, updates)
        obs.counter("pipeline.stage.dependencies")
        with obs.span("pipeline.metrics", matrix=prepared.name):
            traffic = data_traffic(assignment, updates, include_scale=include_scale_traffic)
            balance = load_balance(processor_work(assignment, updates))
        obs.counter("pipeline.stage.metrics")
    return MappingResult(prepared, assignment, traffic, balance, partition, deps)


def wrap_mapping(
    prepared: PreparedMatrix,
    nprocs: int,
    include_scale_traffic: bool = True,
) -> MappingResult:
    """Run the wrap-mapped column baseline and measure it."""
    with obs.span("pipeline.wrap_mapping", matrix=prepared.name, nprocs=nprocs):
        assignment = wrap_assignment(prepared.pattern, nprocs)
        obs.counter("pipeline.stage.schedule")
        updates = prepared.updates
        with obs.span("pipeline.metrics", matrix=prepared.name):
            traffic = data_traffic(assignment, updates, include_scale=include_scale_traffic)
            balance = load_balance(processor_work(assignment, updates))
        obs.counter("pipeline.stage.metrics")
    return MappingResult(prepared, assignment, traffic, balance)


# ----------------------------------------------------------------------
# multi-P entry points: one invariant prefix, K processor counts
# ----------------------------------------------------------------------


def _batched_results(
    prepared: PreparedMatrix,
    assignments: list[Assignment],
    include_scale_traffic: bool,
    partition: Partition | None = None,
    dependencies: DependencyInfo | None = None,
    partitions: list[Partition] | None = None,
) -> list[MappingResult]:
    """Measure K assignments with the batched kernel and wrap them as
    :class:`MappingResult` rows (value-identical to the per-cell path)."""
    from ..machine.batched import batched_metrics

    updates = prepared.updates
    read_index = prepared.read_index if include_scale_traffic else None
    with obs.span(
        "pipeline.metrics", matrix=prepared.name, cells=len(assignments)
    ):
        metrics = batched_metrics(
            updates,
            assignments,
            read_index=read_index,
            include_scale=include_scale_traffic,
        )
    obs.counter("pipeline.stage.metrics", len(assignments))
    out = []
    for k, (assignment, (traffic, balance)) in enumerate(zip(assignments, metrics)):
        part = partitions[k] if partitions is not None else partition
        out.append(
            MappingResult(prepared, assignment, traffic, balance, part, dependencies)
        )
    return out


def block_mappings(
    partitioned: PartitionedMatrix,
    procs,
    options: SchedulerOptions | None = None,
    include_scale_traffic: bool = True,
) -> list[MappingResult]:
    """Measure the block mapping at every processor count in ``procs``.

    The nprocs-invariant stages (partition, dependencies, unit work)
    come precomputed on ``partitioned``; only the scheduler runs per
    processor count, and all cells share one batched metrics pass.
    Each result is value-identical to :func:`block_mapping` at the same
    parameters.
    """
    prepared = partitioned.prepared
    assignments = []
    with obs.span(
        "pipeline.block_mappings",
        matrix=prepared.name,
        grain=partitioned.grain,
        cells=len(tuple(procs)),
    ):
        for nprocs in procs:
            with obs.span("pipeline.schedule", matrix=prepared.name, nprocs=nprocs):
                assignments.append(
                    schedule_blocks(
                        partitioned.partition,
                        partitioned.dependencies,
                        nprocs,
                        unit_work=partitioned.unit_work,
                        options=options,
                    )
                )
            obs.counter("pipeline.stage.schedule")
        return _batched_results(
            prepared,
            assignments,
            include_scale_traffic,
            partition=partitioned.partition,
            dependencies=partitioned.dependencies,
        )


def wrap_mappings(
    prepared: PreparedMatrix,
    procs,
    include_scale_traffic: bool = True,
) -> list[MappingResult]:
    """Measure the wrap-mapped baseline at every processor count in
    ``procs`` with one batched metrics pass (value-identical to
    :func:`wrap_mapping` per cell)."""
    assignments = []
    with obs.span(
        "pipeline.wrap_mappings", matrix=prepared.name, cells=len(tuple(procs))
    ):
        for nprocs in procs:
            assignments.append(wrap_assignment(prepared.pattern, nprocs))
            obs.counter("pipeline.stage.schedule")
        return _batched_results(prepared, assignments, include_scale_traffic)


def adaptive_block_mappings(
    prepared: PreparedMatrix,
    procs,
    grain: int = 4,
    min_width: int = 4,
    zero_tolerance: float = 0.0,
    options: SchedulerOptions | None = None,
    include_scale_traffic: bool = True,
) -> list[MappingResult]:
    """Measure the adaptive (interleaved) mapping at every processor
    count in ``procs``.

    The adaptive partition itself depends on the processor count
    (parameter (a)), so only the metrics pass is shared; each cell's
    traffic/balance is value-identical to :func:`adaptive_block_mapping`.
    Dependency analysis is skipped here (``MappingResult.dependencies``
    is ``None``) — it is not needed for the sweep metrics and can be
    re-derived with :func:`analyze_dependencies` when wanted.
    """
    from .adaptive import adaptive_schedule

    updates = prepared.updates
    assignments = []
    partitions = []
    with obs.span(
        "pipeline.adaptive_block_mappings",
        matrix=prepared.name,
        grain=grain,
        cells=len(tuple(procs)),
    ):
        for nprocs in procs:
            with obs.span(
                "pipeline.adaptive_schedule", matrix=prepared.name, nprocs=nprocs
            ):
                partition, assignment = adaptive_schedule(
                    prepared.pattern,
                    updates,
                    nprocs,
                    grain=grain,
                    min_width=min_width,
                    zero_tolerance=zero_tolerance,
                    options=options,
                )
            obs.counter("pipeline.stage.partition")
            obs.counter("pipeline.stage.schedule")
            assignments.append(assignment)
            partitions.append(partition)
        return _batched_results(
            prepared,
            assignments,
            include_scale_traffic,
            partitions=partitions,
        )
