"""Block allocation strategy (paper §3.4).

The allocation pass, faithful to the paper:

1. *Independent columns* (column units never updated by another unit)
   are allocated wrap-around.
2. The remaining clusters are scanned left to right.
   A dependent column goes to a processor that worked on one of its
   predecessors ("arbitrarily picked" — the choice is a policy knob).
3. In a multi-column cluster, the triangle's units are allocated first
   (diagonal unit triangles top to bottom, then unit rectangles
   row-major).  Each unit goes to the first predecessor processor not
   yet in the per-triangle set P_a; when every predecessor processor is
   already in P_a, the globally "available" processor (a round-robin
   marker over P_g) takes it.
4. The units of each rectangle below the triangle are restricted to
   P_t — the processors that worked on the triangle — cycled in order
   of increasing accumulated work, re-sorted before each rectangle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import trace as obs
from .assignment import Assignment
from .blocks import BlockKind
from .dependencies import DependencyInfo
from .partitioner import Partition

__all__ = ["SchedulerOptions", "schedule_blocks", "schedule_blocks_reference"]

_POLICIES = ("first", "least_loaded", "round_robin")


@dataclass(frozen=True)
class SchedulerOptions:
    """Tunable policies of the allocator.

    ``dependent_column_policy`` resolves the paper's "arbitrarily
    picked" processor for dependent columns: ``first`` takes the
    processor of the first predecessor, ``least_loaded`` the
    least-loaded predecessor processor, ``round_robin`` ignores
    predecessors and uses the global marker.
    """

    dependent_column_policy: str = "first"

    def __post_init__(self) -> None:
        if self.dependent_column_policy not in _POLICIES:
            raise ValueError(
                f"unknown policy {self.dependent_column_policy!r}; "
                f"expected one of {_POLICIES}"
            )


def schedule_blocks(
    partition: Partition,
    deps: DependencyInfo,
    nprocs: int,
    unit_work: np.ndarray | None = None,
    options: SchedulerOptions | None = None,
) -> Assignment:
    """Allocate every unit block to a processor.

    ``unit_work`` (work units per unit block) drives the increasing-work
    ordering of P_t; it defaults to the units' element counts.

    Fast path of :func:`schedule_blocks_reference` (assignment-identical,
    asserted by the tests): units come pre-grouped per cluster from the
    partition instead of a per-cluster scan over all units, and the
    per-triangle P_a / P_t processor sets are flat arrays — P_a a
    membership bitmap over the processor ids, P_t the sorted unique
    triangle processors via ``np.unique`` — instead of Python sets.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    options = options or SchedulerOptions()
    units = partition.units
    n_units = len(units)
    if unit_work is None:
        unit_work = partition.unit_work
    unit_work = np.asarray(unit_work, dtype=np.float64)
    if len(unit_work) != n_units:
        raise ValueError("unit_work must have one entry per unit")

    proc_of_unit = np.full(n_units, -1, dtype=np.int64)
    proc_work = np.zeros(nprocs, dtype=np.float64)
    marker = 0  # the "currently available" processor in P_g

    unit_work_l = unit_work.tolist()
    proc_of_unit_l = proc_of_unit.tolist()
    proc_work_l = proc_work.tolist()

    independent = deps.independent_units
    preds = deps.predecessors
    policy = options.dependent_column_policy

    # --- step 1: independent columns, wrap-around ---------------------
    wrap_counter = 0
    is_independent_column = [False] * n_units
    for u in units:  # units are in left-to-right cluster order
        if u.kind is BlockKind.COLUMN and independent[u.uid]:
            p = wrap_counter % nprocs
            proc_of_unit_l[u.uid] = p
            proc_work_l[p] += unit_work_l[u.uid]
            wrap_counter += 1
            is_independent_column[u.uid] = True
    obs.counter("scheduler.independent_columns", wrap_counter)

    # --- steps 2-4: scan remaining clusters left to right -------------
    in_pa = np.zeros(nprocs, dtype=bool)
    for cluster in partition.clusters:
        cunits = sorted(
            partition._units_by_cluster[cluster.index], key=lambda u: u.order_key
        )
        if cluster.is_column:
            u = cunits[0]
            if is_independent_column[u.uid]:
                continue
            pred_procs = [proc_of_unit_l[p] for p in preds[u.uid].tolist()]
            pred_procs = [p for p in pred_procs if p >= 0]
            if not pred_procs:
                chosen = marker
                marker = (marker + 1) % nprocs
                obs.counter("scheduler.dependent_column.round_robin")
            elif policy == "first":
                chosen = pred_procs[0]
                obs.counter("scheduler.dependent_column.predecessor")
            elif policy == "least_loaded":
                chosen = min(set(pred_procs), key=lambda p: (proc_work_l[p], p))
                obs.counter("scheduler.dependent_column.predecessor")
            else:  # round_robin
                chosen = marker
                marker = (marker + 1) % nprocs
                obs.counter("scheduler.dependent_column.round_robin")
            proc_of_unit_l[u.uid] = chosen
            proc_work_l[chosen] += unit_work_l[u.uid]
            continue

        # Multi-column cluster: triangle units first, in order.
        tri_units = [u for u in cunits if u.parent_kind is BlockKind.TRIANGLE]
        rect_units = [u for u in cunits if u.parent_kind is BlockKind.RECTANGLE]
        in_pa[:] = False  # P_a: processors already used in this triangle
        for u in tri_units:
            chosen = -1
            for p_unit in preds[u.uid].tolist():
                proc = proc_of_unit_l[p_unit]
                if proc >= 0 and not in_pa[proc]:
                    chosen = proc
                    break
            if chosen < 0:
                chosen = marker
                marker = (marker + 1) % nprocs
                obs.counter("scheduler.triangle.round_robin_fallback")
            else:
                obs.counter("scheduler.triangle.pa_hit")
            in_pa[chosen] = True
            proc_of_unit_l[u.uid] = chosen
            proc_work_l[chosen] += unit_work_l[u.uid]

        # Rectangles below: restricted to P_t, in increasing-work order,
        # re-sorted before each dense rectangle.
        p_t = np.unique(
            np.asarray([proc_of_unit_l[u.uid] for u in tri_units], dtype=np.int64)
        ).tolist()
        by_rect: dict[int, list] = {}
        for u in rect_units:
            by_rect.setdefault(u.order_key[1], []).append(u)
        for rect_index in sorted(by_rect):
            ordered_procs = sorted(p_t, key=lambda p: (proc_work_l[p], p))
            npt = len(ordered_procs)
            for slot, u in enumerate(sorted(by_rect[rect_index], key=lambda x: x.order_key)):
                chosen = ordered_procs[slot % npt]
                proc_of_unit_l[u.uid] = chosen
                proc_work_l[chosen] += unit_work_l[u.uid]
        obs.counter("scheduler.rectangle.pt_assigned", len(rect_units))

    proc_of_unit = np.asarray(proc_of_unit_l, dtype=np.int64)
    proc_work = np.asarray(proc_work_l, dtype=np.float64)
    if (proc_of_unit < 0).any():  # pragma: no cover - internal invariant
        raise AssertionError("scheduler left a unit unassigned")

    if obs.is_enabled():
        obs.counter("scheduler.units_assigned", n_units)
        obs.gauge("scheduler.proc_work", proc_work.tolist())

    owner = proc_of_unit[partition.unit_of_element]
    return Assignment(
        scheme="block",
        nprocs=nprocs,
        pattern=partition.pattern,
        owner_of_element=owner,
        proc_of_unit=proc_of_unit,
        partition=partition,
    )


def schedule_blocks_reference(
    partition: Partition,
    deps: DependencyInfo,
    nprocs: int,
    unit_work: np.ndarray | None = None,
    options: SchedulerOptions | None = None,
) -> Assignment:
    """Reference allocator, kept bit-identical to the pre-vectorization
    implementation (see :func:`schedule_blocks`)."""
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    options = options or SchedulerOptions()
    units = partition.units
    n_units = len(units)
    if unit_work is None:
        unit_work = partition.unit_work
    unit_work = np.asarray(unit_work, dtype=np.float64)
    if len(unit_work) != n_units:
        raise ValueError("unit_work must have one entry per unit")

    proc_of_unit = np.full(n_units, -1, dtype=np.int64)
    proc_work = np.zeros(nprocs, dtype=np.float64)
    marker = 0  # the "currently available" processor in P_g

    def assign(uid: int, proc: int) -> None:
        proc_of_unit[uid] = proc
        proc_work[proc] += unit_work[uid]

    def take_marker() -> int:
        nonlocal marker
        p = marker
        marker = (marker + 1) % nprocs
        return p

    independent = deps.independent_units
    preds = deps.predecessors

    # --- step 1: independent columns, wrap-around ---------------------
    wrap_counter = 0
    independent_column_uids = set()
    for u in units:  # units are in left-to-right cluster order
        if u.kind is BlockKind.COLUMN and independent[u.uid]:
            assign(u.uid, wrap_counter % nprocs)
            wrap_counter += 1
            independent_column_uids.add(u.uid)
    obs.counter("scheduler.independent_columns", wrap_counter)

    # --- steps 2-4: scan remaining clusters left to right -------------
    for cluster in partition.clusters:
        cunits = sorted(partition.units_of_cluster(cluster.index), key=lambda u: u.order_key)
        if cluster.is_column:
            u = cunits[0]
            if u.uid in independent_column_uids:
                continue
            pred_procs = [int(proc_of_unit[p]) for p in preds[u.uid]]
            pred_procs = [p for p in pred_procs if p >= 0]
            if not pred_procs:
                assign(u.uid, take_marker())
                obs.counter("scheduler.dependent_column.round_robin")
            elif options.dependent_column_policy == "first":
                assign(u.uid, pred_procs[0])
                obs.counter("scheduler.dependent_column.predecessor")
            elif options.dependent_column_policy == "least_loaded":
                best = min(set(pred_procs), key=lambda p: (proc_work[p], p))
                assign(u.uid, best)
                obs.counter("scheduler.dependent_column.predecessor")
            else:  # round_robin
                assign(u.uid, take_marker())
                obs.counter("scheduler.dependent_column.round_robin")
            continue

        # Multi-column cluster: triangle units first, in order.
        tri_units = [u for u in cunits if u.parent_kind is BlockKind.TRIANGLE]
        rect_units = [u for u in cunits if u.parent_kind is BlockKind.RECTANGLE]
        p_a: set[int] = set()  # processors already used in this triangle
        for u in tri_units:
            chosen = -1
            for p_unit in preds[u.uid]:
                proc = int(proc_of_unit[p_unit])
                if proc >= 0 and proc not in p_a:
                    chosen = proc
                    break
            if chosen < 0:
                chosen = take_marker()
                obs.counter("scheduler.triangle.round_robin_fallback")
            else:
                obs.counter("scheduler.triangle.pa_hit")
            p_a.add(chosen)
            assign(u.uid, chosen)

        # Rectangles below: restricted to P_t, in increasing-work order,
        # re-sorted before each dense rectangle.
        p_t = sorted({int(proc_of_unit[u.uid]) for u in tri_units})
        by_rect: dict[int, list] = {}
        for u in rect_units:
            by_rect.setdefault(u.order_key[1], []).append(u)
        for rect_index in sorted(by_rect):
            ordered_procs = sorted(p_t, key=lambda p: (proc_work[p], p))
            for slot, u in enumerate(sorted(by_rect[rect_index], key=lambda x: x.order_key)):
                assign(u.uid, ordered_procs[slot % len(ordered_procs)])
        obs.counter("scheduler.rectangle.pt_assigned", len(rect_units))

    if (proc_of_unit < 0).any():  # pragma: no cover - internal invariant
        raise AssertionError("scheduler left a unit unassigned")

    if obs.is_enabled():
        obs.counter("scheduler.units_assigned", n_units)
        obs.gauge("scheduler.proc_work", proc_work.tolist())

    owner = proc_of_unit[partition.unit_of_element]
    return Assignment(
        scheme="block",
        nprocs=nprocs,
        pattern=partition.pattern,
        owner_of_element=owner,
        proc_of_unit=proc_of_unit,
        partition=partition,
    )
