"""The paper's contribution: block-based partitioning and scheduling."""

from .assignment import Assignment
from .blocks import BlockKind, DenseBlock, UnitBlock
from .clusters import Cluster, ClusterSet, find_clusters
from .execution import critical_path_priority, execution_order
from .dependencies import (
    CATEGORY_NAMES,
    DependencyInfo,
    UnitLocator,
    analyze_dependencies,
    classify_pair_updates,
)
from .interval_tree import Interval, IntervalTree
from .partitioner import Partition, chunk_bounds, partition_clusters, partition_factor
from .adaptive import adaptive_schedule
from .pipeline import (
    MappingResult,
    PartitionedMatrix,
    PreparedMatrix,
    adaptive_block_mapping,
    adaptive_block_mappings,
    block_mapping,
    block_mappings,
    partition_prepared,
    prepare,
    wrap_mapping,
    wrap_mappings,
)
from .scheduler import SchedulerOptions, schedule_blocks
from .variants import schedule_affinity, schedule_lpt, unit_edge_volumes
from .validation import (
    ValidationError,
    validate_assignment,
    validate_dependencies,
    validate_partition,
)
from .wrap import block_cyclic_columns, two_d_cyclic, wrap_assignment

__all__ = [
    "Assignment",
    "BlockKind",
    "DenseBlock",
    "UnitBlock",
    "Cluster",
    "ClusterSet",
    "find_clusters",
    "critical_path_priority",
    "execution_order",
    "CATEGORY_NAMES",
    "DependencyInfo",
    "UnitLocator",
    "analyze_dependencies",
    "classify_pair_updates",
    "Interval",
    "IntervalTree",
    "Partition",
    "chunk_bounds",
    "partition_clusters",
    "partition_factor",
    "MappingResult",
    "PartitionedMatrix",
    "PreparedMatrix",
    "adaptive_block_mapping",
    "adaptive_block_mappings",
    "adaptive_schedule",
    "block_mapping",
    "block_mappings",
    "partition_prepared",
    "prepare",
    "wrap_mapping",
    "wrap_mappings",
    "SchedulerOptions",
    "schedule_blocks",
    "schedule_affinity",
    "schedule_lpt",
    "unit_edge_volumes",
    "ValidationError",
    "validate_assignment",
    "validate_dependencies",
    "validate_partition",
    "block_cyclic_columns",
    "two_d_cyclic",
    "wrap_assignment",
]
