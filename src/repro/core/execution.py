"""Per-processor execution ordering.

The paper splits scheduling into two parts — allocating unit blocks to
processors and "ordering the computational work within each processor" —
and addresses only the first.  This module supplies the second: a
dependency-consistent execution sequence for each processor, plus a
priority variant (critical-path-length order) for the event simulator
and the distributed executors.
"""

from __future__ import annotations

import numpy as np

from ..machine.simulate import topological_order
from .assignment import Assignment
from .dependencies import DependencyInfo

__all__ = ["execution_order", "critical_path_priority"]


def execution_order(
    assignment: Assignment, deps: DependencyInfo, priority: np.ndarray | None = None
) -> list[np.ndarray]:
    """A valid execution sequence of each processor's units.

    Units are sequenced by a global topological order of the dependency
    DAG (ties broken by ``priority`` — lower runs earlier — then by uid)
    and then split per processor, so executing each processor's list in
    order can never deadlock.
    """
    partition = assignment.partition
    if partition is None or assignment.proc_of_unit is None:
        raise ValueError("execution order requires a block assignment")
    n_units = partition.num_units
    topo = topological_order(n_units, deps.edges)
    if priority is not None:
        if len(priority) != n_units:
            raise ValueError("priority must have one entry per unit")
        # Stable re-sort inside the topological constraint: process in
        # topo order but prefer lower priority among simultaneously-free
        # units.  Implemented as a Kahn pass keyed by (priority, uid).
        topo = _kahn_with_priority(n_units, deps, priority)
    per_proc: list[list[int]] = [[] for _ in range(assignment.nprocs)]
    for u in topo.tolist():
        per_proc[int(assignment.proc_of_unit[u])].append(u)
    return [np.asarray(lst, dtype=np.int64) for lst in per_proc]


def _kahn_with_priority(
    n_units: int, deps: DependencyInfo, priority: np.ndarray
) -> np.ndarray:
    import heapq

    indeg = np.zeros(n_units, dtype=np.int64)
    for _s, t in deps.edges.tolist():
        indeg[t] += 1
    succ = deps.successors
    heap = [(float(priority[u]), u) for u in range(n_units) if indeg[u] == 0]
    heapq.heapify(heap)
    out = np.empty(n_units, dtype=np.int64)
    k = 0
    while heap:
        _, u = heapq.heappop(heap)
        out[k] = u
        k += 1
        for v in succ[u].tolist():
            indeg[v] -= 1
            if indeg[v] == 0:
                heapq.heappush(heap, (float(priority[v]), v))
    if k != n_units:
        raise ValueError("unit dependency graph has a cycle")
    return out


def critical_path_priority(
    deps: DependencyInfo, unit_work: np.ndarray
) -> np.ndarray:
    """Negated critical-path length of each unit (so that units heading
    the longest dependent chains sort first as a priority)."""
    n_units = deps.partition.num_units
    unit_work = np.asarray(unit_work, dtype=np.float64)
    if len(unit_work) != n_units:
        raise ValueError("unit_work must have one entry per unit")
    cp = unit_work.copy()
    topo = topological_order(n_units, deps.edges)
    for u in reversed(topo.tolist()):
        succs = deps.successors[u]
        if len(succs):
            cp[u] = unit_work[u] + cp[succs].max()
    return -cp
