"""Cluster identification (paper §3.1).

A cluster is a single column or a strip of consecutive columns whose
diagonal block is a dense triangle (optionally admitting a bounded
fraction of padding zeros).  A multi-column cluster additionally owns a
set of dense off-diagonal rectangles: the maximal runs of consecutive
nonzero rows below the triangle, spanning the full cluster width.

:func:`find_clusters` dispatches to a vectorized scan for the default
``zero_tolerance == 0`` case: each column's leading run of consecutive
rows is measured once with ``np.diff`` over the whole pattern (buffers
pre-sized from the column counts), and a strip [s, e] has a dense
triangle iff every column c in it reaches row e consecutively — a
running-minimum test over those run lengths.  Any nonzero tolerance
falls back to :func:`find_clusters_reference`, the original per-entry
probing scan, which is also kept as the identity reference for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.pattern import LowerPattern
from .blocks import BlockKind, DenseBlock

__all__ = ["Cluster", "ClusterSet", "find_clusters", "find_clusters_reference"]


@dataclass(frozen=True)
class Cluster:
    """One cluster: its column strip and its dense blocks.

    Exactly one of two shapes: a single-column cluster has ``column``
    set and no triangle/rectangles; a multi-column cluster has a
    ``triangle`` and zero or more ``rectangles``.
    """

    index: int
    col_lo: int
    col_hi: int
    triangle: DenseBlock | None
    rectangles: tuple[DenseBlock, ...]
    column: DenseBlock | None = None
    triangle_padding: int = 0
    rectangle_padding: int = 0

    def __post_init__(self) -> None:
        if (self.triangle is None) == (self.column is None):
            raise ValueError("cluster must have either a triangle or a column block")

    @property
    def width(self) -> int:
        return self.col_hi - self.col_lo + 1

    @property
    def is_column(self) -> bool:
        return self.column is not None

    @property
    def padding_zeros(self) -> int:
        """Structural zeros included in this cluster's dense blocks:
        triangle padding (bounded by the zero tolerance) plus rectangle
        padding (rows present in only part of the strip)."""
        return self.triangle_padding + self.rectangle_padding

    @property
    def dense_blocks(self) -> tuple[DenseBlock, ...]:
        if self.column is not None:
            return (self.column,)
        return (self.triangle, *self.rectangles)


@dataclass(frozen=True)
class ClusterSet:
    """All clusters of a factor pattern, left to right."""

    pattern: LowerPattern
    clusters: tuple[Cluster, ...]
    min_width: int
    zero_tolerance: float

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self):
        return iter(self.clusters)

    def __getitem__(self, i: int) -> Cluster:
        return self.clusters[i]

    @property
    def cluster_of_column(self) -> np.ndarray:
        out = np.empty(self.pattern.n, dtype=np.int64)
        for c in self.clusters:
            out[c.col_lo : c.col_hi + 1] = c.index
        return out

    def multi_column_clusters(self) -> list[Cluster]:
        return [c for c in self.clusters if not c.is_column]

    def total_padding(self) -> int:
        return sum(c.padding_zeros for c in self.clusters)

    def total_triangle_padding(self) -> int:
        return sum(c.triangle_padding for c in self.clusters)


def _triangle_missing_when_extended(pattern: LowerPattern, s: int, e_new: int) -> int:
    """Padding zeros added to the triangle of strip [s, e_new] relative to
    [s, e_new - 1]: the required entries are row ``e_new`` in columns
    s..e_new (the diagonal is always present)."""
    missing = 0
    for c in range(s, e_new):
        if not pattern.has(e_new, c):
            missing += 1
    return missing


def _rectangles_for_strip(
    pattern: LowerPattern, cluster_idx: int, s: int, e: int
) -> tuple[tuple[DenseBlock, ...], int]:
    """Dense rectangles below the triangle of strip [s, e]: maximal runs of
    consecutive rows > e that are nonzero in any column of the strip.
    Returns (rectangles, padding-zero count inside them)."""
    pieces = []
    for c in range(s, e + 1):
        col = pattern.col(c)
        pieces.append(col[col > e])
    rows = np.unique(np.concatenate(pieces)) if pieces else np.zeros(0, dtype=np.int64)
    if len(rows) == 0:
        return (), 0
    # Split into maximal consecutive runs.
    breaks = np.nonzero(np.diff(rows) > 1)[0]
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [len(rows) - 1]])
    rects = []
    padding = 0
    width = e - s + 1
    present = {int(r) for r in rows}
    present_count: dict[int, int] = {int(r): 0 for r in rows}
    for piece in pieces:
        for r in piece.tolist():
            present_count[int(r)] += 1
    assert present == set(present_count)
    for a, b in zip(starts.tolist(), ends.tolist()):
        r_lo, r_hi = int(rows[a]), int(rows[b])
        rects.append(
            DenseBlock(BlockKind.RECTANGLE, cluster_idx, s, e, r_lo, r_hi)
        )
        for r in range(r_lo, r_hi + 1):
            padding += width - present_count.get(r, 0)
    return tuple(rects), padding


def _check_cluster_params(min_width: int, zero_tolerance: float) -> None:
    if min_width < 1:
        raise ValueError("min_width must be at least 1")
    if not (0.0 <= zero_tolerance < 1.0):
        raise ValueError("zero_tolerance must be in [0, 1)")


def _rectangles_for_strip_fast(
    pattern: LowerPattern, cluster_idx: int, s: int, e: int
) -> tuple[tuple[DenseBlock, ...], int]:
    """Vectorized :func:`_rectangles_for_strip`: one slice over the whole
    strip, runs found via ``np.diff`` on the unique below-triangle rows,
    padding from cumulative per-row presence counts."""
    lo, hi = int(pattern.indptr[s]), int(pattern.indptr[e + 1])
    strip_rows = pattern.rowidx[lo:hi]
    below = strip_rows[strip_rows > e]
    if below.size == 0:
        return (), 0
    rows, present = np.unique(below, return_counts=True)
    breaks = np.nonzero(np.diff(rows) > 1)[0]
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [len(rows) - 1]])
    csum = np.concatenate([[0], np.cumsum(present)])
    width = e - s + 1
    rects = []
    padding = 0
    for a, b in zip(starts.tolist(), ends.tolist()):
        r_lo, r_hi = int(rows[a]), int(rows[b])
        rects.append(DenseBlock(BlockKind.RECTANGLE, cluster_idx, s, e, r_lo, r_hi))
        padding += width * (r_hi - r_lo + 1) - int(csum[b + 1] - csum[a])
    return tuple(rects), padding


def _find_clusters_dense(pattern: LowerPattern, min_width: int) -> ClusterSet:
    """Fast scan for ``zero_tolerance == 0``: a strip's triangle is dense
    iff every member column's leading run of consecutive rows reaches the
    strip's last column."""
    n = pattern.n
    indptr = pattern.indptr
    nnz = pattern.nnz
    # reach[c] = one past the last row r such that rows c..r are all
    # present in column c (the diagonal is always present).  Buffers are
    # pre-sized from the column counts; run breaks come from np.diff.
    if nnz:
        brk = np.empty(nnz, dtype=bool)
        brk[:-1] = np.diff(pattern.rowidx) != 1
        brk[-1] = True
        brk[indptr[1:] - 1] = True  # a column's last entry ends its run
        brkpos = np.flatnonzero(brk)
        first_brk = brkpos[np.searchsorted(brkpos, indptr[:-1])]
        runlen = first_brk - indptr[:-1] + 1
    else:
        runlen = np.zeros(0, dtype=np.int64)
    reach = (np.arange(n, dtype=np.int64) + runlen).tolist()
    last_row = pattern.rowidx[indptr[1:] - 1].tolist() if n else []
    clusters: list[Cluster] = []
    s = 0
    while s < n:
        # Grow [s, e] while min(reach[s..e]) still covers row e + 1.
        e = s
        m = reach[s]
        while e + 1 < n:
            c = e + 1
            m2 = reach[c] if reach[c] < m else m
            if m2 < c + 1:
                break
            m = m2
            e += 1
        width = e - s + 1
        idx = len(clusters)
        if width >= min_width and width > 1:
            tri = DenseBlock(BlockKind.TRIANGLE, idx, s, e, s, e)
            rects, rect_padding = _rectangles_for_strip_fast(pattern, idx, s, e)
            clusters.append(
                Cluster(idx, s, e, tri, rects, rectangle_padding=rect_padding)
            )
            s = e + 1
        else:
            clusters.append(
                Cluster(
                    idx,
                    s,
                    s,
                    None,
                    (),
                    column=DenseBlock(BlockKind.COLUMN, idx, s, s, s, last_row[s]),
                )
            )
            s += 1
    return ClusterSet(pattern, tuple(clusters), min_width, 0.0)


def find_clusters(
    pattern: LowerPattern,
    min_width: int = 4,
    zero_tolerance: float = 0.0,
) -> ClusterSet:
    """Identify clusters in a factor pattern, scanning left to right.

    A strip [s, e] is grown greedily while the fraction of padding zeros
    in its diagonal triangle stays within ``zero_tolerance``.  Strips
    narrower than ``min_width`` are broken into single-column clusters
    (the paper's "minimum cluster width" parameter); the scan then
    resumes at the *next* column, so a wide cluster starting one column
    later is still found (cf. the paper's column-34 example).

    The default ``zero_tolerance == 0`` runs the vectorized scan; any
    nonzero tolerance uses :func:`find_clusters_reference`.
    """
    _check_cluster_params(min_width, zero_tolerance)
    if zero_tolerance == 0.0:
        return _find_clusters_dense(pattern, min_width)
    return find_clusters_reference(pattern, min_width, zero_tolerance)


def find_clusters_reference(
    pattern: LowerPattern,
    min_width: int = 4,
    zero_tolerance: float = 0.0,
) -> ClusterSet:
    """Reference cluster scan: per-entry probing, kept bit-identical to
    the pre-vectorization implementation (see :func:`find_clusters`)."""
    _check_cluster_params(min_width, zero_tolerance)
    n = pattern.n
    clusters: list[Cluster] = []
    s = 0
    while s < n:
        # Grow the strip [s, e] as far as the zero tolerance allows.
        e = s
        missing = 0
        while e + 1 < n:
            add = _triangle_missing_when_extended(pattern, s, e + 1)
            w = e + 1 - s + 1
            tri_area = w * (w + 1) // 2
            if missing + add > zero_tolerance * tri_area:
                break
            missing += add
            e += 1
        width = e - s + 1
        idx = len(clusters)
        if width >= min_width and width > 1:
            tri = DenseBlock(BlockKind.TRIANGLE, idx, s, e, s, e)
            rects, rect_padding = _rectangles_for_strip(pattern, idx, s, e)
            clusters.append(
                Cluster(
                    idx, s, e, tri, rects,
                    triangle_padding=missing,
                    rectangle_padding=rect_padding,
                )
            )
            s = e + 1
        else:
            col = pattern.col(s)
            clusters.append(
                Cluster(
                    idx,
                    s,
                    s,
                    None,
                    (),
                    column=DenseBlock(BlockKind.COLUMN, idx, s, s, s, int(col[-1])),
                )
            )
            s += 1
    return ClusterSet(pattern, tuple(clusters), min_width, zero_tolerance)
