"""Assignment of factor elements to processors."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.pattern import LowerPattern
from .partitioner import Partition

__all__ = ["Assignment"]


@dataclass
class Assignment:
    """An owner-computes mapping of every factor element to a processor.

    ``owner_of_element[e]`` is the processor owning element id ``e`` (and
    therefore performing all updates targeting it).  For block mappings,
    ``proc_of_unit`` and ``partition`` describe the unit-level view.
    """

    scheme: str
    nprocs: int
    pattern: LowerPattern
    owner_of_element: np.ndarray
    proc_of_unit: np.ndarray | None = None
    partition: Partition | None = None

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be positive")
        if len(self.owner_of_element) != self.pattern.nnz:
            raise ValueError("owner_of_element must have one entry per element")
        owners = self.owner_of_element
        if len(owners) and (owners.min() < 0 or owners.max() >= self.nprocs):
            raise ValueError("element owner out of processor range")

    def elements_of(self, proc: int) -> np.ndarray:
        """Element ids owned by ``proc``."""
        return np.nonzero(self.owner_of_element == proc)[0]

    def units_of(self, proc: int) -> np.ndarray:
        if self.proc_of_unit is None:
            raise ValueError(f"{self.scheme} assignment has no unit-level view")
        return np.nonzero(self.proc_of_unit == proc)[0]
