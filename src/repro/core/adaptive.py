"""Adaptive (interleaved) partitioning and scheduling — paper §3.2 (a).

The paper states that the number of partitions of a cluster triangle is
determined by "(a) the number of processors that are assigned to the
blocks on which the triangle depends" and "(b) a certain minimum work
requirement" (the grain size).  Parameter (a) requires the predecessors
to be allocated already, so partitioning and allocation must be
interleaved cluster by cluster — this module implements that mode.  The
default pipeline (:func:`repro.core.block_mapping`) applies (b) only, as
in the paper's reported runs.
"""

from __future__ import annotations

import numpy as np

from ..sparse.pattern import LowerPattern
from ..symbolic.updates import UpdateSet
from .assignment import Assignment
from .blocks import BlockKind, UnitBlock
from .clusters import find_clusters
from .partitioner import Partition, _partition_rectangle, _partition_triangle
from .scheduler import SchedulerOptions

__all__ = ["adaptive_schedule"]


class _UpdateIndex:
    """Per-element access to the updates targeting it."""

    def __init__(self, updates: UpdateSet):
        self.updates = updates
        self.order = np.argsort(updates.target, kind="stable")
        self.sorted_targets = updates.target[self.order]

    def updates_targeting(self, elements: np.ndarray) -> np.ndarray:
        """Indices (into the update arrays) of updates whose target is in
        ``elements``."""
        elements = np.sort(elements)
        lo = np.searchsorted(self.sorted_targets, elements, side="left")
        hi = np.searchsorted(self.sorted_targets, elements, side="right")
        parts = [self.order[a:b] for a, b in zip(lo, hi) if b > a]
        return (
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        )


def adaptive_schedule(
    pattern: LowerPattern,
    updates: UpdateSet,
    nprocs: int,
    grain: int = 4,
    min_width: int = 4,
    zero_tolerance: float = 0.0,
    options: SchedulerOptions | None = None,
) -> tuple[Partition, Assignment]:
    """Partition and allocate cluster by cluster, limiting each triangle's
    partition count by its predecessor-processor count (parameter (a)).

    Returns the resulting partition and assignment; metrics can then be
    computed exactly as for the static pipeline.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    options = options or SchedulerOptions()
    clusters = find_clusters(pattern, min_width=min_width, zero_tolerance=zero_tolerance)
    index = _UpdateIndex(updates)

    ew = updates.element_work()
    unit_of_element = np.full(pattern.nnz, -1, dtype=np.int64)
    units: list[UnitBlock] = []
    proc_of_unit: list[int] = []
    proc_work = np.zeros(nprocs, dtype=np.float64)
    marker = 0
    wrap_counter = 0

    # Row-structure counts for independence: column j receives updates
    # iff some k < j has L[j, k] != 0.
    cols = pattern.element_cols()
    incoming = np.zeros(pattern.n, dtype=np.int64)
    off = pattern.rowidx != cols
    np.add.at(incoming, pattern.rowidx[off], 1)

    def take_marker() -> int:
        nonlocal marker
        p = marker
        marker = (marker + 1) % nprocs
        return p

    def assign(u: UnitBlock, proc: int) -> None:
        proc_of_unit.append(proc)
        proc_work[proc] += float(ew[u.elements].sum())
        unit_of_element[u.elements] = u.uid

    def predecessor_procs(elements: np.ndarray, ordered: bool = True) -> list[int]:
        """Processors owning source elements of updates targeting the
        given elements (only already-allocated sources), in update order,
        deduplicated."""
        idx = index.updates_targeting(elements)
        if len(idx) == 0:
            return []
        srcs = np.concatenate(
            [updates.source_j[idx], updates.source_i[idx]]
        )
        seen: list[int] = []
        seen_set: set[int] = set()
        for s in srcs.tolist():
            u = int(unit_of_element[s])
            if u < 0:
                continue
            p = int(proc_of_unit[u])
            if p not in seen_set:
                seen_set.add(p)
                seen.append(p)
        return seen

    next_uid = 0
    for cluster in clusters:
        if cluster.is_column:
            j = cluster.col_lo
            lo, hi = pattern.indptr[j], pattern.indptr[j + 1]
            u = UnitBlock(
                uid=next_uid,
                kind=BlockKind.COLUMN,
                cluster=cluster.index,
                col_lo=j,
                col_hi=j,
                row_lo=j,
                row_hi=int(pattern.rowidx[hi - 1]),
                elements=np.arange(lo, hi, dtype=np.int64),
                parent_kind=BlockKind.COLUMN,
                order_key=(cluster.index, 0, 0, 0, 0),
            )
            next_uid += 1
            units.append(u)
            if incoming[j] == 0:
                assign(u, wrap_counter % nprocs)
                wrap_counter += 1
            else:
                preds = predecessor_procs(u.elements)
                if not preds:
                    assign(u, take_marker())
                elif options.dependent_column_policy == "first":
                    assign(u, preds[0])
                elif options.dependent_column_policy == "least_loaded":
                    assign(u, min(set(preds), key=lambda p: (proc_work[p], p)))
                else:
                    assign(u, take_marker())
            continue

        # --- parameter (a): predecessors of the whole triangle ---------
        tri = cluster.triangle
        tri_elements = []
        for c in range(tri.col_lo, tri.col_hi + 1):
            lo = pattern.indptr[c]
            hi = lo + np.searchsorted(pattern.col(c), tri.row_hi, side="right")
            tri_elements.append(np.arange(lo, hi, dtype=np.int64))
        tri_elems = np.concatenate(tri_elements)
        tri_pred_procs = predecessor_procs(tri_elems)
        max_parts = max(1, len(tri_pred_procs)) if tri_pred_procs else None

        tri_units, next_uid = _partition_triangle(
            pattern, tri, grain, max_parts, next_uid
        )
        rect_units_all: list[UnitBlock] = []
        for ri, rect in enumerate(cluster.rectangles):
            rus, next_uid = _partition_rectangle(
                pattern, rect, ri, grain, None, next_uid
            )
            rect_units_all.extend(rus)
        units.extend(tri_units)
        units.extend(rect_units_all)

        # --- §3.4 allocation for this cluster --------------------------
        p_a: set[int] = set()
        for u in tri_units:
            chosen = -1
            for p in predecessor_procs(u.elements):
                if p not in p_a:
                    chosen = p
                    break
            if chosen < 0:
                chosen = take_marker()
            p_a.add(chosen)
            assign(u, chosen)

        p_t = sorted({int(proc_of_unit[u.uid]) for u in tri_units})
        by_rect: dict[int, list[UnitBlock]] = {}
        for u in rect_units_all:
            by_rect.setdefault(u.order_key[1], []).append(u)
        for rect_index in sorted(by_rect):
            ordered = sorted(p_t, key=lambda p: (proc_work[p], p))
            for slot, u in enumerate(
                sorted(by_rect[rect_index], key=lambda x: x.order_key)
            ):
                assign(u, ordered[slot % len(ordered)])

    partition = Partition(
        pattern=pattern,
        clusters=clusters,
        units=units,
        unit_of_element=unit_of_element,
        grain_triangle=grain,
        grain_rectangle=grain,
    )
    assignment = Assignment(
        scheme="block-adaptive",
        nprocs=nprocs,
        pattern=pattern,
        owner_of_element=np.asarray(proc_of_unit, dtype=np.int64)[unit_of_element],
        proc_of_unit=np.asarray(proc_of_unit, dtype=np.int64),
        partition=partition,
    )
    return partition, assignment
