"""Partitioning of dense blocks into schedulable unit blocks (paper §3.2).

The grain size g is the minimum number of matrix elements (geometric,
padding included) per unit block; it dictates a maximum number of
partitions P_d = floor(area / g).  A block is split into *at most* P_d
roughly equal units:

* a **triangle** of width w is split into b column chunks, producing b
  diagonal unit triangles and b(b-1)/2 unit rectangles (Figure 3 shows
  b = 3: units t1..t6); b is the largest value with b(b+1)/2 <= P_d;
* a **rectangle** is split into an nr x nc grid with nr*nc <= P_d,
  chosen to maximize the unit count with near-square units;
* a **column** is a single unit and is never split.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..obs import trace as obs
from ..sparse.pattern import LowerPattern
from .blocks import BlockKind, DenseBlock, UnitBlock
from .clusters import ClusterSet, find_clusters

__all__ = [
    "PARTITION_IMPL_VERSION",
    "Partition",
    "partition_factor",
    "partition_clusters",
    "chunk_bounds",
]

#: Version tag of the partition + dependency stage semantics.  Bump it
#: whenever :func:`partition_factor`, :func:`find_clusters` or
#: :func:`repro.core.dependencies.analyze_dependencies` change their
#: output, so disk-cached partition entries written by the old kernel
#: are invalidated (treated as misses) rather than silently reused.
PARTITION_IMPL_VERSION = 1


def chunk_bounds(lo: int, hi: int, parts: int) -> list[tuple[int, int]]:
    """Split the inclusive range [lo, hi] into ``parts`` near-equal
    contiguous chunks (larger chunks first)."""
    length = hi - lo + 1
    if not (1 <= parts <= length):
        raise ValueError(f"cannot split {length} indices into {parts} chunks")
    base, extra = divmod(length, parts)
    out = []
    start = lo
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append((start, start + size - 1))
        start += size
    return out


def triangle_split_count(area: int, grain: int, max_parts: int | None = None) -> int:
    """Number of column chunks b for a triangle: largest b with
    b(b+1)/2 unit blocks allowed by the grain (and ``max_parts``)."""
    pd = max(1, area // max(grain, 1))
    if max_parts is not None:
        pd = min(pd, max_parts)
    b = 1
    while (b + 1) * (b + 2) // 2 <= pd:
        b += 1
    return b


def rectangle_grid(
    height: int, width: int, area: int, grain: int, max_parts: int | None = None
) -> tuple[int, int]:
    """Grid shape (nr, nc) for a rectangle: maximize nr*nc <= P_d with
    near-square units (ties broken toward squarer aspect)."""
    pd = max(1, area // max(grain, 1))
    if max_parts is not None:
        pd = min(pd, max_parts)
    pd = min(pd, height * width)
    best = (1, 1)
    best_score = (-1, float("inf"))
    for nc in range(1, min(width, pd) + 1):
        nr = min(height, pd // nc)
        if nr < 1:
            continue
        count = nr * nc
        aspect = abs((height / nr) - (width / nc))
        score = (count, -aspect)
        if score > (best_score[0], -best_score[1]):
            best = (nr, nc)
            best_score = (count, aspect)
    return best


@dataclass
class Partition:
    """A complete partition of a factor pattern into unit blocks."""

    pattern: LowerPattern
    clusters: ClusterSet
    units: list[UnitBlock]
    unit_of_element: np.ndarray
    grain_triangle: int
    grain_rectangle: int

    @property
    def num_units(self) -> int:
        return len(self.units)

    @cached_property
    def cluster_of_unit(self) -> np.ndarray:
        return np.asarray([u.cluster for u in self.units], dtype=np.int64)

    @cached_property
    def unit_work(self) -> np.ndarray:
        """Element count per unit (upgraded to true work by the machine
        layer; kept here for quick size-based diagnostics)."""
        return np.asarray([u.nnz for u in self.units], dtype=np.int64)

    @cached_property
    def _units_by_cluster(self) -> list[list[UnitBlock]]:
        groups: list[list[UnitBlock]] = [[] for _ in range(len(self.clusters))]
        for u in self.units:
            groups[u.cluster].append(u)
        return groups

    def units_of_cluster(self, cluster_index: int) -> list[UnitBlock]:
        return list(self._units_by_cluster[cluster_index])

    def check_exact_cover(self) -> None:
        """Raise if the units do not partition the elements exactly."""
        counts = np.zeros(self.pattern.nnz, dtype=np.int64)
        for u in self.units:
            counts[u.elements] += 1
        if not (counts == 1).all():
            bad = int((counts != 1).sum())
            raise AssertionError(f"{bad} elements not covered exactly once")
        if not (self.unit_of_element >= 0).all():
            raise AssertionError("unit_of_element has unassigned entries")


def _elements_in_region(
    pattern: LowerPattern,
    col_lo: int,
    col_hi: int,
    row_lo: int,
    row_hi: int,
    triangular: bool,
    ecol: np.ndarray | None = None,
) -> np.ndarray:
    """Element ids of pattern entries inside an inclusive region.

    Element ids of a column range are contiguous in CSC order, so the
    region is one slice plus one boolean row filter; ``ecol`` (column of
    every element id) is precomputed once per partition call for the
    triangular lower bound ``row >= column``.
    """
    lo = int(pattern.indptr[col_lo])
    hi = int(pattern.indptr[col_hi + 1])
    rows = pattern.rowidx[lo:hi]
    floor = np.int64(row_lo)
    if triangular:
        cols = (
            ecol[lo:hi]
            if ecol is not None
            else np.repeat(
                np.arange(col_lo, col_hi + 1, dtype=np.int64),
                np.diff(pattern.indptr[col_lo : col_hi + 2]),
            )
        )
        floor = np.maximum(floor, cols)
    return lo + np.flatnonzero((rows >= floor) & (rows <= row_hi))


def _partition_triangle(
    pattern: LowerPattern,
    tri: DenseBlock,
    grain: int,
    max_parts: int | None,
    next_uid: int,
    ecol: np.ndarray | None = None,
) -> tuple[list[UnitBlock], int]:
    """Split a cluster's diagonal triangle into unit triangles and unit
    rectangles, emitted in the paper's allocation order: diagonal unit
    triangles top to bottom, then unit rectangles row-major."""
    b = triangle_split_count(tri.area, grain, max_parts)
    b = min(b, tri.width)
    chunks = chunk_bounds(tri.col_lo, tri.col_hi, b)
    units: list[UnitBlock] = []
    # Diagonal unit triangles, top to bottom: order group 0.
    for ci, (lo, hi) in enumerate(chunks):
        units.append(
            UnitBlock(
                uid=next_uid,
                kind=BlockKind.TRIANGLE,
                cluster=tri.cluster,
                col_lo=lo,
                col_hi=hi,
                row_lo=lo,
                row_hi=hi,
                elements=_elements_in_region(pattern, lo, hi, lo, hi, True, ecol),
                parent_kind=BlockKind.TRIANGLE,
                order_key=(tri.cluster, 0, 0, ci, 0),
            )
        )
        next_uid += 1
    # Off-diagonal unit rectangles, top to bottom then left to right
    # (row-major over the chunk grid): order group 1.
    for ri in range(1, b):
        r_lo, r_hi = chunks[ri]
        for ci in range(ri):
            c_lo, c_hi = chunks[ci]
            units.append(
                UnitBlock(
                    uid=next_uid,
                    kind=BlockKind.RECTANGLE,
                    cluster=tri.cluster,
                    col_lo=c_lo,
                    col_hi=c_hi,
                    row_lo=r_lo,
                    row_hi=r_hi,
                    elements=_elements_in_region(pattern, c_lo, c_hi, r_lo, r_hi, False, ecol),
                    parent_kind=BlockKind.TRIANGLE,
                    order_key=(tri.cluster, 0, 1, ri, ci),
                )
            )
            next_uid += 1
    return units, next_uid


def _partition_rectangle(
    pattern: LowerPattern,
    rect: DenseBlock,
    rect_index: int,
    grain: int,
    max_parts: int | None,
    next_uid: int,
    ecol: np.ndarray | None = None,
) -> tuple[list[UnitBlock], int]:
    """Split an off-diagonal dense rectangle into a grid of unit
    rectangles, emitted row-major (top to bottom, left to right)."""
    nr, nc = rectangle_grid(rect.height, rect.width, rect.area, grain, max_parts)
    row_chunks = chunk_bounds(rect.row_lo, rect.row_hi, nr)
    col_chunks = chunk_bounds(rect.col_lo, rect.col_hi, nc)
    units: list[UnitBlock] = []
    for ri, (r_lo, r_hi) in enumerate(row_chunks):
        for ci, (c_lo, c_hi) in enumerate(col_chunks):
            units.append(
                UnitBlock(
                    uid=next_uid,
                    kind=BlockKind.RECTANGLE,
                    cluster=rect.cluster,
                    col_lo=c_lo,
                    col_hi=c_hi,
                    row_lo=r_lo,
                    row_hi=r_hi,
                    elements=_elements_in_region(pattern, c_lo, c_hi, r_lo, r_hi, False, ecol),
                    parent_kind=BlockKind.RECTANGLE,
                    order_key=(rect.cluster, 1 + rect_index, 0, ri, ci),
                )
            )
            next_uid += 1
    return units, next_uid


def partition_clusters(
    pattern: LowerPattern,
    clusters: ClusterSet,
    grain_triangle: int = 4,
    grain_rectangle: int | None = None,
    max_parts: int | None = None,
) -> Partition:
    """Partition every cluster's dense blocks into unit blocks.

    ``grain_rectangle`` defaults to ``grain_triangle`` (the paper's
    tables use a single grain size g).  ``max_parts`` optionally caps the
    number of units per dense block (the paper's adaptive parameter (a);
    see the scheduler's adaptive mode).
    """
    if grain_rectangle is None:
        grain_rectangle = grain_triangle
    units: list[UnitBlock] = []
    next_uid = 0
    ecol = pattern.element_cols()
    for cluster in clusters:
        if cluster.is_column:
            col_block = cluster.column
            j = col_block.col_lo
            lo, hi = pattern.indptr[j], pattern.indptr[j + 1]
            units.append(
                UnitBlock(
                    uid=next_uid,
                    kind=BlockKind.COLUMN,
                    cluster=cluster.index,
                    col_lo=j,
                    col_hi=j,
                    row_lo=j,
                    row_hi=int(pattern.rowidx[hi - 1]),
                    elements=np.arange(lo, hi, dtype=np.int64),
                    parent_kind=BlockKind.COLUMN,
                    order_key=(cluster.index, 0, 0, 0, 0),
                )
            )
            next_uid += 1
            continue
        tri_units, next_uid = _partition_triangle(
            pattern, cluster.triangle, grain_triangle, max_parts, next_uid, ecol
        )
        units.extend(tri_units)
        for ri, rect in enumerate(cluster.rectangles):
            rect_units, next_uid = _partition_rectangle(
                pattern, rect, ri, grain_rectangle, max_parts, next_uid, ecol
            )
            units.extend(rect_units)

    unit_of_element = np.full(pattern.nnz, -1, dtype=np.int64)
    for u in units:
        unit_of_element[u.elements] = u.uid
    if obs.is_enabled():
        obs.counter("partition.clusters", len(clusters))
        obs.counter("partition.units", len(units))
        for kind in BlockKind:
            obs.counter(
                f"partition.units.{kind.value}",
                sum(1 for u in units if u.kind is kind),
            )
        # Columns own exactly their nonzeros; only triangle/rectangle
        # units treat their geometric region as dense (paper §3.1).
        obs.counter(
            "partition.padded_zeros",
            sum(u.area - u.nnz for u in units if u.kind is not BlockKind.COLUMN),
        )
    return Partition(
        pattern=pattern,
        clusters=clusters,
        units=units,
        unit_of_element=unit_of_element,
        grain_triangle=grain_triangle,
        grain_rectangle=grain_rectangle,
    )


def partition_factor(
    pattern: LowerPattern,
    grain: int = 4,
    min_width: int = 4,
    zero_tolerance: float = 0.0,
    grain_rectangle: int | None = None,
    max_parts: int | None = None,
) -> Partition:
    """Convenience wrapper: find clusters, then partition them."""
    clusters = find_clusters(pattern, min_width=min_width, zero_tolerance=zero_tolerance)
    return partition_clusters(
        pattern,
        clusters,
        grain_triangle=grain,
        grain_rectangle=grain_rectangle,
        max_parts=max_parts,
    )
