"""Alternative allocation strategies framing the paper's scheduler.

The paper's conclusion: "more sophisticated scheduling strategies could
be used to improve performance".  This module provides the two extremes
of the design space so the §3.4 scheduler can be located between them:

* :func:`schedule_lpt` — pure load balancing: longest-processing-time
  greedy onto the least-loaded processor, ignoring locality entirely
  (the best λ achievable at this unit granularity, and an upper bound on
  how much traffic locality-blindness costs);
* :func:`schedule_affinity` — pure locality: each unit goes to the
  processor already holding the largest volume of its input data
  (minimal traffic, no regard for balance).
"""

from __future__ import annotations

import numpy as np

from ..symbolic.updates import UpdateSet
from .assignment import Assignment
from .dependencies import DependencyInfo
from .partitioner import Partition

__all__ = ["schedule_lpt", "schedule_affinity", "unit_edge_volumes"]


def unit_edge_volumes(
    partition: Partition, deps: DependencyInfo, updates: UpdateSet
) -> dict[tuple[int, int], int]:
    """Distinct source elements per unit-dependency edge (assignment-free
    version of :func:`repro.machine.edge_volumes`)."""
    uoe = partition.unit_of_element
    tgt_unit = uoe[updates.target]
    pairs_src = np.concatenate([updates.source_i, updates.source_j])
    pairs_tgt = np.concatenate([tgt_unit, tgt_unit])
    if deps.include_scale:
        all_eids = np.arange(partition.pattern.nnz, dtype=np.int64)
        pairs_src = np.concatenate([pairs_src, updates.scale_source])
        pairs_tgt = np.concatenate([pairs_tgt, uoe[all_eids]])
    src_unit = uoe[pairs_src]
    keep = src_unit != pairs_tgt
    nnz = partition.pattern.nnz
    key = np.unique(pairs_tgt[keep] * np.int64(nnz) + pairs_src[keep])
    t = key // nnz
    s_unit = uoe[key % nnz]
    out: dict[tuple[int, int], int] = {}
    for su, tu in zip(s_unit.tolist(), t.tolist()):
        out[(su, tu)] = out.get((su, tu), 0) + 1
    return out


def _finish(partition: Partition, proc_of_unit: np.ndarray, nprocs: int,
            scheme: str) -> Assignment:
    return Assignment(
        scheme=scheme,
        nprocs=nprocs,
        pattern=partition.pattern,
        owner_of_element=proc_of_unit[partition.unit_of_element],
        proc_of_unit=proc_of_unit,
        partition=partition,
    )


def schedule_lpt(
    partition: Partition,
    nprocs: int,
    unit_work: np.ndarray,
) -> Assignment:
    """Longest-processing-time greedy: sort units by work descending and
    place each on the currently least-loaded processor."""
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    unit_work = np.asarray(unit_work, dtype=np.float64)
    if len(unit_work) != partition.num_units:
        raise ValueError("unit_work must have one entry per unit")
    order = np.argsort(-unit_work, kind="stable")
    proc_of_unit = np.empty(partition.num_units, dtype=np.int64)
    load = np.zeros(nprocs, dtype=np.float64)
    for u in order.tolist():
        p = int(np.argmin(load))
        proc_of_unit[u] = p
        load[p] += unit_work[u]
    return _finish(partition, proc_of_unit, nprocs, "block-lpt")


def schedule_affinity(
    partition: Partition,
    deps: DependencyInfo,
    nprocs: int,
    updates: UpdateSet,
    unit_work: np.ndarray | None = None,
) -> Assignment:
    """Data-affinity greedy: in uid order, place each unit on the
    processor already owning the largest input volume for it (ties to
    the least-loaded processor, then the lowest id).

    With no placed predecessors the unit takes the least-loaded
    processor, which keeps the leading independent columns spread out.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    if unit_work is None:
        unit_work = partition.unit_work
    unit_work = np.asarray(unit_work, dtype=np.float64)
    volumes = unit_edge_volumes(partition, deps, updates)
    preds = deps.predecessors
    n_units = partition.num_units
    proc_of_unit = np.full(n_units, -1, dtype=np.int64)
    load = np.zeros(nprocs, dtype=np.float64)
    for u in range(n_units):
        affinity = np.zeros(nprocs, dtype=np.float64)
        for q in preds[u].tolist():
            p = int(proc_of_unit[q])
            if p >= 0:
                affinity[p] += volumes.get((q, u), 0)
        if affinity.max() > 0:
            best = affinity.max()
            candidates = np.nonzero(affinity == best)[0]
            p = int(candidates[np.argmin(load[candidates])])
        else:
            p = int(np.argmin(load))
        proc_of_unit[u] = p
        load[p] += unit_work[u]
    return _finish(partition, proc_of_unit, nprocs, "block-affinity")
