"""Static interval tree for block-extent queries.

The paper computes inter-block dependencies "using this classification
and the interval tree structure".  This is a classic centered interval
tree over closed integer intervals, supporting stabbing queries (all
intervals containing a point) and overlap queries (all intervals
intersecting a range).  It is used to find the blocks whose row extents
intersect a target extent.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Interval", "IntervalTree"]


@dataclass(frozen=True)
class Interval:
    """Closed integer interval [lo, hi] carrying an opaque payload."""

    lo: int
    hi: int
    data: object = None

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def contains(self, point: int) -> bool:
        return self.lo <= point <= self.hi

    def overlaps(self, lo: int, hi: int) -> bool:
        return self.lo <= hi and lo <= self.hi


class _Node:
    __slots__ = ("center", "by_lo", "by_hi", "left", "right")

    def __init__(self, center: int, spanning: list[Interval]):
        self.center = center
        self.by_lo = sorted(spanning, key=lambda iv: iv.lo)
        self.by_hi = sorted(spanning, key=lambda iv: iv.hi, reverse=True)
        self.left: _Node | None = None
        self.right: _Node | None = None


class IntervalTree:
    """Immutable centered interval tree.

    Build is O(m log m); stabbing is O(log m + k) for k hits.
    """

    def __init__(self, intervals: list[Interval] | tuple[Interval, ...] = ()):
        self._intervals = list(intervals)
        self._root = self._build(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    @staticmethod
    def _build(intervals: list[Interval]) -> _Node | None:
        if not intervals:
            return None
        points = sorted({iv.lo for iv in intervals} | {iv.hi for iv in intervals})
        center = points[len(points) // 2]
        left = [iv for iv in intervals if iv.hi < center]
        right = [iv for iv in intervals if iv.lo > center]
        spanning = [iv for iv in intervals if iv.lo <= center <= iv.hi]
        node = _Node(center, spanning)
        node.left = IntervalTree._build(left)
        node.right = IntervalTree._build(right)
        return node

    def stab(self, point: int) -> list[Interval]:
        """All intervals containing ``point``, in insertion-independent
        deterministic order (sorted by (lo, hi))."""
        out: list[Interval] = []
        node = self._root
        while node is not None:
            if point < node.center:
                for iv in node.by_lo:
                    if iv.lo > point:
                        break
                    out.append(iv)
                node = node.left
            elif point > node.center:
                for iv in node.by_hi:
                    if iv.hi < point:
                        break
                    out.append(iv)
                node = node.right
            else:
                out.extend(node.by_lo)
                node = None
        out.sort(key=lambda iv: (iv.lo, iv.hi))
        return out

    def overlapping(self, lo: int, hi: int) -> list[Interval]:
        """All intervals intersecting the closed range [lo, hi]."""
        if lo > hi:
            raise ValueError(f"empty query range [{lo}, {hi}]")
        out: list[Interval] = []
        self._collect_overlaps(self._root, lo, hi, out)
        out.sort(key=lambda iv: (iv.lo, iv.hi))
        return out

    @staticmethod
    def _collect_overlaps(node: _Node | None, lo: int, hi: int, out: list[Interval]) -> None:
        if node is None:
            return
        if lo <= node.center <= hi:
            out.extend(node.by_lo)
            IntervalTree._collect_overlaps(node.left, lo, hi, out)
            IntervalTree._collect_overlaps(node.right, lo, hi, out)
        elif hi < node.center:
            for iv in node.by_lo:
                if iv.lo > hi:
                    break
                out.append(iv)
            IntervalTree._collect_overlaps(node.left, lo, hi, out)
        else:  # lo > node.center
            for iv in node.by_hi:
                if iv.hi < lo:
                    break
                out.append(iv)
            IntervalTree._collect_overlaps(node.right, lo, hi, out)
