"""Structural validators for partitions, dependency graphs and schedules.

These raise :class:`ValidationError` with a precise message on the first
violated invariant; they are cheap enough to run in production pipelines
and are exercised throughout the test suite.
"""

from __future__ import annotations

import numpy as np

from .assignment import Assignment
from .blocks import BlockKind
from .dependencies import DependencyInfo
from .partitioner import Partition

__all__ = ["ValidationError", "validate_partition", "validate_assignment",
           "validate_dependencies"]


class ValidationError(AssertionError):
    """An invariant of the partitioning/scheduling pipeline is violated."""


def validate_partition(partition: Partition) -> None:
    """Check a partition's structural invariants.

    * every factor element belongs to exactly one unit;
    * every unit's elements lie inside its extents (and below the
      diagonal for triangles);
    * units stay within their cluster's column range;
    * with zero tolerance 0, cluster triangles are fully dense.
    """
    pattern = partition.pattern
    counts = np.zeros(pattern.nnz, dtype=np.int64)
    for u in partition.units:
        counts[u.elements] += 1
    if (counts != 1).any():
        bad = int((counts != 1).sum())
        raise ValidationError(f"{bad} elements not covered exactly once")

    cols = pattern.element_cols()
    cmap = partition.clusters.cluster_of_column
    for u in partition.units:
        if cmap[u.col_lo] != u.cluster or cmap[u.col_hi] != u.cluster:
            raise ValidationError(
                f"unit {u.uid} columns [{u.col_lo},{u.col_hi}] leave "
                f"cluster {u.cluster}"
            )
        for e in u.elements.tolist():
            r, c = int(pattern.rowidx[e]), int(cols[e])
            if not (u.row_lo <= r <= u.row_hi and u.col_lo <= c <= u.col_hi):
                raise ValidationError(
                    f"element ({r},{c}) outside unit {u.uid} extent"
                )
            if u.kind is BlockKind.TRIANGLE and r < c:
                raise ValidationError(
                    f"triangle unit {u.uid} owns super-diagonal ({r},{c})"
                )

    if partition.clusters.zero_tolerance == 0.0:
        for cluster in partition.clusters:
            if cluster.is_column:
                continue
            for c in range(cluster.col_lo, cluster.col_hi + 1):
                for r in range(c, cluster.col_hi + 1):
                    if not pattern.has(r, c):
                        raise ValidationError(
                            f"cluster {cluster.index} triangle has a hole "
                            f"at ({r},{c}) despite zero tolerance 0"
                        )


def validate_dependencies(deps: DependencyInfo) -> None:
    """Check the dependency graph: no self edges, edges unique, the
    graph acyclic, and independence consistent with the edge set."""
    edges = deps.edges
    if len(edges) and (edges[:, 0] == edges[:, 1]).any():
        raise ValidationError("self-dependency edge present")
    n_units = deps.partition.num_units
    keys = edges[:, 0] * np.int64(n_units) + edges[:, 1]
    if len(np.unique(keys)) != len(keys):
        raise ValidationError("duplicate dependency edges")
    from ..machine.simulate import topological_order

    try:
        topological_order(n_units, edges)
    except ValueError as exc:
        raise ValidationError(str(exc)) from exc
    has_pred = np.zeros(n_units, dtype=bool)
    has_pred[edges[:, 1]] = True
    if (deps.independent_units & has_pred).any():
        raise ValidationError("independent unit has predecessors")
    if (~deps.independent_units & ~has_pred).any():
        raise ValidationError("unit with no predecessors marked dependent")


def validate_assignment(assignment: Assignment) -> None:
    """Check an assignment: owners in range, and (for block schedules)
    element owners consistent with unit owners."""
    owners = assignment.owner_of_element
    if len(owners) and (owners.min() < 0 or owners.max() >= assignment.nprocs):
        raise ValidationError("element owner out of processor range")
    if assignment.partition is not None and assignment.proc_of_unit is not None:
        expected = assignment.proc_of_unit[assignment.partition.unit_of_element]
        if not np.array_equal(owners, expected):
            raise ValidationError("element owners disagree with unit owners")
        if (assignment.proc_of_unit < 0).any() or (
            assignment.proc_of_unit >= assignment.nprocs
        ).any():
            raise ValidationError("unit owner out of processor range")
