"""Inter-block dependency identification (paper §3.3).

Every Cholesky pair update ``L[i,j] -= L[i,k] * L[j,k]`` reads two source
elements from column k and writes a target element; at the unit-block
level this induces a dependency of the target's unit on each source
element's unit.  The paper classifies these dependencies into ten
categories.  The categories are geometric statements about *unit*
blocks (this is what makes the paper's printed conditions — e.g.
category 5's ``c2 < c3`` for two column-chunks of one cluster — line
up):

1.  a column updates a column
2.  a column updates a triangle
3.  a column updates a rectangle
4.  a triangle updates a rectangle            (co-source is the target itself)
5.  a triangle and a rectangle update a rectangle
6.  a rectangle updates a column              (both sources in one rectangle)
7.  two rectangles update a column
8.  a rectangle updates a triangle            (both sources in one rectangle)
9.  two rectangles update a triangle
10. two rectangles update a rectangle         (the same-rectangle case is
                                               folded in here as the
                                               degenerate R1 == R2 form)

Category 0 is internal: all three elements in one unit (no dependency).
Scale updates (by the column's diagonal element) are tracked separately.

Two implementations are provided: a vectorized element-ownership path
(the default) and a geometric path using the interval tree of §3.3,
retained for cross-validation and for the paper-faithful query API.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..obs import trace as obs
from ..symbolic.updates import UpdateSet
from .blocks import BlockKind
from .interval_tree import Interval, IntervalTree
from .partitioner import Partition

__all__ = [
    "CATEGORY_NAMES",
    "DependencyInfo",
    "classify_pair_updates",
    "analyze_dependencies",
    "UnitLocator",
]

CATEGORY_NAMES = {
    0: "internal (within one unit)",
    1: "a column updates a column",
    2: "a column updates a triangle",
    3: "a column updates a rectangle",
    4: "a triangle updates a rectangle",
    5: "a triangle and a rectangle update a rectangle",
    6: "a rectangle updates a column",
    7: "two rectangles update a column",
    8: "a rectangle updates a triangle",
    9: "two rectangles update a triangle",
    10: "two rectangles update a rectangle",
}

_KIND_CODE = {BlockKind.COLUMN: 0, BlockKind.TRIANGLE: 1, BlockKind.RECTANGLE: 2}


def _unit_kind_codes(partition: Partition) -> np.ndarray:
    return np.asarray([_KIND_CODE[u.kind] for u in partition.units], dtype=np.int64)


def classify_pair_updates(partition: Partition, updates: UpdateSet) -> np.ndarray:
    """Category code (0..10) for every pair update, vectorized."""
    uoe = partition.unit_of_element
    uj = uoe[updates.source_j]
    ui = uoe[updates.source_i]
    ut = uoe[updates.target]
    kinds = _unit_kind_codes(partition)
    kj, kt = kinds[uj], kinds[ut]

    cat = np.zeros(len(ut), dtype=np.int64)
    internal = (uj == ut) & (ui == ut)

    is_col = kj == 0
    cat = np.where(~internal & is_col, 1 + kt, cat)

    is_tri = kj == 1
    cat = np.where(~internal & is_tri & (ui == ut), 4, cat)
    cat = np.where(~internal & is_tri & (ui != ut), 5, cat)

    is_rect = kj == 2
    same_rect = ui == uj
    cat = np.where(~internal & is_rect & (kt == 0) & same_rect, 6, cat)
    cat = np.where(~internal & is_rect & (kt == 0) & ~same_rect, 7, cat)
    cat = np.where(~internal & is_rect & (kt == 1) & same_rect, 8, cat)
    cat = np.where(~internal & is_rect & (kt == 1) & ~same_rect, 9, cat)
    cat = np.where(~internal & is_rect & (kt == 2), 10, cat)
    return cat


@dataclass
class DependencyInfo:
    """Unit-level dependency structure of a partition.

    ``edges`` is the set of (source unit, target unit) pairs, source !=
    target, where the target's updates read at least one element owned by
    the source.  ``predecessors[u]`` lists the units u depends on.
    """

    partition: Partition
    edges: np.ndarray  # (m, 2) int64, unique, lexicographically sorted
    category_counts: dict[int, int]
    include_scale: bool

    @cached_property
    def predecessors(self) -> list[np.ndarray]:
        # ``edges`` is unique and sorted by (source, target), so a stable
        # sort on target groups each unit's predecessors in ascending
        # source order: CSR-style slicing replaces the per-edge loop.
        n_units = self.partition.num_units
        order = np.argsort(self.edges[:, 1], kind="stable")
        src = np.ascontiguousarray(self.edges[order, 0])
        tgt = self.edges[order, 1]
        bounds = np.searchsorted(tgt, np.arange(n_units + 1, dtype=np.int64))
        return [src[bounds[u] : bounds[u + 1]] for u in range(n_units)]

    @cached_property
    def successors(self) -> list[np.ndarray]:
        # Lexicographic (source, target) order means ``edges`` is already
        # grouped by source with ascending targets.
        n_units = self.partition.num_units
        src = self.edges[:, 0]
        tgt = np.ascontiguousarray(self.edges[:, 1])
        bounds = np.searchsorted(src, np.arange(n_units + 1, dtype=np.int64))
        return [tgt[bounds[u] : bounds[u + 1]] for u in range(n_units)]

    @cached_property
    def independent_units(self) -> np.ndarray:
        """Boolean mask: units with no predecessors (never updated by
        another unit's data) — the paper's "independent columns"."""
        out = np.ones(self.partition.num_units, dtype=bool)
        out[self.edges[:, 1]] = False
        return out

    def num_edges(self) -> int:
        return len(self.edges)


def analyze_dependencies(
    partition: Partition, updates: UpdateSet, include_scale: bool = True
) -> DependencyInfo:
    """Build the unit dependency graph from the element-level updates.

    ``include_scale`` adds the dependencies induced by diagonal/scale
    updates (an element's unit depends on the unit owning its column's
    diagonal element).
    """
    uoe = partition.unit_of_element
    ut = uoe[updates.target]
    srcs = [uoe[updates.source_i], uoe[updates.source_j]]
    tgts = [ut, ut]
    if include_scale:
        all_eids = np.arange(partition.pattern.nnz, dtype=np.int64)
        srcs.append(uoe[updates.scale_source])
        tgts.append(uoe[all_eids])
    src = np.concatenate(srcs)
    tgt = np.concatenate(tgts)
    keep = src != tgt
    src, tgt = src[keep], tgt[keep]
    n_units = partition.num_units
    key = np.unique(src * np.int64(n_units) + tgt)
    edges = np.stack([key // n_units, key % n_units], axis=1)

    cats = classify_pair_updates(partition, updates)
    vals, counts = np.unique(cats, return_counts=True)
    category_counts = dict(zip(vals.tolist(), counts.tolist()))
    if obs.is_enabled():
        obs.counter("deps.edges", len(edges))
        for cat, count in category_counts.items():
            obs.counter(f"deps.category.{cat:02d}", count)
    return DependencyInfo(partition, edges, category_counts, include_scale)


class UnitLocator:
    """Geometric (row, col) -> unit lookup via interval trees (§3.3).

    One interval tree per column holds the row extents of the units
    covering that column; locating an element is a stabbing query.  This
    is the paper-faithful mechanism; the vectorized ownership arrays are
    validated against it in the test suite.
    """

    def __init__(self, partition: Partition):
        self.partition = partition
        n = partition.pattern.n
        units = partition.units
        n_units = len(units)
        # Expand every unit's column extent with repeat/cumsum, then group
        # the (column, unit) incidences by column — no per-(unit, column)
        # Python append.
        col_lo = np.fromiter((u.col_lo for u in units), dtype=np.int64, count=n_units)
        widths = np.fromiter(
            (u.col_hi - u.col_lo + 1 for u in units), dtype=np.int64, count=n_units
        )
        unit_of_inc = np.repeat(np.arange(n_units, dtype=np.int64), widths)
        cum = np.cumsum(widths)
        cols = np.arange(int(cum[-1]) if n_units else 0, dtype=np.int64)
        cols += (col_lo - (cum - widths))[unit_of_inc]
        order = np.argsort(cols, kind="stable")  # keeps unit order per column
        sorted_units = unit_of_inc[order]
        bounds = np.searchsorted(cols[order], np.arange(n + 1, dtype=np.int64))
        intervals = [Interval(u.row_lo, u.row_hi, u.uid) for u in units]
        self._trees = [
            IntervalTree([intervals[k] for k in sorted_units[bounds[c] : bounds[c + 1]]])
            for c in range(n)
        ]

    def locate(self, row: int, col: int) -> int:
        """Unit id owning position (row, col); -1 if no unit covers it.

        For triangle units, positions above the diagonal are rejected.
        """
        if row < col:
            raise ValueError("position above the diagonal")
        hits = self._trees[col].stab(row)
        units = self.partition.units
        for iv in hits:
            u = units[iv.data]
            if u.kind is not BlockKind.TRIANGLE or row >= col:
                # Triangle units only own the lower-triangular part of
                # their bounding square, which (row >= col) guarantees.
                return u.uid
        return -1

    def units_overlapping_rows(self, col: int, row_lo: int, row_hi: int) -> list[int]:
        """Units covering ``col`` whose row extents intersect [row_lo, row_hi]."""
        return sorted({iv.data for iv in self._trees[col].overlapping(row_lo, row_hi)})
