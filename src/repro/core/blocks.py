"""Block types used by the partitioner.

Terminology follows the paper (§3):

* a **cluster** is a column or a strip of consecutive columns whose
  diagonal block is a dense triangle;
* within a multi-column cluster, the **dense blocks** are the diagonal
  triangle and the off-diagonal rectangles (maximal consecutive row
  runs);
* dense blocks are split into **unit blocks** — the schedulable units —
  each of which is a column, a (unit) triangle or a (unit) rectangle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BlockKind", "DenseBlock", "UnitBlock"]


class BlockKind(enum.Enum):
    COLUMN = "column"
    TRIANGLE = "triangle"
    RECTANGLE = "rectangle"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DenseBlock:
    """A dense region of the factor before unit partitioning.

    Extents are inclusive.  For a TRIANGLE, ``row_lo == col_lo`` and
    ``row_hi == col_hi`` and the region is the lower-triangular part.
    For a COLUMN, ``col_lo == col_hi`` and the row extent spans the
    column's nonzeros (which need not be contiguous).
    """

    kind: BlockKind
    cluster: int
    col_lo: int
    col_hi: int
    row_lo: int
    row_hi: int

    def __post_init__(self) -> None:
        if self.col_lo > self.col_hi or self.row_lo > self.row_hi:
            raise ValueError("empty block extent")
        if self.kind is BlockKind.TRIANGLE and (
            self.row_lo != self.col_lo or self.row_hi != self.col_hi
        ):
            raise ValueError("triangle extents must coincide")
        if self.kind is BlockKind.COLUMN and self.col_lo != self.col_hi:
            raise ValueError("column block must have a single column")

    @property
    def width(self) -> int:
        return self.col_hi - self.col_lo + 1

    @property
    def height(self) -> int:
        return self.row_hi - self.row_lo + 1

    @property
    def area(self) -> int:
        """Geometric element count (padding zeros included)."""
        if self.kind is BlockKind.TRIANGLE:
            w = self.width
            return w * (w + 1) // 2
        return self.width * self.height

    def contains(self, row: int, col: int) -> bool:
        if not (self.col_lo <= col <= self.col_hi and self.row_lo <= row <= self.row_hi):
            return False
        if self.kind is BlockKind.TRIANGLE:
            return row >= col
        return True


@dataclass
class UnitBlock:
    """A schedulable unit: a column, unit triangle or unit rectangle.

    ``elements`` holds the factor element ids the unit owns (actual
    nonzeros only — padding zeros carry no work).  ``order_key`` encodes
    the paper's allocation order within the cluster; units are allocated
    in increasing ``order_key``.
    """

    uid: int
    kind: BlockKind
    cluster: int
    col_lo: int
    col_hi: int
    row_lo: int
    row_hi: int
    elements: np.ndarray
    parent_kind: BlockKind = BlockKind.COLUMN
    order_key: tuple = field(default=())

    @property
    def width(self) -> int:
        return self.col_hi - self.col_lo + 1

    @property
    def height(self) -> int:
        return self.row_hi - self.row_lo + 1

    @property
    def area(self) -> int:
        if self.kind is BlockKind.TRIANGLE:
            w = self.width
            return w * (w + 1) // 2
        return self.width * self.height

    @property
    def nnz(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UnitBlock(uid={self.uid}, {self.kind.value}, cluster={self.cluster}, "
            f"cols=[{self.col_lo},{self.col_hi}], rows=[{self.row_lo},{self.row_hi}], "
            f"nnz={self.nnz})"
        )
