"""The wrap-mapped column assignment baseline.

Column j (all of its factor elements) is assigned to processor
``j mod N`` — the "straightforward and widely used column-based
approach" the paper compares against.
"""

from __future__ import annotations

import numpy as np

from ..sparse.pattern import LowerPattern
from .assignment import Assignment

__all__ = ["wrap_assignment", "block_cyclic_columns", "two_d_cyclic"]


def wrap_assignment(pattern: LowerPattern, nprocs: int) -> Assignment:
    """Wrap-around (cyclic) column mapping."""
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    cols = pattern.element_cols()
    return Assignment(
        scheme="wrap",
        nprocs=nprocs,
        pattern=pattern,
        owner_of_element=(cols % nprocs).astype(np.int64),
        proc_of_unit=(np.arange(pattern.n, dtype=np.int64) % nprocs),
    )


def block_cyclic_columns(pattern: LowerPattern, nprocs: int, block: int) -> Assignment:
    """Block-cyclic column mapping (ablation variant): columns are dealt
    to processors in contiguous blocks of ``block`` columns."""
    if block < 1:
        raise ValueError("block must be positive")
    cols = pattern.element_cols()
    proc_of_col = (np.arange(pattern.n, dtype=np.int64) // block) % nprocs
    return Assignment(
        scheme=f"block-cyclic({block})",
        nprocs=nprocs,
        pattern=pattern,
        owner_of_element=proc_of_col[cols],
        proc_of_unit=proc_of_col,
    )


def two_d_cyclic(pattern: LowerPattern, proc_rows: int, proc_cols: int) -> Assignment:
    """2-D cyclic element mapping on a ``proc_rows`` x ``proc_cols``
    processor grid: element (i, j) goes to processor
    ``(i mod pr) * pc + (j mod pc)``.

    The classic scalable mapping for dense and sparse factorizations
    (post-dating the paper); included as the modern comparison point in
    the mapping-family ablation.  There is no unit-level view: ownership
    cuts across columns.
    """
    if proc_rows < 1 or proc_cols < 1:
        raise ValueError("processor grid dimensions must be positive")
    rows = pattern.rowidx
    cols = pattern.element_cols()
    owner = (rows % proc_rows) * np.int64(proc_cols) + (cols % proc_cols)
    return Assignment(
        scheme=f"2d-cyclic({proc_rows}x{proc_cols})",
        nprocs=proc_rows * proc_cols,
        pattern=pattern,
        owner_of_element=owner.astype(np.int64),
    )
