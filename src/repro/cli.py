"""Command-line entry point: regenerate any table or figure of the paper.

Examples
--------
::

    python -m repro table2          # block-mapping communication
    python -m repro figure2 --nx 6 --ny 6
    python -m repro all             # every table and figure
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    figure2_ascii,
    figure3_ascii,
    figure4_report,
    generate_report,
    render_partition_stats,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

_TARGETS = ["table1", "table2", "table3", "table4", "table5",
            "figure1", "figure2", "figure3", "figure4"]
_EXTRA_TARGETS = ["stats", "report", "claims", "sweep", "scorecard", "compare"]


def _emit(target: str, args: argparse.Namespace) -> str:
    if target == "table1":
        return render_table1()
    if target == "table2":
        return render_table2()
    if target == "table3":
        return render_table3()
    if target == "table4":
        return render_table4()
    if target == "table5":
        return render_table5()
    if target == "figure1":
        from .analysis import figure1_ascii

        return figure1_ascii()
    if target == "figure2":
        return figure2_ascii(args.nx, args.ny)
    if target == "figure3":
        return figure3_ascii()
    if target == "figure4":
        return figure4_report(args.matrix, args.grain)
    if target == "stats":
        from .analysis.experiments import prepared_matrix
        from .core import partition_factor

        prep = prepared_matrix(args.matrix)
        partition = partition_factor(prep.pattern, grain=args.grain)
        return render_partition_stats(
            partition, f"Partition statistics: {args.matrix}, g={args.grain}"
        )
    if target == "claims":
        from .analysis import render_claims

        return render_claims(args.matrix)
    if target == "compare":
        from .analysis import render_comparison

        return render_comparison()
    if target == "sweep":
        from .analysis import records_to_csv, sweep
        from .analysis.experiments import prepared_matrix

        records = sweep(prepared_matrix(args.matrix))
        text = records_to_csv(records)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text)
            return f"{len(records)} records written to {args.output}"
        return text.rstrip("\n")
    if target == "scorecard":
        from .analysis import render_table
        from .analysis.experiments import prepared_matrix
        from .core import block_mapping, wrap_mapping
        from .machine import scorecard

        prep = prepared_matrix(args.matrix)
        cards = [
            scorecard(r.assignment, prep.updates)
            for r in (
                block_mapping(prep, 16, grain=args.grain),
                wrap_mapping(prep, 16),
            )
        ]
        headers = ["metric"] + [c["scheme"] for c in cards]
        rows = [
            [key] + [c[key] for c in cards]
            for key in cards[0]
            if key != "scheme"
        ]
        return render_table(
            headers, rows,
            f"Scorecard: {args.matrix} at P=16 (block g={args.grain} vs wrap)",
        )
    if target == "report":
        report = generate_report()
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(report)
            return f"report written to {args.output}"
        return report
    raise ValueError(f"unknown target {target!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables/figures of Venugopal & Naik (SC 1991).",
    )
    parser.add_argument("target", choices=_TARGETS + _EXTRA_TARGETS + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--nx", type=int, default=5, help="figure2 grid width")
    parser.add_argument("--ny", type=int, default=5, help="figure2 grid height")
    parser.add_argument("--matrix", default="LAP30",
                        help="matrix for figure4/stats")
    parser.add_argument("--grain", type=int, default=25,
                        help="grain size for figure4/stats")
    parser.add_argument("--output", default=None,
                        help="write the report target to a file")
    args = parser.parse_args(argv)

    targets = _TARGETS if args.target == "all" else [args.target]
    chunks = [_emit(t, args) for t in targets]
    print("\n\n".join(chunks))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
