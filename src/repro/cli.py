"""Command-line entry point: regenerate any table or figure of the paper.

Examples
--------
::

    python -m repro table2          # block-mapping communication
    python -m repro figure2 --nx 6 --ny 6
    python -m repro all             # every table and figure
    python -m repro trace table2 --trace-out run.json   # traced run
    python -m repro -v table3       # any target with stage timings
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    figure2_ascii,
    figure3_ascii,
    figure4_report,
    generate_report,
    render_partition_stats,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

_TARGETS = ["table1", "table2", "table3", "table4", "table5",
            "figure1", "figure2", "figure3", "figure4"]
_EXTRA_TARGETS = ["stats", "report", "claims", "sweep", "scorecard", "compare",
                  "bench", "bench-sweep"]


def _int_list(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(",") if x.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints, got {text!r}")


def _emit(target: str, args: argparse.Namespace) -> str:
    if target == "table1":
        return render_table1()
    if target == "table2":
        return render_table2()
    if target == "table3":
        return render_table3()
    if target == "table4":
        return render_table4()
    if target == "table5":
        return render_table5()
    if target == "figure1":
        from .analysis import figure1_ascii

        return figure1_ascii()
    if target == "figure2":
        return figure2_ascii(args.nx, args.ny)
    if target == "figure3":
        return figure3_ascii()
    if target == "figure4":
        return figure4_report(args.matrix, args.grain)
    if target == "stats":
        from .analysis.experiments import prepared_matrix
        from .core import partition_factor

        prep = prepared_matrix(args.matrix)
        partition = partition_factor(prep.pattern, grain=args.grain)
        return render_partition_stats(
            partition, f"Partition statistics: {args.matrix}, g={args.grain}"
        )
    if target == "claims":
        from .analysis import render_claims

        return render_claims(args.matrix)
    if target == "compare":
        from .analysis import render_comparison

        return render_comparison()
    if target == "sweep":
        import dataclasses
        import json

        from .analysis import records_to_csv
        from .perf import sweep as perf_sweep

        matrices = [m.strip() for m in args.matrix.split(",") if m.strip()]
        records = perf_sweep(
            matrices,
            schemes=tuple(s.strip() for s in args.schemes.split(",") if s.strip()),
            procs=args.procs,
            grains=args.grains,
            min_widths=args.min_widths,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            reuse=not args.no_reuse,
        )
        if args.json:
            text = json.dumps([dataclasses.asdict(r) for r in records], indent=2)
        else:
            text = records_to_csv(records)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text if text.endswith("\n") else text + "\n")
            return f"{len(records)} records written to {args.output}"
        return text.rstrip("\n")
    if target == "bench":
        import json

        from .perf import bench_pipeline, find_regressions, render_bench, render_delta

        out = args.bench_out or "BENCH_pipeline.json"
        baseline = None
        baseline_path = args.bench_baseline or out
        try:
            with open(baseline_path) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError):
            baseline = None
        report = bench_pipeline(
            matrices=args.bench_matrices,
            nprocs=args.nprocs,
            grain=args.grain,
            smoke=args.smoke,
            out=out,
            repeats=args.bench_repeats,
        )
        text = render_bench(report) + f"\nreport written to {out}"
        if baseline is not None:
            text += "\n\ndelta vs baseline " + str(baseline_path) + ":\n"
            text += render_delta(report, baseline)
            if not args.smoke:
                regressions = find_regressions(report, baseline)
                if regressions:
                    raise SystemExit(
                        "bench regression vs "
                        + str(baseline_path)
                        + " (stage >25% slower than baseline):\n  "
                        + "\n  ".join(regressions)
                    )
        return text
    if target == "bench-sweep":
        import json

        from .perf import bench_sweep, render_sweep_bench, render_sweep_delta

        out = args.bench_out or "BENCH_sweep.json"
        baseline = None
        baseline_path = args.bench_baseline or out
        try:
            with open(baseline_path) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError):
            baseline = None
        report = bench_sweep(
            matrices=args.bench_matrices,
            smoke=args.smoke,
            out=out,
            repeats=args.bench_repeats,
        )
        text = render_sweep_bench(report) + f"\nreport written to {out}"
        if baseline is not None:
            text += "\n\ndelta vs baseline " + str(baseline_path) + ":\n"
            text += render_sweep_delta(report, baseline)
        return text
    if target == "scorecard":
        from .analysis import render_table
        from .analysis.experiments import prepared_matrix
        from .core import block_mapping, wrap_mapping
        from .machine import scorecard

        prep = prepared_matrix(args.matrix)
        cards = [
            scorecard(r.assignment, prep.updates)
            for r in (
                block_mapping(prep, 16, grain=args.grain),
                wrap_mapping(prep, 16),
            )
        ]
        headers = ["metric"] + [c["scheme"] for c in cards]
        rows = [
            [key] + [c[key] for c in cards]
            for key in cards[0]
            if key != "scheme"
        ]
        return render_table(
            headers, rows,
            f"Scorecard: {args.matrix} at P=16 (block g={args.grain} vs wrap)",
        )
    if target == "report":
        report = generate_report()
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(report)
            return f"report written to {args.output}"
        return report
    raise ValueError(
        f"unknown target {target!r}; expected one of: "
        + ", ".join(_TARGETS + _EXTRA_TARGETS + ["all"])
    )


def _simulate_for_trace(args: argparse.Namespace) -> None:
    """Run the schedule simulator under tracing so the trace carries a
    per-unit Gantt timeline (one Perfetto lane per processor)."""
    from .analysis.experiments import prepared_matrix
    from .core import block_mapping
    from .machine.simulate import simulate_schedule
    from .obs import trace as obs

    with obs.span("cli.simulate", matrix=args.matrix, nprocs=args.nprocs,
                  grain=args.grain):
        result = block_mapping(prepared_matrix(args.matrix), args.nprocs,
                               grain=args.grain)
        simulate_schedule(result.assignment, result.dependencies,
                          result.prepared.updates)


def _run_traced(target: str, args: argparse.Namespace) -> tuple[str, str]:
    """Emit ``target`` under a fresh recorder; returns (output, summary)."""
    from . import obs

    with obs.enabled(obs.Recorder()) as rec:
        with obs.span("cli.target", target=target):
            text = _emit(target, args)
        _simulate_for_trace(args)
    if args.trace_out:
        obs.write_chrome_trace(rec, args.trace_out)
    if args.trace_jsonl:
        obs.write_jsonl(rec, args.trace_jsonl)
    return text, obs.summary_table(rec)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables/figures of Venugopal & Naik (SC 1991).",
        epilog=(
            "targets: " + ", ".join(_TARGETS)
            + "; extra targets: " + ", ".join(_EXTRA_TARGETS)
            + "; 'all' runs every table and figure; 'trace TARGET' runs any "
            "of them under the repro.obs tracing layer (see --trace-out)."
        ),
    )
    parser.add_argument(
        "target",
        metavar="target",
        choices=_TARGETS + _EXTRA_TARGETS + ["all", "trace"],
        help="which table/figure to regenerate (or 'trace' / 'all')",
    )
    parser.add_argument(
        "subtarget",
        nargs="?",
        default=None,
        metavar="traced-target",
        help="with 'trace': the target to run under tracing",
    )
    parser.add_argument("--nx", type=int, default=5, help="figure2 grid width")
    parser.add_argument("--ny", type=int, default=5, help="figure2 grid height")
    parser.add_argument("--matrix", default=None,
                        help="matrix for figure4/stats/sweep and traced "
                             "simulation; comma-separated list for "
                             "sweep/bench (default LAP30; bench defaults "
                             "to every paper matrix)")
    parser.add_argument("--grain", type=int, default=25,
                        help="grain size for figure4/stats/trace/bench")
    parser.add_argument("--nprocs", type=int, default=16,
                        help="processor count for the traced simulation and bench")
    parser.add_argument("--output", default=None,
                        help="write the report target to a file")
    parser.add_argument("--jobs", type=int, default=1,
                        help="with 'sweep': worker processes for the grid "
                             "(1 = serial in-process)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="with 'sweep': prepared-matrix disk cache "
                             "directory (persists ordering/symbolic stages "
                             "across runs; parallel runs without it use an "
                             "ephemeral cache)")
    parser.add_argument("--schemes", default="block,wrap",
                        help="with 'sweep': comma-separated mapping schemes "
                             "(block, block-adaptive, wrap)")
    parser.add_argument("--procs", type=_int_list, default=(4, 16, 32),
                        metavar="P1,P2,...",
                        help="with 'sweep': processor counts of the grid "
                             "(the paper sweeps 16-1024, e.g. "
                             "--procs 16,64,256,1024; staged reuse measures "
                             "all of them from one partition)")
    parser.add_argument("--grains", type=_int_list, default=(4, 25),
                        metavar="G1,G2,...",
                        help="with 'sweep': grain sizes of the grid")
    parser.add_argument("--min-widths", type=_int_list, default=(4,),
                        metavar="W1,W2,...",
                        help="with 'sweep': minimum cluster widths of the grid")
    parser.add_argument("--json", action="store_true",
                        help="with 'sweep': emit JSON records instead of CSV")
    parser.add_argument("--no-reuse", action="store_true",
                        help="with 'sweep': disable staged reuse and run one "
                             "full pipeline per grid cell (the reference "
                             "decomposition; values are identical either way)")
    parser.add_argument("--smoke", action="store_true",
                        help="with 'bench'/'bench-sweep': tiny problems (CI mode)")
    parser.add_argument("--bench-out", default=None, metavar="FILE",
                        help="with 'bench'/'bench-sweep': where to write the "
                             "JSON report (default BENCH_pipeline.json / "
                             "BENCH_sweep.json)")
    parser.add_argument("--bench-baseline", default=None, metavar="FILE",
                        help="with 'bench': baseline report for the delta "
                             "table (default: the pre-existing --bench-out "
                             "file); a full-mode stage regression >25%% "
                             "exits nonzero")
    parser.add_argument("--bench-repeats", type=int, default=None, metavar="N",
                        help="with 'bench': best-of-N stage timings "
                             "(default: 3 in full mode, 1 in smoke mode)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="with 'trace': write Chrome-trace JSON here "
                             "(load in chrome://tracing or Perfetto)")
    parser.add_argument("--trace-jsonl", default=None, metavar="FILE",
                        help="with 'trace': write the raw event stream as JSONL")
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument("-v", "--verbose", action="store_true",
                           help="trace the run and print stage timings to stderr")
    verbosity.add_argument("-q", "--quiet", action="store_true",
                           help="suppress normal output (errors still print)")
    args = parser.parse_args(argv)
    # 'bench' defaults to every paper matrix; everything else to LAP30.
    args.bench_matrices = (
        None if args.matrix is None
        else [m.strip() for m in args.matrix.split(",") if m.strip()]
    )
    if args.matrix is None:
        args.matrix = "LAP30"

    try:
        if args.target == "trace":
            if args.subtarget is None:
                print("error: 'trace' needs a target to trace, e.g. "
                      "`python -m repro trace table2`", file=sys.stderr)
                return 2
            text, summary = _run_traced(args.subtarget, args)
            if not args.quiet:
                print(text)
                print()
                print(summary)
                if args.trace_out:
                    print(f"\nChrome trace written to {args.trace_out} "
                          "(open in chrome://tracing or https://ui.perfetto.dev)")
                if args.trace_jsonl:
                    print(f"JSONL event stream written to {args.trace_jsonl}")
            return 0

        if args.subtarget is not None:
            print(f"error: unexpected argument {args.subtarget!r} "
                  f"(only 'trace' takes a second target)", file=sys.stderr)
            return 2

        targets = _TARGETS if args.target == "all" else [args.target]
        if args.verbose:
            from . import obs

            with obs.enabled(obs.Recorder()) as rec:
                chunks = [_emit(t, args) for t in targets]
            print(obs.summary_table(rec), file=sys.stderr)
        else:
            chunks = [_emit(t, args) for t in targets]
        if not args.quiet:
            print("\n\n".join(chunks))
        return 0
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
