"""Command-line entry point: regenerate any table or figure of the paper.

Examples
--------
::

    python -m repro table2          # block-mapping communication
    python -m repro figure2 --nx 6 --ny 6
    python -m repro all             # every table and figure
    python -m repro trace table2 --trace-out run.json   # traced run
    python -m repro -v table3       # any target with stage timings
"""

from __future__ import annotations

import argparse
import os
import sys

from .analysis import (
    figure2_ascii,
    figure3_ascii,
    figure4_report,
    generate_report,
    render_partition_stats,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

_TARGETS = ["table1", "table2", "table3", "table4", "table5",
            "figure1", "figure2", "figure3", "figure4"]
_EXTRA_TARGETS = ["stats", "report", "claims", "sweep", "scorecard", "compare",
                  "bench", "bench-sweep", "explain"]

#: Every invocable target with a one-line description, in the stable
#: order ``--help`` lists them.  Keep this in sync with ``_emit`` /
#: ``main`` — ``tests/analysis/test_cli.py`` asserts the help output
#: names each of them.
_TARGET_HELP: dict[str, str] = {
    "table1": "the Harwell-Boeing test matrices (n, nnz, fill)",
    "table2": "block-mapping communication volume",
    "table3": "block-mapping work distribution (lambda)",
    "table4": "cluster-width sensitivity for LAP30",
    "table5": "wrap-mapping traffic and imbalance",
    "figure1": "element-level dependencies of one update",
    "figure2": "filled matrix of an MMD-ordered grid",
    "figure3": "partitioned-cluster diagram",
    "figure4": "dependency-category breakdown",
    "all": "every table and figure above, in order",
    "stats": "partition statistics for one matrix",
    "report": "paper-vs-measured report; --latest/--run: HTML run report",
    "claims": "per-claim verification verdicts",
    "compare": "side-by-side paper/measured tables",
    "scorecard": "block-vs-wrap metric scorecard",
    "explain": "simulate one (matrix, scheme, P) cell and attribute "
               "its communication and imbalance (HTML + registry run)",
    "trace": "run any target under tracing (see --trace-out)",
    "profile": "run any target under the sampling profiler (--hz)",
    "sweep": "parallel (matrix, scheme, P, g) grid sweep",
    "bench": "per-stage pipeline benchmark -> BENCH_pipeline.json",
    "bench-sweep": "staged-reuse sweep benchmark -> BENCH_sweep.json",
    "runs": "run registry: runs list | show REF | compare OLD NEW",
    "cache": "disk-cache tools: cache stats | prune --max-bytes N",
}


def _targets_epilog() -> str:
    lines = ["targets:"]
    lines += [f"  {name:<12} {desc}" for name, desc in _TARGET_HELP.items()]
    lines.append("")
    lines.append("environment: REPRO_TRACE_OUT sets the default --trace-out; "
                 "REPRO_RUNS_DIR relocates the run registry (.repro/runs); "
                 "REPRO_CACHE_DIR relocates the prepared-matrix cache.")
    return "\n".join(lines)


def _int_list(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(",") if x.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints, got {text!r}")


def _emit(target: str, args: argparse.Namespace) -> str:
    if target == "table1":
        return render_table1()
    if target == "table2":
        return render_table2()
    if target == "table3":
        return render_table3()
    if target == "table4":
        return render_table4()
    if target == "table5":
        return render_table5()
    if target == "figure1":
        from .analysis import figure1_ascii

        return figure1_ascii()
    if target == "figure2":
        return figure2_ascii(args.nx, args.ny)
    if target == "figure3":
        return figure3_ascii()
    if target == "figure4":
        return figure4_report(args.matrix, args.grain)
    if target == "stats":
        from .analysis.experiments import prepared_matrix
        from .core import partition_factor

        prep = prepared_matrix(args.matrix)
        partition = partition_factor(prep.pattern, grain=args.grain)
        return render_partition_stats(
            partition, f"Partition statistics: {args.matrix}, g={args.grain}"
        )
    if target == "claims":
        from .analysis import render_claims

        return render_claims(args.matrix)
    if target == "compare":
        from .analysis import render_comparison

        return render_comparison()
    if target == "sweep":
        import dataclasses
        import json
        import time

        from .analysis import records_to_csv
        from .obs import runs as obs_runs
        from .obs import trace as obs_trace
        from .obs.export import write_chrome_trace, write_jsonl
        from .obs.memory import monitored
        from .obs.report import downsample
        from .perf import sweep as perf_sweep
        from .perf.bench import STAGES

        matrices = [m.strip() for m in args.matrix.split(",") if m.strip()]
        schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
        run = lambda: perf_sweep(  # noqa: E731
            matrices,
            schemes=schemes,
            procs=args.procs,
            grains=args.grains,
            min_widths=args.min_widths,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            reuse=not args.no_reuse,
        )
        # The sweep always runs under a recorder: workers then ship
        # their trace shards home, --trace-out has something to export,
        # and the run manifest carries stage timings and cache traffic.
        # An outer recorder (-v, or `trace sweep`) is reused as is.
        t0 = time.perf_counter()
        if obs_trace.is_enabled():
            rec = obs_trace.get_recorder()
            with monitored(rec):
                records = run()
        else:
            with obs_trace.enabled(obs_trace.Recorder()) as rec:
                with monitored(rec):
                    records = run()
        wall = time.perf_counter() - t0
        if args.trace_out:
            write_chrome_trace(rec, args.trace_out)
            print(f"Chrome trace written to {args.trace_out} "
                  "(open in chrome://tracing or https://ui.perfetto.dev)",
                  file=sys.stderr)
        if args.trace_jsonl:
            write_jsonl(rec, args.trace_jsonl)
            print(f"JSONL event stream written to {args.trace_jsonl}",
                  file=sys.stderr)
        obs_runs.record_run(
            "sweep",
            config={
                "matrices": matrices,
                "schemes": list(schemes),
                "procs": list(args.procs),
                "grains": list(args.grains),
                "min_widths": list(args.min_widths),
                "jobs": args.jobs,
                "reuse": not args.no_reuse,
            },
            matrices={
                ",".join(matrices): {
                    "stages": {
                        short: sum(s.duration for s in rec.spans_named(long))
                        for short, long in STAGES.items()
                    },
                    "wall_total": wall,
                    "mem_peak_mb": rec.gauges.get("mem.rss_peak_mb"),
                }
            },
            counters={
                k: v for k, v in rec.counters.items()
                if k.startswith(("perf.cache.", "perf.sweep."))
            },
            wall_s=wall,
            extra={
                "cells": len(records),
                # What the HTML report renders: the sweep curves, the
                # distribution percentiles, and the RSS timeline in MB.
                "records": [dataclasses.asdict(r) for r in records],
                "histograms": {
                    k: h.to_dict() for k, h in sorted(rec.histograms.items())
                },
                "memory": [
                    [round(t, 4), round(rss / (1024.0 * 1024.0), 2)]
                    for t, rss in downsample(rec.memory_samples, limit=300)
                ],
            },
        )
        if args.json:
            text = json.dumps([dataclasses.asdict(r) for r in records], indent=2)
        else:
            text = records_to_csv(records)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text if text.endswith("\n") else text + "\n")
            return f"{len(records)} records written to {args.output}"
        return text.rstrip("\n")
    if target == "bench":
        import json

        from .perf import bench_pipeline, find_regressions, render_bench, render_delta

        out = args.bench_out or (
            "BENCH_pipeline_big.json" if args.tier == "big"
            else "BENCH_pipeline.json"
        )
        baseline = None
        baseline_path = args.bench_baseline or out
        try:
            with open(baseline_path) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError):
            baseline = None
        report = bench_pipeline(
            matrices=args.bench_matrices,
            nprocs=args.nprocs,
            grain=args.grain,
            smoke=args.smoke,
            out=out,
            repeats=args.bench_repeats,
            tier=args.tier,
            stretch=args.stretch,
        )
        from .obs import runs as obs_runs

        obs_runs.record_run(
            "bench",
            config={k: report[k]
                    for k in ("smoke", "tier", "nprocs", "grain", "repeats")
                    if k in report},
            matrices=report.get("matrices", {}),
            wall_s=sum(m.get("wall_total", 0.0)
                       for m in report.get("matrices", {}).values()),
            extra={"report": out},
        )
        text = render_bench(report) + f"\nreport written to {out}"
        if baseline is not None:
            text += "\n\ndelta vs baseline " + str(baseline_path) + ":\n"
            text += render_delta(report, baseline)
            if not args.smoke:
                regressions = find_regressions(report, baseline)
                if regressions:
                    raise SystemExit(
                        "bench regression vs "
                        + str(baseline_path)
                        + " (stage >25% slower than baseline):\n  "
                        + "\n  ".join(regressions)
                    )
        return text
    if target == "bench-sweep":
        import json

        from .perf import bench_sweep, render_sweep_bench, render_sweep_delta

        out = args.bench_out or (
            "BENCH_sweep_big.json" if args.tier == "big"
            else "BENCH_sweep.json"
        )
        baseline = None
        baseline_path = args.bench_baseline or out
        try:
            with open(baseline_path) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError):
            baseline = None
        report = bench_sweep(
            matrices=args.bench_matrices,
            smoke=args.smoke,
            out=out,
            repeats=args.bench_repeats,
            tier=args.tier,
        )
        from .obs import runs as obs_runs

        obs_runs.record_run(
            "bench-sweep",
            config={k: report[k]
                    for k in ("smoke", "tier", "grid", "repeats")
                    if k in report},
            matrices=report.get("matrices", {}),
            wall_s=sum(m.get("wall_noreuse", 0.0) + m.get("wall_reuse", 0.0)
                       for m in report.get("matrices", {}).values()),
            extra={"report": out},
        )
        text = render_sweep_bench(report) + f"\nreport written to {out}"
        if baseline is not None:
            text += "\n\ndelta vs baseline " + str(baseline_path) + ":\n"
            text += render_sweep_delta(report, baseline)
        return text
    if target == "explain":
        import time

        from .analysis.explain import (
            explain_manifest,
            explain_run,
            render_explain,
        )
        from .obs import runs as obs_runs
        from .obs.report import build_report

        t0 = time.perf_counter()
        result = explain_run(args.matrix, scheme=args.scheme,
                             nprocs=args.nprocs, grain=args.grain)
        wall = time.perf_counter() - t0
        doc = explain_manifest(result)
        manifest = obs_runs.record_run(
            "explain",
            config={"matrix": args.matrix, "scheme": args.scheme,
                    "nprocs": args.nprocs, "grain": args.grain},
            counters={"explain.messages": doc["n_messages"],
                      "explain.message_bytes": doc["message_bytes"]},
            wall_s=wall,
            extra={"explain": doc},
        )
        if manifest is None:  # read-only registry: still render the page
            manifest = {"run_id": "(unrecorded)", "kind": "explain",
                        "explain": doc}
        out = (args.output
               or f"EXPLAIN_{args.matrix}_{args.scheme}_p{args.nprocs}.html")
        with open(out, "w") as fh:
            fh.write(build_report(manifest))
        return (render_explain(result)
                + f"\n\nregistry run {manifest.get('run_id', '?')} "
                  "(kind explain)"
                + f"\nHTML report written to {out}")
    if target == "scorecard":
        from .analysis import render_table
        from .analysis.experiments import prepared_matrix
        from .core import block_mapping, wrap_mapping
        from .machine import scorecard

        prep = prepared_matrix(args.matrix)
        cards = [
            scorecard(r.assignment, prep.updates)
            for r in (
                block_mapping(prep, 16, grain=args.grain),
                wrap_mapping(prep, 16),
            )
        ]
        headers = ["metric"] + [c["scheme"] for c in cards]
        rows = [
            [key] + [c[key] for c in cards]
            for key in cards[0]
            if key != "scheme"
        ]
        return render_table(
            headers, rows,
            f"Scorecard: {args.matrix} at P=16 (block g={args.grain} vs wrap)",
        )
    if target == "report":
        if args.latest or args.run_ref:
            from .obs.report import render_report

            out = render_report(args.run_ref, out=args.output or "REPORT.html")
            return f"HTML run report written to {out}"
        report = generate_report()
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(report)
            return f"report written to {args.output}"
        return report
    raise ValueError(
        f"unknown target {target!r}; expected one of: "
        + ", ".join(_TARGETS + _EXTRA_TARGETS + ["all"])
    )


def _simulate_for_trace(args: argparse.Namespace) -> None:
    """Run the schedule simulator under tracing so the trace carries a
    per-unit Gantt timeline (one Perfetto lane per processor)."""
    from .analysis.experiments import prepared_matrix
    from .core import block_mapping
    from .machine.simulate import simulate_schedule
    from .obs import trace as obs

    with obs.span("cli.simulate", matrix=args.matrix, nprocs=args.nprocs,
                  grain=args.grain):
        result = block_mapping(prepared_matrix(args.matrix), args.nprocs,
                               grain=args.grain)
        simulate_schedule(result.assignment, result.dependencies,
                          result.prepared.updates)


def _run_traced(target: str, args: argparse.Namespace) -> tuple[str, str]:
    """Emit ``target`` under a fresh recorder; returns (output, summary)."""
    import time

    from . import obs
    from .obs import runs as obs_runs

    t0 = time.perf_counter()
    with obs.enabled(obs.Recorder()) as rec:
        with obs.span("cli.target", target=target):
            text = _emit(target, args)
        _simulate_for_trace(args)
    wall = time.perf_counter() - t0
    if args.trace_out:
        obs.write_chrome_trace(rec, args.trace_out)
    if args.trace_jsonl:
        obs.write_jsonl(rec, args.trace_jsonl)
    obs_runs.record_run(
        "trace",
        config={"target": target, "matrix": args.matrix, "grain": args.grain,
                "nprocs": args.nprocs},
        counters=dict(rec.counters),
        wall_s=wall,
        extra={"gauges": {k: v for k, v in rec.gauges.items()
                          if isinstance(v, (int, float, str))}},
    )
    return text, obs.summary_table(rec)


def _run_profiled(target: str, args: argparse.Namespace) -> tuple[str, str]:
    """Emit ``target`` under tracing + the sampling profiler + memory
    watermarks; returns (output, profile/summary text)."""
    from . import obs
    from .obs import runs as obs_runs
    from .obs.memory import monitored
    from .obs.profile import SamplingProfiler

    with obs.enabled(obs.Recorder()) as rec:
        prof = SamplingProfiler(hz=args.hz, recorder=rec)
        with monitored(rec):
            with prof:
                with obs.span("cli.target", target=target):
                    text = _emit(target, args)
    if args.trace_out:
        obs.write_chrome_trace(rec, args.trace_out)
    if args.trace_jsonl:
        obs.write_jsonl(rec, args.trace_jsonl)
    if args.profile_out:
        with open(args.profile_out, "w") as fh:
            fh.write(prof.collapsed())
    obs_runs.record_run(
        "profile",
        config={"target": target, "hz": args.hz, "matrix": args.matrix,
                "grain": args.grain},
        counters=dict(rec.counters),
        wall_s=prof.duration,
        extra={"profile": prof.to_dict(top=args.profile_top),
               "gauges": {k: v for k, v in rec.gauges.items()
                          if isinstance(v, (int, float, str))}},
    )
    summary = prof.table(args.profile_top) + "\n\n" + obs.summary_table(rec)
    return text, summary


def _runs_main(argv: list[str]) -> int:
    """``python -m repro runs list|show|compare`` — the run registry."""
    from .obs import runs as obs_runs

    parser = argparse.ArgumentParser(
        prog="repro runs",
        description="Inspect and compare the persistent run registry "
                    "(.repro/runs, relocatable via $REPRO_RUNS_DIR).",
    )
    sub = parser.add_subparsers(dest="cmd", required=True, metavar="COMMAND")
    p_list = sub.add_parser("list", help="list recorded runs, oldest first")
    p_list.add_argument("--kind", default=None,
                        help="only runs of this kind (trace, profile, bench, "
                             "bench-sweep, sweep, explain)")
    p_show = sub.add_parser("show", help="print one run manifest as JSON")
    p_show.add_argument("ref", help="run id (or unique prefix), 'latest', "
                                    "'<kind>:latest', or a JSON report file")
    p_cmp = sub.add_parser(
        "compare", help="per-stage delta between two runs or report files"
    )
    p_cmp.add_argument("old", help="baseline: run ref or BENCH_*.json file")
    p_cmp.add_argument("new", help="current: run ref or BENCH_*.json file")
    p_cmp.add_argument("--fail-on-regression", action="store_true",
                       help="exit nonzero when any stage regressed beyond "
                            "the threshold (the CI gate)")
    p_cmp.add_argument("--threshold", type=float, default=None, metavar="FRAC",
                       help="regression threshold as a fraction "
                            "(default 0.25 = 25%% slower)")
    for p in (p_list, p_show, p_cmp):
        p.add_argument("--runs-dir", default=None, metavar="DIR",
                       help="registry directory (default .repro/runs, or "
                            "$REPRO_RUNS_DIR)")
    args = parser.parse_args(argv)
    try:
        if args.cmd == "list":
            print(obs_runs.render_runs_table(
                obs_runs.list_runs(args.runs_dir, args.kind)))
            return 0
        if args.cmd == "show":
            print(obs_runs.render_run(obs_runs.load_run(args.ref, args.runs_dir)))
            return 0
        old = obs_runs.load_run(args.old, args.runs_dir)
        new = obs_runs.load_run(args.new, args.runs_dir)
        print(f"baseline: {old.get('run_id', args.old)}"
              + (f" ({old.get('created')})" if old.get("created") else ""))
        print(f"current:  {new.get('run_id', args.new)}"
              + (f" ({new.get('created')})" if new.get("created") else ""))
        print()
        print(obs_runs.render_run_delta(old, new))
        regressions = obs_runs.find_run_regressions(old, new, args.threshold)
        if regressions:
            from .perf.bench import REGRESSION_THRESHOLD

            threshold = (REGRESSION_THRESHOLD if args.threshold is None
                         else args.threshold)
            print(f"\nregressions (stage >{100 * threshold:.0f}% slower "
                  "than baseline):")
            for line in regressions:
                print(f"  {line}")
            if args.fail_on_regression:
                return 1
        elif args.fail_on_regression:
            print("\nno stage regressions beyond threshold")
        return 0
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _parse_bytes(text: str) -> int:
    """``512``, ``64K``, ``100M``, ``2G`` -> bytes (suffixes are 1024-based)."""
    from .perf.cache import parse_bytes

    try:
        return parse_bytes(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (expected e.g. 512, 64K, 100M, 2G)"
        ) from None


def _cache_main(argv: list[str]) -> int:
    """``python -m repro cache stats|prune`` — the prepared-matrix cache."""
    from .perf.cache import (
        cache_max_bytes,
        cache_stats,
        prune_cache,
        render_cache_stats,
    )

    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect and prune the prepared-matrix disk cache "
                    "(~/.cache/repro-prepare, relocatable via "
                    "$REPRO_CACHE_DIR).",
    )
    sub = parser.add_subparsers(dest="cmd", required=True, metavar="COMMAND")
    p_stats = sub.add_parser(
        "stats", help="entry counts, bytes, and lifetime hit/miss counters"
    )
    p_prune = sub.add_parser(
        "prune", help="evict least-recently-used entries down to a byte budget"
    )
    p_prune.add_argument(
        "--max-bytes", type=_parse_bytes, default=None, metavar="N",
        help="target cache size in bytes (K/M/G suffixes accepted; "
             "defaults to $REPRO_CACHE_MAX_BYTES when set)",
    )
    for p in (p_stats, p_prune):
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default ~/.cache/repro-prepare, "
                            "or $REPRO_CACHE_DIR)")
    args = parser.parse_args(argv)
    if args.cmd == "stats":
        print(render_cache_stats(cache_stats(args.cache_dir)))
        return 0
    if args.max_bytes is None:
        args.max_bytes = cache_max_bytes()
        if args.max_bytes is None:
            print("error: --max-bytes is required "
                  "(or set $REPRO_CACHE_MAX_BYTES)", file=sys.stderr)
            return 2
    result = prune_cache(args.cache_dir, max_bytes=args.max_bytes)
    print(f"pruned {result['removed']} entries "
          f"({result['freed_bytes']} bytes freed); "
          f"kept {result['kept']} entries ({result['kept_bytes']} bytes)")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # 'runs' and 'cache' have their own positional grammars (subcommand +
    # refs/flags), so they are dispatched before the single-target parser
    # below ever sees them.
    if argv and argv[0] == "runs":
        return _runs_main(list(argv[1:]))
    if argv and argv[0] == "cache":
        return _cache_main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables/figures of Venugopal & Naik (SC 1991).",
        epilog=_targets_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "target",
        metavar="target",
        choices=_TARGETS + _EXTRA_TARGETS + ["all", "trace", "profile"],
        help="which table/figure to regenerate (or 'trace'/'profile'/'all')",
    )
    parser.add_argument(
        "subtarget",
        nargs="?",
        default=None,
        metavar="traced-target",
        help="with 'trace'/'profile': the target to run under it; "
             "with 'explain': the matrix name",
    )
    parser.add_argument("--nx", type=int, default=5, help="figure2 grid width")
    parser.add_argument("--ny", type=int, default=5, help="figure2 grid height")
    parser.add_argument("--matrix", default=None,
                        help="matrix for figure4/stats/sweep and traced "
                             "simulation; comma-separated list for "
                             "sweep/bench (default LAP30; bench defaults "
                             "to every paper matrix)")
    parser.add_argument("--grain", type=int, default=25,
                        help="grain size for figure4/stats/trace/bench")
    parser.add_argument("-p", "--nprocs", type=int, default=16,
                        help="processor count for explain, the traced "
                             "simulation and bench")
    parser.add_argument("--scheme", default="block",
                        choices=("block", "block-adaptive", "wrap"),
                        help="with 'explain': the mapping scheme to simulate "
                             "and attribute (default block)")
    parser.add_argument("--output", default=None,
                        help="write the report target to a file")
    parser.add_argument("--jobs", type=int, default=1,
                        help="with 'sweep': worker processes for the grid "
                             "(1 = serial in-process)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="with 'sweep': prepared-matrix disk cache "
                             "directory (persists ordering/symbolic stages "
                             "across runs; parallel runs without it use an "
                             "ephemeral cache)")
    parser.add_argument("--schemes", default="block,wrap",
                        help="with 'sweep': comma-separated mapping schemes "
                             "(block, block-adaptive, wrap)")
    parser.add_argument("--procs", type=_int_list, default=(4, 16, 32),
                        metavar="P1,P2,...",
                        help="with 'sweep': processor counts of the grid "
                             "(the paper sweeps 16-1024, e.g. "
                             "--procs 16,64,256,1024; staged reuse measures "
                             "all of them from one partition)")
    parser.add_argument("--grains", type=_int_list, default=(4, 25),
                        metavar="G1,G2,...",
                        help="with 'sweep': grain sizes of the grid")
    parser.add_argument("--min-widths", type=_int_list, default=(4,),
                        metavar="W1,W2,...",
                        help="with 'sweep': minimum cluster widths of the grid")
    parser.add_argument("--json", action="store_true",
                        help="with 'sweep': emit JSON records instead of CSV")
    parser.add_argument("--no-reuse", action="store_true",
                        help="with 'sweep': disable staged reuse and run one "
                             "full pipeline per grid cell (the reference "
                             "decomposition; values are identical either way)")
    parser.add_argument("--smoke", action="store_true",
                        help="with 'bench'/'bench-sweep': tiny problems (CI mode)")
    parser.add_argument("--tier", choices=("paper", "big"), default="paper",
                        help="with 'bench'/'bench-sweep': 'big' benches the "
                             "10^5-unknown generated instances and writes "
                             "BENCH_*_big.json by default (--smoke then runs "
                             "the single smallest big instance)")
    parser.add_argument("--stretch", action="store_true",
                        help="with 'bench --tier big': also bench the "
                             "10^6-unknown stretch instances (GRIDA1M, "
                             "SOC1M); off by default — expect minutes per "
                             "matrix and multi-GB RSS")
    parser.add_argument("--bench-out", default=None, metavar="FILE",
                        help="with 'bench'/'bench-sweep': where to write the "
                             "JSON report (default BENCH_pipeline.json / "
                             "BENCH_sweep.json)")
    parser.add_argument("--bench-baseline", default=None, metavar="FILE",
                        help="with 'bench': baseline report for the delta "
                             "table (default: the pre-existing --bench-out "
                             "file); a full-mode stage regression >25%% "
                             "exits nonzero")
    parser.add_argument("--bench-repeats", type=int, default=None, metavar="N",
                        help="with 'bench': best-of-N stage timings "
                             "(default: 3 in full mode, 1 in smoke mode)")
    parser.add_argument("--latest", action="store_true",
                        help="with 'report': render the most recent "
                             "registry run as a self-contained HTML page "
                             "(--output, default REPORT.html)")
    parser.add_argument("--run", dest="run_ref", default=None, metavar="REF",
                        help="with 'report': render this run (id, prefix, "
                             "'<kind>:latest', or a BENCH_*.json file) as "
                             "HTML instead of the paper report")
    parser.add_argument("--hz", type=float, default=200.0,
                        help="with 'profile': stack sampling rate "
                             "(default 200 Hz; overhead stays <5%%)")
    parser.add_argument("--profile-out", default=None, metavar="FILE",
                        help="with 'profile': write collapsed stacks here "
                             "(flamegraph.pl / speedscope format)")
    parser.add_argument("--profile-top", type=int, default=15, metavar="N",
                        help="with 'profile': rows in the self-time table "
                             "(default 15)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="with 'trace'/'sweep': write Chrome-trace JSON "
                             "here (load in chrome://tracing or Perfetto; "
                             "defaults to $REPRO_TRACE_OUT when set)")
    parser.add_argument("--trace-jsonl", default=None, metavar="FILE",
                        help="with 'trace'/'sweep': write the raw event "
                             "stream as JSONL")
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument("-v", "--verbose", action="store_true",
                           help="trace the run and print stage timings to stderr")
    verbosity.add_argument("-q", "--quiet", action="store_true",
                           help="suppress normal output (errors still print)")
    args = parser.parse_args(argv)
    if args.trace_out is None:
        args.trace_out = os.environ.get("REPRO_TRACE_OUT") or None
    # 'bench' defaults to every paper matrix; everything else to LAP30.
    args.bench_matrices = (
        None if args.matrix is None
        else [m.strip() for m in args.matrix.split(",") if m.strip()]
    )
    if args.matrix is None:
        args.matrix = "LAP30"

    try:
        if args.target == "trace":
            if args.subtarget is None:
                print("error: 'trace' needs a target to trace, e.g. "
                      "`python -m repro trace table2`", file=sys.stderr)
                return 2
            text, summary = _run_traced(args.subtarget, args)
            if not args.quiet:
                print(text)
                print()
                print(summary)
                if args.trace_out:
                    print(f"\nChrome trace written to {args.trace_out} "
                          "(open in chrome://tracing or https://ui.perfetto.dev)")
                if args.trace_jsonl:
                    print(f"JSONL event stream written to {args.trace_jsonl}")
            return 0

        if args.target == "profile":
            if args.subtarget is None:
                print("error: 'profile' needs a target to profile, e.g. "
                      "`python -m repro profile table2 --hz 200`",
                      file=sys.stderr)
                return 2
            text, summary = _run_profiled(args.subtarget, args)
            if not args.quiet:
                print(text)
                print()
                print(summary)
                if args.profile_out:
                    print(f"\ncollapsed stacks written to {args.profile_out} "
                          "(feed to flamegraph.pl or drop on "
                          "https://www.speedscope.app)")
            return 0

        if args.target == "explain" and args.subtarget is not None:
            # `explain CANN1072` reads more naturally than --matrix.
            args.matrix = args.subtarget
            args.subtarget = None

        if args.subtarget is not None:
            print(f"error: unexpected argument {args.subtarget!r} "
                  f"(only 'trace', 'profile' and 'explain' take a "
                  "second argument)",
                  file=sys.stderr)
            return 2

        targets = _TARGETS if args.target == "all" else [args.target]
        if args.verbose:
            from . import obs

            with obs.enabled(obs.Recorder()) as rec:
                chunks = [_emit(t, args) for t in targets]
            print(obs.summary_table(rec), file=sys.stderr)
        else:
            chunks = [_emit(t, args) for t in targets]
        if not args.quiet:
            print("\n\n".join(chunks))
        return 0
    except (KeyError, ValueError) as exc:
        # KeyError (unknown matrix name) carries its message as args[0];
        # str() would wrap it in an extra layer of quotes.
        msg = exc.args[0] if exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
