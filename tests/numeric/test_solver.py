"""Four-step SPD solver driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numeric import SPDSolver, solve_spd
from repro.sparse import grid5, grid9, random_symmetric_graph, spd_from_graph


class TestSolveSPD:
    @pytest.mark.parametrize("ordering", ["natural", "mmd", "md", "rcm", "nd"])
    def test_all_orderings_solve(self, ordering):
        a = spd_from_graph(grid5(5, 5), seed=1)
        b = np.arange(a.n, dtype=float)
        x = solve_spd(a, b, ordering=ordering)
        assert np.allclose(a.to_dense() @ x, b, atol=1e-8)

    def test_reusable_factorization(self):
        a = spd_from_graph(grid9(4, 4), seed=2)
        solver = SPDSolver.factorize(a)
        for seed in range(3):
            b = np.random.default_rng(seed).random(a.n)
            assert np.allclose(a.to_dense() @ solver.solve(b), b, atol=1e-8)

    def test_b_shape_checked(self):
        a = spd_from_graph(grid5(2, 3), seed=3)
        solver = SPDSolver.factorize(a)
        with pytest.raises(ValueError):
            solver.solve(np.zeros(2))

    def test_mmd_factor_smaller_than_natural(self):
        a = spd_from_graph(grid5(9, 9), seed=4)
        s_nat = SPDSolver.factorize(a, "natural")
        s_mmd = SPDSolver.factorize(a, "mmd")
        assert s_mmd.factor.nnz < s_nat.factor.nnz

    @given(st.integers(2, 15), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_solution_property(self, n, seed):
        g = random_symmetric_graph(n, 0.35, seed=seed)
        a = spd_from_graph(g, seed=seed)
        x_true = np.random.default_rng(seed).random(n)
        b = a.to_dense() @ x_true
        x = solve_spd(a, b)
        assert np.allclose(x, x_true, atol=1e-7)
