"""Supernodal blocked Cholesky."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numeric import (
    NotPositiveDefiniteError,
    sparse_cholesky,
    supernodal_cholesky,
)
from repro.ordering import multiple_minimum_degree
from repro.sparse import (
    SymmetricCSC,
    grid5,
    grid9,
    random_symmetric_graph,
    spd_from_graph,
)
from repro.symbolic import symbolic_cholesky


class TestSupernodalCholesky:
    def test_matches_scalar_on_grid(self):
        g = grid9(6, 6)
        a = spd_from_graph(g, seed=1)
        s = sparse_cholesky(a)
        b = supernodal_cholesky(a)
        assert np.allclose(s.values, b.values, atol=1e-12)

    def test_matches_scalar_mmd_ordered(self):
        g = grid5(7, 7)
        perm = multiple_minimum_degree(g)
        a = spd_from_graph(g, seed=2).permute(perm)
        assert np.allclose(
            sparse_cholesky(a).values, supernodal_cholesky(a).values, atol=1e-12
        )

    def test_explicit_symbolic(self):
        g = grid5(4, 4)
        a = spd_from_graph(g, seed=3)
        sym = symbolic_cholesky(a.graph())
        L = supernodal_cholesky(a, sym)
        assert L.pattern is sym.pattern

    def test_diagonal_matrix(self):
        a = SymmetricCSC.from_entries(4, list(range(4)), list(range(4)),
                                      [1.0, 4.0, 9.0, 16.0])
        L = supernodal_cholesky(a)
        assert np.allclose(np.diag(L.to_dense()), [1, 2, 3, 4])

    def test_dense_matrix_one_panel(self):
        rng = np.random.default_rng(5)
        m = rng.random((8, 8))
        a = SymmetricCSC.from_dense(m @ m.T + 8 * np.eye(8))
        L = supernodal_cholesky(a)
        assert np.allclose(L.to_dense(), np.linalg.cholesky(a.to_dense()))

    def test_rejects_indefinite_with_global_column(self):
        a = SymmetricCSC.from_entries(3, [0, 1, 1, 2], [0, 0, 1, 1],
                                      [1.0, 2.0, 1.0, 0.5])
        with pytest.raises(NotPositiveDefiniteError) as ei:
            supernodal_cholesky(a)
        assert 0 <= ei.value.column < 3

    @given(st.integers(2, 16), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_property(self, n, seed):
        g = random_symmetric_graph(n, 0.4, seed=seed)
        a = spd_from_graph(g, seed=seed)
        assert np.allclose(
            sparse_cholesky(a).values,
            supernodal_cholesky(a).values,
            atol=1e-10,
        )
