"""Dense and sparse numerical Cholesky."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numeric import NotPositiveDefiniteError, dense_cholesky, sparse_cholesky
from repro.sparse import SymmetricCSC, grid5, random_symmetric_graph, spd_from_graph
from repro.symbolic import symbolic_cholesky


def _random_spd_dense(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    return m @ m.T + n * np.eye(n)


class TestDenseCholesky:
    def test_identity(self):
        assert np.allclose(dense_cholesky(np.eye(4)), np.eye(4))

    def test_matches_numpy(self):
        a = _random_spd_dense(8, 1)
        assert np.allclose(dense_cholesky(a), np.linalg.cholesky(a))

    def test_reconstruction(self):
        a = _random_spd_dense(6, 2)
        L = dense_cholesky(a)
        assert np.allclose(L @ L.T, a)

    def test_rejects_indefinite(self):
        a = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        with pytest.raises(NotPositiveDefiniteError) as ei:
            dense_cholesky(a)
        assert ei.value.column == 1

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            dense_cholesky(np.zeros((2, 3)))

    @given(st.integers(1, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_numpy_property(self, n, seed):
        a = _random_spd_dense(n, seed)
        assert np.allclose(dense_cholesky(a), np.linalg.cholesky(a))


class TestSparseCholesky:
    def test_matches_dense_on_grid(self):
        a = spd_from_graph(grid5(4, 4), seed=3)
        L = sparse_cholesky(a)
        assert np.allclose(L.to_dense(), np.linalg.cholesky(a.to_dense()))

    def test_explicit_symbolic(self):
        a = spd_from_graph(grid5(3, 5), seed=4)
        sym = symbolic_cholesky(a.graph())
        L = sparse_cholesky(a, sym)
        assert L.pattern is sym.pattern
        assert np.allclose(L.to_dense() @ L.to_dense().T, a.to_dense())

    def test_diagonal_matrix(self):
        a = SymmetricCSC.from_entries(3, [0, 1, 2], [0, 1, 2], [4.0, 9.0, 16.0])
        L = sparse_cholesky(a)
        assert np.allclose(np.diag(L.to_dense()), [2, 3, 4])

    def test_rejects_indefinite(self):
        a = SymmetricCSC.from_entries(2, [0, 1, 1], [0, 0, 1], [1.0, 2.0, 1.0])
        with pytest.raises(NotPositiveDefiniteError):
            sparse_cholesky(a)

    def test_fill_entries_computed(self):
        """A 4-cycle ordered naturally fills (3,1); the numeric factor
        must populate it."""
        from repro.sparse.pattern import SymmetricGraph

        g = SymmetricGraph.from_edges(4, [0, 1, 2, 0], [1, 2, 3, 3])
        a = spd_from_graph(g, seed=5)
        L = sparse_cholesky(a)
        assert L.get(3, 1) != 0.0
        assert np.allclose(L.to_dense(), np.linalg.cholesky(a.to_dense()))

    @given(st.integers(2, 15), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_reconstruction_property(self, n, seed):
        g = random_symmetric_graph(n, 0.4, seed=seed)
        a = spd_from_graph(g, seed=seed)
        L = sparse_cholesky(a).to_dense()
        assert np.allclose(L @ L.T, a.to_dense(), atol=1e-10)
