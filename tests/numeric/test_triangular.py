"""Sparse triangular solves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numeric import solve_lower, solve_lower_transpose, sparse_cholesky
from repro.sparse import grid5, random_symmetric_graph, spd_from_graph


def _factor(n_seed):
    n, seed = n_seed
    g = random_symmetric_graph(n, 0.4, seed=seed)
    a = spd_from_graph(g, seed=seed)
    return sparse_cholesky(a)


class TestSolveLower:
    def test_identity(self):
        L = sparse_cholesky(spd_from_graph(grid5(2, 2), seed=0))
        b = np.array([1.0, 2.0, 3.0, 4.0])
        x = solve_lower(L, b)
        assert np.allclose(L.to_dense() @ x, b)

    def test_shape_checked(self):
        L = sparse_cholesky(spd_from_graph(grid5(2, 2), seed=0))
        with pytest.raises(ValueError):
            solve_lower(L, np.zeros(3))

    @given(st.integers(2, 12), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_forward_property(self, n, seed):
        L = _factor((n, seed))
        b = np.random.default_rng(seed).random(n)
        x = solve_lower(L, b)
        assert np.allclose(L.to_dense() @ x, b, atol=1e-9)


class TestSolveLowerTranspose:
    def test_basic(self):
        L = sparse_cholesky(spd_from_graph(grid5(3, 2), seed=1))
        b = np.arange(6, dtype=float)
        x = solve_lower_transpose(L, b)
        assert np.allclose(L.to_dense().T @ x, b)

    def test_shape_checked(self):
        L = sparse_cholesky(spd_from_graph(grid5(2, 2), seed=0))
        with pytest.raises(ValueError):
            solve_lower_transpose(L, np.zeros(9))

    @given(st.integers(2, 12), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_backward_property(self, n, seed):
        L = _factor((n, seed))
        b = np.random.default_rng(seed + 1).random(n)
        x = solve_lower_transpose(L, b)
        assert np.allclose(L.to_dense().T @ x, b, atol=1e-9)


class TestComposition:
    def test_forward_then_backward_solves_normal_equations(self):
        a = spd_from_graph(grid5(3, 3), seed=2)
        L = sparse_cholesky(a)
        b = np.ones(a.n)
        x = solve_lower_transpose(L, solve_lower(L, b))
        assert np.allclose(a.to_dense() @ x, b, atol=1e-9)
