"""Acceptance: 200 Hz sampling costs <= 5% on the CANN1072 pipeline.

The profiler's design claim is "no sys.settrace, no bytecode hooks, so
the profiled code runs at native speed" — this test holds it to the
number the docs quote.  The workload is the full prepare+partition
pipeline on CANN1072 (the largest Harwell-Boeing matrix in the paper's
set), repeated until each timed unit is ~1s long, so per-sample cost
dominates start/stop and scheduler noise.  The two arms are
*interleaved* (plain, profiled, plain, profiled, ...) with best-of-5 on
each, so slow host drift — thermal throttling, a noisy CI neighbor —
hits both arms alike instead of biasing whichever ran second.
"""

import gc
import time

import pytest

from repro.core import partition_prepared, prepare
from repro.obs.profile import SamplingProfiler
from repro.sparse import load

HZ = 200.0
OVERHEAD_BAR = 0.05

#: One pipeline run is ~0.1s; time 8 back-to-back so the measured unit
#: (~1s) is long against timer jitter and scheduler quanta.
PIPELINE_REPEATS = 8


def _pipeline(graph, repeats=PIPELINE_REPEATS):
    for _ in range(repeats):
        prepared = prepare(graph, ordering="mmd", name="CANN1072")
        partition_prepared(prepared, grain=4, min_width=4)


def _timed(fn):
    gc.collect()  # don't let one arm inherit the other's garbage
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.mark.slow
def test_sampling_overhead_under_five_percent():
    graph = load("CANN1072")
    _pipeline(graph, repeats=1)  # warm caches, imports, allocator

    def plain():
        _pipeline(graph)

    def profiled_run():
        prof = SamplingProfiler(hz=HZ)
        prof.start()
        try:
            _pipeline(graph)
        finally:
            prof.stop()

    t_plain = t_prof = float("inf")
    rounds = 0
    for _ in range(8):
        rounds += 1
        t_plain = min(t_plain, _timed(plain))
        t_prof = min(t_prof, _timed(profiled_run))
        # Converged early: no need to burn CI time on more rounds.
        if rounds >= 3 and t_prof / t_plain - 1.0 <= OVERHEAD_BAR:
            break
    overhead = t_prof / t_plain - 1.0
    assert overhead <= OVERHEAD_BAR, (
        f"sampling at {HZ:.0f} Hz cost {100 * overhead:.1f}% "
        f"({t_prof:.3f}s vs {t_plain:.3f}s, best of {rounds} interleaved) — "
        f"bar is {100 * OVERHEAD_BAR:.0f}%"
    )


@pytest.mark.slow
def test_profiler_actually_sampled_the_pipeline():
    graph = load("CANN1072")
    prof = SamplingProfiler(hz=HZ)
    prof.start()
    try:
        _pipeline(graph, repeats=2)
    finally:
        prof.stop()
    # ~1s of work at 200 Hz: even heavily descheduled CI gets dozens.
    assert prof.nsamples >= 10
    # Samples hit our pipeline code, not just the interpreter: frame
    # labels shorten paths to their last two components.
    funcs = " ".join(r["func"] for r in prof.self_time())
    assert any(mod in funcs for mod in
               ("core/", "ordering/", "symbolic/", "sparse/"))
