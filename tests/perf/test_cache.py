"""Prepare/partition caches: round-trips, every flavor of bad entry a miss."""

import numpy as np
import pytest

from repro import obs
from repro.core import prepare, schedule_blocks
from repro.perf import (
    CACHE_VERSION,
    PartitionCache,
    PrepareCache,
    cached_partition,
    cached_prepare,
    partition_key,
    prepare_key,
)
from repro.perf import cache as cache_mod
from repro.sparse import grid9


@pytest.fixture(scope="module")
def graph():
    return grid9(7, 7)


@pytest.fixture(scope="module")
def prepared(graph):
    return prepare(graph, name="grid9(7,7)")


class TestKey:
    def test_deterministic(self, graph):
        assert prepare_key(graph, "mmd") == prepare_key(graph, "mmd")

    def test_depends_on_ordering(self, graph):
        assert prepare_key(graph, "mmd") != prepare_key(graph, "natural")

    def test_depends_on_structure(self, graph):
        assert prepare_key(graph, "mmd") != prepare_key(grid9(7, 8), "mmd")

    def test_depends_on_version(self, graph, monkeypatch):
        before = prepare_key(graph, "mmd")
        monkeypatch.setattr(cache_mod, "CACHE_VERSION", CACHE_VERSION + 1)
        assert prepare_key(graph, "mmd") != before


class TestRoundTrip:
    def test_store_then_load(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        assert cache.load(graph) is None  # cold
        cache.store(graph, "mmd", prepared)
        hit = cache.load(graph, name="grid9(7,7)")
        assert hit is not None
        np.testing.assert_array_equal(hit.perm, prepared.perm)
        np.testing.assert_array_equal(hit.symbolic.parent, prepared.symbolic.parent)
        np.testing.assert_array_equal(hit.pattern.indptr, prepared.pattern.indptr)
        np.testing.assert_array_equal(hit.pattern.rowidx, prepared.pattern.rowidx)

    def test_cached_prepare_counters(self, tmp_path, graph):
        with obs.enabled(obs.Recorder()) as rec:
            cached_prepare(graph, "mmd", "g", tmp_path)
        assert rec.counters.get("perf.cache.miss") == 1
        assert rec.counters.get("perf.cache.store") == 1
        assert rec.counters.get("pipeline.stage.order") == 1  # recomputed
        with obs.enabled(obs.Recorder()) as rec:
            warm = cached_prepare(graph, "mmd", "g", tmp_path)
        assert rec.counters == {"perf.cache.hit": 1}  # no pipeline stages ran
        assert warm.pattern.nnz > 0

    def test_matches_direct_prepare(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        hit = cached_prepare(graph, "mmd", "g", tmp_path)
        np.testing.assert_array_equal(hit.perm, prepared.perm)
        np.testing.assert_array_equal(hit.pattern.rowidx, prepared.pattern.rowidx)


class TestBadEntriesAreMisses:
    def _entry_path(self, tmp_path, graph):
        return PrepareCache(tmp_path).path_for(prepare_key(graph, "mmd"))

    def test_corrupted_entry_ignored(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        self._entry_path(tmp_path, graph).write_bytes(b"not an npz file")
        with obs.enabled(obs.Recorder()) as rec:
            assert cache.load(graph) is None
        assert rec.counters.get("perf.cache.miss") == 1
        assert rec.counters.get("perf.cache.invalid") == 1

    def test_truncated_entry_ignored(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load(graph) is None

    def test_version_bumped_entry_ignored(self, tmp_path, graph, prepared):
        """An entry whose payload carries a newer version is recomputed."""
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        with np.load(path) as data:
            payload = dict(data)
        payload["version"] = np.int64(CACHE_VERSION + 1)
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        with obs.enabled(obs.Recorder()) as rec:
            assert cache.load(graph) is None
        assert rec.counters.get("perf.cache.invalid") == 1
        # cached_prepare recovers by recomputing and overwriting.
        fresh = cached_prepare(graph, "mmd", "g", tmp_path)
        np.testing.assert_array_equal(fresh.perm, prepared.perm)
        assert cache.load(graph) is not None

    def test_missing_field_ignored(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files if k != "parent"}
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        assert cache.load(graph) is None

    def test_mangled_pattern_ignored(self, tmp_path, graph, prepared):
        """A payload failing LowerPattern validation is a miss, not a crash."""
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        with np.load(path) as data:
            payload = dict(data)
        payload["rowidx"] = payload["rowidx"][::-1].copy()  # breaks diag-first
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        assert cache.load(graph) is None


class TestPartitionKey:
    def test_deterministic(self, graph):
        assert partition_key(graph, "mmd", 4, 4) == partition_key(graph, "mmd", 4, 4)

    def test_depends_on_parameters(self, graph):
        base = partition_key(graph, "mmd", 4, 4)
        assert partition_key(graph, "mmd", 25, 4) != base
        assert partition_key(graph, "mmd", 4, 2) != base
        assert partition_key(graph, "natural", 4, 4) != base

    def test_depends_on_impl_version(self, graph, monkeypatch):
        before = partition_key(graph, "mmd", 4, 4)
        monkeypatch.setattr(
            cache_mod, "PARTITION_IMPL_VERSION",
            cache_mod.PARTITION_IMPL_VERSION + 1,
        )
        assert partition_key(graph, "mmd", 4, 4) != before


class TestPartitionCache:
    def _fresh(self, prepared):
        from repro.core import partition_prepared

        return partition_prepared(prepared, grain=4, min_width=4)

    def test_round_trip_is_value_identical(self, tmp_path, prepared):
        cache = PartitionCache(tmp_path)
        assert cache.load(prepared, 4, 4) is None  # cold
        direct = self._fresh(prepared)
        cache.store(prepared, direct)
        hit = cache.load(prepared, 4, 4)
        assert hit is not None
        np.testing.assert_array_equal(
            hit.partition.unit_of_element, direct.partition.unit_of_element
        )
        np.testing.assert_array_equal(
            hit.dependencies.edges, direct.dependencies.edges
        )
        assert hit.dependencies.category_counts == direct.dependencies.category_counts
        np.testing.assert_array_equal(hit.unit_work, direct.unit_work)
        for mine, theirs in zip(hit.partition.units, direct.partition.units):
            assert mine.kind == theirs.kind
            assert mine.order_key == theirs.order_key
            np.testing.assert_array_equal(mine.elements, theirs.elements)
        assert [c.dense_blocks for c in hit.partition.clusters] == [
            c.dense_blocks for c in direct.partition.clusters
        ]

    def test_reloaded_partition_schedules_identically(self, tmp_path, prepared):
        direct = self._fresh(prepared)
        PartitionCache(tmp_path).store(prepared, direct)
        hit = PartitionCache(tmp_path).load(prepared, 4, 4)
        for nprocs in (4, 16):
            a = schedule_blocks(
                direct.partition, direct.dependencies, nprocs,
                unit_work=direct.unit_work,
            )
            b = schedule_blocks(
                hit.partition, hit.dependencies, nprocs, unit_work=hit.unit_work
            )
            np.testing.assert_array_equal(a.owner_of_element, b.owner_of_element)
            np.testing.assert_array_equal(a.proc_of_unit, b.proc_of_unit)

    def test_cached_partition_counters(self, tmp_path, prepared):
        with obs.enabled(obs.Recorder()) as rec:
            cached_partition(prepared, 4, 4, cache_dir=tmp_path)
        assert rec.counters.get("perf.cache.partition.miss") == 1
        assert rec.counters.get("perf.cache.partition.store") == 1
        assert rec.counters.get("pipeline.stage.partition") == 1  # recomputed
        with obs.enabled(obs.Recorder()) as rec:
            warm = cached_partition(prepared, 4, 4, cache_dir=tmp_path)
        assert rec.counters.get("perf.cache.partition.hit") == 1
        assert "pipeline.stage.partition" not in rec.counters
        assert "pipeline.stage.dependencies" not in rec.counters
        assert not rec.spans_named("pipeline.partition")
        assert not rec.spans_named("pipeline.dependencies")
        assert warm.partition.num_units > 0

    def test_corrupted_entry_ignored(self, tmp_path, graph, prepared):
        cache = PartitionCache(tmp_path)
        cache.store(prepared, self._fresh(prepared))
        path = cache.path_for(partition_key(graph, "mmd", 4, 4))
        path.write_bytes(b"not an npz file")
        with obs.enabled(obs.Recorder()) as rec:
            assert cache.load(prepared, 4, 4) is None
        assert rec.counters.get("perf.cache.partition.miss") == 1
        assert rec.counters.get("perf.cache.partition.invalid") == 1

    def test_impl_version_bumped_entry_ignored(self, tmp_path, graph, prepared):
        cache = PartitionCache(tmp_path)
        cache.store(prepared, self._fresh(prepared))
        path = cache.path_for(partition_key(graph, "mmd", 4, 4))
        with np.load(path) as data:
            payload = dict(data)
        payload["impl"] = np.int64(cache_mod.PARTITION_IMPL_VERSION + 1)
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        with obs.enabled(obs.Recorder()) as rec:
            assert cache.load(prepared, 4, 4) is None
        assert rec.counters.get("perf.cache.partition.invalid") == 1
        # cached_partition recovers by recomputing and overwriting.
        fresh = cached_partition(prepared, 4, 4, cache_dir=tmp_path)
        assert fresh.partition.num_units > 0
        assert cache.load(prepared, 4, 4) is not None

    def test_mangled_unit_ids_ignored(self, tmp_path, graph, prepared):
        cache = PartitionCache(tmp_path)
        cache.store(prepared, self._fresh(prepared))
        path = cache.path_for(partition_key(graph, "mmd", 4, 4))
        with np.load(path) as data:
            payload = dict(data)
        payload["unit_of_element"] = payload["unit_of_element"] + 10_000
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        assert cache.load(prepared, 4, 4) is None


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert cache_mod.default_cache_dir() == tmp_path / "custom"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cache_mod.default_cache_dir().name == "repro-prepare"
