"""PrepareCache: round-trips, and every flavor of bad entry is a miss."""

import numpy as np
import pytest

from repro import obs
from repro.core import prepare
from repro.perf import CACHE_VERSION, PrepareCache, cached_prepare, prepare_key
from repro.perf import cache as cache_mod
from repro.sparse import grid9


@pytest.fixture(scope="module")
def graph():
    return grid9(7, 7)


@pytest.fixture(scope="module")
def prepared(graph):
    return prepare(graph, name="grid9(7,7)")


class TestKey:
    def test_deterministic(self, graph):
        assert prepare_key(graph, "mmd") == prepare_key(graph, "mmd")

    def test_depends_on_ordering(self, graph):
        assert prepare_key(graph, "mmd") != prepare_key(graph, "natural")

    def test_depends_on_structure(self, graph):
        assert prepare_key(graph, "mmd") != prepare_key(grid9(7, 8), "mmd")

    def test_depends_on_version(self, graph, monkeypatch):
        before = prepare_key(graph, "mmd")
        monkeypatch.setattr(cache_mod, "CACHE_VERSION", CACHE_VERSION + 1)
        assert prepare_key(graph, "mmd") != before


class TestRoundTrip:
    def test_store_then_load(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        assert cache.load(graph) is None  # cold
        cache.store(graph, "mmd", prepared)
        hit = cache.load(graph, name="grid9(7,7)")
        assert hit is not None
        np.testing.assert_array_equal(hit.perm, prepared.perm)
        np.testing.assert_array_equal(hit.symbolic.parent, prepared.symbolic.parent)
        np.testing.assert_array_equal(hit.pattern.indptr, prepared.pattern.indptr)
        np.testing.assert_array_equal(hit.pattern.rowidx, prepared.pattern.rowidx)

    def test_cached_prepare_counters(self, tmp_path, graph):
        with obs.enabled(obs.Recorder()) as rec:
            cached_prepare(graph, "mmd", "g", tmp_path)
        assert rec.counters.get("perf.cache.miss") == 1
        assert rec.counters.get("perf.cache.store") == 1
        assert rec.counters.get("pipeline.stage.order") == 1  # recomputed
        with obs.enabled(obs.Recorder()) as rec:
            warm = cached_prepare(graph, "mmd", "g", tmp_path)
        assert rec.counters == {"perf.cache.hit": 1}  # no pipeline stages ran
        assert warm.pattern.nnz > 0

    def test_matches_direct_prepare(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        hit = cached_prepare(graph, "mmd", "g", tmp_path)
        np.testing.assert_array_equal(hit.perm, prepared.perm)
        np.testing.assert_array_equal(hit.pattern.rowidx, prepared.pattern.rowidx)


class TestBadEntriesAreMisses:
    def _entry_path(self, tmp_path, graph):
        return PrepareCache(tmp_path).path_for(prepare_key(graph, "mmd"))

    def test_corrupted_entry_ignored(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        self._entry_path(tmp_path, graph).write_bytes(b"not an npz file")
        with obs.enabled(obs.Recorder()) as rec:
            assert cache.load(graph) is None
        assert rec.counters.get("perf.cache.miss") == 1
        assert rec.counters.get("perf.cache.invalid") == 1

    def test_truncated_entry_ignored(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load(graph) is None

    def test_version_bumped_entry_ignored(self, tmp_path, graph, prepared):
        """An entry whose payload carries a newer version is recomputed."""
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        with np.load(path) as data:
            payload = dict(data)
        payload["version"] = np.int64(CACHE_VERSION + 1)
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        with obs.enabled(obs.Recorder()) as rec:
            assert cache.load(graph) is None
        assert rec.counters.get("perf.cache.invalid") == 1
        # cached_prepare recovers by recomputing and overwriting.
        fresh = cached_prepare(graph, "mmd", "g", tmp_path)
        np.testing.assert_array_equal(fresh.perm, prepared.perm)
        assert cache.load(graph) is not None

    def test_missing_field_ignored(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files if k != "parent"}
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        assert cache.load(graph) is None

    def test_mangled_pattern_ignored(self, tmp_path, graph, prepared):
        """A payload failing LowerPattern validation is a miss, not a crash."""
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        with np.load(path) as data:
            payload = dict(data)
        payload["rowidx"] = payload["rowidx"][::-1].copy()  # breaks diag-first
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        assert cache.load(graph) is None


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert cache_mod.default_cache_dir() == tmp_path / "custom"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cache_mod.default_cache_dir().name == "repro-prepare"
