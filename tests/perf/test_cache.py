"""Prepare/partition caches: round-trips, every flavor of bad entry a miss."""

import numpy as np
import pytest

from repro import obs
from repro.core import prepare, schedule_blocks
from repro.perf import (
    CACHE_VERSION,
    PartitionCache,
    PrepareCache,
    cached_partition,
    cached_prepare,
    partition_key,
    prepare_key,
)
from repro.perf import cache as cache_mod
from repro.sparse import grid9


@pytest.fixture(scope="module")
def graph():
    return grid9(7, 7)


@pytest.fixture(scope="module")
def prepared(graph):
    return prepare(graph, name="grid9(7,7)")


class TestKey:
    def test_deterministic(self, graph):
        assert prepare_key(graph, "mmd") == prepare_key(graph, "mmd")

    def test_depends_on_ordering(self, graph):
        assert prepare_key(graph, "mmd") != prepare_key(graph, "natural")

    def test_depends_on_structure(self, graph):
        assert prepare_key(graph, "mmd") != prepare_key(grid9(7, 8), "mmd")

    def test_depends_on_version(self, graph, monkeypatch):
        before = prepare_key(graph, "mmd")
        monkeypatch.setattr(cache_mod, "CACHE_VERSION", CACHE_VERSION + 1)
        assert prepare_key(graph, "mmd") != before


class TestRoundTrip:
    def test_store_then_load(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        assert cache.load(graph) is None  # cold
        cache.store(graph, "mmd", prepared)
        hit = cache.load(graph, name="grid9(7,7)")
        assert hit is not None
        np.testing.assert_array_equal(hit.perm, prepared.perm)
        np.testing.assert_array_equal(hit.symbolic.parent, prepared.symbolic.parent)
        np.testing.assert_array_equal(hit.pattern.indptr, prepared.pattern.indptr)
        np.testing.assert_array_equal(hit.pattern.rowidx, prepared.pattern.rowidx)

    def test_cached_prepare_counters(self, tmp_path, graph):
        with obs.enabled(obs.Recorder()) as rec:
            cached_prepare(graph, "mmd", "g", tmp_path)
        assert rec.counters.get("perf.cache.miss") == 1
        assert rec.counters.get("perf.cache.store") == 1
        assert rec.counters.get("pipeline.stage.order") == 1  # recomputed
        with obs.enabled(obs.Recorder()) as rec:
            warm = cached_prepare(graph, "mmd", "g", tmp_path)
        assert rec.counters == {"perf.cache.hit": 1}  # no pipeline stages ran
        assert warm.pattern.nnz > 0

    def test_matches_direct_prepare(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        hit = cached_prepare(graph, "mmd", "g", tmp_path)
        np.testing.assert_array_equal(hit.perm, prepared.perm)
        np.testing.assert_array_equal(hit.pattern.rowidx, prepared.pattern.rowidx)


class TestBadEntriesAreMisses:
    def _entry_path(self, tmp_path, graph):
        return PrepareCache(tmp_path).path_for(prepare_key(graph, "mmd"))

    def test_corrupted_entry_ignored(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        self._entry_path(tmp_path, graph).write_bytes(b"not an npz file")
        with obs.enabled(obs.Recorder()) as rec:
            assert cache.load(graph) is None
        assert rec.counters.get("perf.cache.miss") == 1
        assert rec.counters.get("perf.cache.invalid") == 1

    def test_truncated_entry_ignored(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load(graph) is None

    def test_version_bumped_entry_ignored(self, tmp_path, graph, prepared):
        """An entry whose payload carries a newer version is recomputed."""
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        with np.load(path) as data:
            payload = dict(data)
        payload["version"] = np.int64(CACHE_VERSION + 1)
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        with obs.enabled(obs.Recorder()) as rec:
            assert cache.load(graph) is None
        assert rec.counters.get("perf.cache.invalid") == 1
        # cached_prepare recovers by recomputing and overwriting.
        fresh = cached_prepare(graph, "mmd", "g", tmp_path)
        np.testing.assert_array_equal(fresh.perm, prepared.perm)
        assert cache.load(graph) is not None

    def test_missing_field_ignored(self, tmp_path, graph, prepared):
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files if k != "parent"}
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        assert cache.load(graph) is None

    def test_mangled_pattern_ignored(self, tmp_path, graph, prepared):
        """A payload failing LowerPattern validation is a miss, not a crash."""
        cache = PrepareCache(tmp_path)
        cache.store(graph, "mmd", prepared)
        path = self._entry_path(tmp_path, graph)
        with np.load(path) as data:
            payload = dict(data)
        payload["rowidx"] = payload["rowidx"][::-1].copy()  # breaks diag-first
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        assert cache.load(graph) is None


class TestPartitionKey:
    def test_deterministic(self, graph):
        assert partition_key(graph, "mmd", 4, 4) == partition_key(graph, "mmd", 4, 4)

    def test_depends_on_parameters(self, graph):
        base = partition_key(graph, "mmd", 4, 4)
        assert partition_key(graph, "mmd", 25, 4) != base
        assert partition_key(graph, "mmd", 4, 2) != base
        assert partition_key(graph, "natural", 4, 4) != base

    def test_depends_on_impl_version(self, graph, monkeypatch):
        before = partition_key(graph, "mmd", 4, 4)
        monkeypatch.setattr(
            cache_mod, "PARTITION_IMPL_VERSION",
            cache_mod.PARTITION_IMPL_VERSION + 1,
        )
        assert partition_key(graph, "mmd", 4, 4) != before


class TestPartitionCache:
    def _fresh(self, prepared):
        from repro.core import partition_prepared

        return partition_prepared(prepared, grain=4, min_width=4)

    def test_round_trip_is_value_identical(self, tmp_path, prepared):
        cache = PartitionCache(tmp_path)
        assert cache.load(prepared, 4, 4) is None  # cold
        direct = self._fresh(prepared)
        cache.store(prepared, direct)
        hit = cache.load(prepared, 4, 4)
        assert hit is not None
        np.testing.assert_array_equal(
            hit.partition.unit_of_element, direct.partition.unit_of_element
        )
        np.testing.assert_array_equal(
            hit.dependencies.edges, direct.dependencies.edges
        )
        assert hit.dependencies.category_counts == direct.dependencies.category_counts
        np.testing.assert_array_equal(hit.unit_work, direct.unit_work)
        for mine, theirs in zip(hit.partition.units, direct.partition.units):
            assert mine.kind == theirs.kind
            assert mine.order_key == theirs.order_key
            np.testing.assert_array_equal(mine.elements, theirs.elements)
        assert [c.dense_blocks for c in hit.partition.clusters] == [
            c.dense_blocks for c in direct.partition.clusters
        ]

    def test_reloaded_partition_schedules_identically(self, tmp_path, prepared):
        direct = self._fresh(prepared)
        PartitionCache(tmp_path).store(prepared, direct)
        hit = PartitionCache(tmp_path).load(prepared, 4, 4)
        for nprocs in (4, 16):
            a = schedule_blocks(
                direct.partition, direct.dependencies, nprocs,
                unit_work=direct.unit_work,
            )
            b = schedule_blocks(
                hit.partition, hit.dependencies, nprocs, unit_work=hit.unit_work
            )
            np.testing.assert_array_equal(a.owner_of_element, b.owner_of_element)
            np.testing.assert_array_equal(a.proc_of_unit, b.proc_of_unit)

    def test_cached_partition_counters(self, tmp_path, prepared):
        with obs.enabled(obs.Recorder()) as rec:
            cached_partition(prepared, 4, 4, cache_dir=tmp_path)
        assert rec.counters.get("perf.cache.partition.miss") == 1
        assert rec.counters.get("perf.cache.partition.store") == 1
        assert rec.counters.get("pipeline.stage.partition") == 1  # recomputed
        with obs.enabled(obs.Recorder()) as rec:
            warm = cached_partition(prepared, 4, 4, cache_dir=tmp_path)
        assert rec.counters.get("perf.cache.partition.hit") == 1
        assert "pipeline.stage.partition" not in rec.counters
        assert "pipeline.stage.dependencies" not in rec.counters
        assert not rec.spans_named("pipeline.partition")
        assert not rec.spans_named("pipeline.dependencies")
        assert warm.partition.num_units > 0

    def test_corrupted_entry_ignored(self, tmp_path, graph, prepared):
        cache = PartitionCache(tmp_path)
        cache.store(prepared, self._fresh(prepared))
        path = cache.path_for(partition_key(graph, "mmd", 4, 4))
        path.write_bytes(b"not an npz file")
        with obs.enabled(obs.Recorder()) as rec:
            assert cache.load(prepared, 4, 4) is None
        assert rec.counters.get("perf.cache.partition.miss") == 1
        assert rec.counters.get("perf.cache.partition.invalid") == 1

    def test_impl_version_bumped_entry_ignored(self, tmp_path, graph, prepared):
        cache = PartitionCache(tmp_path)
        cache.store(prepared, self._fresh(prepared))
        path = cache.path_for(partition_key(graph, "mmd", 4, 4))
        with np.load(path) as data:
            payload = dict(data)
        payload["impl"] = np.int64(cache_mod.PARTITION_IMPL_VERSION + 1)
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        with obs.enabled(obs.Recorder()) as rec:
            assert cache.load(prepared, 4, 4) is None
        assert rec.counters.get("perf.cache.partition.invalid") == 1
        # cached_partition recovers by recomputing and overwriting.
        fresh = cached_partition(prepared, 4, 4, cache_dir=tmp_path)
        assert fresh.partition.num_units > 0
        assert cache.load(prepared, 4, 4) is not None

    def test_mangled_unit_ids_ignored(self, tmp_path, graph, prepared):
        cache = PartitionCache(tmp_path)
        cache.store(prepared, self._fresh(prepared))
        path = cache.path_for(partition_key(graph, "mmd", 4, 4))
        with np.load(path) as data:
            payload = dict(data)
        payload["unit_of_element"] = payload["unit_of_element"] + 10_000
        with open(path, "wb") as fh:
            np.savez(fh, **payload)
        assert cache.load(prepared, 4, 4) is None


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert cache_mod.default_cache_dir() == tmp_path / "custom"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cache_mod.default_cache_dir().name == "repro-prepare"


class TestStatsAndPrune:
    def _warm(self, root, graph, prepared):
        cached_prepare(graph, "mmd", "g", root)   # store
        cached_prepare(graph, "mmd", "g", root)   # hit
        cached_partition(prepared, cache_dir=root)  # store
        cached_partition(prepared, cache_dir=root)  # hit
        cached_prepare(grid9(7, 8), "mmd", "g2", root)  # second prepare entry

    def test_stats_counts_entries_and_bytes_by_kind(self, tmp_path, graph, prepared):
        self._warm(tmp_path, graph, prepared)
        stats = cache_mod.cache_stats(tmp_path)
        assert stats["root"] == str(tmp_path)
        assert stats["prepare"]["entries"] == 2
        assert stats["partition"]["entries"] == 1
        assert stats["prepare"]["bytes"] > 0
        assert stats["total_bytes"] == (
            stats["prepare"]["bytes"] + stats["partition"]["bytes"]
        )

    def test_stats_lifetime_counters(self, tmp_path, graph, prepared):
        self._warm(tmp_path, graph, prepared)
        counters = cache_mod.cache_stats(tmp_path)["counters"]
        assert counters["prepare.hit"] == 1
        assert counters["prepare.miss"] == 2
        assert counters["prepare.store"] == 2
        assert counters["partition.hit"] == 1
        assert counters["partition.miss"] == 1
        assert counters["partition.store"] == 1

    def test_stats_on_empty_or_missing_root(self, tmp_path):
        stats = cache_mod.cache_stats(tmp_path / "never-created")
        assert stats["total_bytes"] == 0
        assert stats["counters"] == {}
        assert "(none recorded)" in cache_mod.render_cache_stats(stats)

    def test_corrupt_stats_file_is_ignored(self, tmp_path, graph, prepared):
        self._warm(tmp_path, graph, prepared)
        (tmp_path / "stats.json").write_text("{broken")
        assert cache_mod.cache_stats(tmp_path)["counters"] == {}
        # The next bump recovers rather than crashing.
        cached_prepare(graph, "mmd", "g", tmp_path)
        assert cache_mod.cache_stats(tmp_path)["counters"]["prepare.hit"] == 1

    def test_prune_evicts_lru_first(self, tmp_path, graph, prepared):
        import os
        import time

        self._warm(tmp_path, graph, prepared)
        entries = cache_mod._cache_entries(tmp_path)
        assert len(entries) == 3
        # Age every entry, then re-hit one: the hit's mtime-touch must
        # protect it from the prune while the untouched ones go.
        old = time.time() - 3600
        for path, _, _ in entries:
            os.utime(path, (old, old))
        kept_alive = cached_prepare(graph, "mmd", "g", tmp_path)
        assert kept_alive.pattern.nnz > 0
        keep_size = cache_mod.PrepareCache(tmp_path).path_for(
            prepare_key(graph, "mmd")).stat().st_size
        result = cache_mod.prune_cache(tmp_path, max_bytes=keep_size)
        assert result["kept"] == 1 and result["removed"] == 2
        assert result["freed_bytes"] > 0
        # The survivor is exactly the re-hit entry.
        (survivor,) = cache_mod._cache_entries(tmp_path)
        assert survivor[0] == cache_mod.PrepareCache(tmp_path).path_for(
            prepare_key(graph, "mmd"))

    def test_prune_to_zero_clears_everything(self, tmp_path, graph, prepared):
        self._warm(tmp_path, graph, prepared)
        result = cache_mod.prune_cache(tmp_path, max_bytes=0)
        assert result["kept"] == 0
        assert cache_mod.cache_stats(tmp_path)["total_bytes"] == 0
        # Pruned entries are plain misses afterwards, not errors.
        assert cached_prepare(graph, "mmd", "g", tmp_path).pattern.nnz > 0

    def test_prune_noop_within_budget(self, tmp_path, graph, prepared):
        self._warm(tmp_path, graph, prepared)
        result = cache_mod.prune_cache(tmp_path, max_bytes=1 << 30)
        assert result["removed"] == 0 and result["kept"] == 3

    def test_render_mentions_kinds_and_counters(self, tmp_path, graph, prepared):
        self._warm(tmp_path, graph, prepared)
        text = cache_mod.render_cache_stats(cache_mod.cache_stats(tmp_path))
        assert "prepare" in text and "partition" in text
        assert "prepare.hit" in text and str(tmp_path) in text


class TestCacheCli:
    def test_stats_and_prune_subcommands(self, tmp_path, graph, capsys):
        from repro.cli import main

        cached_prepare(graph, "mmd", "g", tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "prepare" in out and "1 entries" in out
        assert main(["cache", "prune", "--max-bytes", "0",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "pruned 1 entries" in capsys.readouterr().out

    def test_max_bytes_accepts_suffixes(self, tmp_path, capsys):
        from repro.cli import _parse_bytes, main

        assert _parse_bytes("512") == 512
        assert _parse_bytes("64K") == 64 * 1024
        assert _parse_bytes("1.5M") == int(1.5 * 1024 * 1024)
        assert _parse_bytes("2G") == 2 * 1024**3
        assert main(["cache", "prune", "--max-bytes", "1G",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_bad_size_is_a_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["cache", "prune", "--max-bytes", "lots",
                  "--cache-dir", str(tmp_path)])
        assert "invalid size" in capsys.readouterr().err
