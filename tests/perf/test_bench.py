"""Bench harness smoke: report structure, fingerprint, rendering."""

import json

import pytest

from repro.perf import STAGES, bench_pipeline, render_bench
from repro.perf.bench import BENCH_SCHEMA_VERSION, SMOKE_MATRICES


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_pipeline.json"
    report = bench_pipeline(smoke=True, out=out)
    # The file on disk is the same document the call returned.
    assert json.loads(out.read_text()) == json.loads(json.dumps(report))
    return report


class TestSmokeReport:
    def test_schema(self, report):
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert report["smoke"] is True
        assert set(report["matrices"]) == set(SMOKE_MATRICES)

    def test_every_stage_timed(self, report):
        for entry in report["matrices"].values():
            assert set(entry["stages"]) == set(STAGES)
            assert all(t >= 0.0 for t in entry["stages"].values())
            # order/symbolic/partition actually ran (nonzero spans).
            assert entry["stages"]["order"] > 0.0
            assert entry["stages"]["partition"] > 0.0

    def test_fingerprint_present(self, report):
        for entry in report["matrices"].values():
            assert entry["pair_updates"] > 0
            assert entry["traffic_total"] > 0
            assert entry["factor_nnz"] >= entry["n"] > 0
            assert entry["wall_total"] > 0.0

    def test_out_none_skips_write(self):
        report = bench_pipeline(smoke=True, out=None)
        assert set(report["matrices"]) == set(SMOKE_MATRICES)

    def test_render(self, report):
        text = render_bench(report)
        assert "GRID9x8" in text and "GRID9x12" in text
        assert "enumerate_updates" in text
        assert "smoke mode" in text


class TestMatrixSelection:
    def test_explicit_matrix_list(self, tmp_path):
        report = bench_pipeline(matrices=["LAP30"], out=None)
        assert list(report["matrices"]) == ["LAP30"]
        assert report["smoke"] is False
