"""Bench harness smoke: report structure, fingerprint, rendering."""

import copy
import json

import pytest

from repro.perf import (
    STAGES,
    bench_pipeline,
    compare_reports,
    find_regressions,
    render_bench,
    render_delta,
)
from repro.perf.bench import BENCH_SCHEMA_VERSION, SMOKE_MATRICES


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_pipeline.json"
    report = bench_pipeline(smoke=True, out=out)
    # The file on disk is the same document the call returned.
    assert json.loads(out.read_text()) == json.loads(json.dumps(report))
    return report


class TestSmokeReport:
    def test_schema(self, report):
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert report["smoke"] is True
        assert set(report["matrices"]) == set(SMOKE_MATRICES)

    def test_every_stage_timed(self, report):
        for entry in report["matrices"].values():
            assert set(entry["stages"]) == set(STAGES)
            assert all(t >= 0.0 for t in entry["stages"].values())
            # order/symbolic/partition actually ran (nonzero spans).
            assert entry["stages"]["order"] > 0.0
            assert entry["stages"]["partition"] > 0.0

    def test_fingerprint_present(self, report):
        for entry in report["matrices"].values():
            assert entry["pair_updates"] > 0
            assert entry["traffic_total"] > 0
            assert entry["factor_nnz"] >= entry["n"] > 0
            assert entry["wall_total"] > 0.0

    def test_out_none_skips_write(self):
        report = bench_pipeline(smoke=True, out=None)
        assert set(report["matrices"]) == set(SMOKE_MATRICES)

    def test_render(self, report):
        text = render_bench(report)
        assert "GRID9x8" in text and "GRID9x12" in text
        assert "enumerate_updates" in text
        assert "smoke mode" in text

    def test_render_has_memory_column(self, report):
        assert "mem_peak_mb" in render_bench(report)


class TestMemoryWatermarks:
    def test_every_matrix_reports_peak_rss(self, report):
        from repro.obs.memory import memory_enabled

        if not memory_enabled():
            pytest.skip("RSS unreadable on this platform")
        for entry in report["matrices"].values():
            assert entry["mem_peak_mb"] > 0
            # The run-level peak dominates every stage's peak.
            stage_mem = entry["stage_mem_peak_mb"]
            assert stage_mem
            assert entry["mem_peak_mb"] >= max(stage_mem.values()) * 0.5
            for stage in stage_mem:
                assert stage in STAGES

    def test_memory_timeline_is_downsampled_pairs(self, report):
        from repro.obs.memory import memory_enabled

        if not memory_enabled():
            pytest.skip("RSS unreadable on this platform")
        for entry in report["matrices"].values():
            samples = entry["memory"]
            assert 2 <= len(samples) <= 162
            for t, mb in samples:
                assert t >= 0.0 and mb > 0

    def test_provenance_stamped(self, report):
        assert report["git_sha"] is None or len(report["git_sha"]) == 40
        assert set(report["host"]) == {"hostname", "platform", "python", "cpus"}
        assert report["created_unix"] > 0


class TestMatrixSelection:
    def test_explicit_matrix_list(self, tmp_path):
        report = bench_pipeline(matrices=["LAP30"], out=None)
        assert list(report["matrices"]) == ["LAP30"]
        assert report["smoke"] is False


class TestReproducibility:
    def test_stamp_false_omits_provenance(self):
        report = bench_pipeline(smoke=True, out=None, stamp=False)
        assert "created_unix" not in report
        assert "git_sha" not in report and "host" not in report
        assert report["repeats"] == 1

    def test_repeats_recorded(self):
        report = bench_pipeline(matrices=["LAP30"], out=None, repeats=2)
        assert report["repeats"] == 2


class TestBaselineComparison:
    @pytest.fixture(scope="class")
    def reports(self):
        baseline = bench_pipeline(smoke=True, out=None, stamp=False)
        current = copy.deepcopy(baseline)
        for entry in current["matrices"].values():
            entry["stages"] = {k: v / 2 for k, v in entry["stages"].items()}
            entry["wall_total"] /= 2
        return current, baseline

    def test_compare_reports_rows(self, reports):
        current, baseline = reports
        rows = compare_reports(current, baseline)
        assert rows, "expected comparable matrices"
        stages = {r["stage"] for r in rows}
        # mem_peak rows appear only where both sides measured RSS.
        assert stages - {"mem_peak"} == set(STAGES) | {"wall_total"}
        for row in rows:
            assert row["matrix"] in SMOKE_MATRICES
            if row["baseline_s"] > 0 and row["current_s"] > 0:
                assert row["speedup"] == pytest.approx(
                    row["baseline_s"] / row["current_s"]
                )

    def test_compare_ignores_unshared_matrices(self, reports):
        current, baseline = reports
        lonely = copy.deepcopy(current)
        lonely["matrices"] = {"ONLY_HERE": next(iter(current["matrices"].values()))}
        assert compare_reports(lonely, baseline) == []

    def test_no_regressions_when_faster(self, reports):
        current, baseline = reports
        assert find_regressions(current, baseline) == []

    def test_regression_detected_beyond_threshold(self, reports):
        current, baseline = reports
        slow = copy.deepcopy(baseline)
        entry = next(iter(slow["matrices"].values()))
        entry["stages"]["order"] *= 10.0
        found = find_regressions(slow, baseline, threshold=0.25)
        assert found and any("order" in msg for msg in found)

    def test_render_delta(self, reports):
        current, baseline = reports
        text = render_delta(current, baseline)
        assert "speedup" in text
        assert "wall_total" in text
        assert render_delta(current, {"matrices": {}}).startswith("(no comparable")


class TestStretchSelection:
    """--stretch appends the 10^6 instances to the big-tier defaults
    without ever loading them in these tests (load is stubbed)."""

    @staticmethod
    def _selected_names(monkeypatch, **kwargs):
        from repro.perf import bench as bench_mod

        loaded = []

        def fake_load(name):
            loaded.append(name)
            return object()

        monkeypatch.setattr(bench_mod.registry, "load", fake_load)
        monkeypatch.setattr(
            bench_mod, "_bench_one",
            lambda name, graph, nprocs, grain, repeats: {
                "stages": {}, "wall_total": 0.0,
            },
        )
        bench_pipeline(tier="big", out=None, stamp=False, **kwargs)
        return loaded

    def test_stretch_appends_million_instances(self, monkeypatch):
        from repro.perf.bench import BIG_BENCH_MATRICES, STRETCH_BENCH_MATRICES

        names = self._selected_names(monkeypatch, stretch=True)
        assert names == list(BIG_BENCH_MATRICES) + list(STRETCH_BENCH_MATRICES)

    def test_default_big_tier_excludes_stretch(self, monkeypatch):
        from repro.perf.bench import BIG_BENCH_MATRICES

        names = self._selected_names(monkeypatch, stretch=False)
        assert names == list(BIG_BENCH_MATRICES)

    def test_smoke_ignores_stretch(self, monkeypatch):
        from repro.perf.bench import BIG_BENCH_SMOKE_MATRICES

        names = self._selected_names(monkeypatch, stretch=True, smoke=True)
        assert names == list(BIG_BENCH_SMOKE_MATRICES)

    def test_stretch_outside_big_tier_rejected(self):
        with pytest.raises(ValueError, match="tier big"):
            bench_pipeline(tier="paper", stretch=True, out=None)
