"""Acceptance: the vectorized kernel beats the reference >= 5x.

Measured on the largest generator matrix the benchmarks use
(``band_lower_pattern(4500, 32)``, ~2.3M pair updates): the reference
walks 4500 columns in Python while the vectorized path does a fixed
number of numpy passes, so the ratio is structural, not machine-tuned.
Best-of-3 on both sides keeps a contended host from polluting either
number, and the exact-equality assertion makes this the required
"identical UpdateSet on the benchmark matrix" check as well.
"""

import time

import numpy as np
import pytest

from repro.ordering import multiple_minimum_degree, multiple_minimum_degree_reference
from repro.sparse import band_graph, band_lower_pattern
from repro.symbolic import enumerate_updates, enumerate_updates_reference

#: Keep in sync with benchmarks/bench_updates_vectorized.py.
BENCH_BAND_N, BENCH_BAND_W = 4500, 32


def best_of(fn, pattern, rounds=3):
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn(pattern)
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.slow
def test_vectorized_5x_on_benchmark_band_matrix():
    pattern = band_lower_pattern(BENCH_BAND_N, BENCH_BAND_W)
    t_ref, ref = best_of(enumerate_updates_reference, pattern)
    t_fast, fast = best_of(enumerate_updates, pattern)

    np.testing.assert_array_equal(fast.target, ref.target)
    np.testing.assert_array_equal(fast.source_i, ref.source_i)
    np.testing.assert_array_equal(fast.source_j, ref.source_j)
    np.testing.assert_array_equal(fast.source_col, ref.source_col)

    speedup = t_ref / t_fast
    assert speedup >= 5.0, (
        f"vectorized enumerate_updates only {speedup:.1f}x faster than the "
        f"reference ({t_fast:.3f}s vs {t_ref:.3f}s, best of 3)"
    )


@pytest.mark.slow
def test_sweep_staged_reuse_3x_on_paper_scale_grid(tmp_path):
    """Staged reuse beats the per-cell sweep >= 3x on the paper's grid.

    The grid measures every partition under four processor counts
    spanning the paper's 16-1024 range, so the per-cell path repeats the
    partition/dependency stages and the metrics sort four times per
    (scheme, grain) while the staged path runs them once and batches the
    metrics.  Both modes share a warm prepared-matrix cache (and the
    staged path its partition cache — that disk reuse is part of the
    design under test); the record-list equality assertion makes this
    the value-identity check on the benchmark grid as well.
    """
    from repro.perf import sweep

    grid = dict(schemes=("block", "wrap"), procs=(16, 64, 256, 1024),
                grains=(4, 25), min_widths=(4,))
    sweep(["LAP30"], cache_dir=tmp_path, **grid)  # warm both caches

    t_ref = t_fast = float("inf")
    reference = fast = None
    for _ in range(3):
        t0 = time.perf_counter()
        reference = sweep(["LAP30"], cache_dir=tmp_path, reuse=False, **grid)
        t_ref = min(t_ref, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fast = sweep(["LAP30"], cache_dir=tmp_path, reuse=True, **grid)
        t_fast = min(t_fast, time.perf_counter() - t0)

    assert fast == reference
    speedup = t_ref / t_fast
    assert speedup >= 3.0, (
        f"staged sweep reuse only {speedup:.1f}x faster than the per-cell "
        f"path ({t_fast:.3f}s vs {t_ref:.3f}s, best of 3)"
    )


@pytest.mark.slow
def test_mmd_5x_on_benchmark_band_graph():
    """The bitset MMD beats the set-based reference >= 5x on the same
    benchmark band matrix, returning the identical permutation."""
    graph = band_graph(BENCH_BAND_N, BENCH_BAND_W)
    t_ref, ref = best_of(multiple_minimum_degree_reference, graph, rounds=2)
    t_fast, fast = best_of(multiple_minimum_degree, graph, rounds=3)

    np.testing.assert_array_equal(fast, ref)
    speedup = t_ref / t_fast
    assert speedup >= 5.0, (
        f"bitset MMD only {speedup:.1f}x faster than the reference "
        f"({t_fast:.3f}s vs {t_ref:.3f}s)"
    )
