"""perf.sweep: grid construction, serial/parallel value-identity, cache use."""

import dataclasses

import pytest

from repro import obs
from repro.analysis.sweep import SweepRecord
from repro.analysis.sweep import sweep as reference_sweep
from repro.perf import build_grid, sweep
from repro.perf.sweep import SweepTask


class TestBuildGrid:
    def test_nesting_order_matches_serial_harness(self):
        tasks = build_grid(["DWT512"], schemes=("block", "wrap"),
                           procs=(2, 4), grains=(4,), min_widths=(4,))
        assert [(t.scheme, t.nprocs) for t in tasks] == [
            ("block", 2), ("wrap", 2), ("block", 4), ("wrap", 4),
        ]

    def test_wrap_has_no_grain(self):
        (task,) = build_grid(["LAP30"], schemes=("wrap",), procs=(4,))
        assert task.grain is None and task.min_width is None

    def test_block_expands_grain_and_width(self):
        tasks = build_grid(["LAP30"], schemes=("block",), procs=(4,),
                           grains=(4, 25), min_widths=(2, 4))
        assert len(tasks) == 4

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_grid(["LAP30"], schemes=("diagonal",))

    def test_unknown_matrix_rejected(self):
        with pytest.raises(ValueError, match="unknown matrix"):
            build_grid(["NOPE99"])

    def test_label(self):
        task = SweepTask("LAP30", "block", 16, 25, 4)
        assert task.label() == "LAP30 block P=16 g=25"


GRID = dict(schemes=("block", "wrap"), procs=(2,), grains=(4,), min_widths=(4,))


@pytest.fixture(scope="module")
def serial_records():
    return sweep(["DWT512"], jobs=1, **GRID)


class TestSerial:
    def test_matches_analysis_harness(self, serial_records):
        from repro.core import prepare
        from repro.sparse import load

        prep = prepare(load("DWT512"), name="DWT512")
        reference = reference_sweep(
            prep, schemes=GRID["schemes"], procs=GRID["procs"],
            grains=GRID["grains"], min_widths=GRID["min_widths"],
        )
        assert serial_records == reference

    def test_warm_cache_skips_ordering_and_symbolic(self, tmp_path):
        sweep(["DWT512"], jobs=1, cache_dir=tmp_path, **GRID)  # cold: fills cache
        with obs.enabled(obs.Recorder()) as rec:
            warm = sweep(["DWT512"], jobs=1, cache_dir=tmp_path, **GRID)
        assert rec.counters.get("perf.cache.hit") == 1  # one load per matrix
        assert "perf.cache.miss" not in rec.counters
        assert not rec.spans_named("pipeline.order")
        assert not rec.spans_named("pipeline.symbolic")
        assert warm == sweep(["DWT512"], jobs=1, **GRID)


class TestParallel:
    def test_identical_to_serial(self, serial_records):
        parallel = sweep(["DWT512"], jobs=2, **GRID)
        assert parallel == serial_records

    def test_records_are_plain_sweep_records(self, serial_records):
        parallel = sweep(["DWT512"], jobs=2, **GRID)
        for rec in parallel:
            assert isinstance(rec, SweepRecord)
            assert dataclasses.asdict(rec)["matrix"] == "DWT512"

    def test_workers_hit_prewarmed_cache(self, tmp_path):
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=2, cache_dir=tmp_path, **GRID)
        # The parent's pre-warm is the only miss; every worker load hits.
        assert rec.counters.get("perf.cache.miss") == 1
        assert rec.counters.get("perf.cache.hit", 0) >= 1
        assert rec.counters.get("perf.sweep.tasks") == 2
        assert rec.gauges.get("perf.sweep.jobs") == 2
        assert 0.0 < rec.gauges.get("perf.sweep.pool_utilization") <= 1.0

    def test_timeline_events_cover_every_task(self):
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=2, **GRID)
        events = [e for e in rec.timeline if e.track == "perf.sweep"]
        assert len(events) == 2
