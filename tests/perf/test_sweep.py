"""perf.sweep: grid construction, serial/parallel value-identity, cache use."""

import dataclasses

import pytest

from repro import obs
from repro.analysis.sweep import SweepRecord
from repro.analysis.sweep import sweep as reference_sweep
import importlib

from repro.perf import build_grid, group_grid, sweep
from repro.perf.sweep import SweepGroup, SweepTask

#: The submodule itself (the package re-exports the ``sweep`` *function*
#: under the same name, so ``import repro.perf.sweep as m`` binds that).
sweep_mod = importlib.import_module("repro.perf.sweep")


class TestBuildGrid:
    def test_nesting_order_matches_serial_harness(self):
        tasks = build_grid(["DWT512"], schemes=("block", "wrap"),
                           procs=(2, 4), grains=(4,), min_widths=(4,))
        assert [(t.scheme, t.nprocs) for t in tasks] == [
            ("block", 2), ("wrap", 2), ("block", 4), ("wrap", 4),
        ]

    def test_wrap_has_no_grain(self):
        (task,) = build_grid(["LAP30"], schemes=("wrap",), procs=(4,))
        assert task.grain is None and task.min_width is None

    def test_block_expands_grain_and_width(self):
        tasks = build_grid(["LAP30"], schemes=("block",), procs=(4,),
                           grains=(4, 25), min_widths=(2, 4))
        assert len(tasks) == 4

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_grid(["LAP30"], schemes=("diagonal",))

    def test_unknown_matrix_rejected(self):
        with pytest.raises(ValueError, match="unknown matrix"):
            build_grid(["NOPE99"])

    def test_label(self):
        task = SweepTask("LAP30", "block", 16, 25, 4)
        assert task.label() == "LAP30 block P=16 g=25"


class TestGroupGrid:
    def test_groups_cells_by_invariant_parameters(self):
        tasks = build_grid(["DWT512"], schemes=("block", "wrap"),
                           procs=(2, 4, 8), grains=(4, 25), min_widths=(4,))
        groups = group_grid(tasks)
        # One group per (scheme, grain): block g=4, block g=25, wrap.
        assert [(g.scheme, g.grain) for g in groups] == [
            ("block", 4), ("block", 25), ("wrap", None),
        ]
        for group in groups:
            assert group.procs == (2, 4, 8)

    def test_indices_scatter_back_to_grid_order(self):
        tasks = build_grid(["DWT512"], schemes=("block", "wrap"),
                           procs=(2, 4), grains=(4,), min_widths=(4,))
        groups = group_grid(tasks)
        covered = sorted(i for g in groups for i in g.indices)
        assert covered == list(range(len(tasks)))
        for group in groups:
            for index, nprocs in zip(group.indices, group.procs):
                assert tasks[index].nprocs == nprocs
                assert tasks[index].scheme == group.scheme

    def test_matrices_do_not_share_groups(self):
        tasks = build_grid(["DWT512", "LAP30"], schemes=("wrap",), procs=(2, 4))
        groups = group_grid(tasks)
        assert [g.matrix for g in groups] == ["DWT512", "LAP30"]

    def test_label(self):
        group = SweepGroup("LAP30", "block", 25, 4, "mmd", (16, 64), (0, 1))
        assert group.label() == "LAP30 block g=25 P=16,64"


GRID = dict(schemes=("block", "wrap"), procs=(2,), grains=(4,), min_widths=(4,))


@pytest.fixture(scope="module")
def serial_records():
    return sweep(["DWT512"], jobs=1, **GRID)


class TestSerial:
    def test_matches_analysis_harness(self, serial_records):
        from repro.core import prepare
        from repro.sparse import load

        prep = prepare(load("DWT512"), name="DWT512")
        reference = reference_sweep(
            prep, schemes=GRID["schemes"], procs=GRID["procs"],
            grains=GRID["grains"], min_widths=GRID["min_widths"],
        )
        assert serial_records == reference

    def test_warm_cache_skips_ordering_and_symbolic(self, tmp_path):
        sweep(["DWT512"], jobs=1, cache_dir=tmp_path, **GRID)  # cold: fills cache
        with obs.enabled(obs.Recorder()) as rec:
            warm = sweep(["DWT512"], jobs=1, cache_dir=tmp_path, **GRID)
        assert rec.counters.get("perf.cache.hit") == 1  # one load per matrix
        assert "perf.cache.miss" not in rec.counters
        assert not rec.spans_named("pipeline.order")
        assert not rec.spans_named("pipeline.symbolic")
        assert warm == sweep(["DWT512"], jobs=1, **GRID)


class TestParallel:
    def test_identical_to_serial(self, serial_records):
        parallel = sweep(["DWT512"], jobs=2, **GRID)
        assert parallel == serial_records

    def test_records_are_plain_sweep_records(self, serial_records):
        parallel = sweep(["DWT512"], jobs=2, **GRID)
        for rec in parallel:
            assert isinstance(rec, SweepRecord)
            assert dataclasses.asdict(rec)["matrix"] == "DWT512"

    def test_workers_hit_prewarmed_cache(self, tmp_path):
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=2, cache_dir=tmp_path, **GRID)
        # The parent's pre-warm is the only miss; every worker load hits.
        assert rec.counters.get("perf.cache.miss") == 1
        assert rec.counters.get("perf.cache.hit", 0) >= 1
        assert rec.counters.get("perf.sweep.tasks") == 2
        assert rec.gauges.get("perf.sweep.jobs") == 2
        assert 0.0 < rec.gauges.get("perf.sweep.pool_utilization") <= 1.0

    def test_timeline_events_cover_every_task(self):
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=2, **GRID)
        events = [e for e in rec.timeline if e.track == "perf.sweep"]
        assert len(events) == 2

    def test_counters_are_ints(self, tmp_path):
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=2, cache_dir=tmp_path, **GRID)
        for name in ("perf.cache.hit", "perf.cache.miss", "perf.sweep.tasks"):
            value = rec.counters.get(name)
            if value is not None:
                assert type(value) is int, (name, type(value))


MULTI_P_GRID = dict(
    schemes=("block", "block-adaptive", "wrap"),
    procs=(2, 4, 8), grains=(4,), min_widths=(4,),
)


class TestStagedReuse:
    @pytest.fixture(scope="class")
    def reference(self):
        return sweep(["DWT512"], jobs=1, reuse=False, **MULTI_P_GRID)

    def test_reuse_matches_reference_serial(self, reference):
        assert sweep(["DWT512"], jobs=1, reuse=True, **MULTI_P_GRID) == reference

    def test_reuse_matches_reference_parallel(self, reference):
        assert sweep(["DWT512"], jobs=4, reuse=True, **MULTI_P_GRID) == reference

    def test_no_reuse_parallel_matches_reference(self, reference):
        assert sweep(["DWT512"], jobs=4, reuse=False, **MULTI_P_GRID) == reference

    def test_reuse_hit_counter_counts_shared_cells(self):
        tasks = build_grid(["DWT512"], **MULTI_P_GRID)
        groups = group_grid(tasks)
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=1, reuse=True, **MULTI_P_GRID)
        hits = rec.counters.get("perf.sweep.reuse.hit")
        assert hits == len(tasks) - len(groups)
        assert type(hits) is int

    def test_reuse_hit_counter_aggregated_from_workers(self):
        tasks = build_grid(["DWT512"], **MULTI_P_GRID)
        groups = group_grid(tasks)
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=2, reuse=True, **MULTI_P_GRID)
        assert rec.counters.get("perf.sweep.reuse.hit") == len(tasks) - len(groups)
        assert rec.counters.get("perf.sweep.tasks") == len(tasks)

    def test_serial_reuse_runs_group_spans(self):
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=1, reuse=True, **MULTI_P_GRID)
        groups = group_grid(build_grid(["DWT512"], **MULTI_P_GRID))
        assert len(rec.spans_named("perf.sweep.group")) == len(groups)
        # The nprocs-invariant stages ran once per *group*, not per cell.
        assert len(rec.spans_named("pipeline.partition")) < len(groups)

    def test_parallel_reuse_one_timeline_event_per_group(self):
        with obs.enabled(obs.Recorder()) as rec:
            sweep(["DWT512"], jobs=2, reuse=True, **MULTI_P_GRID)
        events = [e for e in rec.timeline if e.track == "perf.sweep"]
        groups = group_grid(build_grid(["DWT512"], **MULTI_P_GRID))
        assert len(events) == len(groups)

    def test_warm_partition_cache_skips_partition_stage(self, tmp_path):
        grid = dict(schemes=("block",), procs=(2, 4), grains=(4,), min_widths=(4,))
        sweep(["DWT512"], jobs=1, cache_dir=tmp_path, **grid)  # cold fill
        with obs.enabled(obs.Recorder()) as rec:
            warm = sweep(["DWT512"], jobs=1, cache_dir=tmp_path, **grid)
        assert rec.counters.get("perf.cache.partition.hit") == 1
        assert not rec.spans_named("pipeline.partition")
        assert not rec.spans_named("pipeline.dependencies")
        assert warm == sweep(["DWT512"], jobs=1, reuse=False, **grid)


class TestFailurePropagation:
    def test_worker_failure_retries_in_parent(self, monkeypatch):
        def boom(payload):
            raise RuntimeError("worker crashed")

        monkeypatch.setattr(sweep_mod, "_run_group", boom)
        records = sweep(["DWT512"], jobs=2, **GRID)
        assert records == sweep(["DWT512"], jobs=1, **GRID)

    def test_group_failure_raises_with_label(self, monkeypatch):
        def boom(group, cache_dir, memo, part_memo):
            raise ValueError("stage exploded")

        monkeypatch.setattr(sweep_mod, "_measure_group", boom)
        with pytest.raises(RuntimeError, match="DWT512 (block|wrap)"):
            sweep(["DWT512"], jobs=2, **GRID)

    def test_per_cell_failure_raises_with_label(self, monkeypatch):
        def boom(task, cache_dir, memo):
            raise ValueError("cell exploded")

        monkeypatch.setattr(sweep_mod, "_measure", boom)
        with pytest.raises(RuntimeError, match="DWT512 (block|wrap) P=2"):
            sweep(["DWT512"], jobs=2, reuse=False, **GRID)
