"""Tests for the COO builder and numeric CSC containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import COOBuilder, LowerCSC, SymmetricCSC
from repro.sparse.pattern import LowerPattern


class TestCOOBuilder:
    def test_build_simple(self):
        b = COOBuilder(3)
        b.add(0, 0, 2.0)
        b.add(1, 0, -1.0)
        a = b.build()
        assert a.get(0, 0) == 2.0
        assert a.get(1, 0) == -1.0
        assert a.get(0, 1) == -1.0  # symmetry

    def test_duplicates_summed(self):
        b = COOBuilder(2)
        b.add(1, 0, 1.0)
        b.add(0, 1, 2.5)  # mirrored entry folds into the same slot
        a = b.build()
        assert a.get(1, 0) == 3.5

    def test_out_of_range_rejected(self):
        b = COOBuilder(2)
        with pytest.raises(IndexError):
            b.add(2, 0, 1.0)

    def test_add_many(self):
        b = COOBuilder(4)
        b.add_many([1, 2, 3], [0, 1, 2], [1.0, 2.0, 3.0])
        assert len(b) == 3
        a = b.build()
        assert a.get(2, 1) == 2.0

    def test_add_many_length_mismatch(self):
        b = COOBuilder(4)
        with pytest.raises(ValueError):
            b.add_many([1], [0, 1], [1.0, 2.0])

    def test_build_graph(self):
        b = COOBuilder(3)
        b.add(0, 0, 5.0)  # diagonal ignored in the graph
        b.add(2, 0, 1.0)
        g = b.build_graph()
        assert g.num_edges == 1
        assert g.has_edge(0, 2)


class TestSymmetricCSC:
    def test_from_dense_roundtrip(self):
        a = np.array([[4.0, 1.0, 0.0], [1.0, 3.0, 0.5], [0.0, 0.5, 2.0]])
        m = SymmetricCSC.from_dense(a)
        assert np.allclose(m.to_dense(), a)

    def test_from_dense_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            SymmetricCSC.from_dense(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_get_symmetric(self):
        m = SymmetricCSC.from_entries(2, [1], [0], [7.0])
        assert m.get(0, 1) == 7.0
        assert m.get(1, 0) == 7.0
        assert m.get(0, 0) == 0.0  # structurally present, numerically zero

    def test_diagonal(self):
        a = np.diag([1.0, 2.0, 3.0])
        m = SymmetricCSC.from_dense(a)
        assert np.allclose(m.diagonal(), [1, 2, 3])

    def test_matvec_matches_dense(self):
        rng = np.random.default_rng(3)
        d = rng.random((6, 6))
        a = (d + d.T) * (rng.random((6, 6)) < 0.4)
        a = np.tril(a) + np.tril(a, -1).T
        m = SymmetricCSC.from_dense(a)
        x = rng.random(6)
        assert np.allclose(m.matvec(x), a @ x)

    def test_permute_matches_dense(self):
        rng = np.random.default_rng(5)
        d = rng.random((5, 5))
        a = np.tril(d) + np.tril(d, -1).T
        m = SymmetricCSC.from_dense(a)
        perm = np.array([3, 1, 4, 0, 2])
        pm = m.permute(perm)
        assert np.allclose(pm.to_dense(), a[np.ix_(perm, perm)])

    def test_values_length_checked(self):
        p = LowerPattern.from_entries(2, [1], [0])
        with pytest.raises(ValueError):
            SymmetricCSC(p, np.zeros(2))

    @given(st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_matvec_property(self, n, seed):
        rng = np.random.default_rng(seed)
        d = rng.random((n, n)) * (rng.random((n, n)) < 0.5)
        a = np.tril(d) + np.tril(d, -1).T
        m = SymmetricCSC.from_dense(a)
        x = rng.random(n)
        assert np.allclose(m.matvec(x), a @ x)


class TestLowerCSC:
    def test_to_dense_and_get(self):
        p = LowerPattern.from_entries(3, [1, 2], [0, 1])
        vals = np.array([2.0, -1.0, 3.0, -0.5, 1.5])
        L = LowerCSC(p, vals)
        d = L.to_dense()
        assert d[1, 0] == L.get(1, 0)
        assert np.allclose(np.triu(d, 1), 0)

    def test_length_checked(self):
        p = LowerPattern.from_entries(2, [], [])
        with pytest.raises(ValueError):
            LowerCSC(p, np.zeros(5))
