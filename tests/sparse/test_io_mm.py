"""Matrix Market I/O round trips."""

import io

import numpy as np
import pytest

from repro.sparse import (
    SymmetricCSC,
    grid5,
    read_matrix_market,
    spd_from_graph,
    write_matrix_market,
)
from repro.sparse.io_mm import matrix_market_string
from repro.sparse.pattern import SymmetricGraph


class TestRealRoundTrip:
    def test_roundtrip_values(self):
        a = spd_from_graph(grid5(3, 3), seed=1)
        buf = io.StringIO()
        write_matrix_market(a, buf)
        buf.seek(0)
        b = read_matrix_market(buf)
        assert isinstance(b, SymmetricCSC)
        assert b.pattern == a.pattern
        assert np.allclose(b.values, a.values)

    def test_roundtrip_file(self, tmp_path):
        a = spd_from_graph(grid5(2, 4), seed=2)
        path = tmp_path / "m.mtx"
        write_matrix_market(a, str(path))
        b = read_matrix_market(str(path))
        assert np.allclose(b.to_dense(), a.to_dense())

    def test_exact_float_precision(self):
        a = SymmetricCSC.from_entries(2, [1, 0], [0, 0], [1 / 3, np.pi])
        b = read_matrix_market(io.StringIO(matrix_market_string(a)))
        assert b.values.tolist() == a.values.tolist()


class TestPatternRoundTrip:
    def test_roundtrip_pattern(self):
        g = grid5(4, 3)
        buf = io.StringIO()
        write_matrix_market(g, buf)
        buf.seek(0)
        h = read_matrix_market(buf)
        assert isinstance(h, SymmetricGraph)
        assert h == g

    def test_header_says_pattern(self):
        s = matrix_market_string(grid5(2, 2))
        assert s.splitlines()[0] == "%%MatrixMarket matrix coordinate pattern symmetric"


class TestErrors:
    def test_rejects_non_mm(self):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO("garbage\n1 1 0\n"))

    def test_rejects_general_symmetry(self):
        s = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n"
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(s))

    def test_rejects_rectangular(self):
        s = "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1.0\n"
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(s))

    def test_rejects_wrong_count(self):
        s = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n"
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(s))

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            write_matrix_market(object(), io.StringIO())

    def test_comments_skipped(self):
        s = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% a comment\n"
            "2 2 1\n"
            "2 1 -3.5\n"
        )
        m = read_matrix_market(io.StringIO(s))
        assert m.get(1, 0) == -3.5
