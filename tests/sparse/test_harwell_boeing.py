"""The five-paper-matrix registry (Table 1 calibration)."""

import pytest

from repro.sparse import PAPER_MATRICES, load, names


class TestRegistry:
    def test_names_in_table1_order(self):
        assert names() == ["BUS1138", "CANN1072", "DWT512", "LAP30", "LSHP1009"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="available"):
            load("NOSUCH")

    def test_lap30_is_exact(self):
        tm = PAPER_MATRICES["LAP30"]
        g = tm.build()
        assert tm.exact
        assert g.n == tm.paper_n
        assert g.nnz_lower == tm.paper_nnz

    @pytest.mark.parametrize("name", ["BUS1138", "CANN1072", "DWT512", "LSHP1009"])
    def test_analogues_match_order_exactly(self, name):
        tm = PAPER_MATRICES[name]
        assert tm.build().n == tm.paper_n

    @pytest.mark.parametrize("name", names())
    def test_nnz_within_15_percent(self, name):
        tm = PAPER_MATRICES[name]
        g = tm.build()
        assert abs(g.nnz_lower - tm.paper_nnz) <= 0.15 * tm.paper_nnz

    @pytest.mark.parametrize("name", names())
    def test_deterministic(self, name):
        assert load(name) == load(name)

    @pytest.mark.parametrize("name", names())
    def test_connected(self, name):
        import networkx as nx

        g = load(name)
        u, v = g.edges()
        G = nx.Graph(zip(u.tolist(), v.tolist()))
        G.add_nodes_from(range(g.n))
        assert nx.is_connected(G)
