"""scipy.sparse interop."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.numeric import sparse_cholesky
from repro.sparse import (
    graph_from_scipy,
    grid5,
    lower_to_scipy,
    spd_from_graph,
    symmetric_from_scipy,
    symmetric_to_scipy,
)


class TestFromScipy:
    def test_roundtrip_values(self):
        a = spd_from_graph(grid5(4, 4), seed=1)
        s = symmetric_to_scipy(a)
        b = symmetric_from_scipy(s)
        assert b.pattern == a.pattern
        assert np.allclose(b.values, a.values)

    def test_accepts_any_format(self):
        d = np.array([[2.0, -1.0], [-1.0, 2.0]])
        for fmt in (sp.csr_matrix, sp.csc_matrix, sp.coo_matrix, sp.lil_matrix):
            m = symmetric_from_scipy(fmt(d))
            assert np.allclose(m.to_dense(), d)

    def test_rejects_asymmetric(self):
        m = sp.coo_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        with pytest.raises(ValueError, match="symmetric"):
            symmetric_from_scipy(m)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            symmetric_from_scipy(sp.coo_matrix(np.ones((2, 3))))

    def test_graph_from_scipy_symmetrizes(self):
        m = sp.coo_matrix(([1.0], ([0], [2])), shape=(3, 3))
        g = graph_from_scipy(m)
        assert g.has_edge(0, 2) and g.has_edge(2, 0)

    def test_graph_ignores_diagonal(self):
        m = sp.eye(4, format="csr")
        assert graph_from_scipy(m).num_edges == 0


class TestToScipy:
    def test_symmetric_expansion(self):
        a = spd_from_graph(grid5(3, 3), seed=2)
        s = symmetric_to_scipy(a)
        assert np.allclose(s.toarray(), a.to_dense())

    def test_factor_export(self):
        a = spd_from_graph(grid5(3, 3), seed=3)
        L = sparse_cholesky(a)
        s = lower_to_scipy(L)
        assert np.allclose(s.toarray(), L.to_dense())
        assert np.allclose((s @ s.T).toarray(), a.to_dense())

    def test_full_scipy_pipeline(self):
        """End to end: scipy in, solve with our stack, scipy out."""
        rng = np.random.default_rng(4)
        m = sp.random(30, 30, density=0.1, random_state=42)
        a_dense = (m @ m.T).toarray() + 30 * np.eye(30)
        a = symmetric_from_scipy(sp.csr_matrix(a_dense))
        from repro.numeric import solve_spd

        b = rng.random(30)
        x = solve_spd(a, b)
        assert np.allclose(a_dense @ x, b, atol=1e-7)
