"""Golden-format guard for the Harwell-Boeing writer.

The HB format is fixed-column Fortran; any drift in card layout breaks
interoperability with external readers.  Pin the exact bytes for a tiny
known matrix.
"""

import io

import numpy as np

from repro.sparse import SymmetricCSC, write_harwell_boeing
from repro.sparse.pattern import SymmetricGraph


class TestGoldenPattern:
    def test_exact_cards(self):
        g = SymmetricGraph.from_edges(3, [0, 1], [1, 2])
        buf = io.StringIO()
        write_harwell_boeing(g, buf, title="tiny", key="TINY")
        lines = buf.getvalue().splitlines()
        # Card 1: 72-char title + 8-char key.
        assert len(lines[0]) == 80
        assert lines[0].startswith("tiny")
        assert lines[0].endswith("TINY    ")
        # Card 2: five I14 counters.
        assert lines[1] == f"{2:>14}{1:>14}{1:>14}{0:>14}{0:>14}"
        # Card 3: type + dims (n=3, nnz=5 incl diagonal).
        assert lines[2][:3] == "PSA"
        assert int(lines[2][14:28]) == 3
        assert int(lines[2][28:42]) == 3
        assert int(lines[2][42:56]) == 5
        # Card 4: formats.
        assert lines[3].startswith("(8I10)")
        # Pointers (1-based): cols 0,1,2 have 2,2,1 entries.
        assert lines[4].split() == ["1", "3", "5", "6"]
        # Row indices (1-based).
        assert lines[5].split() == ["1", "2", "2", "3", "3"]

    def test_values_card_roundtrip_precision(self):
        a = SymmetricCSC.from_entries(2, [0, 1, 1], [0, 0, 1],
                                      [1.0 / 3.0, -2.5e-7, 4.0])
        buf = io.StringIO()
        write_harwell_boeing(a, buf)
        text = buf.getvalue()
        assert "RSA" in text
        from repro.sparse import read_harwell_boeing

        b = read_harwell_boeing(io.StringIO(text))
        assert np.allclose(b.values, a.values, rtol=1e-11)
