"""Additional pattern-type edge cases."""

import numpy as np
import pytest

from repro.sparse.pattern import LowerPattern, SymmetricGraph


class TestSymmetricGraphEdgeCases:
    def test_zero_node_graph(self):
        g = SymmetricGraph.empty(0)
        assert g.n == 0
        assert g.num_edges == 0
        u, v = g.edges()
        assert len(u) == 0

    def test_self_loop_only(self):
        g = SymmetricGraph.from_edges(2, [0, 1], [0, 1])
        assert g.num_edges == 0

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError):
            SymmetricGraph.from_edges(3, [-1], [0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SymmetricGraph.from_edges(3, [0, 1], [2])

    def test_indptr_consistency_check(self):
        with pytest.raises(ValueError):
            SymmetricGraph(2, np.array([0, 1]), np.array([1]))

    def test_lower_of_empty(self):
        p = SymmetricGraph.empty(3).lower()
        assert p.nnz == 3  # diagonal only

    def test_dense_bool_symmetry(self):
        g = SymmetricGraph.from_edges(4, [0, 2], [3, 1])
        m = g.to_dense_bool()
        assert np.array_equal(m, m.T)
        assert not m.diagonal().any()


class TestLowerPatternEdgeCases:
    def test_zero_order(self):
        p = LowerPattern.from_entries(0, [], [])
        assert p.nnz == 0
        assert len(p.element_cols()) == 0

    def test_dense_order_zero_and_one(self):
        assert LowerPattern.dense(0).nnz == 0
        p1 = LowerPattern.dense(1)
        assert p1.nnz == 1
        assert p1.has(0, 0)

    def test_element_ids_vectorized(self):
        p = LowerPattern.from_entries(4, [1, 3, 3], [0, 1, 2])
        rows = np.array([1, 3, 3, 2])
        cols = np.array([0, 1, 2, 0])
        ids = p.element_ids(rows, cols)
        assert ids[3] == -1  # (2, 0) absent
        for k in range(3):
            assert int(p.rowidx[ids[k]]) == rows[k]

    def test_out_of_range_entry_rejected(self):
        with pytest.raises(ValueError):
            LowerPattern.from_entries(3, [3], [0])

    def test_rows_cols_length_mismatch(self):
        with pytest.raises(ValueError):
            LowerPattern.from_entries(3, [1], [0, 0])

    def test_col_count_vector(self):
        p = LowerPattern.dense(3)
        assert p.col_count().tolist() == [3, 2, 1]

    def test_contains_different_order(self):
        a = LowerPattern.dense(3)
        b = LowerPattern.dense(4)
        assert not a.contains(b)
        assert not b.contains(a)  # different n

    def test_indptr_rowidx_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LowerPattern(2, np.array([0, 1, 3]), np.array([0, 1]))
