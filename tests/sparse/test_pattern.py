"""Tests for SymmetricGraph and LowerPattern."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.pattern import LowerPattern, SymmetricGraph


class TestSymmetricGraphConstruction:
    def test_from_edges_basic(self):
        g = SymmetricGraph.from_edges(4, [0, 1, 2], [1, 2, 3])
        assert g.n == 4
        assert g.num_edges == 3
        assert list(g.neighbors(1)) == [0, 2]

    def test_from_edges_dedupes(self):
        g = SymmetricGraph.from_edges(3, [0, 1, 0], [1, 0, 1])
        assert g.num_edges == 1

    def test_from_edges_drops_self_loops(self):
        g = SymmetricGraph.from_edges(3, [0, 1], [0, 2])
        assert g.num_edges == 1
        assert g.has_edge(1, 2)

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SymmetricGraph.from_edges(3, [0], [3])

    def test_empty_graph(self):
        g = SymmetricGraph.empty(5)
        assert g.n == 5
        assert g.num_edges == 0
        assert g.nnz_lower == 5

    def test_from_dense_roundtrip(self):
        a = np.array([[1, 1, 0], [1, 1, 1], [0, 1, 1]])
        g = SymmetricGraph.from_dense(a)
        assert g.num_edges == 2
        mask = g.to_dense_bool()
        assert mask[0, 1] and mask[1, 2] and not mask[0, 2]
        assert not mask[0, 0]  # diagonal excluded

    def test_from_dense_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            SymmetricGraph.from_dense(np.array([[0, 1], [0, 0]]))

    def test_from_dense_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            SymmetricGraph.from_dense(np.zeros((2, 3)))


class TestSymmetricGraphQueries:
    def test_degree(self):
        g = SymmetricGraph.from_edges(4, [0, 0, 0], [1, 2, 3])
        assert g.degree(0) == 3
        assert list(g.degree()) == [3, 1, 1, 1]

    def test_has_edge_symmetric(self):
        g = SymmetricGraph.from_edges(3, [0], [2])
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_edges_canonical_orientation(self):
        g = SymmetricGraph.from_edges(4, [3, 2], [1, 0])
        u, v = g.edges()
        assert (u < v).all()
        assert len(u) == 2

    def test_nnz_lower(self):
        g = SymmetricGraph.from_edges(4, [0, 1], [1, 2])
        assert g.nnz_lower == 4 + 2


class TestSymmetricGraphPermute:
    def test_permute_identity(self):
        g = SymmetricGraph.from_edges(4, [0, 1], [1, 3])
        assert g.permute([0, 1, 2, 3]) == g

    def test_permute_relabels(self):
        g = SymmetricGraph.from_edges(3, [0], [1])
        # perm[k] = old index of new node k; reverse everything.
        p = g.permute([2, 1, 0])
        assert p.has_edge(2, 1)
        assert not p.has_edge(0, 1)

    def test_permute_rejects_non_permutation(self):
        g = SymmetricGraph.empty(3)
        with pytest.raises(ValueError):
            g.permute([0, 0, 1])

    @given(st.integers(2, 12), st.integers(0, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_permute_preserves_edges(self, n, extra, seed):
        rng = np.random.default_rng(seed)
        u = rng.integers(0, n, size=extra)
        v = rng.integers(0, n, size=extra)
        g = SymmetricGraph.from_edges(n, u, v)
        perm = rng.permutation(n)
        pg = g.permute(perm)
        assert pg.num_edges == g.num_edges
        inv = np.empty(n, dtype=int)
        inv[perm] = np.arange(n)
        for a, b in zip(*g.edges()):
            assert pg.has_edge(inv[a], inv[b])


class TestLowerPattern:
    def test_from_entries_adds_diagonal(self):
        p = LowerPattern.from_entries(3, [2], [0])
        assert p.nnz == 4
        assert p.has(0, 0) and p.has(1, 1) and p.has(2, 2) and p.has(2, 0)

    def test_from_entries_rejects_upper(self):
        with pytest.raises(ValueError):
            LowerPattern.from_entries(3, [0], [2])

    def test_from_entries_dedupes(self):
        p = LowerPattern.from_entries(2, [1, 1], [0, 0])
        assert p.nnz == 3

    def test_col_sorted_with_diag_first(self):
        p = LowerPattern.from_entries(5, [4, 2, 3], [1, 1, 1])
        assert list(p.col(1)) == [1, 2, 3, 4]

    def test_element_id_lookup(self):
        p = LowerPattern.from_entries(3, [2, 1], [0, 0])
        for e in range(p.nnz):
            i = int(p.rowidx[e])
            j = int(p.element_cols()[e])
            assert p.element_id(i, j) == e
        assert p.element_id(2, 1) == -1

    def test_dense_constructor(self):
        p = LowerPattern.dense(4)
        assert p.nnz == 10
        assert p.col_count(0) == 4
        assert p.col_count(3) == 1

    def test_from_dense(self):
        a = np.array([[1.0, 0, 0], [2.0, 3.0, 0], [0, 0, 4.0]])
        p = LowerPattern.from_dense(a)
        assert p.has(1, 0)
        assert not p.has(2, 0)

    def test_offdiag_count(self):
        p = LowerPattern.from_entries(3, [1, 2], [0, 0])
        assert p.offdiag_count(0) == 2
        assert p.offdiag_count(1) == 0
        assert list(p.offdiag_count()) == [2, 0, 0]

    def test_element_cols_matches_indptr(self):
        p = LowerPattern.from_entries(4, [1, 2, 3, 3], [0, 0, 1, 2])
        cols = p.element_cols()
        for e in range(p.nnz):
            j = int(cols[e])
            assert p.indptr[j] <= e < p.indptr[j + 1]

    def test_to_symmetric_graph_roundtrip(self):
        g = SymmetricGraph.from_edges(5, [0, 1, 2], [4, 3, 4])
        assert g.lower().to_symmetric_graph() == g

    def test_contains(self):
        big = LowerPattern.from_entries(3, [1, 2], [0, 0])
        small = LowerPattern.from_entries(3, [1], [0])
        assert big.contains(small)
        assert not small.contains(big)

    def test_missing_diagonal_rejected(self):
        with pytest.raises(ValueError):
            LowerPattern(2, np.array([0, 1, 2]), np.array([1, 1]))

    @given(st.integers(1, 10), st.integers(0, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_dense_roundtrip_property(self, n, extra, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, n, size=extra)
        cols = rng.integers(0, n, size=extra)
        keep = rows >= cols
        p = LowerPattern.from_entries(n, rows[keep], cols[keep])
        assert LowerPattern.from_dense(p.to_dense_bool()) == p
