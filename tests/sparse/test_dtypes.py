"""Index-dtype discipline across the sparse/symbolic stack.

The rules (codified in :mod:`repro.sparse.dtypes`):

* storage index arrays (row indices, adjacency, element ids, read
  lists) live at ``index_dtype(limit)`` — int32 until the addressed
  space outgrows 2^31 - 1;
* linearized (row, col) keys always go through
  :func:`~repro.sparse.dtypes.linear_index` and are int64;
* counts, cumulative sums and ``indptr`` arrays stay int64.

A silent ``np.arange``/``np.repeat`` int64 default creeping back in
doubles the big-tier working set, so this file pins the dtypes end to
end on a problem large enough to be representative but fast to build.
"""

import numpy as np
import pytest

from repro.core.pipeline import prepare
from repro.machine import build_read_index
from repro.sparse import generators as gen
from repro.sparse.dtypes import (
    INDEX_MAX_INT32,
    as_index_array,
    index_dtype,
    linear_index,
)
from repro.sparse.pattern import LowerPattern, SymmetricGraph
from repro.symbolic.updates import enumerate_updates


class TestHelpers:
    def test_index_dtype_threshold(self):
        assert index_dtype(0) == np.int32
        assert index_dtype(INDEX_MAX_INT32) == np.int32
        assert index_dtype(INDEX_MAX_INT32 + 1) == np.int64

    def test_as_index_array_narrows_with_limit(self):
        a = as_index_array([1, 2, 3], limit=10)
        assert a.dtype == np.int32
        a = as_index_array([1, 2, 3], limit=INDEX_MAX_INT32 + 1)
        assert a.dtype == np.int64

    def test_as_index_array_preserves_narrow_without_limit(self):
        a = np.array([1, 2], dtype=np.int32)
        assert as_index_array(a).dtype == np.int32
        assert as_index_array([1, 2]).dtype == np.int64

    def test_as_index_array_rejects_2d(self):
        with pytest.raises(ValueError):
            as_index_array(np.zeros((2, 2), dtype=np.int32))

    def test_linear_index_is_always_int64(self):
        major = np.array([1, 2], dtype=np.int32)
        minor = np.array([3, 4], dtype=np.int32)
        key = linear_index(major, minor, 100_000)
        assert key.dtype == np.int64
        np.testing.assert_array_equal(key, [100_003, 200_004])

    def test_linear_index_no_int32_overflow(self):
        # 100k x 100k linearized keys overflow int32 by design; the
        # helper must widen regardless of the operand dtypes.
        n = 100_000
        major = np.array([n - 1], dtype=np.int32)
        key = linear_index(major, np.array([n - 1], dtype=np.int32), n)
        assert int(key[0]) == n * n - 1


class TestStructureDtypes:
    def test_graph_from_edges_is_int32(self):
        g = gen.grid9(40, 40)
        assert g.indices.dtype == np.int32
        assert g.indptr.dtype == np.int64  # counts stay wide

    def test_lower_pattern_is_int32(self):
        g = gen.grid9(20, 20)
        low = g.lower()
        assert low.rowidx.dtype == np.int32
        assert low.indptr.dtype == np.int64

    def test_permute_stays_narrow(self):
        g = gen.grid5(15, 15)
        perm = np.arange(g.n)[::-1].copy()
        assert g.permute(perm).indices.dtype == np.int32

    def test_element_cols_narrow(self):
        low = gen.grid5(10, 10).lower()
        assert low.element_cols().dtype == np.int32


class TestPipelineDtypes:
    @pytest.fixture(scope="class")
    def prepped(self):
        # Big enough that every stage's arrays are exercised in bulk
        # (~27k factor entries), small enough to prepare in well under a
        # second.
        return prepare(gen.aniso_grid(400, 8), name="ANISO3200")

    def test_symbolic_rowidx_narrow(self, prepped):
        assert prepped.pattern.rowidx.dtype == np.int32
        assert prepped.pattern.indptr.dtype == np.int64

    def test_update_arrays_narrow(self, prepped):
        ups = prepped.updates
        for arr in (ups.target, ups.source_i, ups.source_j, ups.source_col):
            assert arr.dtype == np.int32
        assert ups.scale_source.dtype == np.int32

    def test_update_counts_stay_wide(self, prepped):
        # bincount output: a count, not an index.
        assert prepped.updates.update_counts.dtype == np.int64

    def test_read_index_narrow(self, prepped):
        index = build_read_index(prepped.updates)
        assert index.src.dtype == np.int32
        assert index.reader.dtype == np.int32

    def test_enumeration_matches_reference_dtypeless(self):
        # Narrowing must never change values: compare against the int64
        # reference enumerator elementwise.
        from repro.symbolic.updates import enumerate_updates_reference

        pattern = prepare(gen.grid9(16, 16), name="G16").pattern
        fast = enumerate_updates(pattern)
        ref = enumerate_updates_reference(pattern)
        np.testing.assert_array_equal(fast.target, ref.target)
        np.testing.assert_array_equal(fast.source_i, ref.source_i)
        np.testing.assert_array_equal(fast.source_j, ref.source_j)
        np.testing.assert_array_equal(fast.source_col, ref.source_col)


class TestNoSilentUpcasts:
    def test_from_entries_narrow(self):
        pat = LowerPattern.from_entries(50, [5, 10], [1, 2])
        assert pat.rowidx.dtype == np.int32

    def test_from_edges_with_int64_input_narrows(self):
        u = np.array([0, 1, 2], dtype=np.int64)
        v = np.array([1, 2, 3], dtype=np.int64)
        g = SymmetricGraph.from_edges(4, u, v)
        assert g.indices.dtype == np.int32

    def test_generators_emit_narrow_graphs(self):
        for graph in (
            gen.hex_mesh(5, 3, 3),
            gen.tet_mesh(4, 3, 3),
            gen.aniso_grid(12, 4),
            gen.social_graph(200, seed=1),
            gen.powlaw_graph(200, seed=1),
        ):
            assert graph.indices.dtype == np.int32
