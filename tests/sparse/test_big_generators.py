"""Big-tier generator families: determinism and structural invariants.

Determinism is asserted the way the registry relies on it: the same
(family, parameters, seed) triple must produce a bit-identical pattern
fingerprint *in a fresh process*, not merely within this one — a warm
``lru_cache`` or module-level RNG state would hide a real divergence.
Structural invariants (symmetry is guaranteed by ``SymmetricGraph``
itself, so: connectivity, degree bounds, bandwidth/locality bounds) are
checked per family at small sizes.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.sparse import registry
from repro.sparse.generators import (
    aniso_grid,
    hex_mesh,
    powlaw_graph,
    social_graph,
    tet_mesh,
)
from repro.sparse.registry import pattern_fingerprint


def _is_connected(graph) -> bool:
    import networkx as nx

    u, v = graph.edges()
    G = nx.Graph(zip(u.tolist(), v.tolist()))
    G.add_nodes_from(range(graph.n))
    return nx.is_connected(G)


#: (label, zero-argument builder) pairs exercised by the determinism
#: tests.  Expressions are evaluated both here and in a subprocess.
FAMILY_EXPRS = {
    "hex": "g.hex_mesh(9, 4, 3)",
    "tet": "g.tet_mesh(7, 4, 3)",
    "aniso": "g.aniso_grid(40, 6, reach=3)",
    "social": "g.social_graph(3000, seed=5)",
    "powlaw": "g.powlaw_graph(3000, seed=5)",
}


def _fingerprint_in_subprocess(expr: str) -> str:
    code = (
        "from repro.sparse import generators as g\n"
        "from repro.sparse.registry import pattern_fingerprint\n"
        f"print(pattern_fingerprint({expr}))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    return out.stdout.strip()


class TestDeterminism:
    @pytest.mark.parametrize("family", sorted(FAMILY_EXPRS))
    def test_same_seed_same_fingerprint_across_processes(self, family):
        expr = FAMILY_EXPRS[family]
        from repro.sparse import generators as g  # noqa: F401 - used by eval

        local = pattern_fingerprint(eval(expr))
        assert _fingerprint_in_subprocess(expr) == local

    def test_different_seeds_differ(self):
        a = pattern_fingerprint(social_graph(2000, seed=1))
        b = pattern_fingerprint(social_graph(2000, seed=2))
        assert a != b
        a = pattern_fingerprint(powlaw_graph(2000, seed=1))
        b = pattern_fingerprint(powlaw_graph(2000, seed=2))
        assert a != b

    def test_fingerprint_is_dtype_independent(self):
        g = social_graph(500, seed=3)
        from repro.sparse.pattern import SymmetricGraph

        widened = SymmetricGraph(
            g.n, g.indptr.astype(np.int64), g.indices.astype(np.int64)
        )
        assert pattern_fingerprint(widened) == pattern_fingerprint(g)


class TestHexMesh:
    def test_counts_and_connectivity(self):
        g = hex_mesh(6, 4, 3)
        assert g.n == 72
        assert _is_connected(g)
        # Faces (x, y, z) + the two yz-plane diagonal sets.
        assert int(g.degree().max()) <= 10

    def test_bandwidth_bound(self):
        nx_, ny, nz = 9, 4, 3
        g = hex_mesh(nx_, ny, nz)
        u, v = g.edges()
        # The farthest coupling is the x face (index stride ny*nz) or a
        # yz diagonal (stride nz + 1); nothing reaches past ny*nz.
        assert int((v - u).max()) <= ny * nz

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            hex_mesh(0, 4, 4)


class TestTetMesh:
    def test_counts_and_connectivity(self):
        g = tet_mesh(5, 4, 3)
        assert g.n == 60
        assert _is_connected(g)
        # 6 axis + 6 face-diagonal + 2 body-diagonal incidences.
        assert int(g.degree().max()) <= 14

    def test_contains_hex_edges(self):
        # The Kuhn mesh refines the face-coupling skeleton: every axis
        # edge of the grid is present.
        g = tet_mesh(4, 3, 3)
        idx = np.arange(4 * 3 * 3).reshape(4, 3, 3)
        assert g.has_edge(int(idx[0, 0, 0]), int(idx[1, 0, 0]))
        assert g.has_edge(int(idx[0, 0, 0]), int(idx[1, 1, 1]))  # body diag


class TestAnisoGrid:
    def test_reach_one_is_grid5(self):
        from repro.sparse.generators import grid5

        assert aniso_grid(7, 5, reach=1) == grid5(7, 5)

    def test_connectivity_and_degree(self):
        g = aniso_grid(30, 5, reach=2)
        assert g.n == 150
        assert _is_connected(g)
        assert int(g.degree().max()) <= 2 + 2 * 2  # y pair + 2 x links/side

    def test_bandwidth_bound(self):
        ny, reach = 6, 3
        g = aniso_grid(25, ny, reach=reach)
        u, v = g.edges()
        assert int((v - u).max()) <= reach * ny

    def test_rejects_bad_reach(self):
        with pytest.raises(ValueError):
            aniso_grid(5, 5, reach=0)


class TestSocialGraph:
    def test_connected_by_ring(self):
        g = social_graph(400, seed=9)
        assert _is_connected(g)

    def test_chord_length_cap(self):
        n, cap = 5000, 64
        g = social_graph(n, max_len=cap, seed=2)
        u, v = g.edges()
        ring_dist = np.minimum(v - u, n - (v - u))
        assert int(ring_dist.max()) <= cap

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            social_graph(2)


class TestPowlawGraph:
    def test_connected_by_tree(self):
        g = powlaw_graph(800, seed=3)
        assert _is_connected(g)

    def test_heavy_tail(self):
        g = powlaw_graph(4000, avg_degree=4.0, seed=1)
        deg = g.degree()
        # Hubs: the max degree dwarfs the mean, unlike the bounded
        # families above.
        assert int(deg.max()) > 10 * float(deg.mean())

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            powlaw_graph(1)


class TestRegistry:
    def test_names_cover_both_tiers(self):
        names = registry.matrix_names()
        assert "LAP30" in names and "SOC100K" in names
        assert set(registry.big_names()) <= set(names)

    def test_registered_sizes_are_big(self):
        for m in registry.BIG_MATRICES.values():
            assert m.n >= registry.BIG_TIER_MIN_N

    def test_load_paper_matrix(self):
        g = registry.load("LAP30")
        assert g.n == 900

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            registry.load("NOPE")

    def test_is_big(self):
        assert registry.is_big("SOC100K")
        assert not registry.is_big("LAP30")

    def test_sweep_grid_accepts_big_names(self):
        from repro.perf.sweep import build_grid

        tasks = build_grid(["SOC100K"], ("wrap",), (4,), (4,), (4,))
        assert tasks and tasks[0].matrix == "SOC100K"
        with pytest.raises(ValueError):
            build_grid(["NOPE"], ("wrap",), (4,), (4,), (4,))
