"""Tests for the structure generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.generators import (
    grid5,
    grid9,
    knn_mesh,
    laplacian_matrix,
    lshape_mesh,
    path_graph,
    power_network,
    random_symmetric_graph,
    spd_from_graph,
    star_graph,
    stiffened_cylinder,
)


class TestGrids:
    def test_grid5_counts(self):
        g = grid5(3, 4)
        assert g.n == 12
        # edges: (3-1)*4 + 3*(4-1) = 8 + 9 = 17
        assert g.num_edges == 17

    def test_grid5_interior_degree(self):
        g = grid5(5, 5)
        # Node (2,2) = index 12 has 4 neighbours.
        assert g.degree(12) == 4

    def test_grid9_counts_lap30(self):
        g = grid9(30, 30)
        assert g.n == 900
        assert g.nnz_lower == 4322  # paper Table 1, exact

    def test_grid9_interior_degree(self):
        g = grid9(4, 4)
        assert g.degree(5) == 8  # interior king-move node

    def test_grid9_corner_degree(self):
        g = grid9(4, 4)
        assert g.degree(0) == 3

    def test_grid_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            grid5(0, 3)
        with pytest.raises(ValueError):
            grid9(3, 0)

    def test_single_node_grid(self):
        assert grid5(1, 1).num_edges == 0
        assert grid9(1, 1).n == 1


class TestLShape:
    def test_node_count(self):
        g = lshape_mesh(32, 32, 8, 10)
        assert g.n == 33 * 33 - 80

    def test_full_rectangle_when_no_cut(self):
        g = lshape_mesh(3, 3, 0, 0)
        assert g.n == 16
        # horizontal 12 + vertical 12 + diagonals 9
        assert g.num_edges == 33

    def test_cut_must_fit(self):
        with pytest.raises(ValueError):
            lshape_mesh(3, 3, 4, 1)

    def test_triangulation_connected(self):
        import networkx as nx

        g = lshape_mesh(6, 6, 2, 3)
        u, v = g.edges()
        G = nx.Graph(zip(u.tolist(), v.tolist()))
        G.add_nodes_from(range(g.n))
        assert nx.is_connected(G)


class TestPowerNetwork:
    def test_counts(self):
        g = power_network(100, 20, seed=1)
        assert g.n == 100
        assert g.num_edges == 119  # 99 tree + 20 chords

    def test_connected(self):
        import networkx as nx

        g = power_network(60, 10, seed=4)
        u, v = g.edges()
        G = nx.Graph(zip(u.tolist(), v.tolist()))
        G.add_nodes_from(range(g.n))
        assert nx.is_connected(G)

    def test_deterministic(self):
        a = power_network(50, 5, seed=9)
        b = power_network(50, 5, seed=9)
        assert a == b

    def test_local_frac_validated(self):
        with pytest.raises(ValueError):
            power_network(10, 2, local_loop_frac=1.5)

    def test_pure_tree(self):
        g = power_network(30, 0, seed=2)
        assert g.num_edges == 29


class TestKnnMesh:
    def test_exact_edge_target(self):
        g = knn_mesh(60, 200, seed=2)
        assert g.n == 60
        assert g.num_edges == 200

    def test_layouts(self):
        for layout in ("annulus", "square"):
            g = knn_mesh(40, 100, seed=1, layout=layout)
            assert g.num_edges == 100

    def test_bad_layout_rejected(self):
        with pytest.raises(ValueError):
            knn_mesh(10, 5, layout="line")

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            knn_mesh(1, 0)


class TestCylinder:
    def test_counts_no_extras(self):
        g = stiffened_cylinder(8, 4, diagonals=False, stiffener_stride=0)
        assert g.n == 32
        # rings 8*4 + longitudinal 8*3 = 56
        assert g.num_edges == 56

    def test_diagonals_add_faces(self):
        g = stiffened_cylinder(8, 4, diagonals=True, stiffener_stride=0)
        assert g.num_edges == 56 + 24

    def test_dwt_config(self):
        g = stiffened_cylinder(4, 128, diagonals=True, stiffener_stride=2)
        assert g.n == 512
        assert g.nnz_lower == 2292

    def test_validates_ring(self):
        with pytest.raises(ValueError):
            stiffened_cylinder(2, 4)


class TestMisc:
    def test_path_and_star(self):
        assert path_graph(5).num_edges == 4
        assert star_graph(5).degree(0) == 4

    def test_random_density_bounds(self):
        with pytest.raises(ValueError):
            random_symmetric_graph(5, 1.5)

    def test_random_full_density(self):
        g = random_symmetric_graph(6, 1.0, seed=0)
        assert g.num_edges == 15

    @given(st.integers(2, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_spd_from_graph_is_spd(self, n, seed):
        g = random_symmetric_graph(n, 0.3, seed=seed)
        a = spd_from_graph(g, seed=seed).to_dense()
        eig = np.linalg.eigvalsh(a)
        assert eig.min() > 0

    def test_laplacian_structure(self):
        g = path_graph(4)
        m = laplacian_matrix(g, shift=0.5)
        d = m.to_dense()
        assert np.allclose(d.sum(axis=1), 0.5)
        assert d[1, 1] == 2.5
