"""Harwell-Boeing fixed-format I/O."""

import io

import numpy as np
import pytest

from repro.sparse import (
    SymmetricCSC,
    grid5,
    read_harwell_boeing,
    spd_from_graph,
    write_harwell_boeing,
)
from repro.sparse.io_hb import FortranFormat, harwell_boeing_string
from repro.sparse.pattern import SymmetricGraph


class TestFortranFormat:
    def test_parse_int(self):
        f = FortranFormat.parse("(16I5)")
        assert (f.count, f.width, f.decimals) == (16, 5, None)

    def test_parse_real(self):
        f = FortranFormat.parse("(5E16.8)")
        assert (f.count, f.width, f.decimals) == (5, 16, 8)

    def test_parse_real_with_exponent_width(self):
        f = FortranFormat.parse("(3E25.16E3)")
        assert (f.count, f.width, f.decimals) == (3, 25, 16)

    def test_parse_d_descriptor(self):
        f = FortranFormat.parse("(4D20.12)")
        assert f.decimals == 12

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FortranFormat.parse("(A40)")

    def test_render_roundtrip(self):
        for text in ("(8I10)", "(4E20.12)"):
            assert FortranFormat.parse(FortranFormat.parse(text).render()).render() == \
                FortranFormat.parse(text).render()

    def test_write_read_ints(self):
        f = FortranFormat(5, 4)
        buf = io.StringIO()
        f.write(buf, list(range(12)))
        buf.seek(0)
        out = f.read(buf, 12)
        assert out.tolist() == list(range(12))

    def test_write_read_reals(self):
        f = FortranFormat(3, 20, 12)
        vals = [1.0, -2.5e-7, 3.25e11]
        buf = io.StringIO()
        f.write(buf, vals)
        buf.seek(0)
        out = f.read(buf, 3)
        assert np.allclose(out, vals, rtol=1e-11)

    def test_lines_for(self):
        assert FortranFormat(8, 10).lines_for(0) == 0
        assert FortranFormat(8, 10).lines_for(8) == 1
        assert FortranFormat(8, 10).lines_for(9) == 2

    def test_read_truncated_raises(self):
        f = FortranFormat(5, 4)
        with pytest.raises(ValueError):
            f.read(io.StringIO("   1   2\n"), 5)


class TestHBRoundTrip:
    def test_pattern_roundtrip(self):
        g = grid5(4, 4)
        buf = io.StringIO()
        write_harwell_boeing(g, buf, title="grid", key="GRID")
        buf.seek(0)
        h = read_harwell_boeing(buf)
        assert isinstance(h, SymmetricGraph)
        assert h == g

    def test_real_roundtrip(self):
        a = spd_from_graph(grid5(3, 3), seed=7)
        buf = io.StringIO()
        write_harwell_boeing(a, buf)
        buf.seek(0)
        b = read_harwell_boeing(buf)
        assert isinstance(b, SymmetricCSC)
        assert b.pattern == a.pattern
        assert np.allclose(b.values, a.values, rtol=1e-11)

    def test_file_roundtrip(self, tmp_path):
        g = grid5(5, 2)
        p = tmp_path / "g.rsa"
        write_harwell_boeing(g, str(p))
        assert read_harwell_boeing(str(p)) == g

    def test_header_fields(self):
        s = harwell_boeing_string(grid5(2, 2), title="t", key="K")
        lines = s.splitlines()
        assert lines[0].startswith("t")
        assert lines[0].rstrip().endswith("K")
        assert lines[2].startswith("PSA")

    def test_rsa_type_for_values(self):
        s = harwell_boeing_string(spd_from_graph(grid5(2, 2), seed=0))
        assert s.splitlines()[2].startswith("RSA")

    def test_rejects_unknown_object(self):
        with pytest.raises(TypeError):
            write_harwell_boeing(42, io.StringIO())

    def test_rejects_unsymmetric_type(self):
        s = harwell_boeing_string(grid5(2, 2)).replace("PSA", "PUA")
        with pytest.raises(ValueError):
            read_harwell_boeing(io.StringIO(s))
