"""Column/row counts and the work formula."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import grid5, grid9, path_graph
from repro.symbolic import (
    column_counts,
    factor_nnz,
    row_counts,
    sequential_work,
    symbolic_cholesky,
)

from ..conftest import random_connected_graph


class TestColumnCounts:
    def test_path(self):
        assert column_counts(path_graph(4)).tolist() == [2, 2, 2, 1]

    def test_matches_full_symbolic_grid(self):
        g = grid5(5, 5)
        f = symbolic_cholesky(g)
        assert np.array_equal(column_counts(g), f.column_counts())

    def test_with_permutation(self):
        g = grid5(4, 4)
        perm = np.arange(g.n)[::-1].copy()
        f = symbolic_cholesky(g, perm)
        assert np.array_equal(column_counts(g, perm), f.column_counts())

    @given(st.integers(2, 20), st.integers(0, 25), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_full_symbolic_random(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        assert np.array_equal(column_counts(g), symbolic_cholesky(g).column_counts())


class TestRowCounts:
    def test_sum_equals_nnz(self):
        g = grid5(5, 4)
        assert int(row_counts(g).sum()) == factor_nnz(g)

    def test_first_row_single(self):
        g = grid5(3, 3)
        assert row_counts(g)[0] == 1


class TestWorkFormula:
    def test_formula_matches_updates(self):
        """sequential_work must equal 2 * #pair-updates + nnz(L)."""
        from repro.symbolic import enumerate_updates

        g = grid5(5, 5)
        f = symbolic_cholesky(g)
        ups = enumerate_updates(f.pattern)
        assert sequential_work(g) == 2 * ups.num_pair_updates + f.nnz

    def test_lap30_total_work_near_paper(self):
        from repro.ordering import multiple_minimum_degree

        g = grid9(30, 30)
        w = sequential_work(g, multiple_minimum_degree(g))
        # Paper: 434577 with Liu's MMD; allow ordering slack.
        assert 350_000 <= w <= 600_000

    @given(st.integers(2, 15), st.integers(0, 15), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_formula_property(self, n, extra, seed):
        from repro.symbolic import enumerate_updates

        g = random_connected_graph(n, extra, seed)
        f = symbolic_cholesky(g)
        ups = enumerate_updates(f.pattern)
        assert sequential_work(g) == ups.total_work()
