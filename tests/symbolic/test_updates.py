"""Element-level update enumeration (Figure 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import grid5
from repro.sparse.pattern import LowerPattern
from repro.symbolic import enumerate_updates, symbolic_cholesky

from ..conftest import brute_force_updates, random_connected_graph


def _as_triples(pattern, ups):
    cols = pattern.element_cols()
    out = set()
    for t, si, sj, k in zip(
        ups.target.tolist(), ups.source_i.tolist(), ups.source_j.tolist(),
        ups.source_col.tolist(),
    ):
        i = int(pattern.rowidx[si])
        j = int(pattern.rowidx[sj])
        assert int(cols[si]) == k and int(cols[sj]) == k
        assert int(pattern.rowidx[t]) == i and int(cols[t]) == j
        out.add((i, j, k))
    return out


class TestEnumerateUpdates:
    def test_dense_3x3(self):
        p = LowerPattern.dense(3)
        ups = enumerate_updates(p)
        triples = _as_triples(p, ups)
        # Column 0 off-diags {1,2}: pairs (1,1),(2,1),(2,2); column 1
        # off-diag {2}: (2,2).
        assert triples == {(1, 1, 0), (2, 1, 0), (2, 2, 0), (2, 2, 1)}

    def test_diagonal_matrix_no_updates(self):
        p = LowerPattern.from_entries(4, [], [])
        assert enumerate_updates(p).num_pair_updates == 0

    def test_matches_brute_force_grid(self):
        f = symbolic_cholesky(grid5(4, 4))
        ups = enumerate_updates(f.pattern)
        assert _as_triples(f.pattern, ups) == brute_force_updates(f.pattern)

    def test_non_closed_pattern_rejected(self):
        # (1,0) and (2,0) nonzero but (2,1) missing -> not fill-closed.
        p = LowerPattern.from_entries(3, [1, 2], [0, 0])
        with pytest.raises(ValueError, match="not closed"):
            enumerate_updates(p)

    def test_scale_sources_are_diagonals(self):
        f = symbolic_cholesky(grid5(3, 3))
        ups = enumerate_updates(f.pattern)
        cols = f.pattern.element_cols()
        scale = ups.scale_source
        for e in range(f.pattern.nnz):
            d = int(scale[e])
            assert int(f.pattern.rowidx[d]) == int(cols[e])  # diagonal row
            assert int(cols[d]) == int(cols[e])

    def test_update_counts_total(self):
        f = symbolic_cholesky(grid5(4, 3))
        ups = enumerate_updates(f.pattern)
        assert int(ups.update_counts.sum()) == ups.num_pair_updates

    def test_element_work_formula(self):
        f = symbolic_cholesky(grid5(4, 3))
        ups = enumerate_updates(f.pattern)
        ew = ups.element_work()
        assert int(ew.sum()) == ups.total_work()
        assert (ew >= 1).all()  # every element is scaled at least once

    def test_column_pair_count_formula(self):
        """Column k contributes m_k(m_k+1)/2 pair updates."""
        f = symbolic_cholesky(grid5(4, 4))
        ups = enumerate_updates(f.pattern)
        m = np.diff(f.pattern.indptr) - 1
        expected = int((m * (m + 1) // 2).sum())
        assert ups.num_pair_updates == expected

    @given(st.integers(2, 14), st.integers(0, 18), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_matches_brute_force_random(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        f = symbolic_cholesky(g)
        ups = enumerate_updates(f.pattern)
        assert _as_triples(f.pattern, ups) == brute_force_updates(f.pattern)
