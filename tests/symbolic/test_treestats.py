"""Elimination-tree parallelism statistics."""

import numpy as np
import pytest

from repro.ordering import multiple_minimum_degree
from repro.sparse import grid5, path_graph, star_graph
from repro.sparse.pattern import SymmetricGraph
from repro.symbolic import tree_stats


class TestTreeStats:
    def test_path_is_a_chain(self):
        s = tree_stats(path_graph(6))
        assert s.height == 6
        assert s.num_leaves == 1
        assert s.num_roots == 1
        assert s.average_parallelism == 1.0

    def test_star_natural_order(self):
        # Hub first: the fill chains everything -> height n.
        s = tree_stats(star_graph(5))
        assert s.height == 5

    def test_star_good_order(self):
        # Leaves first: a flat tree of height 2.
        g = star_graph(5)
        perm = np.array([1, 2, 3, 4, 0])
        s = tree_stats(g, perm)
        assert s.height == 2
        assert s.num_leaves == 4
        assert s.max_width == 4

    def test_empty_graph(self):
        s = tree_stats(SymmetricGraph.empty(0))
        assert s.n == 0 and s.height == 0

    def test_isolated_nodes_all_roots(self):
        s = tree_stats(SymmetricGraph.empty(4))
        assert s.num_roots == 4
        assert s.height == 1

    def test_width_profile_sums_to_n(self):
        g = grid5(6, 6)
        s = tree_stats(g, multiple_minimum_degree(g))
        assert int(s.width_profile.sum()) == g.n

    def test_mmd_shortens_tree_vs_natural(self):
        """Fill-reducing orderings flatten the elimination tree — the
        source of the parallelism the paper exploits."""
        g = grid5(10, 10)
        natural = tree_stats(g)
        mmd = tree_stats(g, multiple_minimum_degree(g))
        assert mmd.height < natural.height
        assert mmd.average_parallelism > natural.average_parallelism

    def test_lap30_parallelism_supports_paper_claim(self, prepared_lap30):
        """LAP30's MMD tree must expose far more parallelism than the
        paper's 32 processors — the premise of its low-idle-time claim."""
        s = tree_stats(prepared_lap30.graph, prepared_lap30.perm)
        assert s.num_leaves > 32
        assert s.average_parallelism > 4
