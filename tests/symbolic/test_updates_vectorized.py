"""Vectorized enumerate_updates vs the per-column reference.

The vectorized kernel promises *array-for-array* identity with
:func:`repro.symbolic.updates.enumerate_updates_reference` — not just the
same multiset of updates but the same order (column-major, then
np.tril_indices order within a column) — so these tests assert exact
equality on every output array, across random generator matrices, the
paper's HB sample, and both lookup branches (dense table and global
searchsorted).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import band_graph, band_lower_pattern, grid5, grid9
from repro.sparse.pattern import LowerPattern
from repro.symbolic import (
    enumerate_updates,
    enumerate_updates_reference,
    symbolic_cholesky,
)
from repro.symbolic import updates as updates_mod

from ..conftest import random_connected_graph


def assert_identical(pattern: LowerPattern) -> None:
    fast = enumerate_updates(pattern)
    ref = enumerate_updates_reference(pattern)
    np.testing.assert_array_equal(fast.target, ref.target)
    np.testing.assert_array_equal(fast.source_i, ref.source_i)
    np.testing.assert_array_equal(fast.source_j, ref.source_j)
    np.testing.assert_array_equal(fast.source_col, ref.source_col)


class TestVectorizedMatchesReference:
    def test_dense(self):
        assert_identical(LowerPattern.dense(6))

    def test_diagonal(self):
        assert_identical(LowerPattern.from_entries(5, [], []))

    def test_grid5(self):
        assert_identical(symbolic_cholesky(grid5(5, 4)).pattern)

    def test_grid9(self):
        assert_identical(symbolic_cholesky(grid9(6, 6)).pattern)

    def test_band(self):
        assert_identical(band_lower_pattern(300, 9))

    def test_hb_sample(self, prepared_lap30):
        assert_identical(prepared_lap30.pattern)

    @given(st.integers(2, 16), st.integers(0, 24), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_generator_matrices(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        assert_identical(symbolic_cholesky(g).pattern)


class TestSearchsortedBranch:
    """Force the sparse lookup path that normally needs n > 4096."""

    @pytest.fixture(autouse=True)
    def _force_sparse_lookup(self, monkeypatch):
        monkeypatch.setattr(updates_mod, "_DENSE_LOOKUP_LIMIT", 0)

    def test_grid9(self):
        assert_identical(symbolic_cholesky(grid9(5, 7)).pattern)

    def test_band(self):
        assert_identical(band_lower_pattern(150, 6))

    @given(st.integers(2, 12), st.integers(0, 16), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        assert_identical(symbolic_cholesky(g).pattern)

    def test_non_closed_rejected_with_column(self):
        p = LowerPattern.from_entries(3, [1, 2], [0, 0])
        with pytest.raises(ValueError, match="column 0"):
            enumerate_updates(p)


class TestDenseBranchErrors:
    def test_non_closed_rejected_with_column(self):
        # Fill-closed except column 2: (3,2) and (4,2) present, (4,3) missing.
        p = LowerPattern.from_entries(5, [3, 4], [2, 2])
        with pytest.raises(ValueError, match="column 2"):
            enumerate_updates(p)


class TestBandGenerators:
    def test_band_pattern_is_factor_of_band_graph(self):
        f = symbolic_cholesky(band_graph(60, 5))  # natural order
        direct = band_lower_pattern(60, 5)
        np.testing.assert_array_equal(f.pattern.indptr, direct.indptr)
        np.testing.assert_array_equal(f.pattern.rowidx, direct.rowidx)

    def test_band_graph_degree(self):
        g = band_graph(20, 3)
        # Interior node 10 sees i +/- 1..3 on both sides.
        assert sorted(g.neighbors(10).tolist()) == [7, 8, 9, 11, 12, 13]
