"""Symbolic factorization structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import grid5, path_graph, spd_from_graph
from repro.symbolic import fill_in, symbolic_cholesky

from ..conftest import brute_force_fill, random_connected_graph


class TestSymbolicCholesky:
    def test_path_no_fill(self):
        g = path_graph(6)
        f = symbolic_cholesky(g)
        assert f.nnz == g.nnz_lower

    def test_matches_brute_force_grid(self):
        g = grid5(4, 4)
        f = symbolic_cholesky(g)
        expected = brute_force_fill(g.to_dense_bool())
        assert np.array_equal(f.pattern.to_dense_bool(), expected)

    def test_with_permutation(self):
        g = grid5(3, 3)
        perm = np.array([4, 0, 8, 2, 6, 1, 3, 5, 7])
        f = symbolic_cholesky(g, perm)
        expected = brute_force_fill(g.permute(perm).to_dense_bool())
        assert np.array_equal(f.pattern.to_dense_bool(), expected)

    def test_contains_original(self):
        g = grid5(4, 5)
        f = symbolic_cholesky(g)
        assert f.pattern.contains(g.lower())

    def test_matches_numeric_fill(self):
        """The symbolic structure must cover every numeric nonzero of L."""
        g = grid5(4, 4)
        a = spd_from_graph(g, seed=1).to_dense()
        L = np.linalg.cholesky(a)
        numeric_nonzero = np.abs(L) > 1e-14
        symbolic = symbolic_cholesky(g).pattern.to_dense_bool()
        assert (symbolic | ~numeric_nonzero).all()

    def test_column_counts(self):
        g = path_graph(4)
        f = symbolic_cholesky(g)
        assert f.column_counts().tolist() == [2, 2, 2, 1]

    @given(st.integers(2, 18), st.integers(0, 25), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force_random(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        f = symbolic_cholesky(g)
        expected = brute_force_fill(g.to_dense_bool())
        assert np.array_equal(f.pattern.to_dense_bool(), expected)

    @given(st.integers(2, 15), st.integers(0, 15), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_fill_closure_property(self, n, extra, seed):
        """struct(col k) rows > k must be a subset of struct(col parent(k))."""
        g = random_connected_graph(n, extra, seed)
        f = symbolic_cholesky(g)
        for k in range(n):
            p = int(f.parent[k])
            if p < 0:
                continue
            rows_k = set(f.pattern.col(k)[1:].tolist()) - {p}
            rows_p = set(f.pattern.col(p).tolist())
            assert rows_k <= rows_p


class TestFillIn:
    def test_zero_for_tree(self):
        assert fill_in(path_graph(8)) == 0

    def test_cycle_fill(self):
        from repro.sparse.pattern import SymmetricGraph

        # A 4-cycle ordered naturally fills one entry.
        g = SymmetricGraph.from_edges(4, [0, 1, 2, 0], [1, 2, 3, 3])
        assert fill_in(g) == 1

    def test_nonnegative(self):
        g = grid5(5, 5)
        assert fill_in(g) >= 0
