"""Elimination tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import grid5, path_graph, star_graph
from repro.symbolic import children_lists, etree, postorder, tree_levels

from ..conftest import brute_force_etree, random_connected_graph


class TestEtree:
    def test_path(self):
        parent = etree(path_graph(5))
        assert parent.tolist() == [1, 2, 3, 4, -1]

    def test_star_hub_last_in_natural(self):
        # Natural order on a star: node 0 (hub) eliminated first, so all
        # later nodes chain through the fill.
        parent = etree(star_graph(4))
        assert parent[0] == 1

    def test_empty(self):
        from repro.sparse.pattern import SymmetricGraph

        parent = etree(SymmetricGraph.empty(3))
        assert parent.tolist() == [-1, -1, -1]

    def test_matches_brute_force_grid(self):
        g = grid5(4, 4)
        expected = brute_force_etree(np.tril(g.to_dense_bool()))
        assert np.array_equal(etree(g), expected)

    @given(st.integers(2, 20), st.integers(0, 25), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force_random(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        expected = brute_force_etree(np.tril(g.to_dense_bool()))
        assert np.array_equal(etree(g), expected)

    @given(st.integers(2, 20), st.integers(0, 25), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_parent_always_greater(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        parent = etree(g)
        for j, p in enumerate(parent.tolist()):
            assert p == -1 or p > j


class TestPostorder:
    def test_children_before_parents(self):
        g = grid5(4, 3)
        parent = etree(g)
        post = postorder(parent)
        position = np.empty(len(post), dtype=int)
        position[post] = np.arange(len(post))
        for j, p in enumerate(parent.tolist()):
            if p >= 0:
                assert position[j] < position[p]

    def test_is_permutation(self):
        g = grid5(5, 4)
        post = postorder(etree(g))
        assert sorted(post.tolist()) == list(range(g.n))

    def test_forest(self):
        parent = np.array([-1, -1, 0, 0, 1], dtype=np.int64)
        post = postorder(parent)
        assert sorted(post.tolist()) == list(range(5))


class TestTreeHelpers:
    def test_children_lists(self):
        parent = np.array([2, 2, -1], dtype=np.int64)
        ch = children_lists(parent)
        assert ch == [[], [], [0, 1]]

    def test_tree_levels(self):
        parent = np.array([1, 2, -1], dtype=np.int64)
        assert tree_levels(parent).tolist() == [2, 1, 0]

    def test_levels_forest(self):
        parent = np.array([-1, 0, -1, 2], dtype=np.int64)
        assert tree_levels(parent).tolist() == [0, 1, 0, 1]
