"""Fast symbolic factorization and GNP column counts vs their references.

The fast :func:`symbolic_cholesky` pre-sizes its CSC buffers from
Gilbert–Ng–Peyton column counts and scatters entries in one row-subtree
walk; both it and :func:`column_counts` must be array-for-array identical
to the original merge/traversal implementations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import multiple_minimum_degree
from repro.sparse import band_graph, grid9
from repro.sparse import harwell_boeing as hb
from repro.sparse.pattern import SymmetricGraph
from repro.symbolic.colcount import (
    column_counts,
    column_counts_reference,
    gnp_column_counts,
)
from repro.symbolic.etree import etree
from repro.symbolic.fill import symbolic_cholesky, symbolic_cholesky_reference

from ..conftest import random_connected_graph


def assert_factor_identical(graph, perm=None):
    fast = symbolic_cholesky(graph, perm)
    ref = symbolic_cholesky_reference(graph, perm)
    assert fast.pattern == ref.pattern
    np.testing.assert_array_equal(fast.parent, ref.parent)
    np.testing.assert_array_equal(fast.perm, ref.perm)


class TestSymbolicIdentity:
    @pytest.mark.parametrize("name", hb.names())
    def test_paper_matrices(self, name):
        g = hb.load(name)
        assert_factor_identical(g, multiple_minimum_degree(g))

    def test_natural_order(self):
        g = grid9(12, 12)
        assert_factor_identical(g)

    def test_band(self):
        assert_factor_identical(band_graph(300, 17))

    def test_empty(self):
        assert_factor_identical(SymmetricGraph.empty(0))
        assert_factor_identical(SymmetricGraph.empty(7))

    @given(st.integers(1, 40), st.integers(0, 70), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        assert_factor_identical(g)
        assert_factor_identical(g, multiple_minimum_degree(g))


class TestGNPColumnCounts:
    @pytest.mark.parametrize("name", hb.names())
    def test_paper_matrices(self, name):
        g = hb.load(name)
        perm = multiple_minimum_degree(g)
        np.testing.assert_array_equal(
            column_counts(g, perm), column_counts_reference(g, perm)
        )

    def test_matches_factor_counts(self):
        g = grid9(10, 10)
        perm = multiple_minimum_degree(g)
        factor = symbolic_cholesky(g, perm)
        np.testing.assert_array_equal(
            column_counts(g, perm), np.diff(factor.pattern.indptr)
        )

    def test_gnp_on_permuted_graph(self):
        g = band_graph(120, 7)
        parent = etree(g)
        np.testing.assert_array_equal(
            gnp_column_counts(g, parent), column_counts_reference(g)
        )

    @given(st.integers(1, 40), st.integers(0, 70), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        np.testing.assert_array_equal(
            column_counts(g), column_counts_reference(g)
        )
