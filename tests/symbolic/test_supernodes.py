"""Fundamental supernodes."""

import numpy as np

from repro.sparse import grid5, path_graph
from repro.sparse.pattern import LowerPattern
from repro.symbolic import (
    fundamental_supernodes,
    supernode_of_column,
    symbolic_cholesky,
)


class TestSupernodes:
    def test_dense_is_one_supernode(self):
        p = LowerPattern.dense(5)
        assert fundamental_supernodes(p) == [(0, 4)]

    def test_diagonal_is_all_singletons(self):
        p = LowerPattern.from_entries(4, [], [])
        assert fundamental_supernodes(p) == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_partition_covers_all_columns(self):
        f = symbolic_cholesky(grid5(6, 6))
        sns = fundamental_supernodes(f.pattern)
        cols = [c for s, e in sns for c in range(s, e + 1)]
        assert cols == list(range(f.n))

    def test_supernode_struct_property(self):
        """Within a supernode, col c = {c} + col c+1 structurally."""
        f = symbolic_cholesky(grid5(5, 5))
        for s, e in fundamental_supernodes(f.pattern):
            for c in range(s, e):
                cur = f.pattern.col(c)
                nxt = f.pattern.col(c + 1)
                assert np.array_equal(cur[1:], nxt)

    def test_supernode_of_column(self):
        f = symbolic_cholesky(path_graph(5))
        sid = supernode_of_column(f.pattern)
        assert len(sid) == 5
        assert (np.diff(sid) >= 0).all()

    def test_trailing_dense_block_merges(self):
        """The last columns of a factor always form one supernode if the
        trailing block is dense."""
        f = symbolic_cholesky(grid5(6, 6))
        sns = fundamental_supernodes(f.pattern)
        s, e = sns[-1]
        assert e == f.n - 1
        # Trailing supernode of a 2-D grid factor is wider than one column.
        assert e - s >= 1

    def test_empty_pattern(self):
        p = LowerPattern.from_entries(0, [], [])
        assert fundamental_supernodes(p) == []
