"""The searchsorted fallback of the update enumeration must agree with
the dense-lookup path exactly."""

import numpy as np
import pytest

import repro.symbolic.updates as upd
from repro.sparse import grid5
from repro.symbolic import symbolic_cholesky

from ..conftest import random_connected_graph


def _with_limit(limit, pattern):
    old = upd._DENSE_LOOKUP_LIMIT
    upd._DENSE_LOOKUP_LIMIT = limit
    try:
        return upd.enumerate_updates(pattern)
    finally:
        upd._DENSE_LOOKUP_LIMIT = old


class TestLookupPaths:
    @pytest.mark.parametrize("builder", [
        lambda: symbolic_cholesky(grid5(6, 6)).pattern,
        lambda: symbolic_cholesky(random_connected_graph(40, 60, 3)).pattern,
        lambda: symbolic_cholesky(random_connected_graph(25, 5, 9)).pattern,
    ])
    def test_paths_identical(self, builder):
        pattern = builder()
        dense = _with_limit(10**9, pattern)
        sparse = _with_limit(0, pattern)
        assert np.array_equal(dense.target, sparse.target)
        assert np.array_equal(dense.source_i, sparse.source_i)
        assert np.array_equal(dense.source_j, sparse.source_j)
        assert np.array_equal(dense.source_col, sparse.source_col)

    def test_sparse_path_work_total(self, prepared_grid):
        sparse = _with_limit(0, prepared_grid.pattern)
        assert sparse.total_work() == prepared_grid.total_work

    def test_sparse_path_detects_unclosed_pattern(self):
        from repro.sparse.pattern import LowerPattern

        p = LowerPattern.from_entries(3, [1, 2], [0, 0])
        with pytest.raises(ValueError, match="not closed"):
            _with_limit(0, p)
