"""Edge cases through the whole pipeline."""

import numpy as np
import pytest

from repro.core import (
    block_mapping,
    prepare,
    validate_assignment,
    validate_partition,
    wrap_mapping,
)
from repro.sparse import SymmetricGraph, grid5, path_graph, star_graph


class TestTinyProblems:
    def test_single_node(self):
        prep = prepare(SymmetricGraph.empty(1), name="n1")
        r = block_mapping(prep, 4, grain=4)
        assert r.balance.total == 1  # one diagonal scale
        assert r.traffic.total == 0

    def test_two_nodes(self):
        g = path_graph(2)
        prep = prepare(g)
        for scheme in (block_mapping(prep, 2, grain=1), wrap_mapping(prep, 2)):
            assert scheme.balance.total == prep.total_work

    def test_diagonal_matrix(self):
        """No off-diagonal structure: every scheme is trivially balanced
        and communication-free."""
        prep = prepare(SymmetricGraph.empty(10))
        for p in (1, 3, 10, 20):
            b = block_mapping(prep, p, grain=4)
            assert b.traffic.total == 0
            w = wrap_mapping(prep, p)
            assert w.traffic.total == 0

    def test_star_graph(self):
        prep = prepare(star_graph(9))
        r = block_mapping(prep, 4, grain=2)
        validate_partition(r.partition)
        validate_assignment(r.assignment)

    def test_disconnected_components(self):
        g = SymmetricGraph.from_edges(8, [0, 1, 4, 5], [1, 2, 5, 6])
        prep = prepare(g)
        r = block_mapping(prep, 3, grain=2)
        assert r.balance.total == prep.total_work


class TestExtremeParameters:
    def test_more_procs_than_units(self, prepared_grid):
        r = block_mapping(prepared_grid, 1000, grain=10_000)
        assert r.balance.total == prepared_grid.total_work
        # Most processors idle; λ is huge but finite.
        assert r.balance.imbalance > 10

    def test_grain_larger_than_matrix(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=10**9)
        # Every dense block a single unit.
        from repro.core.blocks import BlockKind

        for c in r.partition.clusters:
            units = r.partition.units_of_cluster(c.index)
            if not c.is_column:
                tri_units = [
                    u for u in units if u.parent_kind is BlockKind.TRIANGLE
                ]
                assert len(tri_units) == 1

    def test_min_width_one_behaves(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4, min_width=1)
        validate_partition(r.partition)

    def test_huge_min_width_all_columns(self, prepared_grid):
        r = block_mapping(prepared_grid, 4, grain=4, min_width=10**6)
        assert all(c.is_column for c in r.partition.clusters)

    def test_wrap_procs_exceed_columns(self):
        prep = prepare(grid5(3, 3))
        r = wrap_mapping(prep, 100)
        assert r.balance.total == prep.total_work
        # Processors beyond n get zero work.
        per_proc_nonzero = int((np.asarray(
            [len(r.assignment.elements_of(p)) for p in range(100)]
        ) > 0).sum())
        assert per_proc_nonzero <= 9


class TestNumericEdgeCases:
    def test_prepare_on_permuted_input_consistent(self):
        """prepare() must produce the same factor size regardless of the
        input labelling (MMD is label-dependent only via tie-breaks)."""
        g = grid5(6, 6)
        prep1 = prepare(g)
        relabel = np.random.default_rng(0).permutation(g.n)
        prep2 = prepare(g.permute(relabel))
        # Different tie-breaking may shift fill slightly; sizes must be
        # within a few percent.
        assert abs(prep1.factor_nnz - prep2.factor_nnz) < 0.15 * prep1.factor_nnz

    def test_pipeline_deterministic_across_calls(self, prepared_lap30):
        a = block_mapping(prepared_lap30, 16, grain=25)
        b = block_mapping(prepared_lap30, 16, grain=25)
        assert a.traffic.per_processor.tolist() == b.traffic.per_processor.tolist()
