"""Smoke tests: every example must run end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "saving" in out
        assert "LAP30" in out

    def test_partition_gallery(self):
        out = _run("partition_gallery.py")
        assert "widest cluster" in out
        assert "dependency edges" in out

    def test_custom_matrix_demo_mode(self):
        out = _run("custom_matrix.py")
        assert "Mapping comparison" in out

    def test_tradeoff_sweep_small(self):
        out = _run("tradeoff_sweep.py", "DWT512", "8")
        assert "lowest traffic at g=" in out

    def test_machine_design_space(self):
        out = _run("machine_design_space.py", "DWT512")
        assert "winner" in out

    def test_distributed_solve(self):
        out = _run("distributed_solve.py", "2", timeout=480)
        assert "residual" in out
