"""Cross-validation between the analytical machine model and the real
message-passing executions."""

import numpy as np
import pytest

from repro.core import block_mapping, prepare
from repro.machine import data_traffic, edge_volumes
from repro.mpsim import distributed_block_cholesky
from repro.sparse import grid9, spd_from_graph


@pytest.fixture(scope="module")
def executed():
    g = grid9(7, 7)
    prep = prepare(g, name="grid9(7,7)")
    a = spd_from_graph(g, seed=14).permute(prep.perm)
    r = block_mapping(prep, 4, grain=8)
    L, stats = distributed_block_cholesky(
        a, r.partition, r.assignment, prep.updates, r.dependencies
    )
    return prep, r, stats


class TestModelVsExecution:
    def test_shipped_elements_bound_model_traffic(self, executed):
        """The executor ships whole units (one message per consumer), so
        the elements actually transferred are an upper bound on the
        model's distinct-fetch traffic."""
        prep, r, stats = executed
        proc_of_unit = r.assignment.proc_of_unit
        units = r.partition.units
        shipped = 0
        seen = set()
        for s, t in r.dependencies.edges.tolist():
            ps, pt = int(proc_of_unit[s]), int(proc_of_unit[t])
            if ps != pt and (s, pt) not in seen:
                seen.add((s, pt))
                shipped += units[s].nnz
        model = r.traffic.total
        assert shipped >= model

    def test_edge_volumes_bound_unit_sizes(self, executed):
        """Per-edge transferred volume from the model never exceeds the
        source unit's element count."""
        prep, r, _ = executed
        vols = edge_volumes(r.assignment, r.dependencies, prep.updates)
        units = r.partition.units
        for (s, _t), v in vols.items():
            assert 1 <= v <= units[s].nnz

    def test_real_bytes_scale_with_model_traffic(self):
        """Across grain sizes, real bytes shipped and model traffic must
        move in the same direction."""
        g = grid9(7, 7)
        prep = prepare(g, name="grid9(7,7)")
        a = spd_from_graph(g, seed=15).permute(prep.perm)
        stats_bytes = {}
        model = {}
        for grain in (2, 30):
            r = block_mapping(prep, 4, grain=grain)
            _, stats = distributed_block_cholesky(
                a, r.partition, r.assignment, prep.updates, r.dependencies
            )
            stats_bytes[grain] = sum(s.bytes_sent for s in stats)
            model[grain] = r.traffic.total
        assert (stats_bytes[30] < stats_bytes[2]) == (model[30] < model[2])

    def test_wrap_model_matches_column_algorithm_dataflow(self):
        """For the wrap mapping, the model's per-processor traffic totals
        must equal the distinct foreign column-elements each fan-out rank
        actually touches (fetch-once, element granularity)."""
        from repro.core import wrap_mapping

        g = grid9(6, 6)
        prep = prepare(g, name="grid9(6,6)")
        pattern = prep.pattern
        nprocs = 3
        r = wrap_mapping(prep, nprocs)
        t = data_traffic(r.assignment, prep.updates, include_scale=True)
        # Recompute by literal dataflow: processor p needs all elements
        # of foreign column k that update any of its columns, plus the
        # foreign diagonal used for scaling its columns' elements.
        cols = pattern.element_cols()
        needed = [set() for _ in range(nprocs)]
        for kcol in range(pattern.n):
            lo, hi = pattern.indptr[kcol], pattern.indptr[kcol + 1]
            rows = pattern.rowidx[lo + 1 : hi]
            owner_k = kcol % nprocs
            for pos_j, j in enumerate(rows.tolist()):
                p = int(j) % nprocs
                if p == owner_k:
                    continue
                # cmod(j, k) reads L[j:, k] = elements at pos >= pos_j.
                for e in range(lo + 1 + pos_j, hi):
                    needed[p].add(e)
        # Scale reads: element (i, j) owner reads diag (j, j).
        for e in range(pattern.nnz):
            j = int(cols[e])
            p = j % nprocs  # element owner = column owner under wrap
            d = int(pattern.indptr[j])
            if int(cols[d]) % nprocs != p:
                needed[p].add(d)
        expected = np.asarray([len(s) for s in needed])
        assert t.per_processor.tolist() == expected.tolist()
