"""End-to-end integration: structure -> ordering -> symbolic -> partition
-> schedule -> numeric execution on the message-passing substrate."""

import numpy as np
import pytest

from repro.core import block_mapping, prepare
from repro.mpsim import distributed_cholesky, distributed_solve_spd
from repro.numeric import SPDSolver, sparse_cholesky
from repro.ordering import multiple_minimum_degree
from repro.sparse import load, spd_from_graph
from repro.symbolic import symbolic_cholesky


class TestNumericalEndToEnd:
    def test_dwt512_full_solve(self):
        """The complete paper pipeline on a real test matrix, executed
        numerically and distributed."""
        g = load("DWT512")
        a = spd_from_graph(g, seed=42)
        solver = SPDSolver.factorize(a, ordering="mmd")
        b = np.ones(a.n)
        x = solver.solve(b)
        assert np.abs(a.matvec(x) - b).max() < 1e-8

    def test_distributed_matches_sequential_on_paper_matrix(self):
        g = load("DWT512")
        perm = multiple_minimum_degree(g)
        a = spd_from_graph(g, seed=1).permute(perm)
        sym = symbolic_cholesky(a.graph())
        Lref = sparse_cholesky(a, sym)
        proc_of_col = np.arange(a.n) % 4
        L, stats = distributed_cholesky(a, sym.pattern, proc_of_col, 4, timeout=120.0)
        assert np.allclose(L.values, Lref.values, atol=1e-10)
        assert sum(s.messages_sent for s in stats) > 0

    def test_block_schedule_executes_numerically(self):
        """Columns placed by the block scheduler's diagonal ownership run
        to the same factor as the sequential code."""
        g = load("DWT512")
        prep = prepare(g, name="DWT512")
        r = block_mapping(prep, 4, grain=25)
        a = spd_from_graph(g, seed=3).permute(prep.perm)
        pattern = prep.pattern
        proc_of_col = r.assignment.owner_of_element[pattern.indptr[:-1]]
        b = np.arange(a.n, dtype=float)
        x = distributed_solve_spd(a, b, pattern, proc_of_col, 4, timeout=120.0)
        assert np.abs(a.matvec(x) - b).max() < 1e-7

    def test_message_traffic_correlates_with_model(self):
        """More model traffic (wrap on more procs) must mean more real
        messages in the fan-out execution."""
        g = load("DWT512")
        perm = multiple_minimum_degree(g)
        a = spd_from_graph(g, seed=2).permute(perm)
        sym = symbolic_cholesky(a.graph())
        msgs = {}
        for p in (2, 8):
            _, stats = distributed_cholesky(
                a, sym.pattern, np.arange(a.n) % p, p, timeout=120.0
            )
            msgs[p] = sum(s.messages_sent for s in stats)
        assert msgs[8] > msgs[2]


class TestStructuralConsistency:
    @pytest.mark.parametrize("name", ["BUS1138", "LAP30"])
    def test_partition_covers_factor(self, name):
        prep = prepare(load(name), name=name)
        r = block_mapping(prep, 8, grain=4)
        r.partition.check_exact_cover()

    def test_deterministic_end_to_end(self):
        prep1 = prepare(load("LSHP1009"), name="LSHP1009")
        prep2 = prepare(load("LSHP1009"), name="LSHP1009")
        r1 = block_mapping(prep1, 16, grain=25)
        r2 = block_mapping(prep2, 16, grain=25)
        assert r1.traffic.total == r2.traffic.total
        assert r1.balance.imbalance == r2.balance.imbalance
