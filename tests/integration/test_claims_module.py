"""The programmatic claim checker must agree with the paper."""

import pytest

from repro.analysis import check_claims, render_claims


class TestClaims:
    def test_all_claims_hold_on_lap30(self):
        results = check_claims("LAP30")
        assert len(results) == 5
        for r in results:
            assert r.holds, f"{r.claim}: {r.evidence}"

    def test_c5_simulated_communication_bound(self):
        (c5,) = [r for r in check_claims("LAP30") if r.claim == "C5"]
        assert c5.holds, c5.evidence
        assert "links" in c5.evidence and "critical path" in c5.evidence

    def test_render(self):
        out = render_claims("LAP30")
        assert "HOLDS" in out
        assert "FAILS" not in out

    def test_cli_target(self, capsys):
        from repro.cli import main

        assert main(["claims"]) == 0
        assert "C3" in capsys.readouterr().out

    def test_claims_on_analogue_matrix(self):
        """The trade-off claims C1-C3 must also hold on a synthetic
        analogue (LSHP1009), not just the exact LAP30."""
        results = {r.claim: r for r in check_claims("LSHP1009")}
        for claim in ("C1", "C2", "C3"):
            assert results[claim].holds, results[claim].evidence
