"""Headline shape claims of the paper's evaluation (DESIGN.md C1-C4).

These are the qualitative results the reproduction must preserve; the
absolute numbers are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.core import block_mapping, wrap_mapping
from repro.analysis.experiments import prepared_matrix


@pytest.fixture(scope="module")
def lap30():
    return prepared_matrix("LAP30")


@pytest.fixture(scope="module")
def dwt512():
    return prepared_matrix("DWT512")


class TestC1CommunicationShape:
    def test_block_traffic_grows_with_procs(self, lap30):
        totals = [
            block_mapping(lap30, p, grain=4).traffic.total for p in (4, 16, 32)
        ]
        assert totals[0] < totals[1] < totals[2]

    def test_larger_grain_cuts_traffic(self, lap30):
        for p in (16, 32):
            t4 = block_mapping(lap30, p, grain=4).traffic.total
            t25 = block_mapping(lap30, p, grain=25).traffic.total
            # Paper: > 50% reduction on LAP30 at P in {16, 32}; require
            # a substantial cut.
            assert t25 < 0.7 * t4

    def test_grain_effect_on_dwt(self, dwt512):
        t4 = block_mapping(dwt512, 16, grain=4).traffic.total
        t25 = block_mapping(dwt512, 16, grain=25).traffic.total
        assert t25 < t4


class TestC2LoadBalanceShape:
    def test_imbalance_grows_with_grain(self, lap30):
        for p in (16, 32):
            l4 = block_mapping(lap30, p, grain=4).balance.imbalance
            l25 = block_mapping(lap30, p, grain=25).balance.imbalance
            assert l25 > l4

    def test_imbalance_grows_with_procs_at_high_grain(self, lap30):
        lams = [
            block_mapping(lap30, p, grain=25).balance.imbalance
            for p in (4, 16, 32)
        ]
        assert lams[0] < lams[2]


class TestC3SchemeComparison:
    def test_wrap_balances_better(self, lap30):
        for p in (16, 32):
            wrap_lam = wrap_mapping(lap30, p).balance.imbalance
            blk_lam = block_mapping(lap30, p, grain=25).balance.imbalance
            assert wrap_lam < blk_lam

    def test_block_communicates_less(self, lap30):
        for p in (16, 32):
            wrap_t = wrap_mapping(lap30, p).traffic.total
            blk_t = block_mapping(lap30, p, grain=25).traffic.total
            assert blk_t < wrap_t

    def test_block_saving_substantial_at_32(self, lap30):
        """Paper: 50-65% traffic saving at g=25, P=32 for mesh problems."""
        wrap_t = wrap_mapping(lap30, 32).traffic.total
        blk_t = block_mapping(lap30, 32, grain=25).traffic.total
        assert blk_t < 0.65 * wrap_t

    def test_wrap_lambda_small_everywhere(self, lap30, dwt512):
        for prep in (lap30, dwt512):
            for p in (4, 16, 32):
                assert wrap_mapping(prep, p).balance.imbalance < 0.6


class TestC4WidthSweep:
    def test_width_affects_tradeoff(self, lap30):
        """Traffic and λ move with the minimum cluster width; the width-8
        sweep must not collapse to the width-2 partitioning."""
        results = {
            w: block_mapping(lap30, 16, grain=4, min_width=w)
            for w in (2, 4, 8)
        }
        totals = {w: r.traffic.total for w, r in results.items()}
        assert len(set(totals.values())) > 1
        # Wider minimum width -> fewer multi-column clusters.
        n_multi = {
            w: sum(1 for c in r.partition.clusters if not c.is_column)
            for w, r in results.items()
        }
        assert n_multi[8] <= n_multi[4] <= n_multi[2]


class TestInvariantsAcrossMatrices:
    @pytest.mark.parametrize("name", ["BUS1138", "CANN1072", "DWT512", "LSHP1009"])
    def test_every_matrix_runs_both_schemes(self, name):
        prep = prepared_matrix(name)
        blk = block_mapping(prep, 16, grain=4)
        wrp = wrap_mapping(prep, 16)
        assert blk.balance.total == wrp.balance.total == prep.total_work
        assert blk.traffic.total > 0
        assert wrp.traffic.total > 0
