"""Numerical execution of the block schedule on the runtime."""

import numpy as np
import pytest

from repro.core import (
    SchedulerOptions,
    adaptive_block_mapping,
    block_mapping,
    prepare,
)
from repro.mpsim import distributed_block_cholesky
from repro.numeric import sparse_cholesky
from repro.sparse import grid9, load, spd_from_graph


@pytest.fixture(scope="module")
def system():
    g = grid9(7, 7)
    prep = prepare(g, name="grid9(7,7)")
    a = spd_from_graph(g, seed=9).permute(prep.perm)
    Lref = sparse_cholesky(a, prep.symbolic)
    return prep, a, Lref


class TestDistributedBlockCholesky:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    @pytest.mark.parametrize("grain", [4, 25])
    def test_matches_sequential(self, system, nprocs, grain):
        prep, a, Lref = system
        r = block_mapping(prep, nprocs, grain=grain)
        L, _ = distributed_block_cholesky(
            a, r.partition, r.assignment, prep.updates, r.dependencies
        )
        assert np.allclose(L.values, Lref.values, atol=1e-12)

    def test_adaptive_schedule_executes(self, system):
        prep, a, Lref = system
        r = adaptive_block_mapping(prep, 4, grain=4)
        L, _ = distributed_block_cholesky(
            a, r.partition, r.assignment, prep.updates, r.dependencies
        )
        assert np.allclose(L.values, Lref.values, atol=1e-12)

    def test_all_policies_execute(self, system):
        prep, a, Lref = system
        for policy in ("first", "least_loaded", "round_robin"):
            r = block_mapping(
                prep, 3, grain=8, options=SchedulerOptions(policy)
            )
            L, _ = distributed_block_cholesky(
                a, r.partition, r.assignment, prep.updates, r.dependencies
            )
            assert np.allclose(L.values, Lref.values, atol=1e-12)

    def test_coarse_grain_fewer_messages(self, system):
        """The paper's claim, observed in real messages: larger unit
        blocks mean fewer (larger) messages."""
        prep, a, _ = system
        msgs = {}
        for grain in (4, 25):
            r = block_mapping(prep, 4, grain=grain)
            _, stats = distributed_block_cholesky(
                a, r.partition, r.assignment, prep.updates, r.dependencies
            )
            msgs[grain] = sum(s.messages_sent for s in stats)
        assert msgs[25] < msgs[4]

    def test_message_count_matches_cross_processor_edges(self, system):
        """Exactly one message flows per (unit, consumer-processor) pair."""
        prep, a, _ = system
        r = block_mapping(prep, 3, grain=8)
        _, stats = distributed_block_cholesky(
            a, r.partition, r.assignment, prep.updates, r.dependencies
        )
        proc_of_unit = r.assignment.proc_of_unit
        expected = len(
            {
                (s, int(proc_of_unit[t]))
                for s, t in r.dependencies.edges.tolist()
                if proc_of_unit[s] != proc_of_unit[t]
            }
        )
        total = sum(s.messages_sent for s in stats)
        assert total == expected

    def test_requires_scale_edges(self, system):
        from repro.core import analyze_dependencies

        prep, a, _ = system
        r = block_mapping(prep, 2, grain=8)
        no_scale = analyze_dependencies(
            r.partition, prep.updates, include_scale=False
        )
        with pytest.raises(ValueError, match="scale"):
            distributed_block_cholesky(
                a, r.partition, r.assignment, prep.updates, no_scale
            )

    def test_mismatched_partition_rejected(self, system):
        prep, a, _ = system
        r1 = block_mapping(prep, 2, grain=8)
        r2 = block_mapping(prep, 2, grain=4)
        with pytest.raises(ValueError, match="partition"):
            distributed_block_cholesky(
                a, r1.partition, r2.assignment, prep.updates, r1.dependencies
            )

    def test_paper_matrix_end_to_end(self):
        """Full paper pipeline on DWT512, executed as a block program."""
        g = load("DWT512")
        prep = prepare(g, name="DWT512")
        a = spd_from_graph(g, seed=21).permute(prep.perm)
        Lref = sparse_cholesky(a, prep.symbolic)
        r = block_mapping(prep, 4, grain=25)
        L, _ = distributed_block_cholesky(
            a, r.partition, r.assignment, prep.updates, r.dependencies,
            timeout=180.0,
        )
        assert np.allclose(L.values, Lref.values, atol=1e-10)
