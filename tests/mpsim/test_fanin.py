"""Fan-in distributed Cholesky."""

import numpy as np
import pytest

from repro.mpsim import distributed_cholesky, distributed_cholesky_fanin
from repro.numeric import sparse_cholesky
from repro.ordering import multiple_minimum_degree
from repro.sparse import grid5, grid9, spd_from_graph
from repro.symbolic import symbolic_cholesky


@pytest.fixture(scope="module")
def system():
    g = grid9(6, 6)
    perm = multiple_minimum_degree(g)
    a = spd_from_graph(g, seed=5).permute(perm)
    sym = symbolic_cholesky(a.graph())
    return a, sym, sparse_cholesky(a, sym)


class TestFanIn:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
    def test_matches_sequential(self, system, nprocs):
        a, sym, Lref = system
        proc_of_col = np.arange(a.n) % nprocs
        L, _ = distributed_cholesky_fanin(a, sym.pattern, proc_of_col, nprocs)
        assert np.allclose(L.values, Lref.values, atol=1e-12)

    def test_random_mapping(self, system):
        a, sym, Lref = system
        rng = np.random.default_rng(7)
        proc_of_col = rng.integers(0, 3, size=a.n)
        L, _ = distributed_cholesky_fanin(a, sym.pattern, proc_of_col, 3)
        assert np.allclose(L.values, Lref.values, atol=1e-12)

    def test_fewer_messages_than_fanout(self, system):
        """The classic fan-in result: aggregation sends fewer messages."""
        a, sym, _ = system
        proc_of_col = np.arange(a.n) % 4
        _, s_in = distributed_cholesky_fanin(a, sym.pattern, proc_of_col, 4)
        _, s_out = distributed_cholesky(a, sym.pattern, proc_of_col, 4)
        msgs_in = sum(s.messages_sent for s in s_in)
        msgs_out = sum(s.messages_sent for s in s_out)
        assert msgs_in < msgs_out

    def test_single_proc_silent(self, system):
        a, sym, _ = system
        _, stats = distributed_cholesky_fanin(
            a, sym.pattern, np.zeros(a.n, dtype=int), 1
        )
        assert stats[0].messages_sent == 0

    def test_path_matrix(self):
        """A path (pure sequential chain) still terminates and is exact."""
        g = grid5(6, 1)
        a = spd_from_graph(g, seed=3)
        sym = symbolic_cholesky(a.graph())
        Lref = sparse_cholesky(a, sym)
        L, _ = distributed_cholesky_fanin(
            a, sym.pattern, np.arange(a.n) % 3, 3
        )
        assert np.allclose(L.values, Lref.values)

    def test_validates_mapping(self, system):
        a, sym, _ = system
        with pytest.raises(ValueError):
            distributed_cholesky_fanin(a, sym.pattern, np.zeros(2, dtype=int), 2)
        with pytest.raises(ValueError):
            distributed_cholesky_fanin(
                a, sym.pattern, np.full(a.n, -1, dtype=int), 2
            )

    def test_indefinite_detected(self):
        from repro.mpsim import MPSimError
        from repro.sparse import SymmetricCSC

        a = SymmetricCSC.from_entries(2, [0, 1, 1], [0, 0, 1], [1.0, 2.0, 1.0])
        sym = symbolic_cholesky(a.graph())
        with pytest.raises(MPSimError, match="pivot"):
            distributed_cholesky_fanin(
                a, sym.pattern, np.zeros(2, dtype=int), 1, timeout=5.0
            )
