"""Fault injection: dropped messages must surface as timeouts, and the
counters must account for every loss."""

import pytest

from repro.mpsim import CommWorld, MPSimError, run_parallel


class TestDropFilter:
    def test_dropped_message_times_out(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("lost", 1, tag=7)
                return "sent"
            return comm.recv(0, tag=7)

        with pytest.raises(MPSimError, match="timed out|rank.1|did not finish"):
            run_parallel(
                fn, 2, timeout=0.5,
                drop_filter=lambda src, dst, tag: tag == 7,
            )

    def test_selective_drop(self):
        """Only the filtered tag is lost; other traffic flows."""

        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            return comm.recv(0, tag=2)

        out = run_parallel(
            fn, 2, timeout=2.0, drop_filter=lambda s, d, tag: tag == 1
        )
        assert out[1] == "b"

    def test_drop_counter(self):
        world = CommWorld(2, default_timeout=1.0,
                          drop_filter=lambda s, d, t: True)
        c0 = world.comm(0)
        c0.send("x", 1)
        c0.send("y", 1)
        assert world.messages_dropped == 2
        # The sender cannot tell: sends are still counted.
        assert world.stats[0].messages_sent == 2

    def test_no_filter_no_drops(self):
        world = CommWorld(2, default_timeout=1.0)
        world.comm(0).send("x", 1)
        assert world.messages_dropped == 0

    def test_protocol_survives_lossless_filter(self):
        """A drop filter that never fires must not perturb results."""
        from repro.mpsim import distributed_cholesky  # noqa: F401 - import check

        def fn(comm):
            return comm.allreduce(comm.rank + 1)

        out = run_parallel(
            fn, 3, timeout=5.0, drop_filter=lambda s, d, t: False
        )
        assert out == [6, 6, 6]
