"""Nonblocking operations and probes."""

import time

import pytest

from repro.mpsim import ANY_SOURCE, ANY_TAG, MPSimError, run_parallel


class TestIsendIrecv:
    def test_isend_completes_immediately(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend("x", 1)
                done, _ = req.test()
                assert done
                return "sent"
            return comm.recv(0)

        assert run_parallel(fn, 2) == ["sent", "x"]

    def test_irecv_wait(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(41, 1)
                return None
            req = comm.irecv(0)
            return req.wait() + 1

        assert run_parallel(fn, 2)[1] == 42

    def test_irecv_test_polls(self):
        def fn(comm):
            if comm.rank == 0:
                time.sleep(0.05)
                comm.send("late", 1)
                return None
            req = comm.irecv(0)
            done, _ = req.test()
            polled_empty = not done
            while True:
                done, value = req.test()
                if done:
                    return polled_empty, value
                time.sleep(0.005)

        out = run_parallel(fn, 2)
        assert out[1] == (True, "late")

    def test_wait_idempotent(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(7, 1)
                return None
            req = comm.irecv(0)
            first = req.wait()
            second = req.wait()  # must return the cached result
            return first, second

        assert run_parallel(fn, 2)[1] == (7, 7)


class TestProbe:
    def test_probe_reports_without_consuming(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("payload", 1, tag=9)
                return None
            info = comm.probe(ANY_SOURCE, ANY_TAG)
            value = comm.recv(info["source"], info["tag"])
            return info, value

        info, value = run_parallel(fn, 2)[1]
        assert info == {"source": 0, "tag": 9}
        assert value == "payload"

    def test_iprobe_none_when_empty(self):
        def fn(comm):
            return comm.iprobe()

        assert run_parallel(fn, 1) == [None]

    def test_iprobe_hit(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=3)
                return None
            while comm.iprobe(tag=3) is None:
                time.sleep(0.001)
            return comm.iprobe(tag=3)

        assert run_parallel(fn, 2)[1] == {"source": 0, "tag": 3}

    def test_probe_timeout(self):
        def fn(comm):
            comm.probe(0, 5)

        with pytest.raises(MPSimError):
            run_parallel(fn, 1, timeout=0.2)
