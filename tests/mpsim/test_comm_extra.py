"""Additional communicator behaviours."""

import numpy as np
import pytest

from repro.mpsim import CommWorld, MPSimError, run_parallel


class TestSingleRankCollectives:
    def test_bcast_self(self):
        assert run_parallel(lambda c: c.bcast("v", root=0), 1) == ["v"]

    def test_gather_self(self):
        assert run_parallel(lambda c: c.gather(5, root=0), 1) == [[5]]

    def test_scatter_self(self):
        assert run_parallel(lambda c: c.scatter([9], root=0), 1) == [9]

    def test_allreduce_self(self):
        assert run_parallel(lambda c: c.allreduce(3), 1) == [3]

    def test_barrier_self(self):
        assert run_parallel(lambda c: (c.barrier(), c.rank)[1], 1) == [0]


class TestByteAccounting:
    def test_bytes_grow_with_payload(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), 1)
                small = comm.stats.bytes_sent
                comm.send(np.zeros(10_000), 1)
                return comm.stats.bytes_sent - small
            comm.recv(0)
            comm.recv(0)
            return None

        delta = run_parallel(fn, 2)[0]
        assert delta > 10_000 * 8 * 0.9  # roughly the array size

    def test_recv_counter(self):
        def fn(comm):
            if comm.rank == 0:
                for _ in range(5):
                    comm.send("m", 1)
                return None
            for _ in range(5):
                comm.recv(0)
            return comm.stats.messages_received

        assert run_parallel(fn, 2)[1] == 5


class TestCollectiveSemantics:
    def test_reduce_order_deterministic(self):
        """Non-commutative op: reduction must fold in rank order."""

        def fn(comm):
            return comm.reduce(str(comm.rank), op=lambda a, b: a + b, root=0)

        assert run_parallel(fn, 4)[0] == "0123"

    def test_gather_to_nonzero_root(self):
        def fn(comm):
            return comm.gather(comm.rank, root=2)

        out = run_parallel(fn, 3)
        assert out[2] == [0, 1, 2]
        assert out[0] is None

    def test_repeated_barriers(self):
        def fn(comm):
            for _ in range(10):
                comm.barrier()
            return comm.rank

        assert run_parallel(fn, 4) == [0, 1, 2, 3]

    def test_alternating_collectives(self):
        def fn(comm):
            total = comm.allreduce(comm.rank)
            comm.barrier()
            parts = comm.allgather(total * comm.rank)
            return parts

        out = run_parallel(fn, 3)
        assert out[0] == [0, 3, 6]


class TestMessageOrdering:
    def test_fifo_per_sender_and_tag(self):
        def fn(comm):
            if comm.rank == 0:
                for k in range(20):
                    comm.send(k, 1, tag=5)
                return None
            return [comm.recv(0, tag=5) for _ in range(20)]

        assert run_parallel(fn, 2)[1] == list(range(20))

    def test_interleaved_sources(self):
        def fn(comm):
            if comm.rank == 2:
                got = {0: [], 1: []}
                for _ in range(10):
                    status = {}
                    v = comm.recv(tag=1, status=status)
                    got[status["source"]].append(v)
                return got
            for k in range(5):
                comm.send((comm.rank, k), 2, tag=1)
            return None

        got = run_parallel(fn, 3)[2]
        assert [v for _, v in got[0]] == list(range(5))
        assert [v for _, v in got[1]] == list(range(5))
