"""Error handling in the distributed factorizations."""

import numpy as np
import pytest

from repro.mpsim import MPSimError, distributed_cholesky
from repro.sparse import SymmetricCSC, grid5, spd_from_graph
from repro.symbolic import symbolic_cholesky


class TestFanOutErrors:
    def test_indefinite_detected(self):
        a = SymmetricCSC.from_entries(2, [0, 1, 1], [0, 0, 1], [1.0, 2.0, 1.0])
        sym = symbolic_cholesky(a.graph())
        with pytest.raises(MPSimError, match="pivot"):
            distributed_cholesky(
                a, sym.pattern, np.zeros(2, dtype=int), 1, timeout=5.0
            )

    def test_indefinite_detected_multirank(self):
        """A non-positive pivot on one rank fails the whole run (and does
        not deadlock the others)."""
        a = SymmetricCSC.from_entries(
            3, [0, 1, 1, 2], [0, 0, 1, 1], [1.0, 2.0, 1.0, 0.3]
        )
        sym = symbolic_cholesky(a.graph())
        with pytest.raises(MPSimError):
            distributed_cholesky(
                a, sym.pattern, np.arange(3) % 2, 2, timeout=5.0
            )

    def test_pattern_mismatch_detected(self):
        a = spd_from_graph(grid5(3, 3), seed=1)
        sym = symbolic_cholesky(spd_from_graph(grid5(2, 2), seed=1).graph())
        with pytest.raises((ValueError, MPSimError)):
            distributed_cholesky(
                a, sym.pattern, np.zeros(a.n, dtype=int), 1, timeout=5.0
            )
