"""Distributed triangular solves under element ownership."""

import numpy as np
import pytest

from repro.core import block_mapping, prepare
from repro.mpsim import (
    distributed_block_backward_solve,
    distributed_block_cholesky,
    distributed_block_forward_solve,
)
from repro.numeric import solve_lower, solve_lower_transpose, sparse_cholesky
from repro.sparse import grid9, spd_from_graph


@pytest.fixture(scope="module")
def factored():
    g = grid9(6, 6)
    prep = prepare(g, name="grid9(6,6)")
    a = spd_from_graph(g, seed=12).permute(prep.perm)
    L = sparse_cholesky(a, prep.symbolic)
    r = block_mapping(prep, 4, grain=8)
    return prep, a, L, r


class TestForward:
    def test_matches_sequential_block_owner(self, factored):
        prep, a, L, r = factored
        b = np.arange(L.n, dtype=float) + 1.0
        x = distributed_block_forward_solve(
            L, b, r.assignment.owner_of_element, 4
        )
        assert np.allclose(x, solve_lower(L, b), atol=1e-12)

    def test_random_owner(self, factored):
        prep, a, L, r = factored
        rng = np.random.default_rng(1)
        owner = rng.integers(0, 3, size=L.pattern.nnz)
        b = rng.random(L.n)
        x = distributed_block_forward_solve(L, b, owner, 3)
        assert np.allclose(x, solve_lower(L, b), atol=1e-12)

    def test_single_proc(self, factored):
        prep, a, L, r = factored
        b = np.ones(L.n)
        x = distributed_block_forward_solve(
            L, b, np.zeros(L.pattern.nnz, dtype=int), 1
        )
        assert np.allclose(x, solve_lower(L, b))

    def test_owner_length_checked(self, factored):
        prep, a, L, r = factored
        with pytest.raises(ValueError):
            distributed_block_forward_solve(L, np.ones(L.n), np.zeros(3), 2)


class TestBackward:
    def test_matches_sequential_block_owner(self, factored):
        prep, a, L, r = factored
        b = np.cos(np.arange(L.n, dtype=float))
        x = distributed_block_backward_solve(
            L, b, r.assignment.owner_of_element, 4
        )
        assert np.allclose(x, solve_lower_transpose(L, b), atol=1e-11)

    def test_random_owner(self, factored):
        prep, a, L, r = factored
        rng = np.random.default_rng(2)
        owner = rng.integers(0, 5, size=L.pattern.nnz)
        b = rng.random(L.n)
        x = distributed_block_backward_solve(L, b, owner, 5)
        assert np.allclose(x, solve_lower_transpose(L, b), atol=1e-11)

    def test_owner_length_checked(self, factored):
        prep, a, L, r = factored
        with pytest.raises(ValueError):
            distributed_block_backward_solve(L, np.ones(L.n), np.zeros(3), 2)


class TestFullDistributedBlockSolve:
    def test_factor_then_solve_end_to_end(self, factored):
        """The complete distributed pipeline under the block schedule:
        factorization AND both solves executed element-owner-computes."""
        prep, a, Lref, r = factored
        owner = r.assignment.owner_of_element
        L, _ = distributed_block_cholesky(
            a, r.partition, r.assignment, prep.updates, r.dependencies
        )
        b = np.ones(a.n)
        u = distributed_block_forward_solve(L, b, owner, 4)
        x = distributed_block_backward_solve(L, u, owner, 4)
        assert np.abs(a.matvec(x) - b).max() < 1e-9
