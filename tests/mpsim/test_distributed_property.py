"""Property-based tests of the distributed algorithms on small random
systems: every algorithm must agree with the sequential factorization
for arbitrary structures, values and ownership maps."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpsim import (
    distributed_block_cholesky,
    distributed_cholesky,
    distributed_cholesky_fanin,
)
from repro.core import block_mapping, prepare
from repro.numeric import sparse_cholesky
from repro.ordering import multiple_minimum_degree
from repro.sparse import spd_from_graph
from repro.symbolic import symbolic_cholesky

from ..conftest import random_connected_graph

_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestFanOutProperty:
    @given(st.integers(4, 12), st.integers(0, 10), st.integers(0, 2**31 - 1),
           st.integers(1, 3))
    @_settings
    def test_any_structure_any_mapping(self, n, extra, seed, nprocs):
        g = random_connected_graph(n, extra, seed)
        perm = multiple_minimum_degree(g)
        a = spd_from_graph(g, seed=seed).permute(perm)
        sym = symbolic_cholesky(a.graph())
        Lref = sparse_cholesky(a, sym)
        rng = np.random.default_rng(seed)
        proc_of_col = rng.integers(0, nprocs, size=n)
        L, _ = distributed_cholesky(a, sym.pattern, proc_of_col, nprocs,
                                    timeout=30.0)
        assert np.allclose(L.values, Lref.values, atol=1e-10)


class TestFanInProperty:
    @given(st.integers(4, 12), st.integers(0, 10), st.integers(0, 2**31 - 1),
           st.integers(1, 3))
    @_settings
    def test_any_structure_any_mapping(self, n, extra, seed, nprocs):
        g = random_connected_graph(n, extra, seed)
        perm = multiple_minimum_degree(g)
        a = spd_from_graph(g, seed=seed).permute(perm)
        sym = symbolic_cholesky(a.graph())
        Lref = sparse_cholesky(a, sym)
        rng = np.random.default_rng(seed + 1)
        proc_of_col = rng.integers(0, nprocs, size=n)
        L, _ = distributed_cholesky_fanin(a, sym.pattern, proc_of_col, nprocs,
                                          timeout=30.0)
        assert np.allclose(L.values, Lref.values, atol=1e-10)


class TestBlockProperty:
    @given(st.integers(5, 12), st.integers(0, 12), st.integers(0, 2**31 - 1),
           st.integers(1, 3), st.integers(1, 6))
    @_settings
    def test_any_partition_executes_exactly(self, n, extra, seed, nprocs, grain):
        g = random_connected_graph(n, extra, seed)
        prep = prepare(g, name="prop")
        a = spd_from_graph(g, seed=seed).permute(prep.perm)
        Lref = sparse_cholesky(a, prep.symbolic)
        r = block_mapping(prep, nprocs, grain=grain, min_width=2)
        L, _ = distributed_block_cholesky(
            a, r.partition, r.assignment, prep.updates, r.dependencies,
            timeout=30.0,
        )
        assert np.allclose(L.values, Lref.values, atol=1e-10)
