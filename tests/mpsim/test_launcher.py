"""SPMD launcher."""

import pytest

from repro.mpsim import MPSimError, run_parallel


class TestRunParallel:
    def test_results_in_rank_order(self):
        assert run_parallel(lambda c: c.rank * 10, 4) == [0, 10, 20, 30]

    def test_args_forwarded(self):
        def fn(comm, a, b=0):
            return a + b + comm.rank

        assert run_parallel(fn, 2, 5, b=1) == [6, 7]

    def test_exception_propagates_with_rank(self):
        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            return comm.rank

        with pytest.raises(MPSimError, match="rank 1"):
            run_parallel(fn, 3)

    def test_nprocs_validated(self):
        with pytest.raises(ValueError):
            run_parallel(lambda c: None, 0)

    def test_single_rank(self):
        assert run_parallel(lambda c: c.size, 1) == [1]
