"""Simulated message-passing communicator."""

import numpy as np
import pytest

from repro.mpsim import ANY_SOURCE, ANY_TAG, CommWorld, MPSimError, run_parallel


class TestPointToPoint:
    def test_ping_pong(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("ping", 1)
                return comm.recv(1)
            msg = comm.recv(0)
            comm.send(msg + "-pong", 0)
            return msg

        out = run_parallel(fn, 2)
        assert out == ["ping-pong", "ping"]

    def test_tag_matching_out_of_order(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            second = comm.recv(0, tag=2)  # delivered before tag-1 message
            first = comm.recv(0, tag=1)
            return (first, second)

        out = run_parallel(fn, 2)
        assert out[1] == ("a", "b")

    def test_any_source(self):
        def fn(comm):
            if comm.rank == 0:
                got = set()
                for _ in range(2):
                    status = {}
                    comm.recv(ANY_SOURCE, ANY_TAG, status)
                    got.add(status["source"])
                return got
            comm.send(comm.rank, 0)
            return None

        assert run_parallel(fn, 3)[0] == {1, 2}

    def test_numpy_payload(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(100), 1)
                return None
            return comm.recv(0).sum()

        assert run_parallel(fn, 2)[1] == 4950

    def test_payload_isolated(self):
        """Mutation after send must not affect the receiver (pickle copy)."""

        def fn(comm):
            if comm.rank == 0:
                a = np.zeros(4)
                comm.send(a, 1)
                a[:] = 99.0
                return None
            return comm.recv(0).tolist()

        assert run_parallel(fn, 2)[1] == [0.0, 0.0, 0.0, 0.0]

    def test_invalid_dest(self):
        def fn(comm):
            comm.send("x", 5)

        with pytest.raises(MPSimError):
            run_parallel(fn, 2)

    def test_negative_tag_rejected_on_send(self):
        def fn(comm):
            comm.send("x", 0, tag=-1)

        with pytest.raises(MPSimError):
            run_parallel(fn, 1)

    def test_recv_timeout_deadlock(self):
        def fn(comm):
            comm.recv(0)  # nobody ever sends

        with pytest.raises(MPSimError):
            run_parallel(fn, 1, timeout=0.2)

    def test_sendrecv(self):
        def fn(comm):
            other = 1 - comm.rank
            return comm.sendrecv(comm.rank, other, other)

        assert run_parallel(fn, 2) == [1, 0]

    def test_stats_counted(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("hello", 1)
            else:
                comm.recv(0)
            return (comm.stats.messages_sent, comm.stats.messages_received)

        out = run_parallel(fn, 2)
        assert out[0][0] == 1 and out[1][1] == 1


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            data = {"x": 1} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        assert run_parallel(fn, 4) == [{"x": 1}] * 4

    def test_gather(self):
        def fn(comm):
            return comm.gather(comm.rank ** 2, root=0)

        out = run_parallel(fn, 4)
        assert out[0] == [0, 1, 4, 9]
        assert out[1] is None

    def test_scatter(self):
        def fn(comm):
            data = [10, 20, 30] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        assert run_parallel(fn, 3) == [10, 20, 30]

    def test_scatter_requires_size_match(self):
        def fn(comm):
            data = [1] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        with pytest.raises(MPSimError):
            run_parallel(fn, 2, timeout=1.0)

    def test_allgather(self):
        def fn(comm):
            return comm.allgather(comm.rank)

        assert run_parallel(fn, 3) == [[0, 1, 2]] * 3

    def test_reduce_sum(self):
        def fn(comm):
            return comm.reduce(comm.rank + 1, root=0)

        assert run_parallel(fn, 4)[0] == 10

    def test_reduce_custom_op(self):
        def fn(comm):
            return comm.reduce(comm.rank + 1, op=lambda a, b: a * b, root=0)

        assert run_parallel(fn, 4)[0] == 24

    def test_allreduce(self):
        def fn(comm):
            return comm.allreduce(comm.rank)

        assert run_parallel(fn, 4) == [6, 6, 6, 6]

    def test_barrier(self):
        def fn(comm):
            comm.barrier()
            return comm.rank

        assert run_parallel(fn, 3) == [0, 1, 2]

    def test_nonroot_bcast_root(self):
        def fn(comm):
            data = "z" if comm.rank == 2 else None
            return comm.bcast(data, root=2)

        assert run_parallel(fn, 3) == ["z"] * 3


class TestCommWorld:
    def test_rank_bounds(self):
        w = CommWorld(2)
        with pytest.raises(ValueError):
            w.comm(2)

    def test_size_validated(self):
        with pytest.raises(ValueError):
            CommWorld(0)
