"""Distributed fan-out Cholesky and triangular solves."""

import numpy as np
import pytest

from repro.core import block_mapping, prepare
from repro.mpsim import (
    distributed_backward_solve,
    distributed_cholesky,
    distributed_forward_solve,
    distributed_solve_spd,
)
from repro.numeric import solve_lower, solve_lower_transpose, sparse_cholesky
from repro.ordering import multiple_minimum_degree
from repro.sparse import grid5, grid9, spd_from_graph
from repro.symbolic import symbolic_cholesky


@pytest.fixture(scope="module")
def system():
    """Permuted SPD system with its symbolic factor and reference L."""
    g = grid9(6, 6)
    perm = multiple_minimum_degree(g)
    a = spd_from_graph(g, seed=8).permute(perm)
    sym = symbolic_cholesky(a.graph())
    Lref = sparse_cholesky(a, sym)
    return a, sym, Lref


class TestDistributedCholesky:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 7])
    def test_wrap_mapping_matches_sequential(self, system, nprocs):
        a, sym, Lref = system
        proc_of_col = np.arange(a.n) % nprocs
        L, _ = distributed_cholesky(a, sym.pattern, proc_of_col, nprocs)
        assert np.allclose(L.values, Lref.values, atol=1e-12)

    def test_block_derived_column_mapping(self, system):
        """Columns mapped by the block scheduler's diagonal owners."""
        a, sym, Lref = system
        prep = prepare(a.graph(), ordering="natural")
        r = block_mapping(prep, 4, grain=4, min_width=2)
        diag_eids = sym.pattern.indptr[:-1]
        proc_of_col = r.assignment.owner_of_element[diag_eids]
        L, _ = distributed_cholesky(a, sym.pattern, proc_of_col, 4)
        assert np.allclose(L.values, Lref.values, atol=1e-12)

    def test_random_column_mapping(self, system):
        a, sym, Lref = system
        rng = np.random.default_rng(4)
        proc_of_col = rng.integers(0, 3, size=a.n)
        L, _ = distributed_cholesky(a, sym.pattern, proc_of_col, 3)
        assert np.allclose(L.values, Lref.values, atol=1e-12)

    def test_stats_returned(self, system):
        a, sym, _ = system
        proc_of_col = np.arange(a.n) % 2
        _, stats = distributed_cholesky(a, sym.pattern, proc_of_col, 2)
        assert len(stats) == 2
        assert all(s.messages_sent >= 0 for s in stats)
        # With 2 ranks there is real column exchange.
        assert sum(s.messages_sent for s in stats) > 0

    def test_single_proc_no_column_messages(self, system):
        a, sym, _ = system
        _, stats = distributed_cholesky(a, sym.pattern, np.zeros(a.n, dtype=int), 1)
        # Only the final gather (a self-gather has no sends).
        assert stats[0].messages_sent == 0

    def test_validates_mapping(self, system):
        a, sym, _ = system
        with pytest.raises(ValueError):
            distributed_cholesky(a, sym.pattern, np.zeros(3, dtype=int), 2)
        with pytest.raises(ValueError):
            distributed_cholesky(a, sym.pattern, np.full(a.n, 5, dtype=int), 2)


class TestDistributedSolves:
    def test_forward(self, system):
        _, _, Lref = system
        b = np.arange(Lref.n, dtype=float) + 1.0
        proc_of_col = np.arange(Lref.n) % 3
        x = distributed_forward_solve(Lref, b, proc_of_col, 3)
        assert np.allclose(x, solve_lower(Lref, b), atol=1e-12)

    def test_backward(self, system):
        _, _, Lref = system
        b = np.sin(np.arange(Lref.n, dtype=float))
        proc_of_col = np.arange(Lref.n) % 3
        x = distributed_backward_solve(Lref, b, proc_of_col, 3)
        assert np.allclose(x, solve_lower_transpose(Lref, b), atol=1e-10)

    @pytest.mark.parametrize("nprocs", [1, 2, 5])
    def test_full_solve(self, system, nprocs):
        a, sym, _ = system
        b = np.ones(a.n)
        proc_of_col = np.arange(a.n) % nprocs
        x = distributed_solve_spd(a, b, sym.pattern, proc_of_col, nprocs)
        assert np.allclose(a.to_dense() @ x, b, atol=1e-8)

    def test_small_path_system(self):
        g = grid5(4, 1)  # a path: strictly sequential dependencies
        a = spd_from_graph(g, seed=1)
        sym = symbolic_cholesky(a.graph())
        b = np.ones(a.n)
        x = distributed_solve_spd(a, b, sym.pattern, np.arange(a.n) % 2, 2)
        assert np.allclose(a.to_dense() @ x, b, atol=1e-10)
