"""Figure 1 rendering and the quantitative comparison module."""

import pytest

from repro.analysis import comparison_rows, figure1_ascii, render_comparison


class TestFigure1:
    def test_marks_present(self):
        out = figure1_ascii()
        assert out.count("T") >= 1
        assert out.count("S") >= 2
        assert "d" in out

    def test_custom_indices(self):
        out = figure1_ascii(n=6, i=5, j=3, k=1)
        assert "L[5,3] -= L[5,1] * L[3,1]" in out

    def test_invalid_indices_rejected(self):
        with pytest.raises(ValueError):
            figure1_ascii(n=5, i=2, j=3, k=1)  # i < j

    def test_cli(self, capsys):
        from repro.cli import main

        assert main(["figure1"]) == 0
        assert "inter-element dependencies" in capsys.readouterr().out


class TestComparison:
    def test_covers_many_cells(self):
        rows = comparison_rows()
        assert len(rows) >= 70
        assert {r["table"] for r in rows} == {2, 3, 5}

    def test_ratios_positive(self):
        for r in comparison_rows():
            if r["ratio"] is not None:
                assert r["ratio"] > 0

    def test_traffic_ratios_tight(self):
        """The reproduction's headline: traffic cells land near the
        paper's (median within 25% of 1.0)."""
        import statistics

        ratios = [
            r["ratio"]
            for r in comparison_rows()
            if "traffic" in r["quantity"] and r["ratio"] is not None
        ]
        assert 0.75 <= statistics.median(ratios) <= 1.25

    def test_render(self):
        out = render_comparison()
        assert "median measured/paper ratio" in out
