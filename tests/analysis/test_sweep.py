"""Parameter sweep harness."""

import csv
import io

import pytest

from repro.analysis import SweepRecord, records_to_csv, sweep


@pytest.fixture(scope="module")
def records(prepared_grid):
    return sweep(
        prepared_grid,
        schemes=("block", "block-adaptive", "wrap"),
        procs=(2, 4),
        grains=(4,),
        min_widths=(2,),
    )


class TestSweep:
    def test_record_count(self, records):
        # per proc: block(1 grain x 1 width) + adaptive(1x1) + wrap = 3.
        assert len(records) == 2 * 3

    def test_schemes_present(self, records):
        assert {r.scheme for r in records} == {"block", "block-adaptive", "wrap"}

    def test_wrap_has_no_grain(self, records):
        for r in records:
            if r.scheme == "wrap":
                assert r.grain is None and r.units is None
            else:
                assert r.grain == 4 and r.units is not None

    def test_unknown_scheme_rejected(self, prepared_grid):
        with pytest.raises(ValueError, match="unknown scheme"):
            sweep(prepared_grid, schemes=("cyclic",))

    def test_imbalance_nonnegative(self, records):
        assert all(r.imbalance >= 0 for r in records)


class TestCSV:
    def test_header_and_rows(self, records):
        text = records_to_csv(records)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == SweepRecord.fields()
        assert len(rows) == len(records) + 1

    def test_write_to_path(self, records, tmp_path):
        p = tmp_path / "sweep.csv"
        records_to_csv(records, p)
        assert p.read_text().startswith("matrix,scheme")

    def test_write_to_handle(self, records):
        buf = io.StringIO()
        records_to_csv(records, buf)
        assert "wrap" in buf.getvalue()
