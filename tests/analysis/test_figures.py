"""Figure regenerations."""

import pytest

from repro.analysis import figure2_ascii, figure3_ascii, figure4_report


class TestFigure2:
    def test_contains_fill_marks(self):
        out = figure2_ascii(4, 4)
        assert "#" in out
        assert "n=16" in out

    def test_lower_triangle_shape(self):
        out = figure2_ascii(3, 3)
        rows = [l for l in out.splitlines() if l and set(l) <= set("#+.")]
        assert len(rows) == 9
        assert [len(r) for r in rows] == list(range(1, 10))


class TestFigure3:
    def test_contains_units(self):
        out = figure3_ascii()
        assert "triangle" in out
        assert "rectangle" in out

    def test_validates_depth(self):
        with pytest.raises(ValueError):
            figure3_ascii(width=9, depth=9)


class TestFigure4:
    def test_reports_all_categories(self):
        out = figure4_report("DWT512", grain=8)
        for cat in range(11):
            assert f"\n{cat:>4}" in out or f" {cat} " in out or out.count(str(cat))
        assert "a column updates a column" in out
