"""Table rendering."""

import pytest

from repro.analysis import format_number, render_table


class TestFormatNumber:
    def test_int(self):
        assert format_number(42) == "42"

    def test_float(self):
        assert format_number(3.14159) == "3.14"

    def test_large_whole_float(self):
        assert format_number(1234.0) == "1234"

    def test_none(self):
        assert format_number(None) == "-"

    def test_string(self):
        assert format_number("abc") == "abc"

    def test_decimals(self):
        assert format_number(0.5, decimals=3) == "0.500"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out
