"""ASCII Gantt chart."""

import pytest

from repro.analysis import render_gantt, render_gantt_reference
from repro.core import block_mapping, wrap_mapping
from repro.machine import MachineModel, simulate_schedule


@pytest.fixture(scope="module")
def timeline(prepared_grid):
    r = block_mapping(prepared_grid, 4, grain=4)
    tl = simulate_schedule(
        r.assignment, r.dependencies, prepared_grid.updates,
        MachineModel(alpha=0.0, beta=0.0),
    )
    return r, tl


class TestGantt:
    def test_one_row_per_processor(self, timeline):
        r, tl = timeline
        out = render_gantt(r.assignment, tl)
        rows = [l for l in out.splitlines() if l.startswith("p")]
        assert len(rows) == 4

    def test_width_respected(self, timeline):
        r, tl = timeline
        out = render_gantt(r.assignment, tl, width=40)
        for line in out.splitlines():
            if line.startswith("p"):
                bar = line.split()[1]
                assert len(bar) == 40

    def test_utilization_annotated(self, timeline):
        r, tl = timeline
        out = render_gantt(r.assignment, tl)
        assert "%" in out
        assert "makespan" in out

    def test_busy_marks_present(self, timeline):
        r, tl = timeline
        out = render_gantt(r.assignment, tl)
        assert "#" in out

    def test_requires_unit_view(self, prepared_grid, timeline):
        from repro.core import two_d_cyclic

        _, tl = timeline
        a = two_d_cyclic(prepared_grid.pattern, 2, 2)
        with pytest.raises(ValueError):
            render_gantt(a, tl)

    def test_width_validated(self, timeline):
        r, tl = timeline
        with pytest.raises(ValueError):
            render_gantt(r.assignment, tl, width=5)


class TestGanttIdentity:
    """The shared busy_grid raster must reproduce the original inline
    loop character-for-character on the bundled paper matrices."""

    @pytest.mark.parametrize(
        "matrix", ["BUS1138", "CANN1072", "DWT512", "LAP30", "LSHP1009"]
    )
    @pytest.mark.parametrize("width", [40, 72])
    def test_matches_reference(self, matrix, width):
        from repro.analysis.experiments import prepared_matrix

        prep = prepared_matrix(matrix)
        r = block_mapping(prep, 16, grain=4)
        tl = simulate_schedule(r.assignment, r.dependencies, prep.updates)
        assert render_gantt(r.assignment, tl, width=width) == \
            render_gantt_reference(r.assignment, tl, width=width)

    def test_matches_reference_zero_alpha(self, timeline):
        r, tl = timeline
        assert render_gantt(r.assignment, tl) == \
            render_gantt_reference(r.assignment, tl)
