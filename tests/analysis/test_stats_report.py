"""Partition statistics and the markdown report."""

import pytest

from repro.analysis import (
    partition_statistics,
    render_partition_stats,
)
from repro.core import partition_factor


@pytest.fixture(scope="module")
def partition(prepared_grid):
    return partition_factor(prepared_grid.pattern, grain=4, min_width=2)


class TestPartitionStatistics:
    def test_unit_census_consistent(self, partition):
        s = partition_statistics(partition)
        assert s["units"] == partition.num_units
        assert sum(s["units_by_kind"].values()) == s["units"]

    def test_cluster_counts(self, partition):
        s = partition_statistics(partition)
        assert s["clusters"] == len(partition.clusters)
        assert s["multi_column_clusters"] <= s["clusters"]

    def test_size_distribution_ordering(self, partition):
        s = partition_statistics(partition)
        assert s["unit_nnz_min"] <= s["unit_nnz_median"] <= s["unit_nnz_max"]

    def test_render(self, partition):
        out = render_partition_stats(partition, "t")
        assert out.startswith("t")
        assert "unit blocks" in out


class TestReport:
    def test_cli_stats(self, capsys):
        from repro.cli import main

        assert main(["stats", "--matrix", "DWT512", "--grain", "8"]) == 0
        assert "Partition statistics" in capsys.readouterr().out

    def test_report_written_to_file(self, tmp_path, capsys, monkeypatch):
        # The report renders every table; keep this test cheap by reusing
        # the prepared-matrix cache (already warm from other tests) and
        # just checking the document structure.
        from repro.analysis import generate_report

        report = generate_report()
        assert report.startswith("# Reproduction report")
        for section in ("Table 1", "Table 5", "Figure 4"):
            assert section in report
        path = tmp_path / "r.md"
        path.write_text(report)
        assert path.stat().st_size > 2000

    def test_cli_report_output_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["report", "--output", str(out)]) == 0
        assert "written to" in capsys.readouterr().out
        assert out.read_text().startswith("# Reproduction report")
