"""CLI entry point."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def fresh_caches():
    """Clear the experiment harness' per-process lru caches so a traced
    run exercises every pipeline stage (prepare included)."""
    from repro.analysis import experiments

    experiments.prepared_matrix.cache_clear()
    experiments._block_result.cache_clear()
    experiments._wrap_result.cache_clear()
    yield
    experiments.prepared_matrix.cache_clear()
    experiments._block_result.cache_clear()
    experiments._wrap_result.cache_clear()


class TestCLI:
    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_figure2_custom_grid(self, capsys):
        assert main(["figure2", "--nx", "3", "--ny", "3"]) == 0
        assert "n=9" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "LAP30" in out and "BUS1138" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_figure4_custom_matrix(self, capsys):
        assert main(["figure4", "--matrix", "DWT512", "--grain", "8"]) == 0
        assert "dependency categories" in capsys.readouterr().out

    def test_unknown_subtarget_for_non_trace_rejected(self, capsys):
        assert main(["figure3", "extra"]) == 2
        assert "only 'trace'" in capsys.readouterr().err

    def test_quiet_suppresses_output(self, capsys):
        assert main(["-q", "figure3"]) == 0
        assert capsys.readouterr().out == ""

    def test_verbose_prints_stage_timings_to_stderr(self, fresh_caches, capsys):
        assert main(["-v", "stats", "--matrix", "LAP30", "--grain", "25"]) == 0
        captured = capsys.readouterr()
        assert "Partition statistics" in captured.out
        assert "Stage timings" in captured.err
        assert "Counters" in captured.err


class TestTraceTarget:
    def test_trace_without_subtarget_errors(self, capsys):
        assert main(["trace"]) == 2
        assert "needs a target" in capsys.readouterr().err

    def test_trace_unknown_subtarget_errors(self, capsys):
        assert main(["trace", "nosuch"]) == 2
        assert "unknown target 'nosuch'" in capsys.readouterr().err

    def test_trace_writes_chrome_trace_and_summary(self, fresh_caches, tmp_path, capsys):
        out = tmp_path / "run.json"
        jsonl = tmp_path / "run.jsonl"
        assert main([
            "trace", "stats", "--matrix", "LAP30", "--grain", "25",
            "--nprocs", "8",
            "--trace-out", str(out), "--trace-jsonl", str(jsonl),
        ]) == 0
        captured = capsys.readouterr().out
        assert "Stage timings" in captured
        assert "Simulated timeline" in captured
        assert str(out) in captured

        doc = json.loads(out.read_text())
        spans = {
            e["name"] for e in doc["traceEvents"]
            if e.get("ph") == "X" and e.get("pid") == 1
        }
        for stage in ("pipeline.order", "pipeline.symbolic",
                      "pipeline.enumerate_updates", "pipeline.partition",
                      "pipeline.dependencies", "pipeline.schedule",
                      "pipeline.metrics", "cli.target", "cli.simulate"):
            assert stage in spans
        unit_events = [
            e for e in doc["traceEvents"]
            if e.get("ph") == "X" and e.get("pid") == 2
        ]
        assert unit_events and all(e["dur"] >= 0 for e in unit_events)
        assert doc["otherData"]["counters"]["sim.units"] == len(unit_events)

        records = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert {"span", "timeline", "counter", "gauge"} <= {r["type"] for r in records}

    def test_trace_leaves_tracing_disabled(self, tmp_path):
        from repro.obs import trace as obs_trace

        assert main(["trace", "figure3", "--matrix", "LAP30"]) == 0
        assert not obs_trace.is_enabled()
