"""CLI entry point."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def fresh_caches():
    """Clear the experiment harness' per-process lru caches so a traced
    run exercises every pipeline stage (prepare included)."""
    from repro.analysis import experiments

    experiments.prepared_matrix.cache_clear()
    experiments._block_result.cache_clear()
    experiments._wrap_result.cache_clear()
    yield
    experiments.prepared_matrix.cache_clear()
    experiments._block_result.cache_clear()
    experiments._wrap_result.cache_clear()


class TestCLI:
    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_figure2_custom_grid(self, capsys):
        assert main(["figure2", "--nx", "3", "--ny", "3"]) == 0
        assert "n=9" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "LAP30" in out and "BUS1138" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_figure4_custom_matrix(self, capsys):
        assert main(["figure4", "--matrix", "DWT512", "--grain", "8"]) == 0
        assert "dependency categories" in capsys.readouterr().out

    def test_unknown_subtarget_for_non_trace_rejected(self, capsys):
        assert main(["figure3", "extra"]) == 2
        assert "only 'trace'" in capsys.readouterr().err

    def test_quiet_suppresses_output(self, capsys):
        assert main(["-q", "figure3"]) == 0
        assert capsys.readouterr().out == ""

    def test_verbose_prints_stage_timings_to_stderr(self, fresh_caches, capsys):
        assert main(["-v", "stats", "--matrix", "LAP30", "--grain", "25"]) == 0
        captured = capsys.readouterr()
        assert "Partition statistics" in captured.out
        assert "Stage timings" in captured.err
        assert "Counters" in captured.err


class TestTraceTarget:
    def test_trace_without_subtarget_errors(self, capsys):
        assert main(["trace"]) == 2
        assert "needs a target" in capsys.readouterr().err

    def test_trace_unknown_subtarget_errors(self, capsys):
        assert main(["trace", "nosuch"]) == 2
        assert "unknown target 'nosuch'" in capsys.readouterr().err

    def test_trace_writes_chrome_trace_and_summary(self, fresh_caches, tmp_path, capsys):
        out = tmp_path / "run.json"
        jsonl = tmp_path / "run.jsonl"
        assert main([
            "trace", "stats", "--matrix", "LAP30", "--grain", "25",
            "--nprocs", "8",
            "--trace-out", str(out), "--trace-jsonl", str(jsonl),
        ]) == 0
        captured = capsys.readouterr().out
        assert "Stage timings" in captured
        assert "Simulated timeline" in captured
        assert str(out) in captured

        doc = json.loads(out.read_text())
        spans = {
            e["name"] for e in doc["traceEvents"]
            if e.get("ph") == "X" and e.get("pid") == 1
        }
        for stage in ("pipeline.order", "pipeline.symbolic",
                      "pipeline.enumerate_updates", "pipeline.partition",
                      "pipeline.dependencies", "pipeline.schedule",
                      "pipeline.metrics", "cli.target", "cli.simulate"):
            assert stage in spans
        unit_events = [
            e for e in doc["traceEvents"]
            if e.get("ph") == "X" and e.get("pid") == 2
        ]
        assert unit_events and all(e["dur"] >= 0 for e in unit_events)
        assert doc["otherData"]["counters"]["sim.units"] == len(unit_events)

        records = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert {"span", "timeline", "counter", "gauge"} <= {r["type"] for r in records}

    def test_trace_leaves_tracing_disabled(self, tmp_path):
        from repro.obs import trace as obs_trace

        assert main(["trace", "figure3", "--matrix", "LAP30"]) == 0
        assert not obs_trace.is_enabled()


class TestHelp:
    def test_help_lists_every_target(self, capsys):
        from repro.cli import _TARGET_HELP

        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "targets:" in out
        for name, desc in _TARGET_HELP.items():
            assert f"{name} " in out or f"{name}\n" in out, name
            assert desc in out, name
        assert "REPRO_TRACE_OUT" in out and "REPRO_RUNS_DIR" in out

    def test_help_order_is_stable(self, capsys):
        from repro.cli import _TARGET_HELP

        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        epilog = out[out.index("targets:"):]
        positions = [epilog.index(f"  {name} ".rstrip() + " ")
                     for name in _TARGET_HELP]
        assert positions == sorted(positions)


class TestTraceOutEnv:
    def test_env_var_sets_trace_default(self, fresh_caches, tmp_path,
                                        monkeypatch, capsys):
        out = tmp_path / "env-trace.json"
        monkeypatch.setenv("REPRO_TRACE_OUT", str(out))
        assert main(["trace", "figure3", "--matrix", "LAP30", "-q"]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_flag_overrides_env_var(self, fresh_caches, tmp_path,
                                    monkeypatch):
        env_out = tmp_path / "env.json"
        flag_out = tmp_path / "flag.json"
        monkeypatch.setenv("REPRO_TRACE_OUT", str(env_out))
        assert main(["trace", "figure3", "--matrix", "LAP30", "-q",
                     "--trace-out", str(flag_out)]) == 0
        assert flag_out.exists() and not env_out.exists()


class TestSweepTarget:
    def test_trace_out_writes_merged_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert main(["sweep", "--matrix", "DWT512", "--procs", "2",
                     "--grains", "4", "--jobs", "1", "-q",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--trace-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert "perf.sweep.run" in names
        assert any(n.startswith("perf.sweep.group") for n in names)
        assert str(out) in capsys.readouterr().err

    def test_env_var_sets_sweep_trace_default(self, tmp_path, monkeypatch):
        out = tmp_path / "sweep-env.json"
        monkeypatch.setenv("REPRO_TRACE_OUT", str(out))
        assert main(["sweep", "--matrix", "DWT512", "--procs", "2",
                     "--grains", "4", "-q",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert json.loads(out.read_text())["traceEvents"]


class TestExplainTarget:
    def test_explain_writes_registry_run_and_report(self, tmp_path, capsys,
                                                    monkeypatch):
        from repro.obs import runs as obs_runs

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "registry"))
        out = tmp_path / "explain.html"
        assert main(["explain", "LAP30", "--scheme", "wrap", "-p", "16",
                     "--output", str(out)]) == 0
        text = capsys.readouterr().out
        assert "critical path" in text
        assert "registry run" in text

        (manifest,) = obs_runs.list_runs(kind="explain")
        doc = manifest["explain"]
        assert doc["scheme"] == "wrap" and doc["nprocs"] == 16
        assert doc["message_bytes"] == doc["traffic_total"]
        assert manifest["counters"]["explain.message_bytes"] == doc["message_bytes"]

        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>") or "<html" in html
        for anchor in ("Communication matrix", "Critical path",
                       "Imbalance", "Processor time"):
            assert anchor in html
        # Self-contained: no external fetches.
        assert "http://" not in html and "https://" not in html

    def test_explain_positional_matrix(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "registry"))
        monkeypatch.chdir(tmp_path)
        assert main(["explain", "LAP30"]) == 0
        assert (tmp_path / "EXPLAIN_LAP30_block_p16.html").exists()

    def test_explain_rejects_unknown_scheme(self, capsys):
        with pytest.raises(SystemExit):
            main(["explain", "LAP30", "--scheme", "nosuch"])
