"""CLI entry point."""

import pytest

from repro.cli import main


class TestCLI:
    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_figure2_custom_grid(self, capsys):
        assert main(["figure2", "--nx", "3", "--ny", "3"]) == 0
        assert "n=9" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "LAP30" in out and "BUS1138" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_figure4_custom_matrix(self, capsys):
        assert main(["figure4", "--matrix", "DWT512", "--grain", "8"]) == 0
        assert "dependency categories" in capsys.readouterr().out
