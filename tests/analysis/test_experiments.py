"""Experiment harness (light checks; full tables run in benchmarks)."""

import pytest

from repro.analysis import paper_data, table1_rows, table4_rows
from repro.analysis.experiments import prepared_matrix


class TestPaperData:
    def test_table1_complete(self):
        assert set(paper_data.TABLE1) == set(paper_data.SHORT_NAMES)

    def test_total_work_derived(self):
        assert paper_data.PAPER_TOTAL_WORK["LAP30"] == 434577

    def test_tables_cover_all_matrices(self):
        for table in (paper_data.TABLE2, paper_data.TABLE3, paper_data.TABLE5):
            assert set(table) == set(paper_data.TABLE1)

    def test_table4_widths(self):
        assert set(paper_data.TABLE4) == {2, 4, 8}

    def test_wrap_p1_zero_traffic(self):
        for rows in paper_data.TABLE5.values():
            assert rows[1][0] == 0


class TestHarness:
    def test_prepared_matrix_cached(self):
        a = prepared_matrix("DWT512")
        b = prepared_matrix("DWT512")
        assert a is b

    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 5
        lap = next(r for r in rows if r["matrix"] == "LAP30")
        assert lap["n"] == lap["paper_n"] == 900
        assert lap["nnz"] == lap["paper_nnz"] == 4322

    def test_table4_small_sweep(self):
        rows = table4_rows(widths=(2,), procs=(4,), matrix="DWT512")
        assert len(rows) == 1
        assert rows[0]["total"] > 0
        assert rows[0]["paper"] is None  # paper only reports LAP30

    def test_renders_include_paper_values(self):
        """The rendered tables must carry the published numbers side by
        side (spot-check one distinctive constant per table)."""
        from repro.analysis import render_table2, render_table5

        assert "100012" in render_table2()  # paper LAP30 g=4 P=16
        assert "177625" in render_table5()  # paper LAP30 wrap P=32

    def test_work_consistent_across_tables(self):
        """Table 3's mean work times P equals Table 5's P=1 total work
        for every matrix (the partition-invariance of the cost model)."""
        from repro.analysis import table3_rows, table5_rows

        t3 = {(r["matrix"], r["nprocs"]): r for r in table3_rows()}
        t5 = {(r["matrix"], r["nprocs"]): r for r in table5_rows()}
        for name in ("LAP30", "DWT512"):
            total = t5[(name, 1)]["work_mean"]
            for p in (4, 16, 32):
                assert t3[(name, p)]["work_mean"] * p == pytest.approx(
                    total, rel=0.01
                )
