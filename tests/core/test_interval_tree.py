"""Interval tree vs brute force."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Interval, IntervalTree


def _brute_stab(intervals, point):
    return sorted(
        (iv for iv in intervals if iv.contains(point)), key=lambda iv: (iv.lo, iv.hi)
    )


def _brute_overlap(intervals, lo, hi):
    return sorted(
        (iv for iv in intervals if iv.overlaps(lo, hi)), key=lambda iv: (iv.lo, iv.hi)
    )


intervals_strategy = st.lists(
    st.tuples(st.integers(0, 100), st.integers(0, 50)).map(
        lambda t: Interval(t[0], t[0] + t[1])
    ),
    max_size=40,
)


class TestInterval:
    def test_contains(self):
        iv = Interval(2, 5)
        assert iv.contains(2) and iv.contains(5) and not iv.contains(6)

    def test_overlaps(self):
        iv = Interval(2, 5)
        assert iv.overlaps(5, 9)
        assert iv.overlaps(0, 2)
        assert not iv.overlaps(6, 9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_payload(self):
        assert Interval(0, 1, "x").data == "x"


class TestIntervalTree:
    def test_empty_tree(self):
        t = IntervalTree([])
        assert len(t) == 0
        assert t.stab(5) == []
        assert t.overlapping(0, 10) == []

    def test_single(self):
        t = IntervalTree([Interval(3, 7)])
        assert len(t.stab(5)) == 1
        assert t.stab(8) == []

    def test_nested_intervals(self):
        ivs = [Interval(0, 10), Interval(2, 8), Interval(4, 6)]
        t = IntervalTree(ivs)
        assert len(t.stab(5)) == 3
        assert len(t.stab(1)) == 1

    def test_overlapping_range_query(self):
        ivs = [Interval(0, 2), Interval(5, 7), Interval(10, 12)]
        t = IntervalTree(ivs)
        hits = t.overlapping(6, 11)
        assert [(iv.lo, iv.hi) for iv in hits] == [(5, 7), (10, 12)]

    def test_overlapping_rejects_empty_range(self):
        with pytest.raises(ValueError):
            IntervalTree([Interval(0, 1)]).overlapping(5, 3)

    @given(intervals_strategy, st.integers(0, 160))
    @settings(max_examples=60, deadline=None)
    def test_stab_matches_brute_force(self, intervals, point):
        t = IntervalTree(intervals)
        assert t.stab(point) == _brute_stab(intervals, point)

    @given(intervals_strategy, st.integers(0, 160), st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_overlap_matches_brute_force(self, intervals, lo, span):
        t = IntervalTree(intervals)
        assert t.overlapping(lo, lo + span) == _brute_overlap(intervals, lo, lo + span)
