"""Block allocation strategy (paper §3.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SchedulerOptions,
    analyze_dependencies,
    partition_factor,
    schedule_blocks,
)
from repro.core.blocks import BlockKind
from repro.machine import unit_work
from repro.symbolic import enumerate_updates, symbolic_cholesky

from ..conftest import random_connected_graph


def _setup(n=40, extra=70, seed=13, grain=4, min_width=2):
    g = random_connected_graph(n, extra, seed)
    pattern = symbolic_cholesky(g).pattern
    partition = partition_factor(pattern, grain=grain, min_width=min_width)
    updates = enumerate_updates(pattern)
    deps = analyze_dependencies(partition, updates)
    return partition, updates, deps


class TestScheduleBlocks:
    def test_all_units_assigned(self):
        partition, updates, deps = _setup()
        a = schedule_blocks(partition, deps, 4)
        assert (a.proc_of_unit >= 0).all()
        assert (a.proc_of_unit < 4).all()

    def test_owner_matches_units(self):
        partition, updates, deps = _setup()
        a = schedule_blocks(partition, deps, 4)
        expected = a.proc_of_unit[partition.unit_of_element]
        assert np.array_equal(a.owner_of_element, expected)

    def test_single_processor(self):
        partition, updates, deps = _setup()
        a = schedule_blocks(partition, deps, 1)
        assert (a.proc_of_unit == 0).all()

    def test_independent_columns_wrap(self):
        """Independent column units get procs 0,1,2,... in column order."""
        partition, updates, deps = _setup()
        nprocs = 3
        a = schedule_blocks(partition, deps, nprocs)
        ind_cols = [
            u.uid
            for u in partition.units
            if u.kind is BlockKind.COLUMN and deps.independent_units[u.uid]
        ]
        expected = [i % nprocs for i in range(len(ind_cols))]
        assert [int(a.proc_of_unit[u]) for u in ind_cols] == expected

    def test_dependent_column_first_policy(self):
        partition, updates, deps = _setup()
        a = schedule_blocks(
            partition, deps, 4, options=SchedulerOptions("first")
        )
        for u in partition.units:
            if u.kind is not BlockKind.COLUMN or deps.independent_units[u.uid]:
                continue
            preds = deps.predecessors[u.uid]
            if len(preds):
                assert int(a.proc_of_unit[u.uid]) == int(a.proc_of_unit[preds[0]])

    def test_rect_units_restricted_to_triangle_procs(self):
        """P_t restriction: every below-rectangle unit's processor worked
        on the cluster's triangle."""
        partition, updates, deps = _setup(n=60, extra=140, seed=5)
        a = schedule_blocks(partition, deps, 8)
        for cluster in partition.clusters:
            if cluster.is_column:
                continue
            cunits = partition.units_of_cluster(cluster.index)
            tri_procs = {
                int(a.proc_of_unit[u.uid])
                for u in cunits
                if u.parent_kind is BlockKind.TRIANGLE
            }
            for u in cunits:
                if u.parent_kind is BlockKind.RECTANGLE:
                    assert int(a.proc_of_unit[u.uid]) in tri_procs

    def test_triangle_units_spread_when_possible(self):
        """With no predecessors and enough processors, the triangle units
        of the first cluster land on distinct processors (P_a logic)."""
        partition, updates, deps = _setup(n=50, extra=120, seed=21)
        first_multi = next(
            (c for c in partition.clusters if not c.is_column), None
        )
        if first_multi is None:
            pytest.skip("no multi-column cluster in this structure")
        tri_units = [
            u.uid
            for u in partition.units_of_cluster(first_multi.index)
            if u.parent_kind is BlockKind.TRIANGLE
        ]
        nprocs = max(16, len(tri_units))
        a = schedule_blocks(partition, deps, nprocs)
        procs = [int(a.proc_of_unit[u]) for u in tri_units]
        # Predecessor-free triangles walk the round-robin marker.
        if all(len(deps.predecessors[u]) == 0 for u in tri_units):
            assert len(set(procs)) == len(procs)

    def test_policies_all_valid(self):
        partition, updates, deps = _setup()
        for policy in ("first", "least_loaded", "round_robin"):
            a = schedule_blocks(
                partition, deps, 4, options=SchedulerOptions(policy)
            )
            assert (a.proc_of_unit >= 0).all()

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            SchedulerOptions("weird")

    def test_bad_nprocs_rejected(self):
        partition, updates, deps = _setup()
        with pytest.raises(ValueError):
            schedule_blocks(partition, deps, 0)

    def test_unit_work_length_checked(self):
        partition, updates, deps = _setup()
        with pytest.raises(ValueError):
            schedule_blocks(partition, deps, 2, unit_work=np.ones(3))

    def test_deterministic(self):
        partition, updates, deps = _setup()
        uw = unit_work(partition, updates)
        a = schedule_blocks(partition, deps, 8, unit_work=uw)
        b = schedule_blocks(partition, deps, 8, unit_work=uw)
        assert np.array_equal(a.proc_of_unit, b.proc_of_unit)

    def test_least_loaded_never_worse_balance_on_columns(self):
        """least_loaded picks the lightest predecessor processor, which
        cannot increase the dependent-column imbalance versus always
        taking the first predecessor on a column-only partition."""
        from repro.machine import load_balance, processor_work

        partition, updates, deps = _setup(min_width=50)  # all columns
        uw = unit_work(partition, updates)
        lam = {}
        for policy in ("first", "least_loaded"):
            a = schedule_blocks(
                partition, deps, 4, unit_work=uw, options=SchedulerOptions(policy)
            )
            lam[policy] = load_balance(processor_work(a, updates)).imbalance
        assert lam["least_loaded"] <= lam["first"] + 0.60

    @given(st.integers(6, 40), st.integers(0, 60), st.integers(0, 2**31 - 1),
           st.integers(1, 12), st.sampled_from([1, 2, 3, 4, 8, 16]))
    @settings(max_examples=15, deadline=None)
    def test_schedule_property(self, n, extra, seed, grain, nprocs):
        g = random_connected_graph(n, extra, seed)
        pattern = symbolic_cholesky(g).pattern
        partition = partition_factor(pattern, grain=grain, min_width=2)
        updates = enumerate_updates(pattern)
        deps = analyze_dependencies(partition, updates)
        a = schedule_blocks(partition, deps, nprocs)
        assert (a.proc_of_unit >= 0).all()
        assert (a.proc_of_unit < nprocs).all()
        assert (a.owner_of_element >= 0).all()
