"""Unit-block partitioning (paper §3.2, Figure 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import chunk_bounds, find_clusters, partition_factor
from repro.core.blocks import BlockKind
from repro.core.partitioner import rectangle_grid, triangle_split_count
from repro.sparse.pattern import LowerPattern
from repro.symbolic import symbolic_cholesky

from ..conftest import random_connected_graph


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(0, 5, 3) == [(0, 1), (2, 3), (4, 5)]

    def test_remainder_goes_first(self):
        assert chunk_bounds(0, 6, 3) == [(0, 2), (3, 4), (5, 6)]

    def test_single_chunk(self):
        assert chunk_bounds(3, 9, 1) == [(3, 9)]

    def test_rejects_too_many(self):
        with pytest.raises(ValueError):
            chunk_bounds(0, 2, 4)

    @given(st.integers(0, 50), st.integers(1, 30), st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_cover_property(self, lo, length, parts):
        hi = lo + length - 1
        if parts > length:
            parts = length
        chunks = chunk_bounds(lo, hi, parts)
        flattened = [x for a, b in chunks for x in range(a, b + 1)]
        assert flattened == list(range(lo, hi + 1))
        sizes = [b - a + 1 for a, b in chunks]
        assert max(sizes) - min(sizes) <= 1


class TestSplitCounts:
    def test_triangle_figure3(self):
        # A triangle with room for >= 6 units at this grain splits into
        # b = 3 chunks -> 6 unit blocks, exactly Figure 3.
        assert triangle_split_count(area=24, grain=4) == 3

    def test_triangle_respects_grain(self):
        assert triangle_split_count(area=10, grain=10) == 1
        assert triangle_split_count(area=30, grain=10) == 2

    def test_triangle_max_parts(self):
        assert triangle_split_count(area=1000, grain=1, max_parts=3) == 2

    def test_rectangle_grid_max_units(self):
        nr, nc = rectangle_grid(height=4, width=4, area=16, grain=4)
        assert nr * nc == 4

    def test_rectangle_grid_respects_dims(self):
        nr, nc = rectangle_grid(height=1, width=8, area=8, grain=2)
        assert nr == 1
        assert nc <= 4

    def test_rectangle_single(self):
        assert rectangle_grid(3, 3, 9, 100) == (1, 1)


class TestPartitionFactor:
    def _pattern(self, n=30, extra=40, seed=7):
        g = random_connected_graph(n, extra, seed)
        return symbolic_cholesky(g).pattern

    def test_exact_cover(self):
        p = self._pattern()
        part = partition_factor(p, grain=4, min_width=2)
        part.check_exact_cover()

    def test_units_within_cluster_extents(self):
        p = self._pattern()
        part = partition_factor(p, grain=4, min_width=2)
        cmap = part.clusters.cluster_of_column
        for u in part.units:
            assert cmap[u.col_lo] == u.cluster
            assert cmap[u.col_hi] == u.cluster

    def test_elements_inside_unit_extent(self):
        p = self._pattern()
        part = partition_factor(p, grain=6, min_width=2)
        cols = p.element_cols()
        for u in part.units:
            for e in u.elements.tolist():
                r, c = int(p.rowidx[e]), int(cols[e])
                assert u.row_lo <= r <= u.row_hi
                assert u.col_lo <= c <= u.col_hi
                if u.kind is BlockKind.TRIANGLE:
                    assert r >= c

    def test_column_units_own_whole_column(self):
        p = self._pattern()
        part = partition_factor(p, grain=4, min_width=2)
        for u in part.units:
            if u.kind is BlockKind.COLUMN:
                lo, hi = p.indptr[u.col_lo], p.indptr[u.col_lo + 1]
                assert np.array_equal(u.elements, np.arange(lo, hi))

    def test_figure3_unit_layout(self):
        """A dense 6-wide triangle at grain 3 splits 3x3 chunks: 3 unit
        triangles + 3 unit rectangles, in the paper's order."""
        p = LowerPattern.dense(6)
        part = partition_factor(p, grain=3, min_width=2)
        units = part.units
        kinds = [u.kind for u in units]
        assert kinds.count(BlockKind.TRIANGLE) == 3
        assert kinds.count(BlockKind.RECTANGLE) == 3
        # Order: diagonal triangles top to bottom first.
        tri = [u for u in units if u.kind is BlockKind.TRIANGLE]
        assert [u.col_lo for u in tri] == sorted(u.col_lo for u in tri)
        rect = [u for u in units if u.kind is BlockKind.RECTANGLE]
        # Row-major over the chunk grid: (1,0), (2,0), (2,1).
        assert [(r.row_lo, r.col_lo) for r in rect] == sorted(
            (r.row_lo, r.col_lo) for r in rect
        )

    def test_larger_grain_fewer_units(self):
        p = self._pattern(40, 80, 3)
        small = partition_factor(p, grain=4, min_width=2)
        large = partition_factor(p, grain=25, min_width=2)
        assert large.num_units <= small.num_units

    def test_grain_one_max_split(self):
        p = LowerPattern.dense(4)
        part = partition_factor(p, grain=1, min_width=2)
        # Largest b with b(b+1)/2 <= area 10 is b = 4 -> 10 single-element
        # units (4 triangles + 6 rectangles).
        assert part.num_units == 10
        assert all(u.area == 1 for u in part.units)

    def test_separate_rectangle_grain(self):
        p = self._pattern(35, 60, 9)
        a = partition_factor(p, grain=4, min_width=2, grain_rectangle=4)
        b = partition_factor(p, grain=4, min_width=2, grain_rectangle=50)
        n_rect_a = sum(1 for u in a.units if u.parent_kind is BlockKind.RECTANGLE)
        n_rect_b = sum(1 for u in b.units if u.parent_kind is BlockKind.RECTANGLE)
        assert n_rect_b <= n_rect_a

    def test_units_of_cluster(self):
        p = self._pattern()
        part = partition_factor(p, grain=4, min_width=2)
        total = sum(len(part.units_of_cluster(c.index)) for c in part.clusters)
        assert total == part.num_units

    @given(st.integers(4, 28), st.integers(0, 40), st.integers(0, 2**31 - 1),
           st.integers(1, 30), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_exact_cover_property(self, n, extra, seed, grain, min_width):
        g = random_connected_graph(n, extra, seed)
        p = symbolic_cholesky(g).pattern
        part = partition_factor(p, grain=grain, min_width=min_width)
        part.check_exact_cover()

    @given(st.integers(4, 24), st.integers(0, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_grain_respected_property(self, n, extra, seed):
        """Every dense block with area >= grain is split into units whose
        *geometric area* is >= grain (paper: minimum elements per unit)."""
        grain = 6
        g = random_connected_graph(n, extra, seed)
        p = symbolic_cholesky(g).pattern
        part = partition_factor(p, grain=grain, min_width=2)
        for u in part.units:
            if u.kind is BlockKind.COLUMN:
                continue
            parent_area_splittable = True  # units only exist if split allowed
            if parent_area_splittable and u.area < grain:
                # Allowed only when the whole dense block was a single unit
                # (area below grain) or chunk rounding made one unit small;
                # rounding keeps units within one row/col of equal, so the
                # unit can be at most ~half the nominal size.
                assert u.area * 4 >= grain
