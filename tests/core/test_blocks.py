"""Block types."""

import numpy as np
import pytest

from repro.core.blocks import BlockKind, DenseBlock, UnitBlock


class TestDenseBlock:
    def test_triangle_area(self):
        b = DenseBlock(BlockKind.TRIANGLE, 0, 2, 5, 2, 5)
        assert b.width == 4
        assert b.area == 10

    def test_rectangle_area(self):
        b = DenseBlock(BlockKind.RECTANGLE, 0, 0, 2, 10, 14)
        assert b.area == 15
        assert b.height == 5

    def test_triangle_extent_validation(self):
        with pytest.raises(ValueError):
            DenseBlock(BlockKind.TRIANGLE, 0, 0, 3, 1, 4)

    def test_column_extent_validation(self):
        with pytest.raises(ValueError):
            DenseBlock(BlockKind.COLUMN, 0, 0, 1, 0, 5)

    def test_empty_extent_rejected(self):
        with pytest.raises(ValueError):
            DenseBlock(BlockKind.RECTANGLE, 0, 3, 2, 0, 1)

    def test_contains_triangle(self):
        b = DenseBlock(BlockKind.TRIANGLE, 0, 1, 3, 1, 3)
        assert b.contains(3, 1)
        assert b.contains(2, 2)
        assert not b.contains(1, 2)  # above the diagonal
        assert not b.contains(4, 2)  # below the extent

    def test_contains_rectangle(self):
        b = DenseBlock(BlockKind.RECTANGLE, 0, 0, 1, 5, 7)
        assert b.contains(6, 0)
        assert not b.contains(4, 0)


class TestUnitBlock:
    def test_properties(self):
        u = UnitBlock(
            uid=3,
            kind=BlockKind.RECTANGLE,
            cluster=1,
            col_lo=0,
            col_hi=2,
            row_lo=5,
            row_hi=6,
            elements=np.array([7, 8, 9]),
        )
        assert u.area == 6
        assert u.nnz == 3
        assert "uid=3" in repr(u)

    def test_triangle_area(self):
        u = UnitBlock(
            uid=0,
            kind=BlockKind.TRIANGLE,
            cluster=0,
            col_lo=4,
            col_hi=6,
            row_lo=4,
            row_hi=6,
            elements=np.arange(6),
        )
        assert u.area == 6
