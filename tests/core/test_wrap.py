"""Wrap-mapped column baseline."""

import numpy as np
import pytest

from repro.core import block_cyclic_columns, wrap_assignment
from repro.sparse import grid5
from repro.symbolic import symbolic_cholesky


@pytest.fixture(scope="module")
def pattern():
    return symbolic_cholesky(grid5(6, 6)).pattern


class TestWrapAssignment:
    def test_column_cyclic(self, pattern):
        a = wrap_assignment(pattern, 4)
        cols = pattern.element_cols()
        assert np.array_equal(a.owner_of_element, cols % 4)

    def test_proc_of_unit_is_columns(self, pattern):
        a = wrap_assignment(pattern, 3)
        assert np.array_equal(a.proc_of_unit, np.arange(pattern.n) % 3)

    def test_single_proc(self, pattern):
        a = wrap_assignment(pattern, 1)
        assert (a.owner_of_element == 0).all()

    def test_more_procs_than_columns(self):
        p = symbolic_cholesky(grid5(2, 2)).pattern
        a = wrap_assignment(p, 100)
        assert a.owner_of_element.max() < p.n

    def test_bad_nprocs(self, pattern):
        with pytest.raises(ValueError):
            wrap_assignment(pattern, 0)

    def test_elements_of(self, pattern):
        a = wrap_assignment(pattern, 4)
        total = sum(len(a.elements_of(p)) for p in range(4))
        assert total == pattern.nnz

    def test_units_of(self, pattern):
        a = wrap_assignment(pattern, 4)
        assert set(a.units_of(0).tolist()) == set(range(0, pattern.n, 4))


class TestBlockCyclic:
    def test_block_one_equals_wrap(self, pattern):
        a = wrap_assignment(pattern, 4)
        b = block_cyclic_columns(pattern, 4, block=1)
        assert np.array_equal(a.owner_of_element, b.owner_of_element)

    def test_block_grouping(self, pattern):
        b = block_cyclic_columns(pattern, 2, block=3)
        assert np.array_equal(
            b.proc_of_unit[:6], np.array([0, 0, 0, 1, 1, 1])
        )

    def test_bad_block(self, pattern):
        with pytest.raises(ValueError):
            block_cyclic_columns(pattern, 2, block=0)
