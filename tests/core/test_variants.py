"""Scheduler variants: the extremes framing the §3.4 strategy."""

import numpy as np
import pytest

from repro.core import (
    block_mapping,
    schedule_affinity,
    schedule_lpt,
    unit_edge_volumes,
    validate_assignment,
)
from repro.machine import (
    data_traffic,
    edge_volumes,
    load_balance,
    processor_work,
    unit_work,
)


@pytest.fixture(scope="module")
def mapped(prepared_grid):
    return block_mapping(prepared_grid, 8, grain=4)


class TestUnitEdgeVolumes:
    def test_matches_assignment_based_version(self, prepared_grid, mapped):
        a = unit_edge_volumes(
            mapped.partition, mapped.dependencies, prepared_grid.updates
        )
        b = edge_volumes(mapped.assignment, mapped.dependencies, prepared_grid.updates)
        assert a == b


class TestLPT:
    def test_valid_assignment(self, prepared_grid, mapped):
        uw = unit_work(mapped.partition, prepared_grid.updates)
        a = schedule_lpt(mapped.partition, 8, uw)
        validate_assignment(a)
        assert a.scheme == "block-lpt"

    def test_work_conserved(self, prepared_grid, mapped):
        uw = unit_work(mapped.partition, prepared_grid.updates)
        a = schedule_lpt(mapped.partition, 8, uw)
        w = processor_work(a, prepared_grid.updates)
        assert int(w.sum()) == prepared_grid.total_work

    def test_best_balance_of_all_schemes(self, prepared_lap30):
        """LPT must balance at least as well as the paper scheduler at
        the same granularity."""
        r = block_mapping(prepared_lap30, 16, grain=25)
        uw = unit_work(r.partition, prepared_lap30.updates)
        lpt = schedule_lpt(r.partition, 16, uw)
        lam_lpt = load_balance(processor_work(lpt, prepared_lap30.updates)).imbalance
        assert lam_lpt <= r.balance.imbalance + 1e-9

    def test_unit_work_length_checked(self, mapped):
        with pytest.raises(ValueError):
            schedule_lpt(mapped.partition, 4, np.ones(3))

    def test_nprocs_checked(self, prepared_grid, mapped):
        uw = unit_work(mapped.partition, prepared_grid.updates)
        with pytest.raises(ValueError):
            schedule_lpt(mapped.partition, 0, uw)


class TestAffinity:
    def test_valid_assignment(self, prepared_grid, mapped):
        a = schedule_affinity(
            mapped.partition, mapped.dependencies, 8, prepared_grid.updates
        )
        validate_assignment(a)
        assert a.scheme == "block-affinity"

    def test_lowest_traffic_of_all_schemes(self, prepared_lap30):
        """Pure data affinity must communicate no more than the paper
        scheduler at the same granularity."""
        r = block_mapping(prepared_lap30, 16, grain=25)
        aff = schedule_affinity(
            r.partition, r.dependencies, 16, prepared_lap30.updates
        )
        t_aff = data_traffic(aff, prepared_lap30.updates).total
        assert t_aff <= r.traffic.total

    def test_single_proc_degenerate(self, prepared_grid, mapped):
        a = schedule_affinity(
            mapped.partition, mapped.dependencies, 1, prepared_grid.updates
        )
        assert data_traffic(a, prepared_grid.updates).total == 0

    def test_paper_scheduler_sits_between(self, prepared_lap30):
        """The §3.4 strategy trades between the two extremes: traffic
        between affinity's and LPT's, λ between LPT's and affinity's."""
        r = block_mapping(prepared_lap30, 16, grain=25)
        uw = unit_work(r.partition, prepared_lap30.updates)
        lpt = schedule_lpt(r.partition, 16, uw)
        aff = schedule_affinity(
            r.partition, r.dependencies, 16, prepared_lap30.updates, uw
        )
        ups = prepared_lap30.updates
        t = {
            "lpt": data_traffic(lpt, ups).total,
            "paper": r.traffic.total,
            "aff": data_traffic(aff, ups).total,
        }
        lam = {
            "lpt": load_balance(processor_work(lpt, ups)).imbalance,
            "paper": r.balance.imbalance,
            "aff": load_balance(processor_work(aff, ups)).imbalance,
        }
        assert t["aff"] <= t["paper"] <= t["lpt"]
        assert lam["lpt"] <= lam["paper"] <= lam["aff"]
