"""Cluster identification (paper §3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import find_clusters
from repro.core.blocks import BlockKind
from repro.sparse.pattern import LowerPattern
from repro.symbolic import symbolic_cholesky

from ..conftest import random_connected_graph


def _dense_strip_pattern() -> LowerPattern:
    """Columns 0-3 dense triangle + two row runs below; cols 4-5 singles."""
    rows, cols = [], []
    for c in range(4):
        for r in range(c, 4):
            rows.append(r)
            cols.append(c)
        for r in (6, 7, 9):  # two runs: [6,7] and [9]
            rows.append(r)
            cols.append(c)
    rows += [5, 6, 7, 8, 9, 6, 7, 8, 9, 7, 8, 9, 8, 9, 9]
    cols += [4, 4, 4, 4, 4, 5, 5, 5, 5, 6, 6, 6, 7, 7, 8]
    return LowerPattern.from_entries(10, rows, cols)


class TestFindClusters:
    def test_strip_detected(self):
        p = _dense_strip_pattern()
        cs = find_clusters(p, min_width=2)
        first = cs[0]
        assert not first.is_column
        assert (first.col_lo, first.col_hi) == (0, 3)

    def test_rectangles_are_row_runs(self):
        p = _dense_strip_pattern()
        cs = find_clusters(p, min_width=2)
        rects = cs[0].rectangles
        assert [(r.row_lo, r.row_hi) for r in rects] == [(6, 7), (9, 9)]
        assert all(r.kind is BlockKind.RECTANGLE for r in rects)

    def test_triangle_extent(self):
        p = _dense_strip_pattern()
        tri = find_clusters(p, min_width=2)[0].triangle
        assert (tri.col_lo, tri.col_hi, tri.row_lo, tri.row_hi) == (0, 3, 0, 3)

    def test_min_width_breaks_strip(self):
        p = _dense_strip_pattern()
        cs = find_clusters(p, min_width=5)
        # Strip of width 4 < 5 must be broken into single columns.
        assert all(c.is_column for c in cs.clusters[:4])

    def test_columns_partitioned(self):
        p = _dense_strip_pattern()
        for mw in (1, 2, 4, 8):
            cs = find_clusters(p, min_width=mw)
            cols = []
            for c in cs:
                cols.extend(range(c.col_lo, c.col_hi + 1))
            assert cols == list(range(p.n))

    def test_dense_pattern_single_cluster(self):
        p = LowerPattern.dense(6)
        cs = find_clusters(p, min_width=2)
        assert len(cs) == 1
        assert cs[0].width == 6
        assert cs[0].rectangles == ()

    def test_diagonal_pattern_all_columns(self):
        p = LowerPattern.from_entries(5, [], [])
        cs = find_clusters(p, min_width=2)
        assert len(cs) == 5
        assert all(c.is_column for c in cs)

    def test_zero_tolerance_admits_gap(self):
        """The paper's column-34 example: a zero in the triangle blocks
        the strip at tolerance 0 but joins at a positive tolerance."""
        rows, cols = [], []
        for c in range(4):
            for r in range(c, 4):
                if (r, c) == (3, 0):
                    continue  # one hole in the triangle
                rows.append(r)
                cols.append(c)
        p = LowerPattern.from_entries(4, rows, cols)
        strict = find_clusters(p, min_width=2)
        assert strict[0].col_hi - strict[0].col_lo + 1 < 4 or strict[0].is_column
        relaxed = find_clusters(p, min_width=2, zero_tolerance=0.2)
        assert (relaxed[0].col_lo, relaxed[0].col_hi) == (0, 3)
        assert relaxed[0].padding_zeros == 1

    def test_scan_resumes_after_narrow_strip(self):
        """A too-narrow strip emits one column and re-tries from the next
        column, so a wide cluster starting one column later is found
        (paper's column 34 vs cluster 35-41)."""
        # Column 0 not dense with 1..4; columns 1-4 dense.
        rows, cols = [], []
        rows += [0, 4]  # column 0: diag + distant row only
        cols += [0, 0]
        for c in range(1, 5):
            for r in range(c, 5):
                rows.append(r)
                cols.append(c)
        p = LowerPattern.from_entries(5, rows, cols)
        cs = find_clusters(p, min_width=3)
        assert cs[0].is_column
        assert (cs[1].col_lo, cs[1].col_hi) == (1, 4)

    def test_cluster_of_column_map(self):
        p = _dense_strip_pattern()
        cs = find_clusters(p, min_width=2)
        m = cs.cluster_of_column
        assert m[0] == m[3]
        assert m[4] != m[3]

    def test_invalid_params(self):
        p = LowerPattern.dense(3)
        with pytest.raises(ValueError):
            find_clusters(p, min_width=0)
        with pytest.raises(ValueError):
            find_clusters(p, zero_tolerance=1.0)

    def test_triangle_density_invariant(self):
        """With zero tolerance, every triangle element must be present."""
        g = random_connected_graph(40, 60, seed=5)
        p = symbolic_cholesky(g).pattern
        cs = find_clusters(p, min_width=2, zero_tolerance=0.0)
        for c in cs:
            if c.is_column:
                continue
            for col in range(c.col_lo, c.col_hi + 1):
                for row in range(col, c.col_hi + 1):
                    assert p.has(row, col)

    @given(st.integers(3, 30), st.integers(0, 40), st.integers(0, 2**31 - 1),
           st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_partition_property(self, n, extra, seed, min_width):
        g = random_connected_graph(n, extra, seed)
        p = symbolic_cholesky(g).pattern
        cs = find_clusters(p, min_width=min_width)
        cols = []
        for c in cs:
            cols.extend(range(c.col_lo, c.col_hi + 1))
            if not c.is_column:
                assert c.width >= min_width
        assert cols == list(range(n))

    @given(st.integers(3, 25), st.integers(0, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_rectangles_cover_all_below_rows(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed)
        p = symbolic_cholesky(g).pattern
        cs = find_clusters(p, min_width=2)
        for c in cs:
            if c.is_column:
                continue
            below = set()
            for col in range(c.col_lo, c.col_hi + 1):
                below.update(r for r in p.col(col).tolist() if r > c.col_hi)
            covered = set()
            for r in c.rectangles:
                covered.update(range(r.row_lo, r.row_hi + 1))
            assert below <= covered
